//! Two "the past never dies" integration tests:
//!
//! * dropped tables: `DROP TABLE` removes the files, but the circular
//!   logs and binlog keep the rows (Stahlberg et al.'s forensic threat,
//!   which §1 builds on);
//! * onion downgrades: CryptDB-style layer peeling is a logged write
//!   burst, so a snapshot proves *when* a column lost semantic security
//!   and hands over the before-images of the stronger layer.

use edb_repro::edb::onion::{OnionLevel, OnionTable};
use edb_repro::edb_crypto::Key;
use edb_repro::minidb::engine::{Db, DbConfig};
use edb_repro::minidb::value::Value;
use edb_repro::minidb::wal::{BINLOG_FILE, REDO_FILE, UNDO_FILE};
use edb_repro::snapshot_attack::forensics::{binlog, lsn_time, wal};
use edb_repro::snapshot_attack::threat::{capture, AttackVector};

fn small_db() -> Db {
    let mut config = DbConfig::default();
    config.redo_capacity = 2 << 20;
    config.undo_capacity = 2 << 20;
    Db::open(config)
}

#[test]
fn dropped_table_rows_recoverable_from_logs() {
    let db = small_db();
    let conn = db.connect("app");
    conn.execute("CREATE TABLE秘密 (id INT PRIMARY KEY, note TEXT)")
        .unwrap_err(); // Non-ASCII identifiers rejected; sanity check.
    conn.execute("CREATE TABLE burn_after (id INT PRIMARY KEY, note TEXT)")
        .unwrap();
    conn.execute("INSERT INTO burn_after VALUES (1, 'incriminating-memo')")
        .unwrap();
    conn.execute("INSERT INTO burn_after VALUES (2, 'second-memo')")
        .unwrap();
    conn.execute("DROP TABLE burn_after").unwrap();

    // The table is gone from the engine and the disk file listing.
    assert!(conn.execute("SELECT * FROM burn_after").is_err());
    let disk = capture(&db, AttackVector::DiskTheft).persistent_db.unwrap();
    assert!(disk.file("table_burn_after.ibd").is_none());

    // But disk theft still recovers the rows: redo after-images...
    let writes = wal::reconstruct_writes(disk.file(REDO_FILE).unwrap());
    let texts: Vec<String> = writes
        .iter()
        .filter_map(|w| w.row.as_ref())
        .flat_map(|r| r.values.iter().map(|v| v.to_string()))
        .collect();
    assert!(texts.iter().any(|t| t == "incriminating-memo"), "{texts:?}");
    // ...and the binlog's verbatim INSERT statements.
    let events = binlog::parse_binlog(disk.file(BINLOG_FILE).unwrap());
    assert!(events
        .iter()
        .any(|e| e.statement.contains("incriminating-memo")));
}

#[test]
fn onion_downgrade_is_datable_and_reversible_by_the_attacker() {
    let db = small_db();
    let mut table = OnionTable::create(&db, &Key([0x51; 32]), "med", 9).unwrap();
    for v in ["flu", "flu", "diabetes"] {
        table.insert(v).unwrap();
    }
    assert_eq!(table.level(), OnionLevel::Rnd);
    // Time passes; then one equality query ratchets the column down.
    db.advance_time(86_400);
    table.select_eq("flu").unwrap();
    assert_eq!(table.level(), OnionLevel::Det);

    // ---- attacker: disk theft ----
    let disk = capture(&db, AttackVector::DiskTheft).persistent_db.unwrap();
    let events = binlog::parse_binlog(disk.file(BINLOG_FILE).unwrap());
    let peel_updates: Vec<_> = events
        .iter()
        .filter(|e| e.statement.starts_with("UPDATE med SET secret"))
        .collect();
    assert_eq!(peel_updates.len(), 3, "one rewrite per row");
    // Datable: the peel happened at least a day after the inserts.
    let insert_ts = events
        .iter()
        .filter(|e| e.statement.starts_with("INSERT INTO med"))
        .map(|e| e.timestamp)
        .max()
        .unwrap();
    assert!(peel_updates[0].timestamp - insert_ts >= 86_400);
    // The LSN-time fit orders the events correctly even on this bursty
    // workload (a steady rate gives second-level accuracy; see E3) —
    // the peel is placed firmly in the later epoch.
    let model = lsn_time::fit(&events).unwrap();
    let est_insert = model.estimate(events[0].lsn);
    let est_peel = model.estimate(peel_updates[0].lsn);
    assert!(
        est_peel - est_insert > 43_200.0,
        "peel must be dated well after the inserts: {est_insert} vs {est_peel}"
    );

    // The undo log hands back the *old RND cells*: proof the column was
    // RND, with before-images intact.
    let befores = wal::reconstruct_before_images(disk.file(UNDO_FILE).unwrap());
    let rnd_cells: Vec<_> = befores
        .iter()
        .filter(|b| b.op == edb_repro::minidb::wal::OpKind::Update)
        .filter_map(|b| b.before.as_ref())
        .collect();
    assert_eq!(rnd_cells.len(), 3);
    // After the peel, the DET histogram leaks from the redo log: take the
    // *latest* after-image per row (the peel rewrote every cell, logged as
    // a delete + reinsert since the cell shrank).
    let mut latest: std::collections::BTreeMap<u64, (u64, Vec<u8>)> = Default::default();
    for w in wal::reconstruct_writes(disk.file(REDO_FILE).unwrap()) {
        if let Some(row) = &w.row {
            if let Value::Bytes(ct) = &row.values[1] {
                let entry = latest.entry(row.id).or_insert((0, Vec::new()));
                if w.lsn >= entry.0 {
                    *entry = (w.lsn, ct.clone());
                }
            }
        }
    }
    let mut counts: std::collections::HashMap<Vec<u8>, usize> = Default::default();
    for (_, (_, ct)) in latest {
        *counts.entry(ct).or_default() += 1;
    }
    let mut hist: Vec<usize> = counts.values().copied().collect();
    hist.sort_unstable();
    assert_eq!(hist, vec![1, 2], "2x flu + 1x diabetes visible in DET");
}
