//! Cross-crate integration tests: each §6 attack pipeline, driven end to
//! end through the public APIs only — encrypted database on top of
//! MiniDB, realistic snapshot in the middle, leakage-abuse attack at the
//! end.

use edb_repro::edb::cryptdb::{ColumnCrypto, CryptDbProxy, EncColumn, Query};
use edb_repro::edb_crypto::swp::Trapdoor;
use edb_repro::edb_crypto::Key;
use edb_repro::minidb::engine::{Db, DbConfig};
use edb_repro::minidb::value::Value;
use edb_repro::snapshot_attack::forensics::memscan;
use edb_repro::snapshot_attack::threat::{capture, AttackVector};

fn small_db() -> Db {
    let mut config = DbConfig::default();
    config.redo_capacity = 2 << 20;
    config.undo_capacity = 2 << 20;
    Db::open(config)
}

#[test]
fn swp_trapdoor_breaks_semantic_security_from_a_snapshot() {
    let db = small_db();
    let mut proxy = CryptDbProxy::new(&db, Key([1u8; 32]), 5).unwrap();
    proxy
        .create_table(
            "mail",
            vec![
                EncColumn {
                    name: "id".into(),
                    crypto: ColumnCrypto::PlainInt,
                    primary_key: true,
                },
                EncColumn {
                    name: "body".into(),
                    crypto: ColumnCrypto::Search,
                    primary_key: false,
                },
            ],
        )
        .unwrap();
    let bodies = [
        "the acquisition closes friday",
        "cafeteria menu changes monday",
        "acquisition diligence documents attached",
    ];
    for (i, b) in bodies.iter().enumerate() {
        proxy
            .insert("mail", &[Value::Int(i as i64), Value::Text(b.to_string())])
            .unwrap();
    }
    // Victim searches once.
    proxy
        .select(
            "mail",
            &Query::Contains("body".into(), "acquisition".into()),
        )
        .unwrap();

    // Attacker: VM snapshot → carve the trapdoor → replay it.
    let obs = capture(&db, AttackVector::VmSnapshotLeak);
    let mem = obs.volatile_db.unwrap();
    let tokens: Vec<Trapdoor> = memscan::carve_tokens(&mem.heap)
        .iter()
        .filter_map(|b| Trapdoor::from_bytes(b))
        .collect();
    assert!(
        !tokens.is_empty(),
        "trapdoor must be carvable from the heap"
    );

    let conn = db.connect("attacker");
    let stored = conn.execute("SELECT id, body_swp FROM mail").unwrap();
    let mut matching = std::collections::BTreeSet::new();
    for td in &tokens {
        for row in &stored.rows {
            let Value::Bytes(blob) = &row[1] else {
                panic!()
            };
            let cts = edb_repro::edb::cryptdb::parse_swp_blob(blob).unwrap();
            if cts
                .iter()
                .any(|ct| edb_repro::edb_crypto::swp::server_match(td, ct))
            {
                let Value::Int(id) = row[0] else { panic!() };
                matching.insert(id);
            }
        }
    }
    // Semantic security is broken: the attacker distinguishes which
    // encrypted rows match the victim's keyword.
    assert_eq!(matching.into_iter().collect::<Vec<_>>(), vec![0, 2]);
}

#[test]
fn ore_tokens_from_heap_order_stolen_ciphertexts() {
    use edb_repro::edb_crypto::ore::{compare, LeftCiphertext, RightCiphertext};

    let db = small_db();
    let mut proxy = CryptDbProxy::new(&db, Key([2u8; 32]), 6).unwrap();
    proxy
        .create_table(
            "payroll",
            vec![
                EncColumn {
                    name: "id".into(),
                    crypto: ColumnCrypto::PlainInt,
                    primary_key: true,
                },
                EncColumn {
                    name: "salary".into(),
                    crypto: ColumnCrypto::Ore,
                    primary_key: false,
                },
            ],
        )
        .unwrap();
    let salaries = [45_000u32, 90_000, 61_000, 130_000];
    for (i, s) in salaries.iter().enumerate() {
        proxy
            .insert("payroll", &[Value::Int(i as i64), Value::Int(*s as i64)])
            .unwrap();
    }
    // Victim runs one range query; the two bound tokens hit the heap.
    proxy
        .select("payroll", &Query::Range("salary".into(), 60_000, 100_000))
        .unwrap();

    let obs = capture(&db, AttackVector::VmSnapshotLeak);
    let mem = obs.volatile_db.unwrap();
    let tokens: Vec<LeftCiphertext> = memscan::carve_tokens(&mem.heap)
        .iter()
        .filter_map(|b| LeftCiphertext::from_bytes(b).ok())
        .collect();
    assert!(tokens.len() >= 2, "both range-bound tokens recoverable");

    // Apply a token to every stolen right ciphertext: the attacker
    // partitions the encrypted column by order against the hidden bound.
    let conn = db.connect("attacker");
    let stored = conn.execute("SELECT id, salary_ore FROM payroll").unwrap();
    let mut partitions = Vec::new();
    for row in &stored.rows {
        let Value::Bytes(ct) = &row[1] else { panic!() };
        let right = RightCiphertext::from_bytes(ct).unwrap();
        let ord = compare(&tokens[0], &right).unwrap();
        partitions.push(ord);
    }
    // The partition is non-trivial (some above, some below the bound).
    assert!(partitions.iter().any(|o| o.is_lt()));
    assert!(partitions.iter().any(|o| o.is_gt()));
}

#[test]
fn det_column_leaks_histogram_to_pure_disk_theft() {
    let db = small_db();
    let mut proxy = CryptDbProxy::new(&db, Key([3u8; 32]), 7).unwrap();
    proxy
        .create_table(
            "patients",
            vec![
                EncColumn {
                    name: "id".into(),
                    crypto: ColumnCrypto::PlainInt,
                    primary_key: true,
                },
                EncColumn {
                    name: "diagnosis".into(),
                    crypto: ColumnCrypto::Det,
                    primary_key: false,
                },
            ],
        )
        .unwrap();
    let diagnoses = ["flu", "flu", "flu", "diabetes", "diabetes", "rare-disease"];
    for (i, d) in diagnoses.iter().enumerate() {
        proxy
            .insert(
                "patients",
                &[Value::Int(i as i64), Value::Text(d.to_string())],
            )
            .unwrap();
    }
    db.shutdown();

    // Disk theft: the redo log alone contains the DET ciphertexts; their
    // multiset is the plaintext histogram.
    let obs = capture(&db, AttackVector::DiskTheft);
    let disk = obs.persistent_db.unwrap();
    let writes = edb_repro::snapshot_attack::forensics::wal::reconstruct_writes(
        disk.file(edb_repro::minidb::wal::REDO_FILE).unwrap(),
    );
    let mut counts: std::collections::HashMap<Vec<u8>, usize> = Default::default();
    for w in writes.iter().filter_map(|w| w.row.as_ref()) {
        if let Value::Bytes(ct) = &w.values[1] {
            *counts.entry(ct.clone()).or_default() += 1;
        }
    }
    let mut histogram: Vec<usize> = counts.values().copied().collect();
    histogram.sort_unstable();
    assert_eq!(histogram, vec![1, 2, 3], "3-2-1 plaintext shape leaks");
}

#[test]
fn full_pipeline_survives_log_wraparound() {
    // Failure injection: the circular log wraps *during* the victim
    // workload; the attack still works on the surviving suffix.
    let mut config = DbConfig::default();
    config.redo_capacity = 64 * 1024;
    config.undo_capacity = 64 * 1024;
    let db = Db::open(config);
    let conn = db.connect("app");
    conn.execute("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
        .unwrap();
    for i in 0..2_000 {
        conn.execute(&format!("INSERT INTO t VALUES ({i}, 'row-{i}')"))
            .unwrap();
    }
    let disk = db.disk_image();
    let writes = edb_repro::snapshot_attack::forensics::wal::reconstruct_writes(
        disk.file(edb_repro::minidb::wal::REDO_FILE).unwrap(),
    );
    assert!(!writes.is_empty());
    assert!(writes.len() < 2_000, "wrap discarded the oldest records");
    // Every surviving record is intact and decodable.
    for w in &writes {
        if w.op == edb_repro::minidb::wal::OpKind::Insert {
            assert!(w.row.is_some(), "carved insert must decode");
        }
    }
    // LSNs are strictly increasing after the carve's sort.
    assert!(writes.windows(2).all(|w| w[0].lsn < w[1].lsn));
}
