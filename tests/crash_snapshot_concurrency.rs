//! Integration tests for the systems substrate under stress: crashes in
//! awkward places, snapshots taken mid-workload, and concurrent sessions.

use edb_repro::minidb::engine::{Db, DbConfig};
use edb_repro::minidb::value::Value;
use edb_repro::snapshot_attack::threat::{capture, AttackVector};

fn small_db() -> Db {
    let mut config = DbConfig::default();
    config.redo_capacity = 2 << 20;
    config.undo_capacity = 2 << 20;
    Db::open(config)
}

#[test]
fn repeated_crash_recover_cycles_preserve_data() {
    let db = small_db();
    let conn = db.connect("app");
    conn.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        .unwrap();
    let mut expected = 0i64;
    for round in 0..5 {
        let conn = db.connect("app");
        for i in 0..50 {
            let id = round * 50 + i;
            conn.execute(&format!("INSERT INTO t VALUES ({id}, {})", id * 2))
                .unwrap();
            expected += 1;
        }
        db.crash();
        db.recover().unwrap();
        let conn = db.connect("check");
        let r = conn.execute("SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(r.rows[0][0], Value::Int(expected), "round {round}");
    }
}

#[test]
fn crash_mid_explicit_txn_is_atomic() {
    let db = small_db();
    let conn = db.connect("app");
    conn.execute("CREATE TABLE acct (id INT PRIMARY KEY, bal INT)")
        .unwrap();
    conn.execute("INSERT INTO acct VALUES (1, 100), (2, 100)")
        .unwrap();
    // A transfer that crashes between the two legs.
    conn.execute("BEGIN").unwrap();
    conn.execute("UPDATE acct SET bal = 0 WHERE id = 1")
        .unwrap();
    db.crash();
    db.recover().unwrap();
    let conn = db.connect("check");
    let r = conn.execute("SELECT SUM(bal) FROM acct").unwrap();
    assert_eq!(
        r.rows[0][0],
        Value::Int(200),
        "half-applied transfer rolled back"
    );
}

#[test]
fn crash_immediately_after_wraparound_recovers() {
    let mut config = DbConfig::default();
    config.redo_capacity = 64 * 1024;
    config.undo_capacity = 64 * 1024;
    let db = Db::open(config);
    let conn = db.connect("app");
    conn.execute("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
        .unwrap();
    // Far more writes than the circular log holds: the engine must have
    // checkpointed before each wrap, so recovery still converges.
    for i in 0..3_000 {
        conn.execute(&format!("INSERT INTO t VALUES ({i}, 'padding-row-{i}')"))
            .unwrap();
    }
    db.crash();
    db.recover().unwrap();
    let conn = db.connect("check");
    let r = conn.execute("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(3_000));
    let r = conn.execute("SELECT v FROM t WHERE id = 2999").unwrap();
    assert_eq!(r.rows[0][0], Value::Text("padding-row-2999".into()));
}

#[test]
fn snapshot_during_concurrent_workload_is_consistent() {
    let db = small_db();
    let conn = db.connect("app");
    conn.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        .unwrap();
    drop(conn);

    let writers: Vec<_> = (0..4)
        .map(|w| {
            let db = db.clone();
            std::thread::spawn(move || {
                let conn = db.connect(&format!("writer{w}"));
                for i in 0..200 {
                    let id = w * 1_000 + i;
                    conn.execute(&format!("INSERT INTO t VALUES ({id}, {i})"))
                        .unwrap();
                }
            })
        })
        .collect();
    // Take snapshots while the writers are running.
    let mut snapshot_rows = Vec::new();
    for _ in 0..10 {
        let image = db.system_image();
        snapshot_rows.push(image.disk.total_bytes());
        std::thread::yield_now();
    }
    for w in writers {
        w.join().unwrap();
    }
    let conn = db.connect("check");
    let r = conn.execute("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(800));
    // Snapshots were all well-formed (parseable catalog implies so).
    assert!(snapshot_rows.iter().all(|&b| b > 0));
}

#[test]
fn observation_capture_on_all_vectors_during_activity() {
    let db = small_db();
    let conn = db.connect("app");
    conn.execute("CREATE TABLE t (id INT PRIMARY KEY)").unwrap();
    for i in 0..100 {
        conn.execute(&format!("INSERT INTO t VALUES ({i})"))
            .unwrap();
    }
    for vector in AttackVector::ALL {
        let obs = capture(&db, vector);
        if let Some(disk) = &obs.persistent_db {
            assert!(disk.file("catalog").is_some(), "{vector:?}");
        }
        if let Some(mem) = &obs.volatile_db {
            assert!(!mem.heap.is_empty(), "{vector:?}");
        }
    }
}

#[test]
fn recovery_is_idempotent() {
    let db = small_db();
    let conn = db.connect("app");
    conn.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        .unwrap();
    conn.execute("INSERT INTO t VALUES (1, 10), (2, 20)")
        .unwrap();
    conn.execute("UPDATE t SET v = 11 WHERE id = 1").unwrap();
    db.crash();
    db.recover().unwrap();
    // Recover again without a crash in between: must be a no-op.
    db.crash();
    db.recover().unwrap();
    let conn = db.connect("check");
    let r = conn.execute("SELECT v FROM t ORDER BY id").unwrap();
    assert_eq!(r.rows, vec![vec![Value::Int(11)], vec![Value::Int(20)]]);
}
