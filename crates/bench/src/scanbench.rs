//! Shared scan-benchmark fixture: the workload behind `benches/scan.rs`
//! and the `--bench-json` flag of the `experiments` binary.
//!
//! One table, rows inserted in `ts` order so consecutive pages hold
//! disjoint `ts` ranges (the clustered-by-arrival shape zone maps are
//! built for — think an events or audit table), then 1%-selectivity
//! range scans over the unindexed `ts` column. The pruned run consults
//! the page synopses; the full run (`zone_maps_enabled = false`)
//! decodes every page.

use std::time::Instant;

use mdb_telemetry::json;
use minidb::engine::{Db, DbConfig};

/// Gap between consecutive `ts` values (a sparse, monotone key, like
/// millisecond timestamps).
pub const STEP: i64 = 10;

/// Builds the scan fixture: `rows` rows of `(id, ts, note)` with
/// `ts = id * STEP`, inserted in batches, query cache off so every
/// SELECT exercises the executor.
pub fn build_db(rows: usize, zone_maps: bool) -> Db {
    let config = DbConfig {
        redo_capacity: 16 << 20,
        undo_capacity: 16 << 20,
        buffer_pool_pages: 2048,
        query_cache_enabled: false,
        zone_maps_enabled: zone_maps,
        ..DbConfig::default()
    };
    let db = Db::open(config);
    let conn = db.connect("bench");
    conn.execute("CREATE TABLE events (id INT PRIMARY KEY, ts INT, note TEXT)")
        .unwrap();
    for chunk in (0..rows as i64).collect::<Vec<_>>().chunks(500) {
        let values: Vec<String> = chunk
            .iter()
            .map(|i| format!("({i}, {}, 'evt-{i}')", i * STEP))
            .collect();
        conn.execute(&format!("INSERT INTO events VALUES {}", values.join(", ")))
            .unwrap();
    }
    db
}

/// The `q`-th 1%-selectivity range predicate over the fixture's `ts`
/// domain, rotating the window so runs don't hit a warmed page set.
pub fn query(rows: usize, q: usize) -> String {
    let span = rows as i64 * STEP;
    let width = span / 100;
    let lo = (q as i64 * 37 * width) % (span - width);
    format!(
        "SELECT id, ts FROM events WHERE ts >= {lo} AND ts < {}",
        lo + width
    )
}

/// One measured scan configuration.
#[derive(Clone, Debug)]
pub struct ScanMeasurement {
    /// Logical scan throughput: table rows × queries / wall time.
    pub rows_per_sec: f64,
    /// Pages the zone maps let the executor skip, summed over queries.
    pub pages_pruned: u64,
    /// Pages actually decoded, summed over queries.
    pub pages_decoded: u64,
    /// Rows returned, summed over queries (a correctness cross-check).
    pub rows_returned: u64,
}

/// Runs `queries` range scans against `db` and reads the pruning
/// counters off the engine's telemetry registry.
pub fn measure(db: &Db, rows: usize, queries: usize) -> ScanMeasurement {
    let conn = db.connect("bench");
    let before = db.metrics_snapshot();
    let mut rows_returned = 0u64;
    let start = Instant::now();
    for q in 0..queries {
        rows_returned += conn.execute(&query(rows, q)).unwrap().rows.len() as u64;
    }
    let elapsed = start.elapsed().as_secs_f64();
    let after = db.metrics_snapshot();
    let delta = |name: &str| after.counter(name).unwrap_or(0) - before.counter(name).unwrap_or(0);
    ScanMeasurement {
        rows_per_sec: (rows as f64 * queries as f64) / elapsed.max(1e-9),
        pages_pruned: delta("scan.pages_pruned"),
        pages_decoded: delta("scan.pages_decoded"),
        rows_returned,
    }
}

/// Full-vs-pruned comparison over a fresh pair of fixtures.
#[derive(Clone, Debug)]
pub struct ScanComparison {
    /// Table size in rows.
    pub rows: usize,
    /// Queries run per variant.
    pub queries: usize,
    /// The materialize-everything baseline (`zone_maps_enabled = false`).
    pub full: ScanMeasurement,
    /// The zone-map-pruned run.
    pub pruned: ScanMeasurement,
}

impl ScanComparison {
    /// Pruned-over-full throughput ratio.
    pub fn speedup(&self) -> f64 {
        self.pruned.rows_per_sec / self.full.rows_per_sec.max(1e-9)
    }

    /// Fraction of consulted pages the zone maps skipped.
    pub fn pruned_fraction(&self) -> f64 {
        let total = self.pruned.pages_pruned + self.pruned.pages_decoded;
        if total == 0 {
            return 0.0;
        }
        self.pruned.pages_pruned as f64 / total as f64
    }

    /// Serialises the comparison as a small JSON document (the
    /// `--bench-json` output).
    pub fn to_json(&self) -> String {
        let mut w = json::Writer::new();
        w.obj_open();
        w.key("rows");
        w.u64(self.rows as u64);
        w.key("queries");
        w.u64(self.queries as u64);
        w.key("full_rows_per_sec");
        w.f64(self.full.rows_per_sec);
        w.key("pruned_rows_per_sec");
        w.f64(self.pruned.rows_per_sec);
        w.key("speedup");
        w.f64(self.speedup());
        w.key("pages_pruned");
        w.u64(self.pruned.pages_pruned);
        w.key("pages_decoded");
        w.u64(self.pruned.pages_decoded);
        w.key("pruned_fraction");
        w.f64(self.pruned_fraction());
        w.obj_close();
        w.into_string()
    }
}

/// Builds both fixtures, runs both variants, and checks they return the
/// same rows.
pub fn compare(rows: usize, queries: usize) -> ScanComparison {
    let full_db = build_db(rows, false);
    let full = measure(&full_db, rows, queries);
    let pruned_db = build_db(rows, true);
    let pruned = measure(&pruned_db, rows, queries);
    assert_eq!(
        full.rows_returned, pruned.rows_returned,
        "pruned scan must return exactly the full scan's rows"
    );
    ScanComparison {
        rows,
        queries,
        full,
        pruned,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pruned_matches_full_and_skips_pages() {
        let cmp = compare(5_000, 6);
        assert!(cmp.pruned.rows_returned > 0);
        assert_eq!(cmp.full.pages_pruned, 0, "zone maps off: nothing pruned");
        assert!(cmp.pruned.pages_pruned > 0, "{cmp:?}");
        assert!(
            cmp.pruned_fraction() > 0.5,
            "1% selectivity should skip most pages: {cmp:?}"
        );
        let json = cmp.to_json();
        assert!(json.contains("\"pages_pruned\""), "{json}");
    }
}
