//! Experiment harness: regenerates every figure, table, and in-text
//! quantitative claim of the paper's evaluation.
//!
//! Each `e*` module reproduces one experiment from DESIGN.md's index and
//! returns [`snapshot_attack::report::Table`]s; the `experiments` binary
//! prints them, and the Criterion benches under `benches/` time the
//! attack primitives themselves.
//!
//! | id  | paper | what it reproduces |
//! |-----|-------|--------------------|
//! | e1  | Fig 1 | attack vector × revealed-state matrix |
//! | e2  | §3    | redo/undo write reconstruction, "16 days in 50 MB" |
//! | e3  | §3    | binlog timestamps + LSN-rate dating of purged history |
//! | e4  | §3    | buffer-pool dump → recently read B+ tree ranges |
//! | e5  | §4    | diagnostic tables via SQL injection, digest example |
//! | e6  | §5    | heap persistence of a marker query (102k-query run) |
//! | e7  | §6    | count attack on SWP tokens, 63%-unique statistic |
//! | e8  | §6    | Lewi–Wu bit leakage: 12%/19%/25% at 5/25/50 queries |
//! | e9  | §6    | Seabed: digest histogram + frequency analysis; ORE |
//! | e10 | §6    | Arx: transaction-log transcripts, rank recovery |
//! | e11 | §6    | at-rest encryption: disk-only vs memory attacker |
//! | e12 | §7    | (ext) mitigation ablation: no single knob helps |
//! | e13 | §2    | (ext) snapshot coverage of the persistent transcript |

pub mod e01_figure1;
pub mod e02_wal_forensics;
pub mod e03_lsn_time;
pub mod e04_bufpool_reads;
pub mod e05_diagnostics;
pub mod e06_heap_marker;
pub mod e07_count_attack;
pub mod e08_lewi_wu;
pub mod e09_seabed;
pub mod e10_arx;
pub mod e11_atrest;
pub mod e12_mitigations;
pub mod e13_snapshot_vs_persistent;

use snapshot_attack::report::Table;

/// Shared experiment options.
#[derive(Clone, Copy, Debug)]
pub struct Options {
    /// Reduced parameters for quick runs (CI); full parameters otherwise.
    pub quick: bool,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            quick: false,
            seed: 0x5EED,
        }
    }
}

/// Runs one experiment by id (`"e1"`–`"e11"`), returning its tables.
pub fn run(id: &str, opts: &Options) -> Option<Vec<Table>> {
    match id {
        "e1" => Some(e01_figure1::run(opts)),
        "e2" => Some(e02_wal_forensics::run(opts)),
        "e3" => Some(e03_lsn_time::run(opts)),
        "e4" => Some(e04_bufpool_reads::run(opts)),
        "e5" => Some(e05_diagnostics::run(opts)),
        "e6" => Some(e06_heap_marker::run(opts)),
        "e7" => Some(e07_count_attack::run(opts)),
        "e8" => Some(e08_lewi_wu::run(opts)),
        "e9" => Some(e09_seabed::run(opts)),
        "e10" => Some(e10_arx::run(opts)),
        "e11" => Some(e11_atrest::run(opts)),
        "e12" => Some(e12_mitigations::run(opts)),
        "e13" => Some(e13_snapshot_vs_persistent::run(opts)),
        _ => None,
    }
}

/// All experiment ids in order. `e12`/`e13` are extensions beyond the
/// paper: the §7 mitigation ablation and the snapshot-vs-persistent
/// coverage comparison.
pub const ALL: [&str; 13] = [
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13",
];

/// Formats a fraction as a percentage string.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats a float with two decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}
