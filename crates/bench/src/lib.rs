//! Experiment harness: regenerates every figure, table, and in-text
//! quantitative claim of the paper's evaluation.
//!
//! Each `e*` module reproduces one experiment from DESIGN.md's index and
//! returns [`snapshot_attack::report::Table`]s; the `experiments` binary
//! prints them, and the Criterion benches under `benches/` time the
//! attack primitives themselves.
//!
//! | id  | paper | what it reproduces |
//! |-----|-------|--------------------|
//! | e1  | Fig 1 | attack vector × revealed-state matrix |
//! | e2  | §3    | redo/undo write reconstruction, "16 days in 50 MB" |
//! | e3  | §3    | binlog timestamps + LSN-rate dating of purged history |
//! | e4  | §3    | buffer-pool dump → recently read B+ tree ranges |
//! | e5  | §4    | diagnostic tables via SQL injection, digest example |
//! | e6  | §5    | heap persistence of a marker query (102k-query run) |
//! | e7  | §6    | count attack on SWP tokens, 63%-unique statistic |
//! | e8  | §6    | Lewi–Wu bit leakage: 12%/19%/25% at 5/25/50 queries |
//! | e9  | §6    | Seabed: digest histogram + frequency analysis; ORE |
//! | e10 | §6    | Arx: transaction-log transcripts, rank recovery |
//! | e11 | §6    | at-rest encryption: disk-only vs memory attacker |
//! | e12 | §7    | (ext) mitigation ablation: no single knob helps |
//! | e13 | §2    | (ext) snapshot coverage of the persistent transcript |
//! | e14 | §2    | (ext) replication: relay logs survive binlog purge |
//! | e15 | §4    | (ext) flight recorder: query timeline survives wipe |
//! | e16 | §3    | (ext) zone maps: scan pruning speedup + page-range leak |
//! | e17 | §4    | (ext) scrape channel: remote volume recovery off `/metrics` |
//! | e18 | §3/§6 | (ext) version chains: MVCC archives the victim's edit history |
//! | e19 | §3/§4 | (ext) xtrace: trace ids join replica images to client sessions |
//! | e20 | §3/§7 | (ext) sealed WAL + group commit: E2/E3/E14 go dark, writes get faster |
//! | e21 | §3/§7 | (ext) chaos failover: fenced divergent tail leaks; `encrypted_wal` seals it |

pub mod chaosbench;
pub mod e01_figure1;
pub mod e02_wal_forensics;
pub mod e03_lsn_time;
pub mod e04_bufpool_reads;
pub mod e05_diagnostics;
pub mod e06_heap_marker;
pub mod e07_count_attack;
pub mod e08_lewi_wu;
pub mod e09_seabed;
pub mod e10_arx;
pub mod e11_atrest;
pub mod e12_mitigations;
pub mod e13_snapshot_vs_persistent;
pub mod e14_replication;
pub mod e15_tracelog;
pub mod e16_zonemap;
pub mod e17_obs;
pub mod e18_versions;
pub mod e19_xtrace;
pub mod e20_encwal;
pub mod e21_chaos;
pub mod obsbench;
pub mod scanbench;
pub mod serverbench;
pub mod walbench;
pub mod xtracebench;

use mdb_telemetry::{json, MetricsSnapshot, Registry};
use mdb_trace::{Recorder, StatementTrace};
use snapshot_attack::report::Table;

/// Shared experiment options.
#[derive(Clone, Debug)]
pub struct Options {
    /// Reduced parameters for quick runs (CI); full parameters otherwise.
    pub quick: bool,
    /// Base RNG seed.
    pub seed: u64,
    /// Harness-side telemetry registry. Each experiment absorbs its
    /// engines' final metrics into it (see [`Options::absorb_db`]), so a
    /// run's report carries the engine counters alongside wall time.
    pub telemetry: Registry,
    /// Harness-side trace collector: each experiment's statement traces
    /// land here (via [`Options::absorb_db`]) so a run can be exported
    /// as a Chrome `trace_event` file (`--trace <dir>`).
    pub traces: Recorder,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            quick: false,
            seed: 0x5EED,
            telemetry: Registry::new(),
            traces: Recorder::new(4096),
        }
    }
}

impl Options {
    /// Folds a database's telemetry and statement traces into the
    /// harness collectors. Call once per engine, when the experiment is
    /// done with it.
    pub fn absorb_db(&self, db: &minidb::engine::Db) {
        self.telemetry.absorb(&db.metrics_snapshot());
        self.traces.absorb(db.query_traces());
    }
}

/// Runs one experiment by id (`"e1"`–`"e11"`), returning its tables.
pub fn run(id: &str, opts: &Options) -> Option<Vec<Table>> {
    match id {
        "e1" => Some(e01_figure1::run(opts)),
        "e2" => Some(e02_wal_forensics::run(opts)),
        "e3" => Some(e03_lsn_time::run(opts)),
        "e4" => Some(e04_bufpool_reads::run(opts)),
        "e5" => Some(e05_diagnostics::run(opts)),
        "e6" => Some(e06_heap_marker::run(opts)),
        "e7" => Some(e07_count_attack::run(opts)),
        "e8" => Some(e08_lewi_wu::run(opts)),
        "e9" => Some(e09_seabed::run(opts)),
        "e10" => Some(e10_arx::run(opts)),
        "e11" => Some(e11_atrest::run(opts)),
        "e12" => Some(e12_mitigations::run(opts)),
        "e13" => Some(e13_snapshot_vs_persistent::run(opts)),
        "e14" => Some(e14_replication::run(opts)),
        "e15" => Some(e15_tracelog::run(opts)),
        "e16" => Some(e16_zonemap::run(opts)),
        "e17" => Some(e17_obs::run(opts)),
        "e18" => Some(e18_versions::run(opts)),
        "e19" => Some(e19_xtrace::run(opts)),
        "e20" => Some(e20_encwal::run(opts)),
        "e21" => Some(e21_chaos::run(opts)),
        _ => None,
    }
}

/// All experiment ids in order. `e12`–`e21` are extensions beyond the
/// paper: the §7 mitigation ablation, the snapshot-vs-persistent
/// coverage comparison, the replication relay-log surface, the
/// query-flight-recorder surface, the zone-map surface, the
/// metrics-scrape surface, the MVCC version-chain surface, the
/// cross-node trace-correlation surface, the sealed-WAL/group-commit
/// write path, and the chaos-failover divergent-tail surface.
pub const ALL: [&str; 21] = [
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14", "e15",
    "e16", "e17", "e18", "e19", "e20", "e21",
];

/// One experiment's full result: its tables plus the telemetry the
/// harness gathered while running it.
#[derive(Clone, Debug)]
pub struct ExperimentReport {
    /// Experiment id (`"e1"`…).
    pub id: String,
    /// Wall-clock duration of the whole experiment.
    pub wall_time_us: u64,
    /// The result tables (what the binary prints).
    pub tables: Vec<Table>,
    /// Engine metrics absorbed from the experiment's databases.
    pub metrics: MetricsSnapshot,
    /// Statement traces absorbed from the experiment's databases (the
    /// raw material for the `--trace` Chrome export; not serialized
    /// into the `--json` report).
    pub traces: Vec<StatementTrace>,
}

/// Runs one experiment with a fresh harness registry, recording wall
/// time and the engine metrics it absorbed.
pub fn run_report(id: &str, opts: &Options) -> Option<ExperimentReport> {
    let opts = Options {
        telemetry: Registry::new(),
        traces: Recorder::new(4096),
        ..opts.clone()
    };
    let start = std::time::Instant::now();
    let tables = run(id, &opts)?;
    Some(ExperimentReport {
        id: id.to_string(),
        wall_time_us: start.elapsed().as_micros() as u64,
        tables,
        metrics: opts.telemetry.snapshot(),
        traces: opts.traces.traces(),
    })
}

fn table_to_json(w: &mut json::Writer, t: &Table) {
    w.obj_open();
    w.key("title");
    w.string(&t.title);
    w.key("headers");
    w.arr_open();
    for h in &t.headers {
        w.string(h);
    }
    w.arr_close();
    w.key("rows");
    w.arr_open();
    for row in &t.rows {
        w.arr_open();
        for cell in row {
            w.string(cell);
        }
        w.arr_close();
    }
    w.arr_close();
    w.obj_close();
}

/// Serializes a set of experiment reports as one JSON document (the
/// `--json` output of the `experiments` binary).
pub fn reports_to_json(reports: &[ExperimentReport], opts: &Options) -> String {
    let mut w = json::Writer::new();
    w.obj_open();
    w.key("quick");
    w.bool(opts.quick);
    w.key("seed");
    w.u64(opts.seed);
    w.key("experiments");
    w.arr_open();
    for r in reports {
        w.obj_open();
        w.key("id");
        w.string(&r.id);
        w.key("wall_time_us");
        w.u64(r.wall_time_us);
        w.key("tables");
        w.arr_open();
        for t in &r.tables {
            table_to_json(&mut w, t);
        }
        w.arr_close();
        w.key("metrics");
        w.raw(&r.metrics.to_json());
        w.obj_close();
    }
    w.arr_close();
    w.obj_close();
    w.into_string()
}

/// Formats a fraction as a percentage string.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats a float with two decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}
