//! E17 (extension) — the scrape channel: your status port is a remote
//! volume oracle.
//!
//! The victim is the E16 fixture — EDB-encrypted payloads, plaintext
//! range-queried `ts` — with one production-realistic addition: the
//! engine's observability port is on (`DbConfig::obs_listen`), serving
//! `/metrics` to whatever can open a TCP connection, the way every
//! Prometheus-scraped DBMS does. The attacker is
//! [`snapshot_attack::attacks::volume::RemoteObserver`]: it never sees
//! disk, memory, logs, or SQL — it polls `/metrics` on an interval and
//! diffs cumulative counters between scrapes. When at most one client
//! query lands per scrape window, the `sql.rows_returned` sum delta IS
//! that query's result volume, and for the victim's range family
//! (`ts <= k*STEP` over a dense column) the volume inverts straight to
//! the secret bound `k`.
//!
//! The experiment measures the channel's bandwidth against its
//! controls: recovery rate vs scrape interval (fast scrapes isolate
//! queries; slow scrapes merge them), then the two mitigation knobs —
//! `obs_scrub` (per-table series dropped, every value quantized to a
//! power of two) and bearer-token auth (the observer is simply denied).
//! A second table cross-checks the replication-lag histograms: the
//! p50/p95/p99 a remote scrape derives from `_bucket` lines must equal
//! the engine-side [`HistogramSnapshot::p99`] family — same data, no
//! privileged access needed.

use std::time::Duration;

use edb_crypto::{kdf, rnd, Key};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use snapshot_attack::attacks::volume::{
    denied_count, evaluate, infer_windows, invert_range_volume, scrapes, RemoteObserver,
};
use snapshot_attack::report::Table;

use crate::scanbench;
use crate::{pct, Options};

/// Scrape interval for the acceptance variant (the issue's criterion:
/// >= 80% per-query volume recovery at 100 ms).
const FAST_SCRAPE_MS: u64 = 100;
/// Client spacing for isolated-query variants: three scrape windows, so
/// consecutive queries land in distinct windows despite jitter.
const ISOLATED_SPACING_MS: u64 = 300;
/// Slow-scraper variant: queries arrive faster than scrapes, so
/// volumes merge.
const SLOW_SCRAPE_MS: u64 = 500;
const MERGED_SPACING_MS: u64 = 180;

/// The E16 encrypted victim with its status port open.
fn victim(rows: usize, scrub: bool, auth: Option<&str>, seed: u64) -> minidb::engine::Db {
    let config = minidb::engine::DbConfig {
        redo_capacity: 16 << 20,
        undo_capacity: 16 << 20,
        query_cache_enabled: false,
        obs_listen: Some("127.0.0.1:0".into()),
        obs_scrub: scrub,
        obs_auth_token: auth.map(str::to_string),
        ..minidb::engine::DbConfig::default()
    };
    let db = minidb::engine::Db::open(config);
    let conn = db.connect("app");
    conn.execute("CREATE TABLE readings (id INT PRIMARY KEY, ts INT, payload BYTES)")
        .unwrap();
    let master = Key([0x17; 32]);
    let key = Key(kdf::derive_key(&master.0, b"e17/payload"));
    let mut rng = StdRng::seed_from_u64(seed);
    for chunk in (0..rows as i64).collect::<Vec<_>>().chunks(200) {
        let values: Vec<String> = chunk
            .iter()
            .map(|i| {
                let ct = rnd::encrypt(&key, format!("reading-{i}").as_bytes(), &mut rng);
                let hex: String = ct.iter().map(|b| format!("{b:02x}")).collect();
                format!("({i}, {}, X'{hex}')", i * scanbench::STEP)
            })
            .collect();
        conn.execute(&format!(
            "INSERT INTO readings VALUES {}",
            values.join(", ")
        ))
        .unwrap();
    }
    db
}

/// One variant's scoreboard.
struct VariantOutcome {
    scrapes: usize,
    denied: usize,
    isolated: usize,
    merged_queries: u64,
    recovery_rate: f64,
    /// Fraction of secret range bounds recovered exactly via
    /// [`invert_range_volume`].
    bound_rate: f64,
}

/// Which mitigation knob (if any) a variant enables.
#[derive(Clone, Copy, PartialEq)]
enum Mitigation {
    None,
    Scrub,
    Auth,
}

/// Runs the victim workload under a polling observer and scores it.
fn run_variant(
    rows: usize,
    queries: usize,
    scrape_ms: u64,
    spacing_ms: u64,
    mitigation: Mitigation,
    seed: u64,
    opts: &Options,
) -> VariantOutcome {
    let scrub = mitigation == Mitigation::Scrub;
    let token = (mitigation == Mitigation::Auth).then_some("scrape-secret");
    let db = victim(rows, scrub, token, seed);
    let addr = db.obs_addr().expect("victim obs port must be up");
    // The attack premise: the observer holds NO credentials.
    let observer = RemoteObserver::start(addr, Duration::from_millis(scrape_ms), None);
    // Let the observer land a baseline scrape before the queries start.
    std::thread::sleep(Duration::from_millis(scrape_ms * 2));

    let conn = db.connect("analyst");
    let mut rng = StdRng::seed_from_u64(seed ^ 0xE17);
    let mut true_bounds = Vec::with_capacity(queries);
    let mut truth = Vec::with_capacity(queries);
    for _ in 0..queries {
        let k = rng.gen_range(0..rows as u64);
        let res = conn
            .execute(&format!(
                "SELECT payload FROM readings WHERE ts >= 0 AND ts <= {}",
                k as i64 * scanbench::STEP
            ))
            .unwrap();
        assert_eq!(res.rows.len() as u64, k + 1, "dense fixture: volume = k+1");
        true_bounds.push(k);
        truth.push(k + 1);
        std::thread::sleep(Duration::from_millis(spacing_ms));
    }
    // Drain: let the final query's counters get scraped.
    std::thread::sleep(Duration::from_millis(scrape_ms * 3));
    let observations = observer.stop();
    opts.absorb_db(&db);
    db.shutdown();

    let scraped = scrapes(&observations);
    // Scrub drops the per-table counters; the observer falls back to the
    // global statement counter as its query clock.
    let query_key = if scrub {
        "sql.statements"
    } else {
        "sql.table_access.readings"
    };
    let windows = infer_windows(&scraped, query_key, "sql.rows_returned.sum");
    let score = evaluate(&windows, &truth);
    // Volume → secret bound, scored against the true ks (multiset).
    let mut remaining = true_bounds.clone();
    let mut bound_hits = 0usize;
    for v in &score.recovered {
        if let Some(k) = invert_range_volume(*v) {
            if let Some(pos) = remaining.iter().position(|&t| t == k) {
                remaining.swap_remove(pos);
                bound_hits += 1;
            }
        }
    }
    VariantOutcome {
        scrapes: scraped.len(),
        denied: denied_count(&observations),
        isolated: score.recovered.len(),
        merged_queries: score.merged_queries,
        recovery_rate: score.recovery_rate,
        bound_rate: bound_hits as f64 / queries as f64,
    }
}

/// Remote percentile from exposition `_bucket` lines: the smallest
/// bucket upper bound whose cumulative count reaches quantile `q` —
/// the same rule as `HistogramSnapshot::quantile_upper_bound`, computed
/// from nothing but one scrape.
fn percentile_from_exposition(
    samples: &[mdb_obs::prom::Sample],
    name: &str,
    q: f64,
) -> Option<u64> {
    let count = samples
        .iter()
        .find(|s| s.series.ends_with("_count") && s.metric_name() == Some(name))?
        .value_u64()?;
    let target = (q.clamp(0.0, 1.0) * count as f64).ceil() as u64;
    let mut last = None;
    for s in samples
        .iter()
        .filter(|s| s.series.ends_with("_bucket") && s.metric_name() == Some(name))
    {
        let le = match s.label("le")? {
            "+Inf" => u64::MAX,
            v => v.parse().ok()?,
        };
        last = Some(le);
        if s.value_u64()? >= target {
            return Some(le);
        }
    }
    last
}

/// Runs the experiment.
pub fn run(opts: &Options) -> Vec<Table> {
    let rows = if opts.quick { 2_000 } else { 5_000 };
    let queries = if opts.quick { 10 } else { 20 };

    let mut channel = Table::new(
        "E17 - per-query volume recovery by a remote /metrics observer",
        &[
            "variant",
            "scrape interval",
            "scrapes",
            "denied",
            "isolated",
            "merged queries",
            "volume recovery",
            "range bound recovery",
        ],
    );

    let fast = run_variant(
        rows,
        queries,
        FAST_SCRAPE_MS,
        ISOLATED_SPACING_MS,
        Mitigation::None,
        opts.seed ^ 0x1701,
        opts,
    );
    channel.row(&[
        "open port (production default)".into(),
        format!("{FAST_SCRAPE_MS}ms"),
        fast.scrapes.to_string(),
        fast.denied.to_string(),
        fast.isolated.to_string(),
        fast.merged_queries.to_string(),
        pct(fast.recovery_rate),
        pct(fast.bound_rate),
    ]);

    let slow = run_variant(
        rows,
        queries,
        SLOW_SCRAPE_MS,
        MERGED_SPACING_MS,
        Mitigation::None,
        opts.seed ^ 0x1702,
        opts,
    );
    channel.row(&[
        "open port, slow scraper (windows merge)".into(),
        format!("{SLOW_SCRAPE_MS}ms"),
        slow.scrapes.to_string(),
        slow.denied.to_string(),
        slow.isolated.to_string(),
        slow.merged_queries.to_string(),
        pct(slow.recovery_rate),
        pct(slow.bound_rate),
    ]);

    let scrubbed = run_variant(
        rows,
        queries,
        FAST_SCRAPE_MS,
        ISOLATED_SPACING_MS,
        Mitigation::Scrub,
        opts.seed ^ 0x1703,
        opts,
    );
    channel.row(&[
        "obs_scrub = true (quantized exposition)".into(),
        format!("{FAST_SCRAPE_MS}ms"),
        scrubbed.scrapes.to_string(),
        scrubbed.denied.to_string(),
        scrubbed.isolated.to_string(),
        scrubbed.merged_queries.to_string(),
        pct(scrubbed.recovery_rate),
        pct(scrubbed.bound_rate),
    ]);

    let authed = run_variant(
        rows,
        queries,
        FAST_SCRAPE_MS,
        ISOLATED_SPACING_MS,
        Mitigation::Auth,
        opts.seed ^ 0x1704,
        opts,
    );
    channel.row(&[
        "bearer-token auth (observer unauthenticated)".into(),
        format!("{FAST_SCRAPE_MS}ms"),
        authed.scrapes.to_string(),
        authed.denied.to_string(),
        authed.isolated.to_string(),
        authed.merged_queries.to_string(),
        pct(authed.recovery_rate),
        pct(authed.bound_rate),
    ]);

    // ---- part two: lag percentiles, engine-side vs remote scrape ----
    let mut lag = Table::new(
        "E17 - replication lag percentiles: engine histogram vs remote scrape",
        &[
            "metric",
            "count",
            "p50",
            "p95",
            "p99",
            "remote p50/p95/p99",
            "match",
        ],
    );
    let mut set = mdb_repl::router::ReplicaSet::start(mdb_repl::router::ReplicaSetConfig {
        replicas: 2,
        base: minidb::engine::DbConfig {
            obs_listen: Some("127.0.0.1:0".into()),
            ..minidb::engine::DbConfig::default()
        },
        ..mdb_repl::router::ReplicaSetConfig::default()
    })
    .expect("replica set");
    set.write("CREATE TABLE evts (id INT PRIMARY KEY)").unwrap();
    let syncs = if opts.quick { 8 } else { 16 };
    for i in 0..syncs {
        set.write(&format!("INSERT INTO evts VALUES ({i})"))
            .unwrap();
        assert!(set.wait_for_sync(Duration::from_secs(5)));
    }
    let engine = set
        .primary()
        .telemetry()
        .snapshot()
        .histogram("repl.wait_for_sync_us")
        .expect("wait_for_sync histogram")
        .clone();
    let addr = set.primary().obs_addr().expect("primary obs port");
    let (status, body) = mdb_obs::http::get(addr, "/metrics", None).unwrap();
    assert_eq!(status, 200);
    let samples = mdb_obs::prom::parse(&body).expect("primary exposition parses");
    let remote: Vec<u64> = [0.50, 0.95, 0.99]
        .iter()
        .map(|q| percentile_from_exposition(&samples, "repl.wait_for_sync_us", *q).unwrap_or(0))
        .collect();
    let engine_p = [engine.p50(), engine.p95(), engine.p99()];
    lag.row(&[
        "repl.wait_for_sync_us".into(),
        engine.count.to_string(),
        format!("{}us", engine_p[0]),
        format!("{}us", engine_p[1]),
        format!("{}us", engine_p[2]),
        format!("{}/{}/{}us", remote[0], remote[1], remote[2]),
        if remote == engine_p {
            "EXACT"
        } else {
            "DIVERGED"
        }
        .into(),
    ]);
    let apply = set
        .replica(0)
        .telemetry()
        .snapshot()
        .histogram("repl.apply_latency_us")
        .expect("apply latency histogram")
        .clone();
    lag.row(&[
        "repl.apply_latency_us (replica 0, engine-side)".into(),
        apply.count.to_string(),
        format!("{}us", apply.p50()),
        format!("{}us", apply.p95()),
        format!("{}us", apply.p99()),
        "-".into(),
        "-".into(),
    ]);
    opts.absorb_db(set.primary());
    set.shutdown();

    vec![channel, lag]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scrape_channel_recovers_volumes_and_mitigations_narrow_it() {
        let tables = run(&Options {
            quick: true,
            ..Default::default()
        });
        let rate = |row: &Vec<String>, col: usize| -> f64 {
            row[col].trim_end_matches('%').parse::<f64>().unwrap() / 100.0
        };

        let open = &tables[0].rows[0];
        // The acceptance criterion: >= 80% per-query volume recovery
        // from scrapes alone at a 100 ms interval.
        assert!(rate(open, 6) >= 0.8, "open-port recovery too low: {open:?}");
        assert!(
            rate(open, 7) >= 0.8,
            "bound inversion should track volumes: {open:?}"
        );

        let slow = &tables[0].rows[1];
        assert!(
            slow[5].parse::<u64>().unwrap() > 0,
            "slow scraper must merge windows: {slow:?}"
        );
        assert!(rate(slow, 6) < rate(open, 6), "{slow:?}");

        let scrubbed = &tables[0].rows[2];
        assert!(
            rate(scrubbed, 6) <= 0.5 && rate(scrubbed, 6) < rate(open, 6),
            "scrub must measurably narrow the channel: {scrubbed:?}"
        );

        let authed = &tables[0].rows[3];
        assert_eq!(
            rate(authed, 6),
            0.0,
            "auth must close the channel: {authed:?}"
        );
        assert!(
            authed[3].parse::<u64>().unwrap() > 0,
            "denials recorded: {authed:?}"
        );
        assert_eq!(authed[2], "0", "no successful scrapes: {authed:?}");

        // Part two: a remote scrape reproduces engine-side percentiles.
        let lag = &tables[1].rows[0];
        assert_eq!(lag[6], "EXACT", "{lag:?}");
    }
}
