//! Group-commit / encrypted-WAL write-path benchmark (the
//! `--wal-bench-json` output, and the committed `BENCH_e20.json`
//! baseline).
//!
//! Three engine configurations run the same multi-connection INSERT
//! workload through a real [`MdbServer`] (one worker thread per TCP
//! connection — exactly the concurrency group commit coalesces):
//!
//! - **`plain_nogc`** — the seed write path: plaintext WAL, one
//!   simulated fsync per committed statement, slept *inside* the engine
//!   lock.
//! - **`enc_nogc`** — BigFoot-style sealed log records
//!   (`DbConfig::encrypted_wal`) with the same per-statement fsync: the
//!   crypto tax, undiluted.
//! - **`enc_gc`** — sealed records *plus* the group-commit pipeline:
//!   commits stage under the lock and wait outside it; one fsync covers
//!   the whole batch.
//!
//! Every fsync costs [`FSYNC_LATENCY_US`] of simulated device time, so
//! the throughput ratios are sleep-overlap-dominated — stable across
//! runner speeds, like the e18 pool bench. The headline acceptance
//! metric is `buyback_at_8`: encrypted group commit must meet or beat
//! the *plaintext* seed path at 8 connections, i.e. batching must buy
//! back more than the crypto costs.

use std::time::Instant;

use mdb_server::{MdbClient, MdbServer, ServerOptions};
use minidb::engine::{Db, DbConfig};

/// Simulated per-fsync device latency, microseconds. Deliberately large
/// (a slow-ish SSD flush) so the device wait dominates both the crypto
/// and the engine's CPU cost on any build profile — the ratios then
/// measure fsync *overlap*, which is what group commit changes.
pub const FSYNC_LATENCY_US: u64 = 2_000;

/// Log key shared by the encrypted variants.
const KEY: [u8; 32] = [0x20; 32];

/// One engine configuration under test.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Variant {
    /// Plaintext WAL, per-statement fsync (the seed write path).
    PlainNoGc,
    /// Sealed log records, per-statement fsync (crypto tax only).
    EncNoGc,
    /// Sealed log records + group-commit pipeline.
    EncGc,
}

impl Variant {
    /// Stable name used in run rows and JSON keys.
    pub fn name(&self) -> &'static str {
        match self {
            Variant::PlainNoGc => "plain_nogc",
            Variant::EncNoGc => "enc_nogc",
            Variant::EncGc => "enc_gc",
        }
    }

    fn config(&self) -> DbConfig {
        DbConfig {
            fsync_latency_us: FSYNC_LATENCY_US,
            encrypted_wal: !matches!(self, Variant::PlainNoGc),
            wal_key: (!matches!(self, Variant::PlainNoGc)).then_some(KEY),
            group_commit: matches!(self, Variant::EncGc),
            ..DbConfig::default()
        }
    }
}

/// All variants, in report order.
pub const VARIANTS: [Variant; 3] = [Variant::PlainNoGc, Variant::EncNoGc, Variant::EncGc];

/// One `(variant, connections)` measurement.
#[derive(Clone, Debug)]
pub struct VariantRun {
    /// Variant name (`plain_nogc` / `enc_nogc` / `enc_gc`).
    pub variant: &'static str,
    /// Concurrent client connections.
    pub connections: usize,
    /// Total INSERT statements committed.
    pub statements: u64,
    /// Aggregate commit throughput.
    pub stmts_per_sec: f64,
    /// `wal.fsyncs` after the run (one per *batch* under group commit).
    pub fsyncs: u64,
    /// Group-commit batches flushed (batch-size histogram count).
    pub gc_batches: u64,
    /// Commits that waited behind an in-progress flush.
    pub gc_waits: u64,
}

/// The full benchmark: every variant at every connection count.
#[derive(Clone, Debug)]
pub struct WalBench {
    /// INSERTs per connection.
    pub inserts_per_conn: usize,
    /// Simulated fsync latency, microseconds.
    pub fsync_latency_us: u64,
    /// Connection counts measured.
    pub conn_counts: Vec<usize>,
    /// All measurements, variant-major.
    pub runs: Vec<VariantRun>,
}

impl WalBench {
    /// Throughput of `variant` at `conns` connections.
    pub fn rate(&self, variant: Variant, conns: usize) -> f64 {
        self.runs
            .iter()
            .find(|r| r.variant == variant.name() && r.connections == conns)
            .map(|r| r.stmts_per_sec)
            .unwrap_or(0.0)
    }

    /// The acceptance ratio: encrypted group commit over the plaintext
    /// seed path at `conns` connections (>= 1.0 means the batching
    /// bought back more than the crypto tax).
    pub fn buyback_at(&self, conns: usize) -> f64 {
        self.rate(Variant::EncGc, conns)
            / self.rate(Variant::PlainNoGc, conns).max(f64::MIN_POSITIVE)
    }

    /// The undiluted crypto tax: plaintext over encrypted throughput,
    /// both on the per-statement-fsync path (>= 1.0; close to 1 because
    /// the simulated device wait dominates the seal).
    pub fn crypto_tax_at(&self, conns: usize) -> f64 {
        self.rate(Variant::PlainNoGc, conns)
            / self.rate(Variant::EncNoGc, conns).max(f64::MIN_POSITIVE)
    }

    /// Fsyncs per committed statement for the group-commit variant at
    /// `conns` connections (the satellite accounting claim: << 1).
    pub fn fsyncs_per_stmt_at(&self, conns: usize) -> f64 {
        self.runs
            .iter()
            .find(|r| r.variant == Variant::EncGc.name() && r.connections == conns)
            .map(|r| r.fsyncs as f64 / r.statements.max(1) as f64)
            .unwrap_or(1.0)
    }

    /// Serialises as the `--wal-bench-json` document.
    pub fn to_json(&self) -> String {
        let mut w = mdb_telemetry::json::Writer::new();
        w.obj_open();
        w.key("inserts_per_conn");
        w.u64(self.inserts_per_conn as u64);
        w.key("fsync_latency_us");
        w.u64(self.fsync_latency_us);
        w.key("runs");
        w.arr_open();
        for r in &self.runs {
            w.obj_open();
            w.key("variant");
            w.string(r.variant);
            w.key("connections");
            w.u64(r.connections as u64);
            w.key("statements");
            w.u64(r.statements);
            w.key("stmts_per_sec");
            w.f64(r.stmts_per_sec);
            w.key("fsyncs");
            w.u64(r.fsyncs);
            w.key("gc_batches");
            w.u64(r.gc_batches);
            w.key("gc_waits");
            w.u64(r.gc_waits);
            w.obj_close();
        }
        w.arr_close();
        // Scale-free ratios for the perf-trajectory gate: sleep-overlap
        // dominated, so they survive runner-speed variance.
        let max_conns = self.conn_counts.iter().copied().max().unwrap_or(1);
        w.key("buyback_at_8");
        w.f64(self.buyback_at(max_conns));
        w.key("crypto_tax_at_1");
        w.f64(self.crypto_tax_at(1));
        w.key("fsyncs_per_stmt_at_8");
        w.f64(self.fsyncs_per_stmt_at(max_conns));
        w.obj_close();
        w.into_string()
    }
}

/// Runs one `(variant, connections)` cell: a fresh engine behind a real
/// TCP server, `conns` client threads each committing
/// `inserts_per_conn` single-row INSERTs.
fn drive(variant: Variant, conns: usize, inserts_per_conn: usize) -> VariantRun {
    let db = Db::open(variant.config());
    let srv = MdbServer::start(db.clone(), ServerOptions::default()).expect("server starts");
    let addr = srv.local_addr();
    {
        let mut setup = MdbClient::connect(addr, "bench").expect("setup connects");
        setup
            .query("CREATE TABLE w (id INT PRIMARY KEY, v TEXT)")
            .expect("create table");
        let _ = setup.close();
    }

    let started = Instant::now();
    std::thread::scope(|s| {
        for t in 0..conns {
            s.spawn(move || {
                let mut c = MdbClient::connect(addr, "bench").expect("client connects");
                let base = t * inserts_per_conn;
                for i in 0..inserts_per_conn {
                    let id = base + i;
                    c.query(&format!("INSERT INTO w VALUES ({id}, 'row-{id}')"))
                        .expect("insert commits");
                }
                let _ = c.close();
            });
        }
    });
    let elapsed = started.elapsed().as_secs_f64();

    let snap = db.metrics_snapshot();
    let statements = (conns * inserts_per_conn) as u64;
    VariantRun {
        variant: variant.name(),
        connections: conns,
        statements,
        stmts_per_sec: statements as f64 / elapsed.max(f64::MIN_POSITIVE),
        fsyncs: snap.counter("wal.fsyncs").unwrap_or(0),
        gc_batches: snap
            .histogram("wal.group_commit_batch_size")
            .map(|h| h.count)
            .unwrap_or(0),
        gc_waits: snap.counter("wal.group_commit_waits").unwrap_or(0),
    }
}

/// Runs the full matrix: every variant at every connection count.
pub fn run(conn_counts: &[usize], inserts_per_conn: usize) -> WalBench {
    let mut runs = Vec::with_capacity(VARIANTS.len() * conn_counts.len());
    for variant in VARIANTS {
        for &conns in conn_counts {
            runs.push(drive(variant, conns, inserts_per_conn));
        }
    }
    WalBench {
        inserts_per_conn,
        fsync_latency_us: FSYNC_LATENCY_US,
        conn_counts: conn_counts.to_vec(),
        runs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encrypted_group_commit_buys_back_the_crypto_tax() {
        let b = run(&[1, 8], 30);

        // The satellite accounting claim: a coalesced batch is ONE
        // fsync, so the group-commit variant at 8 connections performs
        // far fewer fsyncs than it commits statements.
        let gc8 = b
            .runs
            .iter()
            .find(|r| r.variant == "enc_gc" && r.connections == 8)
            .unwrap();
        assert!(
            gc8.fsyncs < gc8.statements / 2,
            "fsyncs must be coalesced: {} fsyncs for {} statements",
            gc8.fsyncs,
            gc8.statements
        );
        assert_eq!(gc8.gc_batches, gc8.fsyncs, "one histogram sample per batch");
        assert!(gc8.gc_waits > 0, "pipelined batches imply followers waited");

        // The no-batching variants fsync once per statement (+1 DDL).
        let plain8 = b
            .runs
            .iter()
            .find(|r| r.variant == "plain_nogc" && r.connections == 8)
            .unwrap();
        assert!(plain8.fsyncs > plain8.statements, "per-statement fsyncs");

        // The acceptance target: encrypted group commit >= the plaintext
        // seed path at 8 connections.
        assert!(
            b.buyback_at(8) >= 1.0,
            "group commit must buy back the crypto tax: {:?}",
            b.runs
        );
        // And the JSON document carries the gate keys.
        let json = b.to_json();
        for key in ["buyback_at_8", "crypto_tax_at_1", "fsyncs_per_stmt_at_8"] {
            assert!(json.contains(&format!("\"{key}\"")), "{json}");
        }
    }
}
