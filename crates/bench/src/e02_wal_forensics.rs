//! E2 — §3 "Inferring writes": reconstruct insert/update/delete queries
//! from the circular undo/redo logs, and reproduce the paper's retention
//! arithmetic ("with 1 write modifying a 20-byte field per second, the
//! undo and redo logs of default size (50 Mb) store 16 days' worth of
//! inserts").

use corpus::workload::{write_stream, Write, WriteStreamParams};
use minidb::engine::{Db, DbConfig};
use minidb::wal::{OpKind, DEFAULT_LOG_CAPACITY, REDO_FILE, UNDO_FILE};
use snapshot_attack::forensics::wal::{
    history_stats, reconstruct_before_images, reconstruct_writes,
};
use snapshot_attack::report::Table;

use crate::{f2, Options};

/// Runs the experiment.
pub fn run(opts: &Options) -> Vec<Table> {
    let writes = if opts.quick { 500 } else { 5_000 };
    // Small logs so the run wraps; the retention *arithmetic* is then
    // extrapolated to the 50 MB default, as the paper does.
    let config = DbConfig {
        redo_capacity: 1 << 20,
        undo_capacity: 1 << 20,
        seconds_per_statement: 1, // 1 write per second.
        ..DbConfig::default()
    };
    let db = Db::open(config);
    let conn = db.connect("oltp");
    conn.execute("CREATE TABLE ledger (id INT PRIMARY KEY, payload TEXT)")
        .unwrap();

    let stream = write_stream(&WriteStreamParams {
        count: writes,
        payload_len: 20, // The paper's 20-byte field.
        update_fraction: 0.2,
        delete_fraction: 0.05,
        seed: opts.seed,
    });
    let mut issued = (0usize, 0usize, 0usize);
    for w in &stream {
        match w {
            Write::Insert { id, payload } => {
                issued.0 += 1;
                conn.execute(&format!("INSERT INTO ledger VALUES ({id}, '{payload}')"))
                    .unwrap();
            }
            Write::Update { id, payload } => {
                issued.1 += 1;
                conn.execute(&format!(
                    "UPDATE ledger SET payload = '{payload}' WHERE id = {id}"
                ))
                .unwrap();
            }
            Write::Delete { id } => {
                issued.2 += 1;
                conn.execute(&format!("DELETE FROM ledger WHERE id = {id}"))
                    .unwrap();
            }
        }
    }

    // ---- attacker: disk only ----
    let disk = db.disk_image();
    let redo_raw = disk.file(REDO_FILE).unwrap();
    let undo_raw = disk.file(UNDO_FILE).unwrap();
    let recovered = reconstruct_writes(redo_raw);
    let befores = reconstruct_before_images(undo_raw);

    let count_op = |op: OpKind| recovered.iter().filter(|w| w.op == op).count();
    let mut t1 = Table::new(
        "E2a - write reconstruction from the redo log (1 MiB circular)",
        &["metric", "issued", "recovered from snapshot"],
    );
    t1.row(&[
        "INSERT".into(),
        issued.0.to_string(),
        count_op(OpKind::Insert).to_string(),
    ]);
    t1.row(&[
        "UPDATE".into(),
        issued.1.to_string(),
        // Moved updates log Delete+Insert; in-place ones log Update.
        count_op(OpKind::Update).to_string(),
    ]);
    t1.row(&[
        "DELETE".into(),
        issued.2.to_string(),
        count_op(OpKind::Delete).to_string(),
    ]);
    t1.row(&[
        "full row images decoded".into(),
        "-".into(),
        recovered
            .iter()
            .filter(|w| w.row.is_some())
            .count()
            .to_string(),
    ]);
    t1.row(&[
        "before-images (undo)".into(),
        "-".into(),
        befores.len().to_string(),
    ]);

    // Retention arithmetic extrapolated to the 50 MB default.
    let redo_stats = history_stats(redo_raw, DEFAULT_LOG_CAPACITY);
    let undo_stats = history_stats(undo_raw, DEFAULT_LOG_CAPACITY);
    let mut t2 = Table::new(
        "E2b - days of history in 50 MB at 1 write/sec (paper: ~16 days)",
        &[
            "log",
            "mean record bytes",
            "records at 50 MB",
            "days of history",
        ],
    );
    t2.row(&[
        "redo".into(),
        f2(redo_stats.mean_record_bytes),
        format!("{:.0}", redo_stats.records_at_capacity),
        f2(redo_stats.days_of_history(1.0)),
    ]);
    t2.row(&[
        "undo".into(),
        f2(undo_stats.mean_record_bytes),
        format!("{:.0}", undo_stats.records_at_capacity),
        f2(undo_stats.days_of_history(1.0)),
    ]);
    // The paper's arithmetic is for a pure-insert workload ("16 days'
    // worth of inserts"); insert undo records carry no before-image.
    let insert_undo_bytes = {
        use minidb::wal::{carve_frames, UndoRecord};
        let recs: Vec<usize> = carve_frames(undo_raw)
            .into_iter()
            .filter_map(|(_, p)| UndoRecord::decode(p).ok().map(|r| (r, p.len() + 8)))
            .filter(|(r, _)| r.op == OpKind::Insert)
            .map(|(_, sz)| sz)
            .collect();
        recs.iter().sum::<usize>() as f64 / recs.len().max(1) as f64
    };
    let insert_days = DEFAULT_LOG_CAPACITY as f64 / insert_undo_bytes / 86_400.0;
    t2.row(&[
        "undo, inserts only (paper's workload)".into(),
        f2(insert_undo_bytes),
        format!("{:.0}", DEFAULT_LOG_CAPACITY as f64 / insert_undo_bytes),
        f2(insert_days),
    ]);
    t2.row(&[
        "paper (either log)".into(),
        "-".into(),
        "-".into(),
        "16".into(),
    ]);
    opts.absorb_db(&db);
    vec![t1, t2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reconstruction_and_retention_shapes() {
        let tables = run(&Options {
            quick: true,
            ..Default::default()
        });
        let t1 = &tables[0];
        // Recovered counts are positive and bounded by issued counts.
        for row in &t1.rows[..3] {
            let issued: usize = row[1].parse().unwrap();
            let rec: usize = row[2].parse().unwrap();
            assert!(rec <= issued + 1, "{row:?}");
        }
        let t2 = &tables[1];
        // Undo retention lands in the paper's order of magnitude.
        let undo_days: f64 = t2.rows[1][3].parse().unwrap();
        assert!(undo_days > 4.0 && undo_days < 40.0, "undo days {undo_days}");
    }
}
