//! Chaos-sweep benchmark (the `--chaos-bench-json` output, and the
//! committed `BENCH_e21.json` baseline).
//!
//! Part one replays the deterministic fault schedule for a battery of
//! seeds: odd seeds stage a divergence window and kill the primary
//! (exercising election, fencing, and rehoming), even seeds stay on
//! leaderless faults (partitions, crash-restarts, clock skew). Every
//! run's recorded history is audited by the consistency checker; the
//! headline gate is `violations_total == 0` with a successful promotion
//! on every kill seed.
//!
//! Part two is the E21 leak probe: the same kill schedule over a
//! plaintext fleet and an `encrypted_wal` fleet. Each deposed primary's
//! disk is imaged cold and its fenced `binlog.divergent` sidecar carved
//! keylessly. The plaintext corpse yields every quarantined secret
//! (`carve_coverage == 1.0`); the sealed corpse yields none while the
//! frames stay countable — and the key holder still recovers the full
//! quarantined tail (recovery must keep working, that is the point of
//! fencing instead of truncating).

use std::collections::HashSet;

use mdb_chaos::harness::{divergent_sidecar, parse_marker};
use mdb_chaos::{run_chaos, ChaosConfig, ChaosReport};
use minidb::engine::DbConfig;
use snapshot_attack::forensics::divergent;

/// Log key shared by every node of the sealed fleet.
const KEY: [u8; 32] = [0x21; 32];

/// The CI seed battery: four kill seeds (odd), four fault-only seeds
/// (even).
pub const SEEDS: [u64; 8] = [1, 2, 3, 4, 5, 6, 7, 8];

/// Engine config for the sealed fleet variant.
pub fn sealed_config() -> DbConfig {
    DbConfig {
        encrypted_wal: true,
        wal_key: Some(KEY),
        ..DbConfig::default()
    }
}

fn config(seed: u64, quick: bool, base: DbConfig) -> ChaosConfig {
    let cfg = if quick {
        ChaosConfig::quick(seed)
    } else {
        ChaosConfig::full(seed)
    };
    ChaosConfig { base, ..cfg }
}

/// One seed's verdict, flattened for the JSON report.
#[derive(Clone, Debug)]
pub struct SeedRun {
    /// The run's seed.
    pub seed: u64,
    /// Whether the schedule staged a primary kill (odd seeds).
    pub kill_seed: bool,
    /// Workload steps executed.
    pub steps: usize,
    /// Operations recorded into the history.
    pub ops_recorded: usize,
    /// Acknowledged writes.
    pub acked_writes: u64,
    /// Reads that returned a value.
    pub reads_ok: u64,
    /// Partitions + isolations opened by the plan.
    pub partitions: u64,
    /// Replica crash-restarts.
    pub crash_restarts: u64,
    /// Clock-skew injections.
    pub clock_skews: u64,
    /// Primary kills (0 or 1).
    pub kills: u64,
    /// Promotions performed.
    pub promotions: u64,
    /// Binlog events fenced off the deposed primary.
    pub fenced_events: u64,
    /// Distinct `(key, version)` secrets quarantined by fencing.
    pub quarantined: usize,
    /// Whether the fleet fully converged after the final heal.
    pub converged: bool,
    /// Checker violations (the gate: 0).
    pub violations: usize,
    /// The run's verdict.
    pub passed: bool,
}

impl SeedRun {
    fn from_report(r: &ChaosReport) -> SeedRun {
        SeedRun {
            seed: r.seed,
            kill_seed: r.seed % 2 == 1,
            steps: r.steps,
            ops_recorded: r.ops_recorded,
            acked_writes: r.acked_writes,
            reads_ok: r.reads_ok,
            partitions: r.faults.partitions + r.faults.isolations,
            crash_restarts: r.faults.crash_restarts,
            clock_skews: r.faults.clock_skews,
            kills: r.faults.kills,
            promotions: r.promotions,
            fenced_events: r.fenced_events,
            quarantined: r.quarantined.len(),
            converged: r.synced && r.converged,
            violations: r.violations.len(),
            passed: r.passed(),
        }
    }
}

/// Runs one seed over `base` and returns its flattened verdict.
pub fn seed_run(seed: u64, quick: bool, base: DbConfig) -> SeedRun {
    let run = run_chaos(&config(seed, quick, base)).expect("chaos run completes");
    SeedRun::from_report(&run.report)
}

/// One fleet variant's divergent-tail forensics after a kill-seed run.
#[derive(Clone, Debug)]
pub struct LeakProbe {
    /// `"plaintext"` or `"encrypted_wal"`.
    pub variant: &'static str,
    /// The run behind the corpse.
    pub run: SeedRun,
    /// Raw size of the `binlog.divergent` sidecar in the cold image.
    pub sidecar_bytes: usize,
    /// Frames in the sidecar (count metadata is never hidden).
    pub frames_total: usize,
    /// Sealed frames among them.
    pub frames_sealed: usize,
    /// Statements the keyless carve recovered.
    pub carved_statements: usize,
    /// Fraction of the quarantined secrets the keyless carve exposed.
    pub carve_coverage: f64,
    /// Statements the key holder decoded from the same sidecar.
    pub keyholder_statements: usize,
    /// Fraction of the quarantined secrets the key holder recovered.
    pub keyholder_coverage: f64,
}

fn marker_coverage(statements: &[String], quarantined: &[(u64, u64)]) -> f64 {
    if quarantined.is_empty() {
        return 0.0;
    }
    let carved: HashSet<(u64, u64)> = statements.iter().filter_map(|s| parse_marker(s)).collect();
    let covered = quarantined.iter().filter(|kv| carved.contains(kv)).count();
    covered as f64 / quarantined.len() as f64
}

/// Runs the kill schedule for `seed` over one fleet variant, images the
/// deposed primary, and carves its quarantine sidecar both keylessly
/// and with the fleet's log key.
pub fn leak_probe(seed: u64, quick: bool, encrypted: bool) -> LeakProbe {
    assert_eq!(seed % 2, 1, "leak probes need a kill seed (odd)");
    let base = if encrypted {
        sealed_config()
    } else {
        DbConfig::default()
    };
    let run = run_chaos(&config(seed, quick, base)).expect("chaos run completes");
    let report = &run.report;
    let deposed = run
        .set
        .deposed()
        .first()
        .expect("a kill seed deposes a primary");
    assert!(
        divergent_sidecar(deposed).is_some(),
        "the deposed primary must carry a quarantine sidecar"
    );

    let disk = deposed.disk_image();
    let sidecar_bytes = divergent::divergent_file(&disk).map_or(0, <[u8]>::len);
    let (frames_total, frames_sealed) = divergent::frame_census(&disk);
    let carved: Vec<String> = divergent::carve_divergent(&disk)
        .into_iter()
        .map(|e| e.statement)
        .collect();
    // The promoted primary shares the fleet's log key: the legitimate
    // post-mortem path for re-injecting quarantined writes.
    let recovered: Vec<String> = divergent::recover_with_key(&disk, run.set.primary())
        .into_iter()
        .map(|e| e.statement)
        .collect();

    LeakProbe {
        variant: if encrypted {
            "encrypted_wal"
        } else {
            "plaintext"
        },
        run: SeedRun::from_report(report),
        sidecar_bytes,
        frames_total,
        frames_sealed,
        carved_statements: carved.len(),
        carve_coverage: marker_coverage(&carved, &report.quarantined),
        keyholder_statements: recovered.len(),
        keyholder_coverage: marker_coverage(&recovered, &report.quarantined),
    }
}

/// The full benchmark: the seed sweep plus both leak probes.
#[derive(Clone, Debug)]
pub struct ChaosBench {
    /// Whether the runs used the CI-sized (quick) schedule.
    pub quick: bool,
    /// The sweep, in seed order (plaintext fleet).
    pub runs: Vec<SeedRun>,
    /// The divergent-tail probes: `[plaintext, encrypted_wal]`.
    pub probes: Vec<LeakProbe>,
}

impl ChaosBench {
    /// Checker violations summed over the sweep and both probes.
    pub fn violations_total(&self) -> u64 {
        let sweep: usize = self.runs.iter().map(|r| r.violations).sum();
        let probed: usize = self.probes.iter().map(|p| p.run.violations).sum();
        (sweep + probed) as u64
    }

    /// Kill seeds in the sweep.
    pub fn kill_seeds(&self) -> u64 {
        self.runs.iter().filter(|r| r.kill_seed).count() as u64
    }

    /// Kill seeds that promoted exactly one replacement primary.
    pub fn kill_seeds_promoted(&self) -> u64 {
        self.runs
            .iter()
            .filter(|r| r.kill_seed && r.promotions == 1)
            .count() as u64
    }

    /// Every run and probe converged with zero violations.
    pub fn all_passed(&self) -> bool {
        self.runs.iter().all(|r| r.passed) && self.probes.iter().all(|p| p.run.passed)
    }

    /// The probe for `variant` (`"plaintext"` / `"encrypted_wal"`).
    pub fn probe(&self, variant: &str) -> Option<&LeakProbe> {
        self.probes.iter().find(|p| p.variant == variant)
    }

    /// Serialises as the `--chaos-bench-json` document.
    pub fn to_json(&self) -> String {
        let mut w = mdb_telemetry::json::Writer::new();
        w.obj_open();
        w.key("quick");
        w.bool(self.quick);
        w.key("runs");
        w.arr_open();
        for r in &self.runs {
            seed_run_json(&mut w, r);
        }
        w.arr_close();
        w.key("probes");
        w.arr_open();
        for p in &self.probes {
            w.obj_open();
            w.key("variant");
            w.string(p.variant);
            w.key("run");
            seed_run_json(&mut w, &p.run);
            w.key("sidecar_bytes");
            w.u64(p.sidecar_bytes as u64);
            w.key("frames_total");
            w.u64(p.frames_total as u64);
            w.key("frames_sealed");
            w.u64(p.frames_sealed as u64);
            w.key("carved_statements");
            w.u64(p.carved_statements as u64);
            w.key("carve_coverage");
            w.f64(p.carve_coverage);
            w.key("keyholder_statements");
            w.u64(p.keyholder_statements as u64);
            w.key("keyholder_coverage");
            w.f64(p.keyholder_coverage);
            w.obj_close();
        }
        w.arr_close();
        // Exact gate keys for CI and the perf-trajectory diff: all
        // deterministic verdicts (violation counts, promotion counts,
        // coverage ratios), never timing- or replication-lag-dependent
        // scalars like fenced-event counts.
        w.key("violations_total");
        w.u64(self.violations_total());
        w.key("kill_seeds");
        w.u64(self.kill_seeds());
        w.key("kill_seeds_promoted");
        w.u64(self.kill_seeds_promoted());
        w.key("all_passed");
        w.bool(self.all_passed());
        let plain = self.probe("plaintext");
        let sealed = self.probe("encrypted_wal");
        w.key("plaintext_carve_coverage");
        w.f64(plain.map_or(0.0, |p| p.carve_coverage));
        w.key("sealed_carved_statements");
        w.u64(sealed.map_or(0, |p| p.carved_statements) as u64);
        w.key("sealed_frames");
        w.u64(sealed.map_or(0, |p| p.frames_sealed) as u64);
        w.key("sealed_keyholder_coverage");
        w.f64(sealed.map_or(0.0, |p| p.keyholder_coverage));
        w.obj_close();
        w.into_string()
    }
}

/// Runs the sweep over `seeds` (plaintext fleet), then both leak probes
/// on the first kill seed in the battery.
pub fn run(seeds: &[u64], quick: bool) -> ChaosBench {
    let runs: Vec<SeedRun> = seeds
        .iter()
        .map(|&s| seed_run(s, quick, DbConfig::default()))
        .collect();
    let probe_seed = seeds.iter().copied().find(|s| s % 2 == 1).unwrap_or(5);
    let probes = vec![
        leak_probe(probe_seed, quick, false),
        leak_probe(probe_seed, quick, true),
    ];
    ChaosBench {
        quick,
        runs,
        probes,
    }
}

fn seed_run_json(w: &mut mdb_telemetry::json::Writer, r: &SeedRun) {
    w.obj_open();
    w.key("seed");
    w.u64(r.seed);
    w.key("kill_seed");
    w.bool(r.kill_seed);
    w.key("steps");
    w.u64(r.steps as u64);
    w.key("ops_recorded");
    w.u64(r.ops_recorded as u64);
    w.key("acked_writes");
    w.u64(r.acked_writes);
    w.key("reads_ok");
    w.u64(r.reads_ok);
    w.key("partitions");
    w.u64(r.partitions);
    w.key("crash_restarts");
    w.u64(r.crash_restarts);
    w.key("clock_skews");
    w.u64(r.clock_skews);
    w.key("kills");
    w.u64(r.kills);
    w.key("promotions");
    w.u64(r.promotions);
    w.key("fenced_events");
    w.u64(r.fenced_events);
    w.key("quarantined");
    w.u64(r.quarantined as u64);
    w.key("converged");
    w.bool(r.converged);
    w.key("violations");
    w.u64(r.violations as u64);
    w.key("passed");
    w.bool(r.passed);
    w.obj_close();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_passes_and_the_sealed_corpse_goes_dark() {
        let b = run(&[2, 3], true);
        assert_eq!(b.violations_total(), 0);
        assert_eq!(b.kill_seeds(), 1);
        assert_eq!(b.kill_seeds_promoted(), 1);
        assert!(b.all_passed(), "runs: {:?}", b.runs);

        let plain = b.probe("plaintext").unwrap();
        assert!(plain.run.quarantined > 0);
        assert!(plain.sidecar_bytes > 0 && plain.frames_total > 0);
        assert_eq!(plain.frames_sealed, 0);
        assert_eq!(
            plain.carve_coverage, 1.0,
            "the plaintext corpse leaks every quarantined secret: {plain:?}"
        );
        assert_eq!(plain.keyholder_coverage, 1.0);

        let sealed = b.probe("encrypted_wal").unwrap();
        assert!(sealed.run.quarantined > 0);
        assert_eq!(sealed.carved_statements, 0, "{sealed:?}");
        assert_eq!(sealed.carve_coverage, 0.0);
        assert!(sealed.frames_sealed > 0);
        assert_eq!(sealed.frames_sealed, sealed.frames_total);
        assert_eq!(
            sealed.keyholder_coverage, 1.0,
            "fencing quarantines, it must not destroy: {sealed:?}"
        );

        let json = b.to_json();
        for key in [
            "violations_total",
            "kill_seeds_promoted",
            "plaintext_carve_coverage",
            "sealed_carved_statements",
            "sealed_frames",
            "sealed_keyholder_coverage",
        ] {
            assert!(json.contains(&format!("\"{key}\"")), "{json}");
        }
    }
}
