//! Sharded-buffer-pool throughput micro-benchmark (the
//! `--server-bench-json` output, and the committed `BENCH_e18.json`
//! baseline).
//!
//! Eight client threads hammer one pool with a mixed scan/write page
//! workload (75% reads, 25% writes, LCG-scattered pages) while every
//! page *fault* costs a fixed simulated I/O latency, slept under the
//! faulting shard's latch — exactly where a real pool holds its
//! partition latch across the disk read. With one shard (the classic
//! single-latch `BufferPool` discipline) every fault serializes the
//! whole pool; with [`DEFAULT_SHARDS`] latch partitions, faults on
//! different shards overlap and the pool keeps serving hits while a
//! miss sleeps.
//!
//! The headline `speedup` is fault-overlap-dominated, not
//! CPU-dominated, so it is stable across runner speeds — CI's
//! perf-trajectory gate diffs it against the committed baseline the
//! same way it gates the e16 scan-pruning speedup. Absolute ops/sec
//! are machine-dependent and informational.

use std::sync::Arc;
use std::time::{Duration, Instant};

use minidb::storage::{PageBacking, ShardedBufferPool, DEFAULT_SHARDS, PAGE_SIZE};

/// Distinct pages in the working set (hashes across every shard).
const PAGES: u32 = 512;
/// Pool capacity in frames — half the working set, so the steady-state
/// fault rate stays high and the latch-hold profile dominates.
const CAPACITY: usize = 256;
/// Simulated per-fault I/O latency.
const FAULT_LATENCY: Duration = Duration::from_micros(100);
/// The tablespace name the workload faults against.
const FILE: &str = "bench.ibd";

/// A synthetic backing: page contents are a function of the page
/// number, so every thread can own one (no shared `&mut VDisk`) and a
/// fault needs no real I/O beyond the pool's simulated latency.
struct Synthetic;

impl PageBacking for Synthetic {
    fn read_page(&mut self, _file: &str, page_no: u32) -> Option<Vec<u8>> {
        let mut page = vec![0u8; PAGE_SIZE];
        page[..4].copy_from_slice(&page_no.to_le_bytes());
        Some(page)
    }

    fn write_page(&mut self, _file: &str, _page_no: u32, _data: &[u8]) {}

    fn file_len(&mut self, _file: &str) -> usize {
        PAGES as usize * PAGE_SIZE
    }
}

/// One pool-configuration measurement.
#[derive(Clone, Debug)]
pub struct PoolRun {
    /// Latch partitions.
    pub shards: usize,
    /// Total page operations completed across all threads.
    pub ops: u64,
    /// Aggregate throughput.
    pub ops_per_sec: f64,
}

/// The full benchmark: single-latch baseline vs the sharded pool.
#[derive(Clone, Debug)]
pub struct ServerBench {
    /// Concurrent client threads.
    pub threads: usize,
    /// Page operations per thread.
    pub ops_per_thread: usize,
    /// Working-set pages.
    pub pages: u32,
    /// Pool capacity in frames.
    pub capacity: usize,
    /// Simulated per-fault latency, microseconds.
    pub fault_latency_us: u64,
    /// One shard: every fault serializes the pool.
    pub single: PoolRun,
    /// [`DEFAULT_SHARDS`] partitions: faults overlap.
    pub sharded: PoolRun,
}

impl ServerBench {
    /// Sharded-over-single throughput ratio (the acceptance metric:
    /// >= 2x at 8 threads).
    pub fn speedup(&self) -> f64 {
        self.sharded.ops_per_sec / self.single.ops_per_sec.max(f64::MIN_POSITIVE)
    }

    /// Serialises as the `--server-bench-json` document.
    pub fn to_json(&self) -> String {
        let mut w = mdb_telemetry::json::Writer::new();
        w.obj_open();
        w.key("threads");
        w.u64(self.threads as u64);
        w.key("ops_per_thread");
        w.u64(self.ops_per_thread as u64);
        w.key("pages");
        w.u64(self.pages as u64);
        w.key("capacity");
        w.u64(self.capacity as u64);
        w.key("fault_latency_us");
        w.u64(self.fault_latency_us);
        w.key("single_shards");
        w.u64(self.single.shards as u64);
        w.key("single_ops_per_sec");
        w.f64(self.single.ops_per_sec);
        w.key("sharded_shards");
        w.u64(self.sharded.shards as u64);
        w.key("sharded_ops_per_sec");
        w.f64(self.sharded.ops_per_sec);
        w.key("speedup");
        w.f64(self.speedup());
        w.obj_close();
        w.into_string()
    }
}

/// Drives `threads` workers over one pool configuration and measures
/// aggregate throughput. Each worker walks its own LCG stream: page
/// selection scatters across shards, and every fourth operation is a
/// page write (dirtying the frame so eviction takes the write-back
/// path too).
fn drive(shards: usize, threads: usize, ops_per_thread: usize) -> PoolRun {
    let mut pool = ShardedBufferPool::new(CAPACITY, shards);
    pool.set_fault_latency(FAULT_LATENCY);
    let pool = Arc::new(pool);
    let started = Instant::now();
    let handles: Vec<_> = (0..threads as u64)
        .map(|t| {
            let pool = Arc::clone(&pool);
            std::thread::spawn(move || {
                let mut backing = Synthetic;
                let mut x = 0x9E37_79B9_7F4A_7C15u64 ^ (t << 32);
                for _ in 0..ops_per_thread {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let page = ((x >> 33) % PAGES as u64) as u32;
                    if (x >> 13).is_multiple_of(4) {
                        pool.with_page_mut(&mut backing, FILE, page, |b| {
                            b[8] = b[8].wrapping_add(1);
                        })
                        .unwrap();
                    } else {
                        let got = pool
                            .with_page(&mut backing, FILE, page, |b| {
                                u32::from_le_bytes(b[..4].try_into().unwrap())
                            })
                            .unwrap();
                        assert_eq!(got, page, "torn frame under concurrency");
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let elapsed = started.elapsed().as_secs_f64();
    let ops = (threads * ops_per_thread) as u64;
    PoolRun {
        shards,
        ops,
        ops_per_sec: ops as f64 / elapsed.max(f64::MIN_POSITIVE),
    }
}

/// Runs the benchmark: the same workload against one shard, then
/// [`DEFAULT_SHARDS`].
pub fn run(threads: usize, ops_per_thread: usize) -> ServerBench {
    ServerBench {
        threads,
        ops_per_thread,
        pages: PAGES,
        capacity: CAPACITY,
        fault_latency_us: FAULT_LATENCY.as_micros() as u64,
        single: drive(1, threads, ops_per_thread),
        sharded: drive(DEFAULT_SHARDS, threads, ops_per_thread),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharded_pool_beats_single_latch_at_eight_threads() {
        let b = run(8, 300);
        assert_eq!(b.single.ops, b.sharded.ops);
        assert!(
            b.speedup() >= 2.0,
            "latch partitioning must overlap faults: {b:?}"
        );
        let json = b.to_json();
        assert!(json.contains("\"speedup\""), "{json}");
        assert!(json.contains("\"single_ops_per_sec\""), "{json}");
    }
}
