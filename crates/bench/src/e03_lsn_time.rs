//! E3 — §3: the binlog yields statement text + timestamps; LSN–time
//! correlation dates undo/redo records that predate the binlog horizon
//! (here: an administrative `PURGE BINARY LOGS` wiped the early binlog).

use minidb::engine::{Db, DbConfig};
use minidb::wal::{BINLOG_FILE, REDO_FILE};
use snapshot_attack::forensics::{binlog, lsn_time, wal};
use snapshot_attack::report::Table;

use crate::{f2, Options};

/// Runs the experiment.
pub fn run(opts: &Options) -> Vec<Table> {
    let n = if opts.quick { 300 } else { 2_000 };
    let config = DbConfig {
        redo_capacity: 8 << 20,
        undo_capacity: 8 << 20,
        seconds_per_statement: 3, // A write every 3 seconds.
        ..DbConfig::default()
    };
    let db = Db::open(config);
    let conn = db.connect("app");
    conn.execute("CREATE TABLE events (id INT PRIMARY KEY, note TEXT)")
        .unwrap();

    // Phase 1: early history (will be purged from the binlog).
    for i in 0..n {
        conn.execute(&format!("INSERT INTO events VALUES ({i}, 'early-{i}')"))
            .unwrap();
    }
    // Ground truth for phase 1, taken from the binlog *before* the purge
    // (the attacker will never see this).
    let truth: Vec<(u64, i64)> = binlog::parse_binlog(db.disk_image().file(BINLOG_FILE).unwrap())
        .iter()
        .map(|e| (e.lsn, e.timestamp))
        .collect();

    db.purge_binlog(); // Admin housekeeping.

    // Phase 2: recent history, still in the binlog.
    for i in n..2 * n {
        conn.execute(&format!("INSERT INTO events VALUES ({i}, 'late-{i}')"))
            .unwrap();
    }

    // ---- attacker: disk only ----
    let disk = db.disk_image();
    let events = binlog::parse_binlog(disk.file(BINLOG_FILE).unwrap());
    let model = lsn_time::fit(&events).expect("enough binlog points");

    // The redo log still holds phase-1 records (it was not purged); the
    // attacker dates them with the fitted model.
    let redo = wal::reconstruct_writes(disk.file(REDO_FILE).unwrap());
    let horizon = events.first().map(|e| e.lsn).unwrap_or(u64::MAX);
    let mut err_sum = 0.0;
    let mut err_max: f64 = 0.0;
    let mut dated = 0usize;
    for w in redo.iter().filter(|w| w.lsn < horizon) {
        // Ground truth: the pre-purge binlog event of the same txn commit.
        if let Some((_, true_ts)) = truth.iter().min_by_key(|(l, _)| l.abs_diff(w.lsn)) {
            let est = model.estimate(w.lsn);
            let err = (est - *true_ts as f64).abs();
            err_sum += err;
            err_max = err_max.max(err);
            dated += 1;
        }
    }

    let span_secs = (2 * n) as f64 * 3.0;
    let mut t = Table::new(
        "E3 - dating purged history via LSN-rate correlation",
        &["metric", "value"],
    );
    t.row(&[
        "binlog events visible (post-purge)".into(),
        events.len().to_string(),
    ]);
    t.row(&["fit slope (sec/LSN)".into(), format!("{:.4}", model.slope)]);
    t.row(&["purged redo records dated".into(), dated.to_string()]);
    t.row(&[
        "mean dating error (sec)".into(),
        f2(if dated == 0 {
            0.0
        } else {
            err_sum / dated as f64
        }),
    ]);
    t.row(&["max dating error (sec)".into(), f2(err_max)]);
    t.row(&["workload span (sec)".into(), f2(span_secs)]);
    opts.absorb_db(&db);
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dating_error_is_small_relative_to_span() {
        let tables = run(&Options {
            quick: true,
            ..Default::default()
        });
        let rows = &tables[0].rows;
        let dated: usize = rows[2][1].parse().unwrap();
        assert!(dated > 0, "attacker must find purged records to date");
        let mean_err: f64 = rows[3][1].parse().unwrap();
        let span: f64 = rows[5][1].parse().unwrap();
        // Steady write rate → extrapolation error well under 5% of span.
        assert!(
            mean_err < span * 0.05,
            "mean error {mean_err} vs span {span}"
        );
    }
}
