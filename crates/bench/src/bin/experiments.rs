//! Regenerates the paper's tables and figures.
//!
//! ```text
//! experiments [--quick] [--json <path>] [--trace <dir>] [e1 e2 … | all]
//! ```
//!
//! Tables always go to stdout; `--json <path>` additionally writes a
//! machine-readable report (per-experiment wall time, tables, and the
//! engine telemetry each experiment absorbed); `--trace <dir>` writes
//! one Chrome `trace_event` JSON per experiment (load in
//! `chrome://tracing` / Perfetto) from the statement traces the
//! experiment's engines recorded.

use bench::{ExperimentReport, Options, ALL};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let path_flag = |flag: &str| {
        args.iter().position(|a| a == flag).map(|i| match args.get(i + 1) {
            Some(p) if !p.starts_with("--") => p.clone(),
            _ => {
                eprintln!("{flag} requires a path argument");
                std::process::exit(2);
            }
        })
    };
    let json_path = path_flag("--json");
    let trace_dir = path_flag("--trace");
    // Everything that isn't a flag (or a flag's path argument) is an id.
    let mut ids = Vec::new();
    let mut skip_next = false;
    for a in &args {
        if skip_next {
            skip_next = false;
            continue;
        }
        if a == "--json" || a == "--trace" {
            skip_next = true;
        } else if !a.starts_with("--") {
            ids.push(a.clone());
        }
    }
    let ids: Vec<String> = if ids.is_empty() || ids.iter().any(|i| i == "all") {
        ALL.iter().map(|s| s.to_string()).collect()
    } else {
        ids
    };
    let opts = Options {
        quick,
        ..Default::default()
    };
    if let Some(dir) = &trace_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create trace dir {dir}: {e}");
            std::process::exit(1);
        }
    }
    let mut reports: Vec<ExperimentReport> = Vec::new();
    for id in &ids {
        eprintln!("[experiments] running {id}{}", if quick { " (quick)" } else { "" });
        match bench::run_report(id, &opts) {
            Some(report) => {
                for t in &report.tables {
                    println!("{t}");
                }
                eprintln!(
                    "[experiments] {id} done in {:.1} ms",
                    report.wall_time_us as f64 / 1000.0
                );
                if let Some(dir) = &trace_dir {
                    let path = format!("{dir}/{id}.trace.json");
                    let json = mdb_trace::chrome::to_chrome_json(&report.traces);
                    match std::fs::write(&path, &json) {
                        Ok(()) => eprintln!(
                            "[experiments] wrote {} trace events to {path}",
                            report.traces.len()
                        ),
                        Err(e) => {
                            eprintln!("failed to write {path}: {e}");
                            std::process::exit(1);
                        }
                    }
                }
                reports.push(report);
            }
            None => {
                eprintln!("unknown experiment id {id}; known: {ALL:?}");
                std::process::exit(2);
            }
        }
    }
    if let Some(path) = json_path {
        let json = bench::reports_to_json(&reports, &opts);
        if let Err(e) = std::fs::write(&path, &json) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("[experiments] wrote JSON report to {path}");
    }
}
