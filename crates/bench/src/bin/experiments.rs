//! Regenerates the paper's tables and figures.
//!
//! ```text
//! experiments [--quick] [--json <path>] [--trace <dir>]
//!             [--bench-json <path>] [--obs-bench-json <path>]
//!             [--server-bench-json <path>] [--xtrace-bench-json <path>]
//!             [--wal-bench-json <path>] [--chaos-bench-json <path>]
//!             [e1 e2 … | all]
//! ```
//!
//! Tables always go to stdout; `--json <path>` additionally writes a
//! machine-readable report (per-experiment wall time, tables, and the
//! engine telemetry each experiment absorbed); `--trace <dir>` writes
//! one Chrome `trace_event` JSON per experiment (load in
//! `chrome://tracing` / Perfetto) from the statement traces the
//! experiment's engines recorded; `--bench-json <path>` runs the scan
//! micro-benchmark (full vs zone-map-pruned range scans) and writes its
//! rows/sec and pruning counters as JSON; `--obs-bench-json <path>`
//! runs the scrape-plane benchmark (exposition shape + scrape/encode/
//! parse timing) and writes it as JSON; `--server-bench-json <path>`
//! runs the sharded-buffer-pool benchmark (8-thread mixed scan/write
//! throughput, single latch vs latch-partitioned) and writes it as
//! JSON; `--xtrace-bench-json <path>` runs the cross-node tracing
//! benchmark (attribution rates, probe lanes, tracing overhead) and
//! writes it as JSON plus the merged Chrome trace as `<path>.trace.json`;
//! `--wal-bench-json <path>` runs the group-commit / encrypted-WAL
//! write-path benchmark (plaintext vs sealed, per-statement fsync vs
//! group commit, at 1/4/8 connections) and writes it as JSON;
//! `--chaos-bench-json <path>` replays the deterministic chaos schedule
//! over the seed battery (odd seeds kill and fail over the primary),
//! audits every history with the consistency checker, probes the
//! deposed primary's divergent sidecar on plaintext and `encrypted_wal`
//! fleets, and writes the verdicts as JSON.

use bench::{ExperimentReport, Options, ALL};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let path_flag = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .map(|i| match args.get(i + 1) {
                Some(p) if !p.starts_with("--") => p.clone(),
                _ => {
                    eprintln!("{flag} requires a path argument");
                    std::process::exit(2);
                }
            })
    };
    let json_path = path_flag("--json");
    let trace_dir = path_flag("--trace");
    let bench_json_path = path_flag("--bench-json");
    let obs_bench_json_path = path_flag("--obs-bench-json");
    let server_bench_json_path = path_flag("--server-bench-json");
    let xtrace_bench_json_path = path_flag("--xtrace-bench-json");
    let wal_bench_json_path = path_flag("--wal-bench-json");
    let chaos_bench_json_path = path_flag("--chaos-bench-json");
    // Everything that isn't a flag (or a flag's path argument) is an id.
    let mut ids = Vec::new();
    let mut skip_next = false;
    for a in &args {
        if skip_next {
            skip_next = false;
            continue;
        }
        if a == "--json"
            || a == "--trace"
            || a == "--bench-json"
            || a == "--obs-bench-json"
            || a == "--server-bench-json"
            || a == "--xtrace-bench-json"
            || a == "--wal-bench-json"
            || a == "--chaos-bench-json"
        {
            skip_next = true;
        } else if !a.starts_with("--") {
            ids.push(a.clone());
        }
    }
    // With a bench flag and no explicit ids, run only the benchmark.
    let ids: Vec<String> = if ids.is_empty()
        && (bench_json_path.is_some()
            || obs_bench_json_path.is_some()
            || server_bench_json_path.is_some()
            || xtrace_bench_json_path.is_some()
            || wal_bench_json_path.is_some()
            || chaos_bench_json_path.is_some())
    {
        Vec::new()
    } else if ids.is_empty() || ids.iter().any(|i| i == "all") {
        ALL.iter().map(|s| s.to_string()).collect()
    } else {
        ids
    };
    let opts = Options {
        quick,
        ..Default::default()
    };
    if let Some(dir) = &trace_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create trace dir {dir}: {e}");
            std::process::exit(1);
        }
    }
    let mut reports: Vec<ExperimentReport> = Vec::new();
    for id in &ids {
        eprintln!(
            "[experiments] running {id}{}",
            if quick { " (quick)" } else { "" }
        );
        match bench::run_report(id, &opts) {
            Some(report) => {
                for t in &report.tables {
                    println!("{t}");
                }
                eprintln!(
                    "[experiments] {id} done in {:.1} ms",
                    report.wall_time_us as f64 / 1000.0
                );
                if let Some(dir) = &trace_dir {
                    let path = format!("{dir}/{id}.trace.json");
                    let json = mdb_trace::chrome::to_chrome_json(&report.traces);
                    match std::fs::write(&path, &json) {
                        Ok(()) => eprintln!(
                            "[experiments] wrote {} trace events to {path}",
                            report.traces.len()
                        ),
                        Err(e) => {
                            eprintln!("failed to write {path}: {e}");
                            std::process::exit(1);
                        }
                    }
                }
                reports.push(report);
            }
            None => {
                eprintln!("unknown experiment id {id}; known: {ALL:?}");
                std::process::exit(2);
            }
        }
    }
    if let Some(path) = json_path {
        let json = bench::reports_to_json(&reports, &opts);
        if let Err(e) = std::fs::write(&path, &json) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("[experiments] wrote JSON report to {path}");
    }
    if let Some(path) = bench_json_path {
        let (rows, queries) = if quick { (20_000, 8) } else { (100_000, 20) };
        eprintln!("[experiments] scan bench: {rows} rows, {queries} queries per variant");
        let cmp = bench::scanbench::compare(rows, queries);
        eprintln!(
            "[experiments] full {:.0} rows/s, pruned {:.0} rows/s ({:.2}x), {} of {} pages pruned",
            cmp.full.rows_per_sec,
            cmp.pruned.rows_per_sec,
            cmp.speedup(),
            cmp.pruned.pages_pruned,
            cmp.pruned.pages_pruned + cmp.pruned.pages_decoded,
        );
        if let Err(e) = std::fs::write(&path, cmp.to_json()) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("[experiments] wrote scan bench JSON to {path}");
    }
    if let Some(path) = obs_bench_json_path {
        let (rows, queries) = if quick { (2_000, 8) } else { (10_000, 20) };
        eprintln!("[experiments] obs bench: {rows} rows, {queries} queries");
        let b = bench::obsbench::run(rows, queries);
        eprintln!(
            "[experiments] {} series / {} bytes per scrape (scrubbed: {} / {}), round-trip {:.0} us",
            b.series, b.body_bytes, b.scrub_series, b.scrub_body_bytes, b.scrape_roundtrip_us,
        );
        if let Err(e) = std::fs::write(&path, b.to_json()) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("[experiments] wrote obs bench JSON to {path}");
    }
    if let Some(path) = server_bench_json_path {
        let ops = if quick { 400 } else { 2_000 };
        eprintln!("[experiments] server bench: 8 threads, {ops} page ops each");
        let b = bench::serverbench::run(8, ops);
        eprintln!(
            "[experiments] single latch {:.0} ops/s, {} shards {:.0} ops/s ({:.2}x)",
            b.single.ops_per_sec,
            b.sharded.shards,
            b.sharded.ops_per_sec,
            b.speedup(),
        );
        if let Err(e) = std::fs::write(&path, b.to_json()) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("[experiments] wrote server bench JSON to {path}");
    }
    if let Some(path) = xtrace_bench_json_path {
        let writes = if quick { 24 } else { 120 };
        eprintln!("[experiments] xtrace bench: {writes} writes per variant");
        let b = bench::xtracebench::run(writes);
        eprintln!(
            "[experiments] attribution {:.0}% traced / {:.0}% hashed, {} probe lanes, {:.2}x tracing overhead",
            b.traced_attribution * 100.0,
            b.hashed_attribution * 100.0,
            b.traced_probe_lanes,
            b.tracing_overhead(),
        );
        if let Err(e) = std::fs::write(&path, b.to_json()) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        let trace_path = format!("{path}.trace.json");
        if let Err(e) = std::fs::write(&trace_path, &b.merged_chrome_json) {
            eprintln!("failed to write {trace_path}: {e}");
            std::process::exit(1);
        }
        eprintln!("[experiments] wrote xtrace bench JSON to {path} (+ merged trace {trace_path})");
    }
    if let Some(path) = wal_bench_json_path {
        // Same inserts-per-connection in both modes: the gated ratios
        // (buyback, crypto tax) shift systematically with batch
        // amortization, and the perf-trajectory job diffs a quick regen
        // against the full-mode committed baseline. Quick only drops
        // the middle connection count.
        let (conns, inserts): (&[usize], usize) = if quick {
            (&[1, 8], 100)
        } else {
            (&[1, 4, 8], 100)
        };
        eprintln!(
            "[experiments] wal bench: {inserts} inserts per connection at {conns:?} connections"
        );
        let b = bench::walbench::run(conns, inserts);
        let max_conns = conns.iter().copied().max().unwrap_or(1);
        eprintln!(
            "[experiments] buyback {:.2}x at {max_conns} connections, crypto tax {:.2}x at 1, {:.3} fsyncs/stmt",
            b.buyback_at(max_conns),
            b.crypto_tax_at(1),
            b.fsyncs_per_stmt_at(max_conns),
        );
        if let Err(e) = std::fs::write(&path, b.to_json()) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("[experiments] wrote wal bench JSON to {path}");
    }
    if let Some(path) = chaos_bench_json_path {
        // The same seed battery in both modes; quick only shortens each
        // run's schedule. Every gate key is a deterministic verdict
        // (violation counts, promotion counts, coverage ratios), so the
        // perf-trajectory job can diff a quick regen against the
        // full-mode committed baseline exactly.
        let seeds = bench::chaosbench::SEEDS;
        eprintln!(
            "[experiments] chaos bench: seeds {seeds:?}{}",
            if quick { " (quick)" } else { "" }
        );
        let b = bench::chaosbench::run(&seeds, quick);
        eprintln!(
            "[experiments] {} violations across {} seeds, {}/{} kill seeds promoted, \
             plaintext carve {:.0}%, sealed carve {} stmts ({} sealed frames), key holder {:.0}%",
            b.violations_total(),
            b.runs.len(),
            b.kill_seeds_promoted(),
            b.kill_seeds(),
            b.probe("plaintext").map_or(0.0, |p| p.carve_coverage) * 100.0,
            b.probe("encrypted_wal").map_or(0, |p| p.carved_statements),
            b.probe("encrypted_wal").map_or(0, |p| p.frames_sealed),
            b.probe("encrypted_wal")
                .map_or(0.0, |p| p.keyholder_coverage)
                * 100.0,
        );
        if let Err(e) = std::fs::write(&path, b.to_json()) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("[experiments] wrote chaos bench JSON to {path}");
    }
}
