//! Regenerates the paper's tables and figures.
//!
//! ```text
//! experiments [--quick] [e1 e2 … | all]
//! ```

use bench::{Options, ALL};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let ids: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .cloned()
        .collect();
    let ids: Vec<String> = if ids.is_empty() || ids.iter().any(|i| i == "all") {
        ALL.iter().map(|s| s.to_string()).collect()
    } else {
        ids
    };
    let opts = Options {
        quick,
        ..Default::default()
    };
    for id in &ids {
        eprintln!("[experiments] running {id}{}", if quick { " (quick)" } else { "" });
        match bench::run(id, &opts) {
            Some(tables) => {
                for t in tables {
                    println!("{t}");
                }
            }
            None => {
                eprintln!("unknown experiment id {id}; known: {ALL:?}");
                std::process::exit(2);
            }
        }
    }
}
