//! E7 — §6 "Token-based systems": recover SWP trapdoors from a memory
//! snapshot, apply them to the encrypted index, and run the count attack.
//!
//! The paper's supporting statistic: 63% of the 500 most frequent Enron
//! words have a unique result count, so a count equality identifies the
//! keyword — and the token's matching documents reveal partial content.

use corpus::enron::{Corpus, EnronParams};
use edb::cryptdb::{parse_swp_blob, ColumnCrypto, CryptDbProxy, EncColumn, Query};
use edb_crypto::swp::Trapdoor;
use edb_crypto::Key;
use minidb::engine::{Db, DbConfig};
use minidb::value::Value;
use snapshot_attack::attacks::count::{count_attack_batch, AuxiliaryCounts};
use snapshot_attack::forensics::memscan;
use snapshot_attack::report::Table;
use snapshot_attack::threat::{capture, AttackVector};

use crate::{pct, Options};

/// Runs the experiment.
pub fn run(opts: &Options) -> Vec<Table> {
    // The 63% statistic on the full-size synthetic corpus.
    let full = Corpus::generate(&EnronParams::default());
    let unique_frac = full.unique_count_fraction(500);

    // The end-to-end attack on a smaller (runtime-bounded) instance.
    let params = EnronParams {
        num_docs: if opts.quick { 300 } else { 2_000 },
        vocab_size: 1_500,
        ..Default::default()
    };
    let corpus = Corpus::generate(&params);
    let num_queries = if opts.quick { 15 } else { 50 };

    let config = DbConfig {
        redo_capacity: 4 << 20,
        undo_capacity: 4 << 20,
        ..DbConfig::default()
    };
    let db = Db::open(config);
    let mut proxy = CryptDbProxy::new(&db, Key([0x44; 32]), opts.seed).unwrap();
    proxy
        .create_table(
            "docs",
            vec![
                EncColumn {
                    name: "id".into(),
                    crypto: ColumnCrypto::PlainInt,
                    primary_key: true,
                },
                EncColumn {
                    name: "body".into(),
                    crypto: ColumnCrypto::Search,
                    primary_key: false,
                },
            ],
        )
        .unwrap();
    for doc in &corpus.docs {
        proxy
            .insert(
                "docs",
                &[Value::Int(doc.id as i64), Value::Text(doc.words.join(" "))],
            )
            .unwrap();
    }

    // The victim searches the most frequent words.
    let queried = corpus.top_words(num_queries);
    for w in &queried {
        proxy
            .select("docs", &Query::Contains("body".into(), w.clone()))
            .unwrap();
    }

    // ---- attacker: VM snapshot ----
    let obs = capture(&db, AttackVector::VmSnapshotLeak);
    let mem = obs.volatile_db.expect("vm snapshot has memory");

    // 1. Carve trapdoors out of the heap (freed query texts persist);
    //    deduplicate the byte strings, then parse.
    let token_bytes: std::collections::BTreeSet<Vec<u8>> =
        memscan::carve_tokens(&mem.heap).into_iter().collect();
    let tokens: Vec<Trapdoor> = token_bytes
        .iter()
        .filter_map(|bytes| Trapdoor::from_bytes(bytes))
        .collect();

    // 2. Apply each token to the stored index (ciphertexts are in the
    //    stolen tablespace; the attacker needs no keys).
    let conn = db.connect("attacker");
    let stored = conn.execute("SELECT id, body_swp FROM docs").unwrap();
    let blobs: Vec<(i64, Vec<edb_crypto::swp::WordCiphertext>)> = stored
        .rows
        .iter()
        .map(|r| {
            let Value::Int(id) = r[0] else { panic!() };
            let Value::Bytes(b) = &r[1] else { panic!() };
            (id, parse_swp_blob(b).unwrap())
        })
        .collect();
    let observations: Vec<(usize, usize)> = tokens
        .iter()
        .enumerate()
        .map(|(i, td)| {
            let count = blobs
                .iter()
                .filter(|(_, cts)| cts.iter().any(|ct| edb_crypto::swp::server_match(td, ct)))
                .count();
            (i, count)
        })
        .collect();

    // 3. Count attack with the auxiliary frequency model.
    let aux = AuxiliaryCounts::new(
        corpus
            .top_words(params.vocab_size)
            .into_iter()
            .map(|w| (w.clone(), corpus.doc_frequency(&w))),
    );
    let report = count_attack_batch(&aux, &observations);

    // Verify recoveries against ground truth and count revealed content.
    let mut correct = 0usize;
    let mut docs_revealed = std::collections::BTreeSet::new();
    for (tok, word) in &report.recovered {
        // Ground truth: does this token's count match the queried word
        // whose trapdoor it is? Re-derive by matching counts.
        let observed = observations[*tok].1;
        if corpus.doc_frequency(word) == observed && queried.contains(word) {
            correct += 1;
            for d in corpus.matching_docs(word) {
                docs_revealed.insert(d);
            }
        }
    }

    let mut t = Table::new(
        "E7 - count attack on recovered SWP trapdoors",
        &["metric", "this run", "paper"],
    );
    t.row(&[
        "unique-count fraction, top-500 words (full corpus)".into(),
        pct(unique_frac),
        "63%".into(),
    ]);
    t.row(&[
        "trapdoors carved from heap".into(),
        tokens.len().to_string(),
        "-".into(),
    ]);
    t.row(&[
        "victim queries issued".into(),
        num_queries.to_string(),
        "-".into(),
    ]);
    t.row(&[
        "keywords uniquely recovered".into(),
        format!(
            "{} ({})",
            report.recovered.len(),
            pct(report.recovery_rate())
        ),
        "-".into(),
    ]);
    t.row(&[
        "recoveries verified correct".into(),
        correct.to_string(),
        "-".into(),
    ]);
    t.row(&[
        "documents with partial content revealed".into(),
        format!(
            "{} / {} ({})",
            docs_revealed.len(),
            corpus.docs.len(),
            pct(docs_revealed.len() as f64 / corpus.docs.len() as f64)
        ),
        "-".into(),
    ]);
    opts.absorb_db(&db);
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_carved_and_keywords_recovered() {
        let tables = run(&Options {
            quick: true,
            ..Default::default()
        });
        let rows = &tables[0].rows;
        let carved: usize = rows[1][1].parse().unwrap();
        let queries: usize = rows[2][1].parse().unwrap();
        assert!(carved >= queries, "every victim trapdoor is in the heap");
        let correct: usize = rows[4][1].parse().unwrap();
        assert!(correct >= queries / 3, "correct {correct} of {queries}");
    }
}
