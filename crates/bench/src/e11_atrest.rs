//! E11 — §6 "At-rest encryption": a disk-only attacker learns nothing but
//! side channels (file sizes); any memory-seeing attacker recovers the
//! key from the process heap and decrypts everything.

use edb::atrest::{carve_keyring_key, AtRest};
use edb_crypto::Key;
use minidb::engine::{Db, DbConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use snapshot_attack::forensics::{binlog, memscan};
use snapshot_attack::report::Table;
use snapshot_attack::threat::{capture, AttackVector};

use crate::Options;

/// Runs the experiment.
pub fn run(opts: &Options) -> Vec<Table> {
    let config = DbConfig {
        redo_capacity: 1 << 20,
        undo_capacity: 1 << 20,
        ..DbConfig::default()
    };
    let db = Db::open(config);
    let at_rest = AtRest::install(&db, &Key([0x0A; 32]));
    let conn = db.connect("app");
    conn.execute("CREATE TABLE vault (id INT PRIMARY KEY, secret TEXT)")
        .unwrap();
    for i in 0..30 {
        conn.execute(&format!(
            "INSERT INTO vault VALUES ({i}, 'classified-record-{i}')"
        ))
        .unwrap();
    }
    db.shutdown();

    let mut rng = StdRng::seed_from_u64(opts.seed);
    let plain_disk = db.disk_image();
    let encrypted_disk = at_rest.encrypt_disk(&plain_disk, &mut rng);

    // ---- attacker 1: disk theft (encrypted disk) ----
    let stolen = &encrypted_disk;
    let plaintext_found = stolen.files.values().any(|data| {
        data.windows(b"classified-record".len())
            .any(|w| w == b"classified-record")
    });
    let binlog_readable = stolen
        .file(minidb::wal::BINLOG_FILE)
        .map(|raw| binlog::parse_binlog(raw).len())
        .unwrap_or(0);

    // ---- attacker 2: VM snapshot (memory + encrypted disk) ----
    let obs = capture(&db, AttackVector::VmSnapshotLeak);
    let mem = obs.volatile_db.unwrap();
    let carved = carve_keyring_key(&mem.heap);
    let decrypted = carved.as_ref().map(|key| {
        let attacker = AtRest::from_key(key.clone());
        attacker.decrypt_disk(&encrypted_disk)
    });
    let (full_recovery, recovered_binlog) = match decrypted {
        Some(Ok(disk)) => {
            let stmts = disk
                .file(minidb::wal::BINLOG_FILE)
                .map(|raw| binlog::parse_binlog(raw).len())
                .unwrap_or(0);
            let secrets = disk.files.values().any(|d| {
                d.windows(b"classified-record".len())
                    .any(|w| w == b"classified-record")
            });
            (secrets, stmts)
        }
        _ => (false, 0),
    };
    // The memory image alone also holds query history (heap SQL).
    let heap_sql = memscan::carve_sql(&mem.heap).len();

    let mut t = Table::new(
        "E11 - at-rest (tablespace) encryption per attack vector",
        &["attacker", "plaintext data", "binlog statements", "notes"],
    );
    t.row(&[
        "disk theft (encrypted disk)".into(),
        if plaintext_found { "LEAKED" } else { "none" }.into(),
        binlog_readable.to_string(),
        format!(
            "only file names/sizes visible ({} files)",
            stolen.files.len()
        ),
    ]);
    t.row(&[
        "VM snapshot (memory + disk)".into(),
        if full_recovery {
            "ALL (key carved from heap)"
        } else {
            "none"
        }
        .into(),
        recovered_binlog.to_string(),
        format!("plus {heap_sql} SQL strings straight from the heap"),
    ]);
    opts.absorb_db(&db);
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disk_only_learns_nothing_memory_learns_all() {
        let tables = run(&Options::default());
        let rows = &tables[0].rows;
        assert_eq!(rows[0][1], "none");
        assert_eq!(
            rows[0][2], "0",
            "binlog unreadable under at-rest encryption"
        );
        assert!(rows[1][1].contains("ALL"));
        let stmts: usize = rows[1][2].parse().unwrap();
        assert!(stmts >= 30, "decrypted binlog reveals the write history");
    }
}
