//! Scrape-plane micro-benchmark (the `--obs-bench-json` output, and the
//! committed `BENCH_e17.json` baseline).
//!
//! Two kinds of numbers, deliberately separated:
//!
//! * **Shape metrics** — exposition series count and body bytes for a
//!   fixed seeded workload, plain and scrubbed. These are deterministic
//!   (the engine's simulated clock makes even the latency histograms
//!   reproducible), machine-independent, and therefore what CI's
//!   perf-trajectory gate diffs against the committed baseline: a >25%
//!   jump in `body_bytes` means someone bloated the scrape channel.
//! * **Timing metrics** — mean `/metrics` TCP round-trip and in-process
//!   encode/parse cost. Machine-dependent; reported for trajectory
//!   context, never gated.

use std::time::Instant;

use mdb_obs::{http, prom};
use mdb_telemetry::json;

/// One obs-bench run.
#[derive(Clone, Debug)]
pub struct ObsBench {
    /// Workload size, in rows.
    pub rows: usize,
    /// Range queries executed before measuring.
    pub queries: usize,
    /// Samples in one plain exposition (first scrape: no rate series).
    pub series: usize,
    /// Body bytes of that exposition.
    pub body_bytes: usize,
    /// Samples after `obs_scrub`.
    pub scrub_series: usize,
    /// Body bytes after `obs_scrub`.
    pub scrub_body_bytes: usize,
    /// TCP scrapes timed.
    pub scrapes: usize,
    /// Mean `/metrics` round-trip, microseconds.
    pub scrape_roundtrip_us: f64,
    /// Mean in-process `prom::encode` cost, microseconds.
    pub encode_us: f64,
    /// Mean `prom::parse` cost over the encoded body, microseconds.
    pub parse_us: f64,
}

impl ObsBench {
    /// Scrub-to-plain body size ratio (the mitigation's bandwidth cut).
    pub fn scrub_bytes_ratio(&self) -> f64 {
        self.scrub_body_bytes as f64 / self.body_bytes.max(1) as f64
    }

    /// Serialises as the `--obs-bench-json` document.
    pub fn to_json(&self) -> String {
        let mut w = json::Writer::new();
        w.obj_open();
        w.key("rows");
        w.u64(self.rows as u64);
        w.key("queries");
        w.u64(self.queries as u64);
        w.key("series");
        w.u64(self.series as u64);
        w.key("body_bytes");
        w.u64(self.body_bytes as u64);
        w.key("scrub_series");
        w.u64(self.scrub_series as u64);
        w.key("scrub_body_bytes");
        w.u64(self.scrub_body_bytes as u64);
        w.key("scrub_bytes_ratio");
        w.f64(self.scrub_bytes_ratio());
        w.key("scrapes");
        w.u64(self.scrapes as u64);
        w.key("scrape_roundtrip_us");
        w.f64(self.scrape_roundtrip_us);
        w.key("encode_us");
        w.f64(self.encode_us);
        w.key("parse_us");
        w.f64(self.parse_us);
        w.obj_close();
        w.into_string()
    }
}

/// Seeds a deterministic workload and opens the status port.
fn build_db(rows: usize, queries: usize, scrub: bool) -> minidb::engine::Db {
    let config = minidb::engine::DbConfig {
        query_cache_enabled: false,
        obs_listen: Some("127.0.0.1:0".into()),
        obs_scrub: scrub,
        ..minidb::engine::DbConfig::default()
    };
    let db = minidb::engine::Db::open(config);
    let conn = db.connect("bench");
    conn.execute("CREATE TABLE events (id INT PRIMARY KEY, ts INT, note TEXT)")
        .unwrap();
    for chunk in (0..rows as i64).collect::<Vec<_>>().chunks(200) {
        let values: Vec<String> = chunk
            .iter()
            .map(|i| format!("({i}, {}, 'evt-{i}')", i * crate::scanbench::STEP))
            .collect();
        conn.execute(&format!("INSERT INTO events VALUES {}", values.join(", ")))
            .unwrap();
    }
    let span = rows as i64 * crate::scanbench::STEP;
    for q in 0..queries as i64 {
        let lo = q * span / queries.max(1) as i64;
        conn.execute(&format!(
            "SELECT COUNT(*) FROM events WHERE ts >= {lo} AND ts <= {}",
            lo + span / 100
        ))
        .unwrap();
    }
    db
}

/// Runs the benchmark.
pub fn run(rows: usize, queries: usize) -> ObsBench {
    // Shape: one fresh scrape per variant, before any rate series or
    // scrape-counter drift can change the body.
    let plain = build_db(rows, queries, false);
    let plain_addr = plain.obs_addr().unwrap();
    let (status, body) = http::get(plain_addr, "/metrics", None).unwrap();
    assert_eq!(status, 200);
    let series = prom::parse(&body).expect("exposition parses").len();

    let scrubbed = build_db(rows, queries, true);
    let (status, scrub_body) = http::get(scrubbed.obs_addr().unwrap(), "/metrics", None).unwrap();
    assert_eq!(status, 200);
    let scrub_series = prom::parse(&scrub_body)
        .expect("scrubbed exposition parses")
        .len();
    scrubbed.shutdown();

    // Timing: TCP round-trips against the live plain server…
    let scrapes = 50;
    let started = Instant::now();
    for _ in 0..scrapes {
        let (s, _) = http::get(plain_addr, "/metrics", None).unwrap();
        assert_eq!(s, 200);
    }
    let scrape_roundtrip_us = started.elapsed().as_micros() as f64 / scrapes as f64;

    // …and the in-process encode/parse cost over the same registry.
    let snap = plain.telemetry().snapshot();
    let iters = 200;
    let started = Instant::now();
    let mut encoded = String::new();
    for _ in 0..iters {
        encoded = prom::encode(&snap, &[]);
    }
    let encode_us = started.elapsed().as_micros() as f64 / iters as f64;
    let started = Instant::now();
    for _ in 0..iters {
        let _ = prom::parse(&encoded).unwrap();
    }
    let parse_us = started.elapsed().as_micros() as f64 / iters as f64;
    plain.shutdown();

    ObsBench {
        rows,
        queries,
        series,
        body_bytes: body.len(),
        scrub_series,
        scrub_body_bytes: scrub_body.len(),
        scrapes,
        scrape_roundtrip_us,
        encode_us,
        parse_us,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn obs_bench_produces_sane_shape_metrics() {
        let b = run(1_000, 4);
        assert!(b.series > 20, "engine workload must register series: {b:?}");
        assert!(b.body_bytes > 500, "{b:?}");
        // Scrub drops per-table series and all bucket lines: strictly
        // smaller exposition.
        assert!(b.scrub_series < b.series, "{b:?}");
        assert!(b.scrub_bytes_ratio() < 1.0, "{b:?}");
        assert!(b.scrape_roundtrip_us > 0.0 && b.encode_us > 0.0 && b.parse_us > 0.0);
        let json = b.to_json();
        assert!(json.contains("\"body_bytes\""), "{json}");
        assert!(json.contains("\"scrub_bytes_ratio\""), "{json}");
    }
}
