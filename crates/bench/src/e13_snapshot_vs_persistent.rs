//! E13 (extension) — quantifying the paper's thesis: how much of a
//! *persistent* attacker's view does a single realistic *snapshot*
//! already contain?
//!
//! A persistent attacker observes every statement as it executes. The
//! paper's §2 claim is that the "snapshot" model is a myth because one
//! static observation recovers much of that transcript. Here the same
//! victim workload is run once; a persistent observer records all
//! statements, then one VM-snapshot attacker reconstructs statements from
//! every channel it can reach. The overlap is the answer.

use minidb::engine::{Db, DbConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use snapshot_attack::forensics::{binlog, memscan};
use snapshot_attack::report::Table;
use snapshot_attack::threat::{capture, AttackVector};

use crate::{pct, Options};

/// Runs the experiment.
pub fn run(opts: &Options) -> Vec<Table> {
    let (writes, reads) = if opts.quick { (100, 200) } else { (800, 1_500) };
    let mut rng = StdRng::seed_from_u64(opts.seed ^ 0x13);

    let config = DbConfig {
        redo_capacity: 8 << 20,
        undo_capacity: 8 << 20,
        ..DbConfig::default()
    };
    let db = Db::open(config);
    let conn = db.connect("app");
    conn.execute("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
        .unwrap();

    // The persistent attacker's ground-truth transcript.
    let mut transcript: Vec<String> = Vec::new();
    for i in 0..writes {
        let stmt = format!(
            "INSERT INTO t VALUES ({i}, 'value-{}')",
            rng.gen_range(0..1000)
        );
        conn.execute(&stmt).unwrap();
        transcript.push(stmt);
    }
    for _ in 0..reads {
        let stmt = format!("SELECT * FROM t WHERE id = {}", rng.gen_range(0..writes));
        conn.execute(&stmt).unwrap();
        transcript.push(stmt);
    }

    // One snapshot.
    let obs = capture(&db, AttackVector::VmSnapshotLeak);
    let disk = obs.persistent_db.unwrap();
    let mem = obs.volatile_db.unwrap();

    // Channels: binlog (verbatim writes), statement history, query cache,
    // heap carving (verbatim statements), digest table (statement *types*
    // with counts).
    let mut recovered: std::collections::BTreeSet<String> = Default::default();
    for e in binlog::parse_binlog(disk.file(minidb::wal::BINLOG_FILE).unwrap()) {
        recovered.insert(e.statement);
    }
    for e in &mem.statements_history {
        recovered.insert(e.sql_text.clone());
    }
    for q in &mem.cached_queries {
        recovered.insert(q.clone());
    }
    for s in memscan::carve_sql(&mem.heap) {
        recovered.insert(s.text.clone());
    }

    let verbatim = transcript.iter().filter(|s| recovered.contains(*s)).count();
    let writes_recovered = transcript[..writes]
        .iter()
        .filter(|s| recovered.contains(*s))
        .count();
    let reads_recovered = verbatim - writes_recovered;
    // Digest coverage: every statement whose *type and count* the digest
    // table records (all of them — canonicalized).
    let digest_count: u64 = mem.digest_summary.iter().map(|d| d.count_star).sum();

    let mut t = Table::new(
        "E13 - one snapshot vs the persistent attacker's transcript",
        &["metric", "value"],
    );
    t.row(&[
        "statements in the persistent transcript".into(),
        transcript.len().to_string(),
    ]);
    t.row(&[
        "verbatim statements recovered from one snapshot".into(),
        format!(
            "{verbatim} ({})",
            pct(verbatim as f64 / transcript.len() as f64)
        ),
    ]);
    t.row(&[
        "  - writes recovered verbatim".into(),
        format!(
            "{writes_recovered}/{writes} ({})",
            pct(writes_recovered as f64 / writes as f64)
        ),
    ]);
    t.row(&[
        "  - reads recovered verbatim".into(),
        format!(
            "{reads_recovered}/{reads} ({})",
            pct(reads_recovered as f64 / reads as f64)
        ),
    ]);
    t.row(&[
        "statements covered by digest type+count records".into(),
        format!(
            "{digest_count} ({})",
            pct(digest_count as f64 / transcript.len() as f64)
        ),
    ]);
    opts.absorb_db(&db);
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_recovers_all_writes_and_many_reads() {
        let tables = run(&Options {
            quick: true,
            ..Default::default()
        });
        let rows = &tables[0].rows;
        let w: &str = &rows[2][1];
        let writes_frac: f64 = w
            .rsplit('(')
            .next()
            .unwrap()
            .trim_end_matches(')')
            .trim_end_matches('%')
            .parse::<f64>()
            .unwrap();
        assert!(
            writes_frac >= 99.9,
            "every committed write is in the binlog: {w}"
        );
        let reads: &str = &rows[3][1];
        let reads_frac: f64 = reads
            .rsplit('(')
            .next()
            .unwrap()
            .trim_end_matches(')')
            .trim_end_matches('%')
            .parse::<f64>()
            .unwrap();
        assert!(
            reads_frac > 10.0,
            "query cache + history + heap recover reads: {reads}"
        );
    }
}
