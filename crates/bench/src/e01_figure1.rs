//! E1 — Figure 1: what each attack vector reveals, demonstrated against a
//! live workload rather than asserted — including the replicated-topology
//! extension: the same vector aimed at a *replica* recovers the shipped
//! statement history from its relay log.

use mdb_repl::router::{ReplicaSet, ReplicaSetConfig};
use minidb::engine::DbConfig;
use snapshot_attack::forensics::{binlog, memscan, relay};
use snapshot_attack::report::Table;
use snapshot_attack::threat::{capture, AttackVector};

use crate::Options;

fn mark(b: bool) -> &'static str {
    if b {
        "X"
    } else {
        ""
    }
}

/// Runs the experiment.
pub fn run(opts: &Options) -> Vec<Table> {
    let mut set = ReplicaSet::start(ReplicaSetConfig {
        replicas: 1,
        base: DbConfig {
            redo_capacity: 1 << 20,
            undo_capacity: 1 << 20,
            ..DbConfig::default()
        },
        ..ReplicaSetConfig::default()
    })
    .expect("replica set starts");
    set.write("CREATE TABLE accounts (id INT PRIMARY KEY, owner TEXT, balance INT)")
        .unwrap();
    for i in 0..50 {
        set.write(&format!(
            "INSERT INTO accounts VALUES ({i}, 'owner{i}', {})",
            i * 100
        ))
        .unwrap();
    }
    let db = set.primary().clone();
    let conn = db.connect("app");
    conn.execute("SELECT * FROM accounts WHERE balance >= 4000")
        .unwrap();
    conn.execute("UPDATE accounts SET balance = 0 WHERE id = 7")
        .unwrap();
    set.wait_for_sync(std::time::Duration::from_secs(10));

    // The Figure 1 matrix, measured — per host: each replica is one more
    // machine the same four vectors apply to.
    let mut matrix = Table::new(
        "Figure 1 - state revealed per attack vector (per host: primary or replica)",
        &["attack", "pers. DB", "vol. DB", "pers. OS", "vol. OS"],
    );
    for vector in AttackVector::ALL {
        let obs = capture(&db, vector);
        let v = obs.visibility();
        matrix.row(&[
            vector.name().to_string(),
            mark(v[0]).into(),
            mark(v[1]).into(),
            mark(v[2]).into(),
            mark(v[3]).into(),
        ]);
    }

    // The paper's point, demonstrated: which *query-history artifacts*
    // each vector actually yields on this workload — now with the
    // replicated column: statements the same vector recovers from a
    // REPLICA host's relay log.
    let mut artifacts = Table::new(
        "Figure 1 (extended) - query-history artifacts actually recovered",
        &[
            "attack",
            "binlog stmts",
            "diag tables",
            "heap SQL strings",
            "replica relay stmts",
        ],
    );
    for vector in AttackVector::ALL {
        let obs = capture(&db, vector);
        let binlog_stmts = obs
            .persistent_db
            .as_ref()
            .and_then(|d| d.file(minidb::wal::BINLOG_FILE).map(binlog::parse_binlog))
            .map(|evs| evs.len())
            .unwrap_or(0);
        // Diagnostic tables are reachable through injected SQL, and their
        // backing state sits in process memory for snapshot vectors.
        let diag = match (&obs.sql, &obs.volatile_db) {
            (Some(conn), _) => conn
                .execute("SELECT * FROM performance_schema.events_statements_summary_by_digest")
                .map(|r| r.rows.len())
                .unwrap_or(0),
            (None, Some(mem)) => mem.digest_summary.len(),
            (None, None) => 0,
        };
        let heap_sql = obs
            .volatile_db
            .as_ref()
            .map(|m| memscan::carve_sql(&m.heap).len())
            .unwrap_or(0);
        // The same vector, aimed at the replica host instead.
        let replica_obs = capture(set.replica(0), vector);
        let relay_stmts = replica_obs
            .persistent_db
            .as_ref()
            .map(|d| relay::carve_relay(d).len())
            .unwrap_or(0);
        artifacts.row(&[
            vector.name().to_string(),
            binlog_stmts.to_string(),
            if diag > 0 {
                format!("{diag} digests")
            } else {
                String::new()
            },
            heap_sql.to_string(),
            relay_stmts.to_string(),
        ]);
    }
    opts.absorb_db(&db);
    opts.absorb_db(set.replica(0));
    set.shutdown();
    vec![matrix, artifacts]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_matches_paper() {
        let tables = run(&Options::default());
        let m = &tables[0];
        assert_eq!(m.rows.len(), 4);
        // Disk theft: persistent only.
        assert_eq!(m.rows[0][1], "X");
        assert_eq!(m.rows[0][2], "");
        // VM snapshot: everything.
        assert_eq!(m.rows[2], vec!["VM snapshot leak", "X", "X", "X", "X"]);
    }

    #[test]
    fn artifacts_follow_visibility() {
        let tables = run(&Options::default());
        let a = &tables[1];
        // Disk theft recovers binlog statements but no heap strings.
        assert_ne!(a.rows[0][1], "0");
        assert_eq!(a.rows[0][3], "0");
        // SQL injection reaches diagnostic tables and the heap.
        assert!(a.rows[1][2].contains("digests"));
        assert_ne!(a.rows[1][3], "0");
        // Every vector that sees a disk recovers the relay statements on
        // the replica: 52 shipped statements (CREATE + 50 INSERTs + the
        // UPDATE, which is binlogged on the primary and ships too).
        assert_eq!(a.rows[0][4], "52", "disk theft reaches the relay log");
    }
}
