//! E15 (extension) — the query flight recorder as a forensic surface.
//!
//! E12 shows the textbook hygiene step — `TRUNCATE performance_schema.*`
//! / `FLUSH STATUS` — and E5/E12 already demonstrate that the telemetry
//! registry survives it. This experiment closes the loop on the newest
//! observability layer: the per-statement tracer. After the wipe, a VM
//! snapshot still holds (a) the in-memory flight-recorder ring and (b)
//! the on-disk slow log of versioned trace records. Merging the two
//! ([`snapshot_attack::forensics::tracelog::timeline`]) reconstructs the
//! victim's query timeline — statement texts, start timestamps, and the
//! tables each statement touched.
//!
//! Mitigation variants show the knobs' partial reach, mirroring E12:
//! `telemetry_scrub_on_flush` empties the ring but not the disk records;
//! `trace_enabled = false` degrades slow-log records to text+timing but
//! still leaks every slow statement verbatim.

use minidb::engine::{Db, DbConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use snapshot_attack::forensics::tracelog::{self, TraceSource};
use snapshot_attack::report::Table;
use snapshot_attack::threat::{capture, AttackVector};

use crate::{pct, Options};

/// One executed statement the attacker should recover.
struct Expected {
    started: i64,
    statement: String,
    table: &'static str,
}

/// Runs the victim workload: distinct, literal-bearing statements over
/// three tables, every one slow enough to cross the slow-log threshold.
fn workload(db: &Db, per_table: usize, rng: &mut StdRng) -> Vec<Expected> {
    let conn = db.connect("app");
    conn.execute("CREATE TABLE patients (id INT PRIMARY KEY, dx TEXT)")
        .unwrap();
    conn.execute("CREATE TABLE billing (id INT PRIMARY KEY, amount INT)")
        .unwrap();
    conn.execute("CREATE TABLE staff (id INT PRIMARY KEY, role TEXT)")
        .unwrap();
    for i in 0..8 {
        conn.execute(&format!("INSERT INTO patients VALUES ({i}, 'dx-{i}')"))
            .unwrap();
        conn.execute(&format!("INSERT INTO billing VALUES ({i}, {})", i * 100))
            .unwrap();
        conn.execute(&format!("INSERT INTO staff VALUES ({i}, 'role-{i}')"))
            .unwrap();
    }
    let mut expected = Vec::new();
    for i in 0..per_table {
        for table in ["patients", "billing", "staff"] {
            // Distinct literals per statement: no query-cache hits, and
            // each recovered text identifies one victim action.
            let probe: u32 = rng.gen_range(0..1_000_000);
            let statement = format!("SELECT * FROM {table} WHERE id = {}", probe + i as u32);
            conn.execute(&statement).unwrap();
            // The clock ticks once per statement before stamping it, so
            // the post-execute clock equals the statement's start time.
            let started = db.now();
            expected.push(Expected {
                started,
                statement,
                table,
            });
        }
    }
    expected
}

/// Recovery stats for one variant.
struct Recovery {
    /// Entries whose text + start timestamp match an executed statement.
    text_and_time: usize,
    /// ... and whose table list names the touched table (full recovery).
    full: usize,
    /// Entries found in memory (ring), on disk (slow log), or both.
    from_disk: usize,
    from_mem: usize,
}

fn recover(expected: &[Expected], entries: &[tracelog::TimelineEntry]) -> Recovery {
    let mut r = Recovery {
        text_and_time: 0,
        full: 0,
        from_disk: 0,
        from_mem: 0,
    };
    for e in expected {
        let Some(hit) = entries
            .iter()
            .find(|t| t.statement == e.statement && t.started == e.started)
        else {
            continue;
        };
        r.text_and_time += 1;
        if hit.tables.iter().any(|t| t == e.table) {
            r.full += 1;
        }
        match hit.source {
            TraceSource::SlowLog => r.from_disk += 1,
            TraceSource::FlightRecorder => r.from_mem += 1,
            TraceSource::Both => {
                r.from_disk += 1;
                r.from_mem += 1;
            }
        }
    }
    r
}

/// Runs the experiment.
pub fn run(opts: &Options) -> Vec<Table> {
    let per_table = if opts.quick { 10 } else { 80 };

    let mut table = Table::new(
        "E15 - query timeline reconstruction after the performance_schema wipe",
        &[
            "variant",
            "statements",
            "perf-schema rows left",
            "text+timestamp",
            "full (with tables)",
            "from disk / from memory",
        ],
    );

    let variants: [(&str, DbConfig); 3] = [
        (
            "default",
            DbConfig {
                // Base cost 300us: every statement crosses this threshold,
                // so the workload above is exactly the slow-log contents.
                slow_query_threshold_us: 100,
                trace_ring_capacity: 4096,
                ..DbConfig::default()
            },
        ),
        (
            "telemetry_scrub_on_flush",
            DbConfig {
                slow_query_threshold_us: 100,
                trace_ring_capacity: 4096,
                telemetry_scrub_on_flush: true,
                ..DbConfig::default()
            },
        ),
        (
            "trace_enabled = false",
            DbConfig {
                slow_query_threshold_us: 100,
                trace_ring_capacity: 4096,
                trace_enabled: false,
                ..DbConfig::default()
            },
        ),
    ];

    for (name, config) in variants {
        let mut rng = StdRng::seed_from_u64(opts.seed ^ 0x15);
        let db = Db::open(config);
        let expected = workload(&db, per_table, &mut rng);

        // The hygiene step: wipe the statement history and digests
        // (plus, per config, the registry and the ring).
        db.flush_diagnostics();

        // The attack: a leaked full-state VM image.
        let obs = capture(&db, AttackVector::VmSnapshotLeak);
        let disk = obs.persistent_db.as_ref().unwrap();
        let mem = obs.volatile_db.as_ref().unwrap();
        let entries = tracelog::timeline(Some(disk), Some(mem));
        let r = recover(&expected, &entries);

        table.row(&[
            name.into(),
            expected.len().to_string(),
            (mem.statements_history.len() + mem.digest_summary.len()).to_string(),
            pct(r.text_and_time as f64 / expected.len() as f64),
            pct(r.full as f64 / expected.len() as f64),
            format!("{} / {}", r.from_disk, r.from_mem),
        ]);

        opts.absorb_db(&db);
    }

    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pct_cell(row: &[String], idx: usize) -> f64 {
        row[idx].trim_end_matches('%').parse().unwrap()
    }

    #[test]
    fn timeline_recovers_slow_statements_after_wipe() {
        let tables = run(&Options {
            quick: true,
            ..Default::default()
        });
        let t = &tables[0];
        assert_eq!(t.rows.len(), 3);

        // Every variant: the perf schema really was wiped.
        for row in &t.rows {
            assert_eq!(row[2], "0", "perf schema wiped in variant {}", row[0]);
        }

        // Default: >= 90% of slow statements recovered in full — text,
        // timestamp, AND touched table (the acceptance criterion).
        let default = &t.rows[0];
        assert!(pct_cell(default, 3) >= 90.0, "{default:?}");
        assert!(pct_cell(default, 4) >= 90.0, "{default:?}");

        // Scrub-on-flush: the ring is gone (memory recovers nothing) but
        // the disk records still carry the full timeline.
        let scrub = &t.rows[1];
        assert!(pct_cell(scrub, 4) >= 90.0, "{scrub:?}");
        let mem_count: u64 = scrub[5].split('/').nth(1).unwrap().trim().parse().unwrap();
        assert_eq!(mem_count, 0, "ring scrubbed: {scrub:?}");

        // Tracer off: text+timing still leaks via minimal slow-log
        // records, but table lists are lost.
        let off = &t.rows[2];
        assert!(pct_cell(off, 3) >= 90.0, "{off:?}");
        assert_eq!(pct_cell(off, 4), 0.0, "{off:?}");
    }
}
