//! Cross-node tracing benchmark (the `--xtrace-bench-json` output, and
//! the committed `BENCH_e19.json` baseline).
//!
//! Two kinds of numbers, deliberately separated:
//!
//! * **Correlation metrics** — attribution rate and probe-lane count
//!   per variant for a fixed workload. Deterministic (the join either
//!   holds or it doesn't), machine-independent, and what CI's
//!   perf-trajectory gate pins: tracing-on attribution must stay ≥ 0.9
//!   and `trace_id_hashing` must stay at exactly 0.
//! * **Timing metrics** — wall-clock of the client statement loop with
//!   tracing on vs off, the tracing tax on the real TCP round trip.
//!   Machine-dependent; reported for trajectory context, never gated.

use mdb_telemetry::json;

use crate::e19_xtrace::run_variant;

/// One xtrace-bench run.
#[derive(Clone, Debug)]
pub struct XtraceBench {
    /// Client DML statements per variant.
    pub writes: usize,
    /// Attribution rate with tracing on (expected 1.0).
    pub traced_attribution: f64,
    /// Process lanes the probe statement spans with tracing on.
    pub traced_probe_lanes: usize,
    /// Attribution rate under `trace_id_hashing` (expected 0.0).
    pub hashed_attribution: f64,
    /// Distinct ids still carved under hashing (present, unjoinable).
    pub hashed_carved: usize,
    /// Workload exposure under 1-in-4 sampling.
    pub sampled_exposure: f64,
    /// Client loop wall-clock with tracing on, microseconds.
    pub traced_wall_us: u64,
    /// Client loop wall-clock with tracing off, microseconds.
    pub untraced_wall_us: u64,
    /// The merged multi-node Chrome document from the traced variant.
    pub merged_chrome_json: String,
}

impl XtraceBench {
    /// Tracing's wall-clock overhead over the untraced loop (1.0 = no
    /// overhead). Timing-class: context, not a gate.
    pub fn tracing_overhead(&self) -> f64 {
        self.traced_wall_us as f64 / self.untraced_wall_us.max(1) as f64
    }

    /// Serialises as the `--xtrace-bench-json` document.
    pub fn to_json(&self) -> String {
        let mut w = json::Writer::new();
        w.obj_open();
        w.key("writes");
        w.u64(self.writes as u64);
        w.key("traced_attribution");
        w.f64(self.traced_attribution);
        w.key("traced_probe_lanes");
        w.u64(self.traced_probe_lanes as u64);
        w.key("hashed_attribution");
        w.f64(self.hashed_attribution);
        w.key("hashed_carved");
        w.u64(self.hashed_carved as u64);
        w.key("sampled_exposure");
        w.f64(self.sampled_exposure);
        w.key("traced_wall_us");
        w.u64(self.traced_wall_us);
        w.key("untraced_wall_us");
        w.u64(self.untraced_wall_us);
        w.key("tracing_overhead");
        w.f64(self.tracing_overhead());
        w.obj_close();
        w.into_string()
    }
}

/// Runs the benchmark: the E19 topology once per variant.
pub fn run(writes: usize) -> XtraceBench {
    let traced = run_variant("traced", true, false, 1, writes);
    let hashed = run_variant("hashed", true, true, 1, writes);
    let sampled = run_variant("sampled", true, false, 4, writes);
    let untraced = run_variant("untraced", false, false, 1, writes);
    XtraceBench {
        writes,
        traced_attribution: traced.attribution_rate,
        traced_probe_lanes: traced.probe_lanes,
        hashed_attribution: hashed.attribution_rate,
        hashed_carved: hashed.carved,
        sampled_exposure: sampled.exposure,
        traced_wall_us: traced.wall.as_micros() as u64,
        untraced_wall_us: untraced.wall.as_micros() as u64,
        merged_chrome_json: traced.merged_chrome_json,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_json_has_the_gated_keys() {
        let b = run(8);
        let js = b.to_json();
        assert!(js.contains("\"traced_attribution\":1"), "{js}");
        assert!(js.contains("\"hashed_attribution\":0"), "{js}");
        assert!(js.contains("\"traced_probe_lanes\":3"), "{js}");
        assert!(b.tracing_overhead() > 0.0);
        assert!(b.merged_chrome_json.contains("traceEvents"));
    }
}
