//! E21 (extension) — chaos failover: the deposed primary's fenced
//! divergent tail as a forensic channel, and `encrypted_wal` closing it.
//!
//! Part one replays the deterministic chaos schedule (partitions,
//! crash-restarts, clock skew; on odd seeds a divergence window
//! followed by a primary kill, election, and fencing) and audits every
//! recorded client operation with the consistency checker: no lost
//! acked writes outside the fenced quarantine, no fabricated or dirty
//! reads, staleness bounded by the router's documented lag window,
//! read-your-writes on primary-pinned sessions. The fleet must converge
//! with zero violations on every variant.
//!
//! Part two is the paper's move applied to failover wreckage: the
//! deposed primary is a machine that *just crashed* — its disk is
//! exactly what an attacker images cold. Fencing concentrates the most
//! recent acked-but-unreplicated writes into the `binlog.divergent`
//! sidecar. On a plaintext fleet the keyless carve recovers **every**
//! quarantined secret; on an `encrypted_wal` fleet it recovers none
//! (the attacker still counts sealed frames — size-and-count metadata
//! survives), while the key holder decodes the full quarantined tail
//! for legitimate post-mortem re-injection.

use minidb::engine::DbConfig;
use snapshot_attack::report::Table;

use crate::chaosbench::{self, LeakProbe, SeedRun};
use crate::{f2, pct, Options};

fn verdict_row(fleet: &str, r: &SeedRun) -> Vec<String> {
    vec![
        r.seed.to_string(),
        fleet.into(),
        format!(
            "{}p {}cr {}cs {}k",
            r.partitions, r.crash_restarts, r.clock_skews, r.kills
        ),
        r.acked_writes.to_string(),
        r.reads_ok.to_string(),
        r.promotions.to_string(),
        r.quarantined.to_string(),
        r.violations.to_string(),
        if r.converged { "CONVERGED" } else { "DIVERGED" }.into(),
    ]
}

fn carve_row(p: &LeakProbe) -> Vec<String> {
    vec![
        p.variant.into(),
        p.sidecar_bytes.to_string(),
        p.frames_total.to_string(),
        p.frames_sealed.to_string(),
        p.carved_statements.to_string(),
        p.run.quarantined.to_string(),
        pct(p.carve_coverage),
    ]
}

/// Runs the experiment.
pub fn run(opts: &Options) -> Vec<Table> {
    // One fault-only seed for the baseline verdict, one kill seed
    // probed over both fleet variants (the probes are full chaos runs
    // too — their verdicts join the table).
    let (even_seed, kill_seed) = (4, 5);
    let baseline = chaosbench::seed_run(even_seed, opts.quick, DbConfig::default());
    let plain = chaosbench::leak_probe(kill_seed, opts.quick, false);
    let sealed = chaosbench::leak_probe(kill_seed, opts.quick, true);

    let mut verdicts = Table::new(
        "E21a - chaos verdicts under the seeded fault schedule",
        &[
            "seed",
            "fleet",
            "faults (p=partition cr=crash cs=skew k=kill)",
            "acked writes",
            "reads",
            "promotions",
            "quarantined",
            "violations",
            "verdict",
        ],
    );
    verdicts.row(&verdict_row("plaintext", &baseline));
    verdicts.row(&verdict_row("plaintext", &plain.run));
    verdicts.row(&verdict_row("encrypted_wal", &sealed.run));

    let mut carve = Table::new(
        "E21b - keyless carve of the deposed primary's divergent sidecar",
        &[
            "fleet",
            "sidecar bytes",
            "frames",
            "sealed frames",
            "stmts carved",
            "quarantined secrets",
            "secrets exposed",
        ],
    );
    carve.row(&carve_row(&plain));
    carve.row(&carve_row(&sealed));

    let mut recovery = Table::new(
        "E21c - key-holder recovery from the sealed sidecar",
        &["metric", "value"],
    );
    recovery.row(&[
        "quarantined writes decoded with the fleet key".into(),
        sealed.keyholder_statements.to_string(),
    ]);
    recovery.row(&[
        "quarantined secrets recovered".into(),
        pct(sealed.keyholder_coverage),
    ]);
    recovery.row(&[
        "keyless coverage of the same sidecar".into(),
        pct(sealed.carve_coverage),
    ]);
    recovery.row(&[
        "plaintext-fleet keyless coverage (the channel)".into(),
        pct(plain.carve_coverage),
    ]);
    recovery.row(&[
        "promotion epoch after failover".into(),
        f2(plain.run.promotions as f64),
    ]);

    vec![verdicts, carve, recovery]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failover_stays_consistent_and_only_the_plaintext_corpse_leaks() {
        let tables = run(&Options {
            quick: true,
            ..Default::default()
        });
        let verdicts = &tables[0];
        for row in &verdicts.rows {
            assert_eq!(row[7], "0", "zero checker violations: {row:?}");
            assert_eq!(row[8], "CONVERGED", "{row:?}");
        }
        // The kill-seed rows promoted exactly once and quarantined
        // at least one secret; the fault-only row did neither.
        assert_eq!(verdicts.rows[0][5], "0");
        assert_eq!(verdicts.rows[1][5], "1");
        assert_eq!(verdicts.rows[2][5], "1");
        assert!(verdicts.rows[1][6].parse::<u64>().unwrap() > 0);

        let carve = &tables[1];
        let (plain, sealed) = (&carve.rows[0], &carve.rows[1]);
        // The plaintext corpse leaks every quarantined secret...
        assert_eq!(plain[6], "100.0%", "{plain:?}");
        assert_eq!(plain[3], "0");
        // ...the sealed corpse leaks none, though frames stay countable.
        assert_eq!(sealed[4], "0", "{sealed:?}");
        assert_eq!(sealed[6], "0.0%", "{sealed:?}");
        assert!(sealed[3].parse::<u64>().unwrap() > 0);

        // And the key holder still recovers the full tail.
        let recovery = &tables[2];
        assert_eq!(recovery.rows[1][1], "100.0%", "{:?}", recovery.rows);
    }
}
