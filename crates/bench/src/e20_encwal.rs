//! E20 (extension) — sealed log records + group commit: closing the
//! log-forensics channels (E2 redo/undo, E3 binlog, E14 relay) while
//! *gaining* write throughput.
//!
//! Part one re-runs the keyless carvers from E2/E3/E14 against two cold
//! images of the same workload: a stock plaintext engine and one with
//! `DbConfig::encrypted_wal` (BigFoot-style AEAD-sealed log records,
//! nonce = stream ‖ LSN). The plaintext image reconstructs the write
//! history verbatim; the encrypted image yields **zero** statements,
//! zero row images, and zero timestamps — the attacker sees only sealed
//! frames (lengths and stream ids, the residual metadata leak).
//! Replication is measured the same way: an encrypted fleet relays
//! ciphertext, so the E14 "snapshot any replica" move also goes dark.
//!
//! Part two is the performance side of the bargain (see
//! [`crate::walbench`]): per-statement sealing costs a measurable tax,
//! but the group-commit pipeline coalesces concurrent committers into
//! one fsync per batch — at 8 connections the *encrypted* engine beats
//! the *plaintext* seed write path.

use mdb_repl::router::{ReplicaSet, ReplicaSetConfig};
use minidb::engine::{Db, DbConfig};
use minidb::wal::{carve_enc_frames, BINLOG_FILE, REDO_FILE, UNDO_FILE};
use snapshot_attack::forensics::{binlog, relay, wal};
use snapshot_attack::report::Table;

use crate::{f2, walbench, Options};

/// The log key every encrypted node in the experiment shares.
const KEY: [u8; 32] = [0xE2; 32];

/// A sensitive value the carvers hunt for as a raw byte window.
const SECRET: &[u8] = b"dx-oncology";

fn encrypted_config() -> DbConfig {
    DbConfig {
        encrypted_wal: true,
        wal_key: Some(KEY),
        group_commit: true,
        ..DbConfig::default()
    }
}

/// Runs the single-node workload and returns the database.
fn run_workload(db: &Db, writes: usize) {
    let conn = db.connect("oltp");
    conn.execute("CREATE TABLE visits (id INT PRIMARY KEY, diagnosis TEXT)")
        .unwrap();
    for i in 0..writes {
        conn.execute(&format!(
            "INSERT INTO visits VALUES ({i}, 'dx-oncology-{i}')"
        ))
        .unwrap();
    }
    for i in (0..writes).step_by(4) {
        conn.execute(&format!(
            "UPDATE visits SET diagnosis = 'dx-remission-{i}' WHERE id = {i}"
        ))
        .unwrap();
    }
}

/// Counts raw byte windows of [`SECRET`] in an image file.
fn secret_windows(raw: &[u8]) -> usize {
    raw.windows(SECRET.len()).filter(|w| *w == SECRET).count()
}

/// Builds a 1-primary / 2-replica fleet, runs writes, purges the
/// primary's binlog, and returns the E14 relay carve count from replica
/// 0 plus the sealed-frame count in the same relay file.
fn fleet_relay_carve(base: DbConfig, writes: usize) -> (usize, usize, usize) {
    let mut set = ReplicaSet::start(ReplicaSetConfig {
        base,
        ..ReplicaSetConfig::default()
    })
    .expect("fleet starts");
    set.write("CREATE TABLE visits (id INT PRIMARY KEY, diagnosis TEXT)")
        .unwrap();
    for i in 0..writes {
        set.write(&format!(
            "INSERT INTO visits VALUES ({i}, 'dx-oncology-{i}')"
        ))
        .unwrap();
    }
    assert!(set.wait_for_sync(std::time::Duration::from_secs(30)));
    set.primary().purge_binlog();
    let image = set.replica(0).system_image();
    let carved = relay::carve_relay(&image.disk).len();
    let relay_raw = relay::relay_files(&image.disk)
        .first()
        .and_then(|name| image.disk.file(name))
        .unwrap_or(&[]);
    let sealed = carve_enc_frames(relay_raw).len();
    let windows = secret_windows(relay_raw);
    set.shutdown();
    (carved, sealed, windows)
}

/// Runs the experiment.
pub fn run(opts: &Options) -> Vec<Table> {
    let writes = if opts.quick { 120 } else { 600 };
    let fleet_writes = if opts.quick { 24 } else { 120 };

    // ===== part one: the carvers, plaintext vs sealed =====
    let plain_db = Db::open(DbConfig::default());
    run_workload(&plain_db, writes);
    let enc_db = Db::open(encrypted_config());
    run_workload(&enc_db, writes);

    let plain_disk = plain_db.disk_image();
    let enc_disk = enc_db.disk_image();
    let file = |disk: &minidb::DiskImage, name: &str| -> Vec<u8> {
        disk.file(name).unwrap_or(&[]).to_vec()
    };

    let mut carvers = Table::new(
        "E20a - keyless log carvers vs encrypted_wal (same workload)",
        &[
            "channel",
            "carver",
            "plaintext image",
            "encrypted image",
            "sealed frames",
            "secret windows (enc)",
        ],
    );
    let p_redo = file(&plain_disk, REDO_FILE);
    let e_redo = file(&enc_disk, REDO_FILE);
    carvers.row(&[
        "redo log".into(),
        "E2 reconstruct_writes".into(),
        wal::reconstruct_writes(&p_redo).len().to_string(),
        wal::reconstruct_writes(&e_redo).len().to_string(),
        carve_enc_frames(&e_redo).len().to_string(),
        secret_windows(&e_redo).to_string(),
    ]);
    let p_undo = file(&plain_disk, UNDO_FILE);
    let e_undo = file(&enc_disk, UNDO_FILE);
    carvers.row(&[
        "undo log".into(),
        "E2 before-images".into(),
        wal::reconstruct_before_images(&p_undo).len().to_string(),
        wal::reconstruct_before_images(&e_undo).len().to_string(),
        carve_enc_frames(&e_undo).len().to_string(),
        secret_windows(&e_undo).to_string(),
    ]);
    let p_binlog = file(&plain_disk, BINLOG_FILE);
    let e_binlog = file(&enc_disk, BINLOG_FILE);
    carvers.row(&[
        "binlog".into(),
        "E3 parse_binlog".into(),
        binlog::parse_binlog(&p_binlog).len().to_string(),
        binlog::parse_binlog(&e_binlog).len().to_string(),
        carve_enc_frames(&e_binlog).len().to_string(),
        secret_windows(&e_binlog).to_string(),
    ]);
    let (p_relay, _, _) = fleet_relay_carve(DbConfig::default(), fleet_writes);
    let (e_relay, e_relay_sealed, e_relay_windows) =
        fleet_relay_carve(encrypted_config(), fleet_writes);
    carvers.row(&[
        "relay log (replica 0, primary purged)".into(),
        "E14 carve_relay".into(),
        p_relay.to_string(),
        e_relay.to_string(),
        e_relay_sealed.to_string(),
        e_relay_windows.to_string(),
    ]);

    // The key holder still recovers everything (recovery must work).
    let mut recovery = Table::new(
        "E20b - key-holder recovery from the encrypted image",
        &["metric", "value"],
    );
    // The origin passed here only affects *sealing*; open() reads each
    // frame's origin from its authenticated header, so any key holder
    // opens any node's records.
    let crypto = minidb::wal::WalCrypto::new(KEY, 0);
    let opened = carve_enc_frames(&e_redo)
        .iter()
        .filter(|(_, sealed)| crypto.open(sealed).is_some())
        .count();
    recovery.row(&[
        "sealed redo frames opened with key".into(),
        opened.to_string(),
    ]);
    recovery.row(&[
        "rows readable through engine".into(),
        enc_db
            .connect("audit")
            .execute("SELECT COUNT(*) FROM visits")
            .unwrap()
            .rows[0][0]
            .to_string(),
    ]);

    // ===== part two: the write-path bargain =====
    let conn_counts: &[usize] = if opts.quick { &[1, 8] } else { &[1, 4, 8] };
    let inserts = if opts.quick { 40 } else { 150 };
    let bench = walbench::run(conn_counts, inserts);

    let mut perf = Table::new(
        "E20c - write-path throughput: crypto tax vs group-commit buyback",
        &[
            "variant",
            "connections",
            "stmts/sec",
            "fsyncs",
            "gc batches",
            "gc waits",
        ],
    );
    for r in &bench.runs {
        perf.row(&[
            r.variant.into(),
            r.connections.to_string(),
            format!("{:.0}", r.stmts_per_sec),
            r.fsyncs.to_string(),
            r.gc_batches.to_string(),
            r.gc_waits.to_string(),
        ]);
    }
    let max_conns = conn_counts.iter().copied().max().unwrap_or(1);
    let mut summary = Table::new("E20d - summary ratios", &["metric", "value"]);
    summary.row(&[
        format!("buyback_at_{max_conns} (enc_gc / plain_nogc)"),
        f2(bench.buyback_at(max_conns)),
    ]);
    summary.row(&[
        "crypto_tax_at_1 (plain_nogc / enc_nogc)".into(),
        f2(bench.crypto_tax_at(1)),
    ]);
    summary.row(&[
        format!("fsyncs_per_stmt_at_{max_conns} (enc_gc)"),
        f2(bench.fsyncs_per_stmt_at(max_conns)),
    ]);

    opts.absorb_db(&plain_db);
    opts.absorb_db(&enc_db);
    vec![carvers, recovery, perf, summary]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn carvers_go_dark_and_group_commit_buys_back() {
        let tables = run(&Options {
            quick: true,
            ..Default::default()
        });
        let carvers = &tables[0];
        for row in &carvers.rows {
            let plain: usize = row[2].parse().unwrap();
            let enc: usize = row[3].parse().unwrap();
            let sealed: usize = row[4].parse().unwrap();
            assert!(plain > 0, "plaintext {} must carve: {row:?}", row[0]);
            assert_eq!(enc, 0, "encrypted {} must carve empty: {row:?}", row[0]);
            assert!(sealed > 0, "ciphertext frames stay visible: {row:?}");
            assert_eq!(row[5], "0", "no secret byte windows: {row:?}");
        }
        let recovery = &tables[1];
        assert!(recovery.rows[0][1].parse::<u64>().unwrap() > 0);
        assert_eq!(recovery.rows[1][1], "120");
        let summary = &tables[3];
        let buyback: f64 = summary.rows[0][1].parse().unwrap();
        assert!(buyback >= 1.0, "buyback {buyback} < 1.0");
    }
}
