//! E9 — §6 "Seabed": three demonstrations.
//!
//! * **E9a** — SPLASHE's rewritten queries name one column per plaintext
//!   value; the digest table therefore accumulates an exact per-value
//!   query histogram, and frequency analysis (rank matching, the
//!   Lacharité–Paterson MLE) recovers the secret value→column map.
//! * **E9b** — Seabed's deterministic, comparable ORE: order + equality
//!   leakage lets the binomial/quantile attack and bipartite matching
//!   recover values outright from a snapshot of the data alone.
//! * **E9c** — enhanced SPLASHE: the padded DET tail is flat *at rest*,
//!   but query texts carved from the heap leak a per-ciphertext query
//!   histogram; frequency analysis maps DET ciphertexts to values, and —
//!   because the tail is deterministic — labels every matching *row*.

use corpus::zipf::Zipf;
use edb::seabed::{SeabedMode, SeabedTable};
use edb_crypto::Key;
use minidb::engine::{Db, DbConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use snapshot_attack::attacks::frequency::rank_match;
use snapshot_attack::attacks::matching::recovery_by_matching;
use snapshot_attack::report::Table;
use snapshot_attack::threat::{capture, AttackVector};

use crate::{pct, Options};

/// Runs all three sub-experiments.
pub fn run(opts: &Options) -> Vec<Table> {
    let mut out = vec![splashe_digest_attack(opts)];
    out.push(seabed_ore_attack(opts));
    out.push(enhanced_splashe_attack(opts));
    out
}

/// E9a: digest histogram → frequency analysis on basic SPLASHE.
fn splashe_digest_attack(opts: &Options) -> Table {
    let domain = 30u32;
    let (rows, queries) = if opts.quick {
        (300, 400)
    } else {
        (2_000, 3_000)
    };
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let zipf = Zipf::new(domain as usize, 1.0);

    let config = DbConfig {
        redo_capacity: 4 << 20,
        undo_capacity: 4 << 20,
        ..DbConfig::default()
    };
    let db = Db::open(config);
    let mut table =
        SeabedTable::create(&db, &Key([0x66; 32]), "sales", domain, SeabedMode::Basic).unwrap();
    for _ in 0..rows {
        table.insert(zipf.sample(&mut rng) as u32).unwrap();
    }
    // Victim: Zipf-distributed count queries (the query distribution the
    // attacker can model, e.g. from business context).
    for _ in 0..queries {
        let v = zipf.sample(&mut rng) as u32;
        table.count_eq(v).unwrap();
    }

    // ---- attacker: SQL injection reads the digest table ----
    let obs = capture(&db, AttackVector::SqlInjection);
    let inj = obs.sql.unwrap();
    let digests = inj
        .execute(
            "SELECT digest_text, count_star FROM \
             performance_schema.events_statements_summary_by_digest",
        )
        .unwrap();
    // Each `SELECT ASHE_SUM(cN) FROM sales` digest is one column's query
    // count — the exact histogram the paper describes.
    let mut observed: Vec<(u32, f64)> = Vec::new();
    for row in &digests.rows {
        let text = row[0].to_string();
        if !text.contains("ashe_sum") {
            continue;
        }
        if let Some(pos) = text.find("(c") {
            let digits: String = text[pos + 2..]
                .chars()
                .take_while(|c| c.is_ascii_digit())
                .collect();
            if let Ok(label) = digits.parse::<u32>() {
                let count: i64 = row[1].to_string().parse().unwrap_or(0);
                observed.push((label, count as f64));
            }
        }
    }
    // Auxiliary model: the query distribution.
    let model: Vec<(u32, f64)> = (0..domain).map(|v| (v, zipf.pmf(v as usize))).collect();
    let guesses = rank_match(&observed, &model);
    let correct = guesses
        .iter()
        .filter(|(label, value)| table.oracle_value_of_label(*label) == *value)
        .count();
    let observed_total: f64 = observed.iter().map(|(_, c)| c).sum();
    let correct_weighted: f64 = guesses
        .iter()
        .filter(|(label, value)| table.oracle_value_of_label(*label) == *value)
        .map(|(label, _)| {
            observed
                .iter()
                .find(|(l, _)| l == label)
                .map(|(_, c)| *c)
                .unwrap_or(0.0)
        })
        .sum();

    let mut t = Table::new(
        "E9a - SPLASHE column recovery from the digest-table query histogram",
        &["metric", "value"],
    );
    t.row(&["domain size".into(), domain.to_string()]);
    t.row(&["count queries issued".into(), queries.to_string()]);
    t.row(&[
        "columns observed in digest table".into(),
        observed.len().to_string(),
    ]);
    t.row(&[
        "columns correctly mapped (frequency analysis)".into(),
        format!(
            "{correct}/{} ({})",
            guesses.len(),
            pct(correct as f64 / guesses.len().max(1) as f64)
        ),
    ]);
    t.row(&[
        "queries whose value is revealed".into(),
        pct(correct_weighted / observed_total.max(1.0)),
    ]);
    t.row(&["random-guess baseline".into(), pct(1.0 / domain as f64)]);
    opts.absorb_db(&db);
    t
}

/// E9b: binomial + bipartite matching against Seabed's deterministic ORE.
fn seabed_ore_attack(opts: &Options) -> Table {
    let n = if opts.quick { 2_000 } else { 10_000 };
    // Ages with a triangular bulge — modellable from public data.
    let rows = corpus::customers::generate(&corpus::customers::CustomerParams {
        rows: n,
        ..Default::default()
    });
    let truth: Vec<u32> = rows.iter().map(|r| r.age).collect();
    // Aux model: an independent sample from the same population.
    let aux_rows = corpus::customers::generate(&corpus::customers::CustomerParams {
        rows: n,
        seed: 0xD1FF,
        ..Default::default()
    });

    // Seabed's ORE is deterministic and comparable: the attacker holding
    // the column alone sees the exact multiset of plaintext *ranks* and
    // the equality pattern. Distinct ciphertexts = distinct values.
    let mut distinct: Vec<u32> = truth.clone();
    distinct.sort_unstable();
    distinct.dedup();
    let counts = |vals: &[u32], v: u32| vals.iter().filter(|&&x| x == v).count() as f64;

    // Bipartite matching: ciphertexts (by rank, with frequencies) vs
    // candidate plaintexts 18..=90 (model frequencies + rank).
    let candidates: Vec<u32> = (18..=90).collect();
    let aux_ages: Vec<u32> = aux_rows.iter().map(|r| r.age).collect();
    let total = truth.len() as f64;
    let aux_total = aux_ages.len() as f64;
    let ct_freq: Vec<f64> = distinct
        .iter()
        .map(|&v| counts(&truth, v) / total)
        .collect();
    let cand_freq: Vec<f64> = candidates
        .iter()
        .map(|&v| counts(&aux_ages, v) / aux_total)
        .collect();
    // Cumulative positions capture rank information.
    let cum = |freqs: &[f64]| -> Vec<f64> {
        let mut acc = 0.0;
        freqs
            .iter()
            .map(|f| {
                let mid = acc + f / 2.0;
                acc += f;
                mid
            })
            .collect()
    };
    let ct_pos = cum(&ct_freq);
    let cand_pos = cum(&cand_freq);
    let guesses = recovery_by_matching(distinct.len(), candidates.len(), |i, j| {
        let freq_term = (ct_freq[i] - cand_freq[j]).powi(2);
        let rank_term = (ct_pos[i] - cand_pos[j]).powi(2);
        -(freq_term * 4.0 + rank_term)
    });
    let mut values_correct = 0usize;
    let mut rows_correct = 0.0f64;
    for (i, &v) in distinct.iter().enumerate() {
        if candidates[guesses[i]] == v {
            values_correct += 1;
            rows_correct += counts(&truth, v);
        }
    }

    let mut t = Table::new(
        "E9b - bipartite-matching attack on Seabed's deterministic ORE",
        &["metric", "value"],
    );
    t.row(&["rows".into(), n.to_string()]);
    t.row(&["distinct ciphertexts".into(), distinct.len().to_string()]);
    t.row(&[
        "distinct values exactly recovered".into(),
        format!(
            "{values_correct}/{} ({})",
            distinct.len(),
            pct(values_correct as f64 / distinct.len() as f64)
        ),
    ]);
    t.row(&[
        "rows whose value is revealed".into(),
        pct(rows_correct / total),
    ]);
    t.row(&[
        "random-guess baseline".into(),
        pct(1.0 / candidates.len() as f64),
    ]);
    t
}

/// E9c: enhanced SPLASHE row recovery through carved tail-query texts.
fn enhanced_splashe_attack(opts: &Options) -> Table {
    let domain = 20u32;
    let frequent: Vec<u32> = (0..4).collect(); // Zipf head gets columns.
    let (rows, queries) = if opts.quick {
        (200, 500)
    } else {
        (1_000, 2_500)
    };
    let mut rng = StdRng::seed_from_u64(opts.seed ^ 0xE9C);
    let zipf = Zipf::new(domain as usize, 1.0);

    let config = DbConfig {
        redo_capacity: 4 << 20,
        undo_capacity: 4 << 20,
        // Tail counts are full table scans: on this table they cross the
        // slow query threshold, so the slow log records them verbatim (§3).
        slow_query_threshold_us: 1_000,
        // The query cache would serve repeated identical counts from memory
        // and keep them out of the slow log; production deployments commonly
        // disable it (MySQL 8.0 removed it outright).
        query_cache_enabled: false,
        ..DbConfig::default()
    };
    let db = Db::open(config);
    let mut table = SeabedTable::create(
        &db,
        &Key([0x67; 32]),
        "metrics",
        domain,
        SeabedMode::Enhanced {
            frequent: frequent.clone(),
            pad_each_to: (rows / 10) as u64,
        },
    )
    .unwrap();
    let mut true_values = Vec::new();
    for _ in 0..rows {
        let v = zipf.sample(&mut rng) as u32;
        true_values.push(v);
        table.insert(v).unwrap();
    }
    table.pad_tail().unwrap();
    for _ in 0..queries {
        let v = zipf.sample(&mut rng) as u32;
        table.count_eq(v).unwrap();
    }

    // ---- attacker: disk theft is enough ----
    // The slow query log holds every tail-count query verbatim, each with
    // the DET ciphertext of the value it filtered on; the per-ciphertext
    // line counts are the query histogram the padding was meant to hide.
    // (The heap and statement history leak the same texts; the log is the
    // weakest-vector source.)
    let obs = capture(&db, AttackVector::DiskTheft);
    let disk = obs.persistent_db.unwrap();
    let mut ct_counts: std::collections::BTreeMap<Vec<u8>, f64> = Default::default();
    for rec in snapshot_attack::forensics::tracelog::carve_slow_log(&disk) {
        if rec.statement.contains("WHERE tail = X'") {
            for ct in snapshot_attack::forensics::binlog::extract_hex_literals(&rec.statement) {
                *ct_counts.entry(ct).or_insert(0.0) += 1.0;
            }
        }
    }
    let observed: Vec<(Vec<u8>, f64)> = ct_counts.into_iter().collect();
    // Model: query distribution restricted to tail values, renormalized.
    let tail_values: Vec<u32> = (0..domain).filter(|v| !frequent.contains(v)).collect();
    let model: Vec<(u32, f64)> = tail_values
        .iter()
        .map(|&v| (v, zipf.pmf(v as usize)))
        .collect();
    let guesses = rank_match(&observed, &model);

    // Score: ct→value correctness, then row labeling.
    let mut ct_correct = 0usize;
    let mut tail_rows_revealed = 0usize;
    for (ct, value) in &guesses {
        if &table.oracle_tail_ct(*value) == ct {
            ct_correct += 1;
            tail_rows_revealed += true_values.iter().filter(|&&v| v == *value).count();
        }
    }
    let tail_rows_total = true_values.iter().filter(|v| !frequent.contains(v)).count();

    let mut t = Table::new(
        "E9c - enhanced SPLASHE: row recovery via carved tail queries",
        &["metric", "value"],
    );
    t.row(&[
        "tail values in domain".into(),
        tail_values.len().to_string(),
    ]);
    t.row(&[
        "distinct tail ciphertexts in the slow log".into(),
        observed.len().to_string(),
    ]);
    t.row(&[
        "tail ciphertexts correctly mapped".into(),
        format!(
            "{ct_correct}/{} ({})",
            guesses.len(),
            pct(ct_correct as f64 / guesses.len().max(1) as f64)
        ),
    ]);
    t.row(&[
        "tail rows with value revealed".into(),
        format!(
            "{tail_rows_revealed}/{tail_rows_total} ({})",
            pct(tail_rows_revealed as f64 / tail_rows_total.max(1) as f64)
        ),
    ]);
    t.row(&[
        "at-rest tail histogram (after padding)".into(),
        "flat by construction - data alone reveals nothing".into(),
    ]);
    opts.absorb_db(&db);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pct_of(s: &str) -> f64 {
        let inside = s.rsplit('(').next().unwrap_or(s);
        inside
            .trim_end_matches(')')
            .trim_end_matches('%')
            .parse::<f64>()
            .unwrap()
            / 100.0
    }

    #[test]
    fn splashe_digest_recovery_beats_baseline() {
        let t = splashe_digest_attack(&Options {
            quick: true,
            ..Default::default()
        });
        let mapped = pct_of(&t.rows[3][1]);
        let baseline = pct_of(&t.rows[5][1]);
        assert!(
            mapped > 2.0 * baseline,
            "mapped {mapped} vs baseline {baseline}"
        );
        // The MLE metric: fraction of query mass whose value is revealed.
        // Head values dominate and rank-match reliably.
        let revealed = pct_of(&t.rows[4][1]);
        assert!(revealed > 0.35, "revealed {revealed}");
    }

    #[test]
    fn ore_matching_recovers_most_rows() {
        // Full scale, not quick: matching 73 distinct ages needs the
        // 10k-row sample to be in its statistical regime (at 2k rows the
        // tail frequencies are noise and recovery varies with the RNG
        // stream). The attack is pure in-memory matching, so full scale
        // is still fast.
        let t = seabed_ore_attack(&Options {
            quick: false,
            ..Default::default()
        });
        let revealed = pct_of(&t.rows[3][1]);
        assert!(revealed > 0.5, "revealed {revealed}");
    }

    #[test]
    fn enhanced_tail_rows_revealed() {
        let t = enhanced_splashe_attack(&Options {
            quick: true,
            ..Default::default()
        });
        let revealed = pct_of(&t.rows[3][1]);
        // 16 tail values: random guessing labels ~6% of tail rows. The
        // carved histogram does markedly better even at quick scale.
        assert!(revealed > 0.10, "revealed {revealed}");
    }
}
