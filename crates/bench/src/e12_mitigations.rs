//! E12 (extension) — mitigation ablation for the paper's §7 discussion.
//!
//! §7: "there is no such thing as a 'snapshot' attacker who cannot observe
//! past queries — because any realistic snapshot of the system contains
//! this information". This experiment hardens one channel at a time and
//! measures which §3–§5 artifacts still leak the victim's marker query,
//! showing that no single knob fixes the problem — transactional
//! durability alone keeps write history on disk.
//!
//! The telemetry column extends the ablation to the engine's metrics
//! registry: the marker *text* never enters a counter, but the
//! `sql.table_access.*` counters still place the victim's queries on the
//! `notes` table — and they survive a `FLUSH STATUS`-style diagnostics
//! wipe unless `telemetry_scrub_on_flush` is set (or telemetry is off).

use minidb::engine::{Db, DbConfig};
use snapshot_attack::forensics::{binlog, memscan, telemetry, wal};
use snapshot_attack::report::Table;

use crate::Options;

/// Channels probed after the workload.
struct Probe {
    binlog_text: bool,
    redo_rows: bool,
    history_text: bool,
    cache_text: bool,
    heap_text: bool,
    /// Metrics registry still reveals that `notes` was accessed.
    telemetry_tables: bool,
}

fn run_workload(opts: &Options, config: DbConfig, marker: &str, flush_diagnostics: bool) -> Probe {
    let db = Db::open(config);
    let conn = db.connect("app");
    conn.execute("CREATE TABLE notes (id INT PRIMARY KEY, body TEXT)")
        .unwrap();
    conn.execute("CREATE TABLE other (id INT PRIMARY KEY)")
        .unwrap();
    // The victim writes and reads the marker.
    conn.execute(&format!("INSERT INTO notes VALUES (1, '{marker}')"))
        .unwrap();
    conn.execute(&format!("SELECT * FROM notes WHERE body = '{marker}'"))
        .unwrap();
    // A little follow-up traffic on another table (so the history ring
    // still holds the marker and its cache entry stays valid).
    for i in 0..4 {
        conn.execute(&format!("INSERT INTO other VALUES ({i})"))
            .unwrap();
        conn.execute(&format!("SELECT * FROM other WHERE id = {i}"))
            .unwrap();
    }
    if flush_diagnostics {
        // The defender wipes the perf schema (TRUNCATE + FLUSH STATUS)
        // before the snapshot is taken.
        db.flush_diagnostics();
    }
    db.shutdown();

    let disk = db.disk_image();
    let mem = db.memory_image();
    opts.absorb_db(&db);
    let m = marker.as_bytes();
    let contains = |hay: &[u8]| hay.windows(m.len()).any(|w| w == m);

    Probe {
        binlog_text: disk
            .file(minidb::wal::BINLOG_FILE)
            .map(|raw| {
                binlog::parse_binlog(raw)
                    .iter()
                    .any(|e| e.statement.contains(marker))
            })
            .unwrap_or(false),
        redo_rows: disk
            .file(minidb::wal::REDO_FILE)
            .map(|raw| {
                wal::reconstruct_writes(raw)
                    .iter()
                    .filter_map(|w| w.row.as_ref())
                    .any(|r| r.values.iter().any(|v| v.to_string().contains(marker)))
            })
            .unwrap_or(false),
        history_text: mem
            .statements_history
            .iter()
            .chain(mem.statements_current.iter())
            .any(|e| e.sql_text.contains(marker)),
        cache_text: mem.cached_queries.iter().any(|q| q.contains(marker)),
        heap_text: memscan::count_occurrences(&mem.heap, m) > 0 || contains(&mem.heap),
        telemetry_tables: telemetry::table_access_distribution(&mem.metrics)
            .iter()
            .any(|d| d.table == "notes" && d.count > 0),
    }
}

fn mark(b: bool) -> &'static str {
    if b {
        "LEAKS"
    } else {
        "-"
    }
}

/// Runs the ablation.
pub fn run(opts: &Options) -> Vec<Table> {
    let base = || DbConfig {
        redo_capacity: 1 << 20,
        undo_capacity: 1 << 20,
        history_size: 10,
        ..DbConfig::default()
    };
    let variants: Vec<(&str, DbConfig, bool)> = vec![
        ("production defaults", base(), false),
        (
            "binlog disabled",
            {
                let mut c = base();
                c.binlog_enabled = false;
                c
            },
            false,
        ),
        (
            "query cache disabled",
            {
                let mut c = base();
                c.query_cache_enabled = false;
                c
            },
            false,
        ),
        (
            "heap secure-delete",
            {
                let mut c = base();
                c.heap_secure_delete = true;
                c
            },
            false,
        ),
        (
            "all three hardenings",
            {
                let mut c = base();
                c.binlog_enabled = false;
                c.query_cache_enabled = false;
                c.heap_secure_delete = true;
                c
            },
            false,
        ),
        // Telemetry ablation: wiping the perf schema does NOT wipe the
        // metrics registry — only the scrub knob (or disabling telemetry
        // outright) closes the channel.
        ("diagnostics flushed", base(), true),
        (
            "flush + telemetry scrub",
            {
                let mut c = base();
                c.telemetry_scrub_on_flush = true;
                c
            },
            true,
        ),
        (
            "telemetry disabled",
            {
                let mut c = base();
                c.telemetry_enabled = false;
                c
            },
            false,
        ),
    ];

    let mut t = Table::new(
        "E12 - which channels still leak the marker query, per hardening",
        &[
            "configuration",
            "binlog",
            "redo rows",
            "stmt history",
            "query cache",
            "heap",
            "telemetry",
        ],
    );
    for (i, (name, config, flush)) in variants.into_iter().enumerate() {
        let marker = format!("mitigation_marker_{i}_zxqv");
        let p = run_workload(opts, config, &marker, flush);
        t.row(&[
            name.to_string(),
            mark(p.binlog_text).into(),
            mark(p.redo_rows).into(),
            mark(p.history_text).into(),
            mark(p.cache_text).into(),
            mark(p.heap_text).into(),
            mark(p.telemetry_tables).into(),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_single_knob_closes_all_channels() {
        let tables = run(&Options::default());
        let rows = &tables[0].rows;
        // Defaults: everything leaks.
        assert!(rows[0][1..].iter().all(|c| c == "LEAKS"), "{:?}", rows[0]);
        // Each single hardening closes its channel...
        assert_eq!(rows[1][1], "-", "binlog off silences the binlog");
        assert_eq!(rows[2][4], "-", "cache off empties the query cache");
        // ...but every hardened variant still leaks somewhere.
        for row in rows {
            assert!(
                row[1..].iter().any(|c| c == "LEAKS"),
                "a snapshot with zero query history should be impossible: {row:?}"
            );
        }
        // Even with all three: redo rows (ACID) and statement history remain.
        assert_eq!(rows[4][2], "LEAKS");
    }

    #[test]
    fn telemetry_survives_the_diagnostics_flush() {
        let tables = run(&Options::default());
        let rows = &tables[0].rows;
        // Defaults: per-table counters place the victim on `notes`.
        assert_eq!(rows[0][6], "LEAKS");
        // FLUSH STATUS empties the statement history...
        assert_eq!(rows[5][3], "-", "flush wipes the perf schema");
        // ...but the metrics registry keeps the access distribution.
        assert_eq!(rows[5][6], "LEAKS", "telemetry outlives the flush");
        // The scrub knob closes the channel; so does disabling telemetry.
        assert_eq!(rows[6][6], "-", "scrub-on-flush zeroes the registry");
        assert_eq!(rows[7][6], "-", "disabled registry records nothing");
        // Neither helps with the §3 channels, of course.
        assert_eq!(rows[6][2], "LEAKS");
        assert_eq!(rows[7][1], "LEAKS");
    }
}
