//! E16 (extension) — zone-map synopses: the price of a fast scan.
//!
//! The engine's scan pruner keeps a per-page synopsis (min/max per INT
//! column, live-row count) in every heap page header plus an in-memory
//! mirror. Part one measures what that buys: 1%-selectivity range scans
//! over an unindexed column, full-materialize vs zone-map-pruned, in
//! rows/sec and pages skipped.
//!
//! Part two measures what it costs, in the paper's terms: the synopses
//! are plaintext *metadata about encrypted data*. A CryptDB-style
//! deployment stores the payload as ciphertext but leaves the
//! range-queryable column plaintext so the server can still prune — and
//! a cold disk snapshot then hands the attacker every page's value
//! bracket without touching a single ciphertext. The attacker's yield is
//! reported as the fraction of the 32-bit value space bracketed by the
//! union of recovered per-page ranges. Setting
//! `zone_maps_enabled = false` is the ablation: nothing to carve, and
//! part one shows the throughput it costs.

use edb_crypto::{kdf, rnd, Key};
use rand::rngs::StdRng;
use rand::SeedableRng;
use snapshot_attack::forensics::zonemap;
use snapshot_attack::report::Table;
use snapshot_attack::threat::{capture, AttackVector};

use crate::scanbench;
use crate::{f2, pct, Options};

/// Builds the encrypted-payload victim: plaintext `ts` (range-queried,
/// so the server must see it), ciphertext `payload` (EDB-encrypted
/// client-side, never plaintext on the server).
fn encrypted_victim(rows: usize, zone_maps: bool, seed: u64) -> minidb::engine::Db {
    let config = minidb::engine::DbConfig {
        redo_capacity: 16 << 20,
        undo_capacity: 16 << 20,
        query_cache_enabled: false,
        zone_maps_enabled: zone_maps,
        ..minidb::engine::DbConfig::default()
    };
    let db = minidb::engine::Db::open(config);
    let conn = db.connect("app");
    conn.execute("CREATE TABLE readings (id INT PRIMARY KEY, ts INT, payload BYTES)")
        .unwrap();
    let master = Key([0x21; 32]);
    let key = Key(kdf::derive_key(&master.0, b"e16/payload"));
    let mut rng = StdRng::seed_from_u64(seed);
    for chunk in (0..rows as i64).collect::<Vec<_>>().chunks(200) {
        let values: Vec<String> = chunk
            .iter()
            .map(|i| {
                let ct = rnd::encrypt(&key, format!("reading-{i}").as_bytes(), &mut rng);
                let hex: String = ct.iter().map(|b| format!("{b:02x}")).collect();
                format!("({i}, {}, X'{hex}')", i * scanbench::STEP)
            })
            .collect();
        conn.execute(&format!(
            "INSERT INTO readings VALUES {}",
            values.join(", ")
        ))
        .unwrap();
    }
    db
}

/// Recovery stats for one snapshot-carve variant.
struct Carve {
    pages: usize,
    fraction: f64,
    ciphertext_cracked: bool,
}

/// Shuts the victim down (flushing every page), captures the disk-theft
/// snapshot, and carves zone maps for the `ts` column (ordinal 1).
fn steal_and_carve(db: &minidb::engine::Db) -> Carve {
    db.shutdown();
    let obs = capture(db, AttackVector::DiskTheft);
    let disk = obs.persistent_db.as_ref().unwrap();
    let pages = zonemap::recover(Some(disk), None);
    // The attacker's direct plaintext yield: how much of a 32-bit value
    // space the union of recovered [min, max] ranges pins down. The
    // fixture's ts domain is rows × STEP wide, so the honest ceiling is
    // (rows × STEP) / 2^32.
    let fraction = zonemap::bracket_fraction(&pages, 1, 1u128 << 32);
    // Cross-check the encryption held: no payload plaintext on disk.
    let ciphertext_cracked = disk
        .files
        .values()
        .any(|d| d.windows(b"reading-".len()).any(|w| w == b"reading-"));
    Carve {
        pages: pages.len(),
        fraction,
        ciphertext_cracked,
    }
}

/// Runs the experiment.
pub fn run(opts: &Options) -> Vec<Table> {
    let rows = if opts.quick { 20_000 } else { 120_000 };
    let queries = if opts.quick { 8 } else { 20 };

    // ---- part one: throughput ----
    let cmp = scanbench::compare(rows, queries);
    let mut perf = Table::new(
        "E16 - zone-map pruned scans, 1% selectivity over an unindexed column",
        &[
            "rows",
            "full scan rows/s",
            "pruned rows/s",
            "speedup",
            "pages pruned",
            "pages decoded",
            "pruned",
        ],
    );
    perf.row(&[
        rows.to_string(),
        format!("{:.0}", cmp.full.rows_per_sec),
        format!("{:.0}", cmp.pruned.rows_per_sec),
        format!("{}x", f2(cmp.speedup())),
        cmp.pruned.pages_pruned.to_string(),
        cmp.pruned.pages_decoded.to_string(),
        pct(cmp.pruned_fraction()),
    ]);

    // ---- part two: the leakage surface ----
    // Smaller victims: the carve is per page, not per row.
    let victim_rows = if opts.quick { 4_000 } else { 20_000 };
    let domain_rows = victim_rows as f64 * scanbench::STEP as f64;
    let mut leak = Table::new(
        "E16 - zone maps carved from a cold disk snapshot (ts column)",
        &[
            "victim",
            "pages recovered",
            "32-bit space bracketed",
            "of stored domain",
            "payload plaintext",
        ],
    );

    let on = encrypted_victim(victim_rows, true, opts.seed ^ 0x16);
    let carve_on = steal_and_carve(&on);
    opts.absorb_db(&on);
    leak.row(&[
        "EDB-encrypted payload, zone maps on".into(),
        carve_on.pages.to_string(),
        // Sub-percent but decisively nonzero: print enough decimals.
        format!("{:.5}%", carve_on.fraction * 100.0),
        pct(carve_on.fraction * (1u64 << 32) as f64 / domain_rows),
        if carve_on.ciphertext_cracked {
            "LEAKED"
        } else {
            "none"
        }
        .into(),
    ]);

    let off = encrypted_victim(victim_rows, false, opts.seed ^ 0x61);
    let carve_off = steal_and_carve(&off);
    opts.absorb_db(&off);
    leak.row(&[
        "EDB-encrypted payload, zone_maps_enabled = false".into(),
        carve_off.pages.to_string(),
        format!("{:.5}%", carve_off.fraction * 100.0),
        pct(0.0),
        if carve_off.ciphertext_cracked {
            "LEAKED"
        } else {
            "none"
        }
        .into(),
    ]);

    vec![perf, leak]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pruning_pays_and_synopses_leak() {
        let tables = run(&Options {
            quick: true,
            ..Default::default()
        });

        // Part one: at 1% selectivity over a clustered column, >= 90% of
        // pages are pruned (the acceptance criterion).
        let perf = &tables[0].rows[0];
        let pruned_pct: f64 = perf[6].trim_end_matches('%').parse().unwrap();
        assert!(pruned_pct >= 90.0, "{perf:?}");
        let pruned: u64 = perf[4].parse().unwrap();
        assert!(pruned > 0, "{perf:?}");

        // Part two: the carve recovers pages and a nonzero slice of the
        // 32-bit space, while the ciphertext itself holds.
        let on = &tables[1].rows[0];
        let pages: usize = on[1].parse().unwrap();
        assert!(pages >= 2, "{on:?}");
        let frac: f64 = on[2].trim_end_matches('%').parse().unwrap();
        assert!(frac > 0.0, "{on:?}");
        // ... and brackets essentially the whole stored domain.
        let of_domain: f64 = on[3].trim_end_matches('%').parse().unwrap();
        assert!(of_domain >= 90.0, "{on:?}");
        assert_eq!(on[4], "none", "payload ciphertext must hold: {on:?}");

        // Ablation: zone maps off, nothing to carve.
        let off = &tables[1].rows[1];
        assert_eq!(off[1], "0", "{off:?}");
    }
}
