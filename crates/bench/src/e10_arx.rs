//! E10 — §6 "Arx": the read-repair protocol writes a transcript of every
//! range query into the transaction logs; structure + rank then recover
//! the encrypted index's values.

use edb::arx::ArxRangeIndex;
use edb_crypto::Key;
use minidb::engine::{Db, DbConfig};
use minidb::wal::BINLOG_FILE;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use snapshot_attack::attacks::arx_transcript::{
    reconstruct_transcripts, recover_values_by_rank, visit_frequencies,
};
use snapshot_attack::forensics::binlog::parse_binlog;
use snapshot_attack::report::Table;

use crate::{f2, pct, Options};

/// Runs the experiment.
pub fn run(opts: &Options) -> Vec<Table> {
    let (n, q) = if opts.quick { (256, 20) } else { (2_048, 100) };
    let domain = 1_000_000u64;
    let mut rng = StdRng::seed_from_u64(opts.seed ^ 0xA3);

    let config = DbConfig {
        redo_capacity: 32 << 20,
        undo_capacity: 32 << 20,
        ..DbConfig::default()
    };
    let db = Db::open(config);
    let mut ix = ArxRangeIndex::create(&db, &Key([0x42; 32]), "arx_salary", opts.seed).unwrap();
    let values: Vec<u64> = (0..n).map(|_| rng.gen_range(0..domain)).collect();
    for (row, &v) in values.iter().enumerate() {
        ix.insert(v, row as u64).unwrap();
    }
    // Victim range queries (uniform endpoints).
    let mut true_visits = Vec::new();
    for _ in 0..q {
        let a = rng.gen_range(0..domain);
        let b = rng.gen_range(0..domain);
        let (lo, hi) = (a.min(b), a.max(b));
        let matched = ix.range(lo, hi).unwrap();
        true_visits.push(matched.len());
    }

    // ---- attacker: persistent state only (disk theft) ----
    let disk = db.disk_image();
    let events = parse_binlog(disk.file(BINLOG_FILE).unwrap());
    let transcripts = reconstruct_transcripts(&events, "arx_salary");
    let freqs = visit_frequencies(&transcripts);

    // Rank-based value recovery with an independent auxiliary sample.
    let mut aux: Vec<u64> = (0..4 * n).map(|_| rng.gen_range(0..domain)).collect();
    aux.sort_unstable();
    let recovered = recover_values_by_rank(&ix.oracle_inorder(), &aux);
    let mut rel_err = 0.0;
    for (node, est) in &recovered {
        rel_err += (ix.oracle_value(*node) as f64 - *est as f64).abs() / domain as f64;
    }
    let mean_rel_err = rel_err / recovered.len().max(1) as f64;

    let mut t = Table::new(
        "E10 - Arx: range-query transcripts from the transaction logs",
        &["metric", "value", "paper"],
    );
    t.row(&["range queries issued".into(), q.to_string(), "-".into()]);
    t.row(&[
        "transcripts reconstructed from binlog".into(),
        transcripts.len().to_string(),
        "every query".into(),
    ]);
    t.row(&[
        "index nodes with visit counts leaked".into(),
        format!("{}/{}", freqs.len(), ix.len()),
        "-".into(),
    ]);
    let mean_path: f64 = transcripts
        .iter()
        .map(|t| t.visited.len() as f64)
        .sum::<f64>()
        / transcripts.len().max(1) as f64;
    t.row(&[
        "mean nodes visited per query".into(),
        f2(mean_path),
        "-".into(),
    ]);
    t.row(&[
        "mean relative error of rank-based value recovery".into(),
        pct(mean_rel_err),
        "-".into(),
    ]);
    t.row(&[
        "uniform-guess baseline error".into(),
        pct(1.0 / 3.0),
        "-".into(),
    ]);
    opts.absorb_db(&db);
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_query_leaves_a_transcript() {
        let tables = run(&Options {
            quick: true,
            ..Default::default()
        });
        let rows = &tables[0].rows;
        let issued: usize = rows[0][1].parse().unwrap();
        let reconstructed: usize = rows[1][1].parse().unwrap();
        assert_eq!(issued, reconstructed);
        let err: f64 = rows[4][1].trim_end_matches('%').parse::<f64>().unwrap() / 100.0;
        assert!(err < 0.05, "rank recovery error {err}");
    }
}
