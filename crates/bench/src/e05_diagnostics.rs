//! E5 — §4 "Diagnostic Tables": everything a SQL-injection attacker reads
//! with plain `SELECT`s — processlist, per-thread statement history
//! (10 entries), and the digest summary including the paper's worked
//! canonicalization example.
//!
//! E5d extends the section to the engine's telemetry registry: after the
//! operator wipes the performance schema (`FLUSH STATUS` / `TRUNCATE
//! performance_schema.*`, modeled by `Db::flush_diagnostics`), the
//! statement history reads back empty — but `information_schema.metrics`
//! still serves the lifetime per-table access counters, so the injected
//! attacker recovers the victim's query distribution anyway.

use minidb::engine::{Db, DbConfig};
use snapshot_attack::report::Table;
use snapshot_attack::threat::{capture, AttackVector};

use crate::Options;

/// Runs the experiment.
pub fn run(opts: &Options) -> Vec<Table> {
    let config = DbConfig {
        redo_capacity: 1 << 20,
        undo_capacity: 1 << 20,
        ..DbConfig::default()
    };
    let db = Db::open(config);
    let setup = db.connect("app");
    setup
        .execute("CREATE TABLE customers (id INT PRIMARY KEY, state TEXT, age INT)")
        .unwrap();
    for i in 0..40 {
        setup
            .execute(&format!(
                "INSERT INTO customers VALUES ({i}, '{}', {})",
                if i % 3 == 0 { "IN" } else { "AZ" },
                20 + i
            ))
            .unwrap();
    }

    // The victim's queries — including the paper's §4 worked example.
    let victim = db.connect("webapp");
    let paper_queries = [
        "SELECT * FROM CUSTOMERS WHERE STATE='IN'",
        "SELECT * FROM CUSTOMERS WHERE STATE='AZ'",
        "SELECT * FROM CUSTOMERS WHERE AGE >=25",
        "SELECT * FROM CUSTOMERS WHERE STATE='IN' AND AGE >=25",
    ];
    for q in paper_queries {
        victim.execute(q).unwrap();
    }
    for i in 0..20 {
        victim
            .execute(&format!("SELECT * FROM customers WHERE id = {i}"))
            .unwrap();
    }

    // ---- attacker: SQL injection, running as the web app's DB user ----
    let obs = capture(&db, AttackVector::SqlInjection);
    let inj = obs.sql.expect("sql injection has live SQL");

    let mut t_hist = Table::new(
        "E5a - events_statements_history via SQL injection (victim thread)",
        &["thread", "sql_text"],
    );
    let hist = inj
        .execute(&format!(
            "SELECT thread_id, sql_text FROM performance_schema.events_statements_history \
             WHERE thread_id = {}",
            victim.id
        ))
        .unwrap();
    for row in &hist.rows {
        t_hist.row(&[row[0].to_string(), row[1].to_string()]);
    }

    let mut t_digest = Table::new(
        "E5b - events_statements_summary_by_digest (query 'types' since restart)",
        &["digest_text", "count_star", "sum_rows_examined"],
    );
    let digests = inj
        .execute(
            "SELECT digest_text, count_star, sum_rows_examined \
             FROM performance_schema.events_statements_summary_by_digest \
             ORDER BY count_star DESC",
        )
        .unwrap();
    for row in &digests.rows {
        t_digest.row(&[row[0].to_string(), row[1].to_string(), row[2].to_string()]);
    }

    let mut t_proc = Table::new(
        "E5c - information_schema.processlist (live queries)",
        &["id", "user", "time", "info"],
    );
    let procs = inj
        .execute("SELECT * FROM information_schema.processlist")
        .unwrap();
    for row in &procs.rows {
        t_proc.row(&[
            row[0].to_string(),
            row[1].to_string(),
            row[2].to_string(),
            row[3].to_string(),
        ]);
    }
    // ---- E5d: the perf schema gets wiped; the metrics registry doesn't.
    // Model a defender reacting to E5a-c: TRUNCATE performance_schema.*
    // + FLUSH STATUS. Then inject again.
    db.flush_diagnostics();
    let mut t_metrics = Table::new(
        "E5d - information_schema.metrics AFTER the perf schema is wiped",
        &["metric", "value", "history rows left"],
    );
    let hist_after = inj
        .execute("SELECT thread_id, sql_text FROM performance_schema.events_statements_history")
        .unwrap()
        .rows
        .len();
    let metrics = inj
        .execute("SELECT metric, kind, value FROM information_schema.metrics")
        .unwrap();
    for row in &metrics.rows {
        let name = row[0].to_string();
        if name.starts_with("sql.table_access.") || name == "sql.statements" {
            t_metrics.row(&[name, row[2].to_string(), hist_after.to_string()]);
        }
    }
    opts.absorb_db(&db);
    vec![t_hist, t_digest, t_proc, t_metrics]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn history_is_bounded_at_ten() {
        let tables = run(&Options::default());
        assert_eq!(tables[0].rows.len(), 10);
    }

    #[test]
    fn digest_table_groups_like_the_paper() {
        let tables = run(&Options::default());
        let digest_rows = &tables[1].rows;
        let find = |needle: &str| -> i64 {
            digest_rows
                .iter()
                .find(|r| r[0].contains(needle))
                .map(|r| r[1].parse().unwrap())
                .unwrap_or(0)
        };
        // STATE='IN' and STATE='AZ' share one digest (count 2); the other
        // two queries have their own digests (count 1 each).
        assert_eq!(find("WHERE state = ?"), 2);
        assert_eq!(find("WHERE age >= ?"), 1);
        assert_eq!(find("WHERE state = ? AND age >= ?"), 1);
        // The per-id point query appears 20 times under one digest.
        assert_eq!(find("WHERE id = ?"), 20);
    }

    #[test]
    fn metrics_survive_the_perf_schema_wipe() {
        let tables = run(&Options::default());
        let rows = &tables[3].rows;
        // The wipe worked: zero history rows remain...
        assert!(rows.iter().all(|r| r[2] == "0"));
        // ...but the telemetry registry still exposes the victim's
        // per-table access distribution via plain SQL.
        let customers = rows
            .iter()
            .find(|r| r[0] == "sql.table_access.customers")
            .expect("per-table counter visible after flush");
        let count: u64 = customers[1].parse().unwrap();
        // 40 inserts + 24 victim selects, at minimum.
        assert!(count >= 64, "customers accesses = {count}");
        let stmts = rows.iter().find(|r| r[0] == "sql.statements").unwrap();
        assert!(stmts[1].parse::<u64>().unwrap() >= 65);
    }

    #[test]
    fn attacker_sees_own_injected_query_in_processlist() {
        let tables = run(&Options::default());
        let procs = &tables[2].rows;
        assert!(procs.iter().any(|r| r[3].contains("processlist")));
    }
}
