//! E6 — §5's heap-persistence experiment, re-run script-for-script:
//!
//! 1. issue a `SELECT` with a random string that appears nowhere in the
//!    database;
//! 2. issue 100 matching and 900 non-matching `SELECT`s;
//! 3. insert 500 random rows and make 1,000 more `SELECT`s;
//! 4. wait ~20 minutes, make 100,000 more `SELECT`s;
//! 5. dump the process memory and count occurrences of the original
//!    query text and of the random string alone.
//!
//! The paper found the full query text in **3** distinct locations and
//! the bare string in 3 more.

use minidb::engine::{Db, DbConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use snapshot_attack::forensics::memscan;
use snapshot_attack::report::Table;

use crate::Options;

fn random_token(rng: &mut StdRng, len: usize) -> String {
    const ALPHA: &[u8] = b"abcdefghijklmnopqrstuvwxyz";
    (0..len)
        .map(|_| ALPHA[rng.gen_range(0..ALPHA.len())] as char)
        .collect()
}

/// Runs the experiment.
pub fn run(opts: &Options) -> Vec<Table> {
    let tail_queries = if opts.quick { 2_000 } else { 100_000 };
    let mut rng = StdRng::seed_from_u64(opts.seed);

    let config = DbConfig {
        redo_capacity: 8 << 20,
        undo_capacity: 8 << 20,
        ..DbConfig::default()
    };
    let db = Db::open(config);
    let conn = db.connect("app");
    conn.execute("CREATE TABLE inbox (id INT PRIMARY KEY, sender TEXT, subject TEXT)")
        .unwrap();
    for i in 0..200 {
        conn.execute(&format!(
            "INSERT INTO inbox VALUES ({i}, 'user{}', 'subject {i}')",
            i % 17
        ))
        .unwrap();
    }

    // Step 1: the marker query — a random string as the filtered value,
    // matching no rows (the paper used a random column name; a random
    // WHERE parameter exercises the same allocation paths, and §5 repeats
    // the experiment both ways).
    let marker = random_token(&mut rng, 24);
    let marker_query = format!("SELECT * FROM inbox WHERE sender = '{marker}'");
    conn.execute(&marker_query).unwrap();

    // Step 2: 100 matching + 900 non-matching SELECTs.
    for i in 0..100 {
        conn.execute(&format!(
            "SELECT * FROM inbox WHERE sender = 'user{}'",
            i % 17
        ))
        .unwrap();
    }
    for i in 0..900 {
        conn.execute(&format!("SELECT * FROM inbox WHERE sender = 'ghost{i}'"))
            .unwrap();
    }
    // Step 3: 500 random inserts, 1,000 more SELECTs.
    for i in 0..500 {
        conn.execute(&format!(
            "INSERT INTO inbox VALUES ({}, 'u{}', '{}')",
            1000 + i,
            rng.gen_range(0..50),
            random_token(&mut rng, 40)
        ))
        .unwrap();
    }
    for i in 0..1000 {
        conn.execute(&format!("SELECT * FROM inbox WHERE id = {}", i % 1500))
            .unwrap();
    }
    // Step 4: wait ~20 minutes, then the long tail.
    db.advance_time(20 * 60);
    for i in 0..tail_queries {
        conn.execute(&format!("SELECT * FROM inbox WHERE id = {}", i % 1500))
            .unwrap();
    }

    // Step 5: dump memory and search.
    let mem = db.memory_image();
    let full_hits = memscan::count_occurrences(&mem.heap, marker_query.as_bytes());
    let marker_hits = memscan::count_occurrences(&mem.heap, marker.as_bytes());

    let mut t = Table::new(
        "E6 - marker query persistence in the process heap (paper: 3 + 3)",
        &["measurement", "this run", "paper"],
    );
    t.row(&[
        format!("full query text copies (len {})", marker_query.len()),
        full_hits.to_string(),
        "3".into(),
    ]);
    t.row(&[
        "marker string occurrences (incl. inside full copies)".into(),
        marker_hits.to_string(),
        "6".into(),
    ]);
    t.row(&[
        "statements executed after the marker".into(),
        (2_500 + tail_queries).to_string(),
        "102,000".into(),
    ]);
    t.row(&[
        "heap image size (bytes)".into(),
        mem.heap.len().to_string(),
        "-".into(),
    ]);
    opts.absorb_db(&db);
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marker_survives_the_workload() {
        let tables = run(&Options {
            quick: true,
            ..Default::default()
        });
        let rows = &tables[0].rows;
        let full: usize = rows[0][1].parse().unwrap();
        let bare: usize = rows[1][1].parse().unwrap();
        assert!(
            full >= 1,
            "the freed marker query text must persist in the heap"
        );
        assert!(bare >= full, "bare-string count includes full copies");
    }
}
