//! E4 — §3 "Inferring reads": the buffer-pool dump file reveals the
//! B+ tree paths of recent `SELECT`s from persistent state alone.

use minidb::engine::{Db, DbConfig};
use minidb::storage::DUMP_FILE;
use minidb::value::Value;
use snapshot_attack::forensics::bufpool::{parse_dump, recently_read_ranges};
use snapshot_attack::report::Table;

use crate::{pct, Options};

/// Runs the experiment.
pub fn run(opts: &Options) -> Vec<Table> {
    let rows = if opts.quick { 2_000 } else { 20_000 };
    let queries: &[(i64, i64)] = &[(100, 140), (9_000, 9_030), (15_000, 15_020)];

    let config = DbConfig {
        redo_capacity: 16 << 20,
        undo_capacity: 16 << 20,
        buffer_pool_pages: 96,
        ..DbConfig::default()
    };
    let db = Db::open(config);
    let conn = db.connect("app");
    conn.execute("CREATE TABLE s (k INT PRIMARY KEY, v TEXT)")
        .unwrap();
    for chunk in (0..rows as i64).collect::<Vec<_>>().chunks(200) {
        let values: Vec<String> = chunk.iter().map(|i| format!("({i}, 'v{i}')")).collect();
        conn.execute(&format!("INSERT INTO s VALUES {}", values.join(", ")))
            .unwrap();
    }
    // The victim's recent reads.
    for &(lo, hi) in queries {
        if hi < rows as i64 {
            conn.execute(&format!("SELECT * FROM s WHERE k >= {lo} AND k <= {hi}"))
                .unwrap();
        }
    }
    db.shutdown(); // Writes the LRU dump, like MySQL.

    // ---- attacker: disk only ----
    let disk = db.disk_image();
    let dump = parse_dump(disk.file(DUMP_FILE).unwrap());
    let ranges = recently_read_ranges(&dump, "index_s_k.ibd", disk.file("index_s_k.ibd").unwrap());

    let mut t = Table::new(
        "E4 - recently read key ranges from the buffer-pool dump",
        &["rank", "leaf page", "key range", "overlaps a victim query"],
    );
    let top = ranges.iter().take(8);
    let mut hits = 0usize;
    let mut shown = 0usize;
    for (rank, (page, min, max)) in top.enumerate() {
        let (Value::Int(lo), Value::Int(hi)) = (min, max) else {
            continue;
        };
        let overlap = queries
            .iter()
            .any(|&(qlo, qhi)| *lo <= qhi && *hi >= qlo && qhi < rows as i64);
        if overlap {
            hits += 1;
        }
        shown += 1;
        t.row(&[
            (rank + 1).to_string(),
            page.to_string(),
            format!("[{lo}, {hi}]"),
            if overlap { "yes".into() } else { "no".into() },
        ]);
    }
    let mut summary = Table::new("E4 - summary", &["metric", "value"]);
    summary.row(&["leaf pages in dump".into(), ranges.len().to_string()]);
    summary.row(&[
        "top-ranked leaves overlapping victim queries".into(),
        format!(
            "{hits}/{shown} ({})",
            pct(hits as f64 / shown.max(1) as f64)
        ),
    ]);
    opts.absorb_db(&db);
    vec![t, summary]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hottest_leaves_betray_recent_queries() {
        let tables = run(&Options {
            quick: true,
            ..Default::default()
        });
        // In quick mode only the first two victim queries fit the table;
        // the top-ranked leaf must overlap one of them.
        assert_eq!(tables[0].rows[0][3], "yes", "{:?}", tables[0].rows);
    }
}
