//! E19 (extension) — distributed tracing as *cross-node correlation
//! glue*.
//!
//! PR 7's fleet (client → server → engine → replica) gets the feature
//! every operator asks for next: end-to-end distributed tracing. Each
//! client statement travels under a 128-bit trace id that rides the v2
//! wire frame, the engine's trace records, and the binlog — so one
//! logical request leaves spans on the client, the server, and every
//! replica, and `trace merge` joins them into one timeline with
//! NTP-style clock-offset estimation from the wire spans.
//!
//! The attack is the feature read backwards. The same id that makes a
//! request followable for the operator makes it *joinable* for an
//! attacker: a cold image of one replica yields trace ids from the
//! relay log and the replica's own slow log, and any copy of the
//! primary's slow log maps those ids to client connection ids. The
//! carved write history of E14 is thereby attributed — statement text,
//! timing, and volume, per client session — which is exactly the
//! correlation step the volume-attack literature assumes as given.
//!
//! The experiment runs the full TCP topology under four variants:
//! tracing on, client-side 1-in-4 sampling, `trace_id_hashing` (the
//! primary rehashes ids with a process-local key at the replication
//! boundary), and tracing off — measuring attribution rate, exposure of
//! the executed workload, and how many process lanes a probe statement
//! appears on after a merge.

use std::time::Duration;

use mdb_repl::router::{ReplicaSet, ReplicaSetConfig};
use mdb_server::{MdbClient, MdbServer, ServerOptions};
use mdb_trace::merge::{lanes_with_trace, merge_chrome_json, offsets_us, NodeTraces};
use mdb_trace::Recorder;
use minidb::engine::DbConfig;
use snapshot_attack::forensics::xtrace;
use snapshot_attack::report::Table;

use crate::{pct, Options};

/// The engine's simulated clock base (`DbConfig::start_time_unix`).
const FLEET_CLOCK_BASE: i64 = 1_483_228_800;
/// The client's clock runs this many seconds *behind* the fleet —
/// deliberately unsynchronized, so the merge has a real offset to
/// estimate from the wire spans.
pub const CLIENT_CLOCK_SKEW_S: i64 = -7;

/// One variant's full outcome.
pub struct VariantOutcome {
    /// Variant label.
    pub name: &'static str,
    /// Client statements executed (DDL + DML).
    pub executed: usize,
    /// Distinct trace ids carved from the replica image.
    pub carved: usize,
    /// Carved ids joined to a primary session.
    pub matched: usize,
    /// `matched / carved` — attribution among what was carved.
    pub attribution_rate: f64,
    /// `matched / executed` — how much of the workload was attributed.
    pub exposure: f64,
    /// Process lanes holding the probe statement's trace after a merge.
    pub probe_lanes: usize,
    /// Estimated per-node clock offsets against the client lane, µs.
    pub offsets_us: Vec<(String, i64)>,
    /// The merged multi-node Chrome `trace_event` document.
    pub merged_chrome_json: String,
    /// The per-node trace collections the merge consumed.
    pub nodes: Vec<NodeTraces>,
    /// Wall-clock time of the client statement loop.
    pub wall: Duration,
}

/// Runs one topology variant: a 1-primary/1-replica `ReplicaSet`, the
/// primary served over TCP, one traced client running `writes` inserts.
pub fn run_variant(
    name: &'static str,
    tracing: bool,
    hashing: bool,
    sample_every: u64,
    writes: usize,
) -> VariantOutcome {
    let base = DbConfig {
        // Everything lands in the slow log: the artifact under attack.
        slow_query_threshold_us: 0,
        trace_id_hashing: hashing,
        query_cache_enabled: false,
        // "tracing off" means the whole fleet: with the engine recorder
        // left on, the engine self-generates root ids for unsampled
        // statements and the binlog carries them anyway.
        trace_enabled: tracing,
        ..DbConfig::default()
    };
    let mut set = ReplicaSet::start(ReplicaSetConfig {
        replicas: 1,
        max_read_lag: 1_000,
        base,
        ..ReplicaSetConfig::default()
    })
    .expect("replica set starts");
    set.primary().trace_recorder().set_node("primary");
    set.replica(0).trace_recorder().set_node("replica-0");
    let srv =
        MdbServer::start(set.primary().clone(), ServerOptions::default()).expect("server binds");

    let client_rec = Recorder::new(4096);
    client_rec.set_node("client");
    let mut client = MdbClient::connect(srv.local_addr(), "victim").expect("client connects");
    client.set_tracing(tracing);
    client.set_trace_sampling(sample_every);
    client.attach_recorder(client_rec.clone());
    // The engine's cost model stamps a statement at clock+1 (it
    // advances, then records); the client stamps at clock (it records,
    // then advances). The +1 aligns the two conventions so the *modeled*
    // skew between the lanes is exactly CLIENT_CLOCK_SKEW_S.
    client.set_clock(FLEET_CLOCK_BASE + CLIENT_CLOCK_SKEW_S + 1);

    let started = std::time::Instant::now();
    client
        .query("CREATE TABLE visits (id INT PRIMARY KEY, patient TEXT, ward INT)")
        .unwrap();
    let mut probe_trace_id = None;
    for i in 0..writes {
        client
            .query(&format!(
                "INSERT INTO visits VALUES ({i}, 'patient-{i}', {})",
                i % 20
            ))
            .unwrap();
        // Probe: the last *sampled* statement's trace id.
        if let Some(c) = client.last_ctx() {
            if c.sampled {
                probe_trace_id = Some(c.trace_id);
            }
        }
    }
    let wall = started.elapsed();
    let executed = writes + 1;
    assert!(
        set.wait_for_sync(Duration::from_secs(30)),
        "replica catches up"
    );

    // ===== the attack: image the replica, join against the primary =====
    let replica_disk = set.replica(0).disk_image();
    let carved = xtrace::carve_replica_trace_ids(&replica_disk);
    let index = xtrace::primary_session_index(&set.primary().disk_image());
    let attribution = xtrace::attribute(&carved, &index);

    // ===== the feature: merge the three nodes' traces into one view ====
    let nodes = vec![
        NodeTraces {
            node: "client".into(),
            traces: client_rec.traces(),
        },
        NodeTraces {
            node: "primary".into(),
            traces: set.primary().query_traces(),
        },
        NodeTraces {
            node: "replica-0".into(),
            traces: set.replica(0).query_traces(),
        },
    ];
    let probe_lanes = probe_trace_id.map_or(0, |id| lanes_with_trace(&nodes, id));
    let offsets = offsets_us(&nodes);
    let merged = merge_chrome_json(&nodes);
    set.shutdown();

    VariantOutcome {
        name,
        executed,
        carved: attribution.carved,
        matched: attribution.matched,
        attribution_rate: attribution.rate(),
        exposure: attribution.matched as f64 / executed as f64,
        probe_lanes,
        offsets_us: offsets,
        merged_chrome_json: merged,
        nodes,
        wall,
    }
}

/// Runs the experiment.
pub fn run(opts: &Options) -> Vec<Table> {
    let writes = if opts.quick { 24 } else { 120 };
    let variants = [
        run_variant("tracing on", true, false, 1, writes),
        run_variant("sampling 1-in-4", true, false, 4, writes),
        run_variant("trace_id_hashing", true, true, 1, writes),
        run_variant("tracing off", false, false, 1, writes),
    ];
    // The tracing-on variant's node-tagged traces feed the `--trace`
    // Chrome export: one process lane per node.
    for n in &variants[0].nodes {
        opts.traces.absorb(n.traces.clone());
    }

    let mut attribution = Table::new(
        "E19 - session attribution from a cold replica image",
        &[
            "variant",
            "executed",
            "ids carved",
            "attributed",
            "attribution rate",
            "workload exposure",
            "probe lanes",
        ],
    );
    for v in &variants {
        attribution.row(&[
            v.name.into(),
            v.executed.to_string(),
            v.carved.to_string(),
            v.matched.to_string(),
            pct(v.attribution_rate),
            pct(v.exposure),
            v.probe_lanes.to_string(),
        ]);
    }

    let mut merge = Table::new(
        "E19 - merged timeline: estimated clock offsets vs client lane",
        &["variant", "node", "offset estimate", "true offset"],
    );
    for v in &variants {
        for (node, off) in &v.offsets_us {
            if node == "client" {
                continue;
            }
            merge.row(&[
                v.name.into(),
                node.clone(),
                format!("{:+.1} s", *off as f64 / 1e6),
                // The fleet runs 7 s ahead of the client clock, so
                // landing fleet spans on the client lane subtracts 7 s.
                if v.name == "tracing off" || (v.name == "trace_id_hashing" && node != "primary") {
                    "n/a (no shared ids)".into()
                } else {
                    format!("{:+.1} s", CLIENT_CLOCK_SKEW_S as f64)
                },
            ]);
        }
    }

    vec![attribution, merge]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracing_on_attributes_and_merges_three_lanes() {
        let v = run_variant("t", true, false, 1, 16);
        assert!(v.carved >= v.executed, "relay + slow log both carve");
        assert!(v.attribution_rate >= 0.9, "{}", v.attribution_rate);
        assert!(v.exposure >= 0.9, "{}", v.exposure);
        assert_eq!(v.probe_lanes, 3, "client, primary, replica");
        // The merge recovers the deliberate -7 s client clock skew.
        for (node, off) in &v.offsets_us {
            if node != "client" {
                let secs = *off as f64 / 1e6;
                assert!(
                    (secs - CLIENT_CLOCK_SKEW_S as f64).abs() < 1.5,
                    "{node}: {secs}"
                );
            }
        }
        assert!(v.merged_chrome_json.contains("\"client\""));
        assert!(v.merged_chrome_json.contains("\"replica-0\""));
    }

    #[test]
    fn hashing_zeroes_the_join() {
        let v = run_variant("h", true, true, 1, 8);
        assert!(v.carved > 0, "ids still present, just unjoinable");
        assert_eq!(v.matched, 0);
        assert_eq!(v.attribution_rate, 0.0);
        // The replica lane falls out of the probe's trace; the client
        // and primary lanes (which never cross the rehash boundary)
        // keep it.
        assert_eq!(v.probe_lanes, 2);
    }

    #[test]
    fn tracing_off_leaves_nothing_to_carve() {
        let v = run_variant("off", false, false, 1, 8);
        assert_eq!(v.carved, 0);
        assert_eq!(v.probe_lanes, 0);
    }
}
