//! E14 (extension) — replication as a *multiplied* snapshot surface.
//!
//! A 1-primary / 2-replica `ReplicaSet` runs a write workload with
//! concurrent routed reads and an injected mid-stream disconnect. After
//! the fleet syncs, the primary performs the textbook hygiene step —
//! `PURGE BINARY LOGS` — and the attacker snapshots a *replica* instead:
//! the relay log yields the executed write statements, verbatim and
//! timestamped. The experiment also shows the surface multiplying again:
//! each replica re-executes shipped statements through its own engine,
//! so its *own* binlog re-logs the history a third time.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use mdb_repl::router::{ReadTarget, ReplicaSet, ReplicaSetConfig};
use minidb::engine::DbConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use snapshot_attack::forensics::{binlog, relay};
use snapshot_attack::report::Table;
use snapshot_attack::threat::{capture_replicated, AttackVector, CaptureSite};

use crate::{pct, Options};

/// Runs the experiment.
pub fn run(opts: &Options) -> Vec<Table> {
    let writes = if opts.quick { 60 } else { 400 };
    let mut rng = StdRng::seed_from_u64(opts.seed ^ 0x14);

    let mut set = ReplicaSet::start(ReplicaSetConfig {
        replicas: 2,
        max_read_lag: 1_000,
        base: DbConfig {
            redo_capacity: 8 << 20,
            undo_capacity: 8 << 20,
            ..DbConfig::default()
        },
        ..ReplicaSetConfig::default()
    })
    .expect("replica set starts");

    set.write("CREATE TABLE visits (id INT PRIMARY KEY, patient TEXT, ward INT)")
        .unwrap();

    // Concurrent routed reads while the writes run.
    let stop = AtomicBool::new(false);
    let mut executed: Vec<String> = Vec::with_capacity(writes);
    let (read_attempts, reads_total, reads_on_replicas, max_lag_seen, retries) =
        std::thread::scope(|s| {
            let reader = s.spawn(|| {
                let mut attempts = 0u64;
                let mut total = 0u64;
                let mut on_replicas = 0u64;
                let mut max_lag = 0u64;
                while !stop.load(Ordering::SeqCst) {
                    attempts += 1;
                    if matches!(set.route_read(), ReadTarget::Replica(_)) {
                        on_replicas += 1;
                    }
                    // An early routed read can fail while the replica is
                    // still behind the CREATE TABLE — that is lag, not loss.
                    if set.read("SELECT COUNT(*) FROM visits").is_ok() {
                        total += 1;
                    }
                    for st in set.status() {
                        max_lag = max_lag.max(st.lag_events);
                    }
                    std::thread::sleep(Duration::from_micros(200));
                }
                (attempts, total, on_replicas, max_lag)
            });

            for i in 0..writes {
                let stmt = format!(
                    "INSERT INTO visits VALUES ({i}, 'patient-{}', {})",
                    rng.gen_range(0..10_000),
                    rng.gen_range(0..20)
                );
                set.write(&stmt).unwrap();
                executed.push(stmt);
                if i == writes / 2 {
                    // Cut replica 0's link mid-stream; it must reconnect and
                    // resume without losing or duplicating events.
                    set.inject_disconnect(0);
                }
            }
            let synced = set.wait_for_sync(Duration::from_secs(30));
            assert!(synced, "replicas catch up after the injected disconnect");
            stop.store(true, Ordering::SeqCst);
            let (attempts, total, on_replicas, max_lag) = reader.join().unwrap();
            let retries: u64 = set.status().iter().map(|st| st.retries).sum();
            (attempts, total, on_replicas, max_lag, retries)
        });

    // Row counts agree everywhere: nothing lost, nothing duplicated.
    let primary_rows = set
        .primary()
        .connect("audit")
        .execute("SELECT COUNT(*) FROM visits")
        .unwrap()
        .rows[0][0]
        .to_string();
    let mut topology = Table::new(
        "E14 - replicated topology under concurrent load",
        &["metric", "value"],
    );
    topology.row(&["write statements on primary".into(), writes.to_string()]);
    topology.row(&["rows on primary".into(), primary_rows.to_string()]);
    for i in 0..set.replica_count() {
        let conn = set.replica(i).connect("audit");
        let n = conn.execute("SELECT COUNT(*) FROM visits").unwrap().rows[0][0].to_string();
        topology.row(&[format!("rows on replica {i}"), n]);
    }
    topology.row(&["concurrent reads served".into(), reads_total.to_string()]);
    topology.row(&[
        "reads routed to replicas".into(),
        format!(
            "{reads_on_replicas} of {read_attempts} ({})",
            pct(reads_on_replicas as f64 / read_attempts.max(1) as f64)
        ),
    ]);
    topology.row(&[
        "max replication lag seen (events)".into(),
        max_lag_seen.to_string(),
    ]);
    topology.row(&["stream retries (injected cut)".into(), retries.to_string()]);

    // Lag is an ordinary SQL query away on the primary.
    let admin = set.primary().connect("admin");
    let is_rows = admin
        .execute("SELECT replica_id, state, lag_events FROM information_schema.replicas")
        .unwrap();
    topology.row(&[
        "information_schema.replicas rows".into(),
        is_rows.rows.len().to_string(),
    ]);

    // ===== the attack: purge the primary's binlog, snapshot the fleet =====
    set.primary().purge_binlog();
    let replicas: Vec<&minidb::engine::Db> =
        (0..set.replica_count()).map(|i| set.replica(i)).collect();
    let observations = capture_replicated(set.primary(), &replicas, AttackVector::DiskTheft);

    let mut recovery = Table::new(
        "E14 - write-statement recovery after primary PURGE BINARY LOGS",
        &[
            "snapshot site",
            "channel",
            "events",
            "write coverage",
            "timestamped",
        ],
    );
    for obs in &observations {
        let disk = obs.observation.persistent_db.as_ref().unwrap();
        // Channel 1: the host's own binlog.
        let binlog_events = disk
            .file(minidb::wal::BINLOG_FILE)
            .map(binlog::parse_binlog)
            .unwrap_or_default();
        let cov = relay::coverage(&binlog_events, &executed);
        recovery.row(&[
            obs.site.name(),
            "binlog".into(),
            binlog_events.len().to_string(),
            pct(cov),
            binlog_events.iter().all(|e| e.timestamp > 0).to_string(),
        ]);
        // Channel 2: relay logs (replicas only).
        if matches!(obs.site, CaptureSite::Replica(_)) {
            let relay_events = relay::carve_relay(disk);
            let cov = relay::coverage(&relay_events, &executed);
            recovery.row(&[
                obs.site.name(),
                "relay log".into(),
                relay_events.len().to_string(),
                pct(cov),
                relay_events.iter().all(|e| e.timestamp > 0).to_string(),
            ]);
        }
    }
    opts.absorb_db(set.primary());
    for i in 0..set.replica_count() {
        opts.absorb_db(set.replica(i));
    }
    set.shutdown();
    vec![topology, recovery]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(t: &Table, metric: &str) -> String {
        t.rows
            .iter()
            .find(|r| r[0] == metric)
            .unwrap_or_else(|| panic!("row {metric}"))[1]
            .clone()
    }

    #[test]
    fn replica_relay_recovers_writes_after_primary_purge() {
        let tables = run(&Options {
            quick: true,
            ..Default::default()
        });
        let topology = &tables[0];
        // No loss, no duplication across the injected disconnect.
        assert_eq!(cell(topology, "rows on primary"), "60");
        assert_eq!(cell(topology, "rows on replica 0"), "60");
        assert_eq!(cell(topology, "rows on replica 1"), "60");
        assert!(
            cell(topology, "stream retries (injected cut)")
                .parse::<u64>()
                .unwrap()
                >= 1
        );
        assert_eq!(cell(topology, "information_schema.replicas rows"), "2");
        assert!(
            cell(topology, "concurrent reads served")
                .parse::<u64>()
                .unwrap()
                >= 1
        );

        let recovery = &tables[1];
        // Primary binlog: purged empty.
        let primary_binlog = recovery
            .rows
            .iter()
            .find(|r| r[0] == "primary" && r[1] == "binlog")
            .unwrap();
        assert_eq!(primary_binlog[2], "0");
        // Replica relay logs: >= 95% of executed writes, timestamped.
        for i in 0..2 {
            let row = recovery
                .rows
                .iter()
                .find(|r| r[0] == format!("replica-{i}") && r[1] == "relay log")
                .unwrap();
            let cov: f64 = row[3].trim_end_matches('%').parse().unwrap();
            assert!(cov >= 95.0, "replica {i} relay coverage {cov}% < 95%");
            assert_eq!(row[4], "true");
        }
    }
}
