//! E18 (extension) — the version store: snapshot isolation archives
//! your UPDATE history.
//!
//! The victim runs an EDB-style encrypted column: every value of
//! `dossier` is RND-encrypted client-side before it reaches the engine,
//! and every UPDATE re-encrypts under a fresh nonce — by the encrypted-
//! database contract, the server never sees a plaintext and two
//! ciphertexts of the same value are unlinkable. Alongside it sits a
//! plaintext-range-queryable `secret INT`, the usual concession to
//! server-side predicates.
//!
//! MVCC undoes both. Snapshot-isolation reads require the engine to
//! keep every superseded row version until no snapshot can need it, so
//! each UPDATE appends the *complete before-image* — plaintext `secret`
//! included — to `undo_versions.ibd` with `(xmin, xmax)` commit stamps
//! that totally order the supersessions. A cold disk image therefore
//! replays the victim's edit timeline: the carver
//! ([`snapshot_attack::forensics::versions`]) recovers how many times
//! each row changed, in what order, and every historical value of the
//! plaintext column; for the EDB column it recovers one distinct
//! ciphertext per edit — the paper's §3 update-pattern leakage, made
//! durable. The experiment then measures the two vacuum flavours: the
//! default *tombstoning* vacuum (engine forgets, payload bytes stay
//! carvable) and `DbConfig::scrub_before_images` (the file is
//! physically rewritten; recovery collapses to zero).
//!
//! A second table reports the concurrency side of the same subsystem:
//! the sharded buffer pool's 8-thread mixed scan/write throughput
//! against the single-latch baseline (see [`crate::serverbench`]).

use std::collections::HashSet;

use edb_crypto::{kdf, rnd, Key};
use rand::rngs::StdRng;
use rand::SeedableRng;
use snapshot_attack::forensics::versions::{carve_disk, chains, column_history, from_memory};
use snapshot_attack::report::Table;

use crate::{f2, pct, serverbench, Options};

/// Base plaintext value of the victim row's secret; update `i` sets it
/// to `SECRET_BASE + i`, so the true edit history is a known sequence.
const SECRET_BASE: i64 = 7000;
/// Background rows that also get updated (noise the carver must
/// separate from the victim chain).
const NOISE_ROWS: i64 = 3;
const NOISE_UPDATES: usize = 2;

/// Builds the victim: an EDB-encrypted `dossier` column re-encrypted on
/// every write, a plaintext `secret INT`, and `k` UPDATEs of row 1.
fn victim(k: usize, scrub: bool, seed: u64) -> minidb::engine::Db {
    let db = minidb::engine::Db::open(minidb::engine::DbConfig {
        query_cache_enabled: false,
        scrub_before_images: scrub,
        ..minidb::engine::DbConfig::default()
    });
    let conn = db.connect("victim");
    conn.execute("CREATE TABLE vault (id INT PRIMARY KEY, secret INT, dossier BYTES)")
        .unwrap();
    let master = Key([0x18; 32]);
    let key = Key(kdf::derive_key(&master.0, b"e18/dossier"));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ct_hex = |plaintext: &str| -> String {
        rnd::encrypt(&key, plaintext.as_bytes(), &mut rng)
            .iter()
            .map(|b| format!("{b:02x}"))
            .collect()
    };
    for id in 1..=1 + NOISE_ROWS {
        conn.execute(&format!(
            "INSERT INTO vault VALUES ({id}, {}, X'{}')",
            SECRET_BASE,
            ct_hex(&format!("dossier-{id}-v0"))
        ))
        .unwrap();
    }
    // The victim row edits its secret k times; each edit also
    // re-encrypts the dossier, as an EDB client must.
    for i in 1..=k as i64 {
        conn.execute(&format!(
            "UPDATE vault SET secret = {}, dossier = X'{}' WHERE id = 1",
            SECRET_BASE + i,
            ct_hex(&format!("dossier-1-v{i}"))
        ))
        .unwrap();
    }
    // Background churn on the other rows.
    for i in 1..=NOISE_UPDATES as i64 {
        for id in 2..=1 + NOISE_ROWS {
            conn.execute(&format!(
                "UPDATE vault SET secret = {} WHERE id = {id}",
                SECRET_BASE + 100 * id + i
            ))
            .unwrap();
        }
    }
    db
}

/// What one variant's carve recovered about the victim row.
struct Recovery {
    engine_versions: usize,
    carved_records: usize,
    /// Fraction of the k true historical secrets recovered.
    secret_rate: f64,
    /// Whether the recovered sequence equals the true edit order.
    ordering_intact: bool,
    /// Distinct dossier ciphertexts recovered (one per edit when the
    /// full history survives).
    distinct_ciphertexts: usize,
}

/// Scores a set of carved versions against the known edit history.
fn score(
    db: &minidb::engine::Db,
    carved: &[snapshot_attack::forensics::versions::CarvedVersion],
    k: usize,
) -> Recovery {
    let truth: Vec<minidb::value::Value> = (0..k as i64)
        .map(|i| minidb::value::Value::Int(SECRET_BASE + i))
        .collect();
    let history = column_history(carved, "vault", 1, 1);
    let mut remaining = history.clone();
    let mut hits = 0usize;
    for t in &truth {
        if let Some(pos) = remaining.iter().position(|v| v == t) {
            remaining.swap_remove(pos);
            hits += 1;
        }
    }
    let cts: HashSet<Vec<u8>> = column_history(carved, "vault", 1, 2)
        .into_iter()
        .filter_map(|v| match v {
            minidb::value::Value::Bytes(b) => Some(b),
            _ => None,
        })
        .collect();
    // Supersession order must also survive: the carve's per-row chain is
    // offset-ordered and its xmax stamps must strictly increase.
    let by_row = chains(carved);
    let stamps_ordered = by_row
        .get(&("vault".to_string(), 1))
        .map(|c| c.windows(2).all(|w| w[0].xmax <= w[1].xmax))
        .unwrap_or(false);
    Recovery {
        engine_versions: db.version_count(),
        carved_records: carved.len(),
        secret_rate: hits as f64 / k.max(1) as f64,
        ordering_intact: history == truth && stamps_ordered,
        distinct_ciphertexts: cts.len(),
    }
}

fn row_for(t: &mut Table, variant: &str, k: usize, r: &Recovery) {
    t.row(&[
        variant.into(),
        k.to_string(),
        r.engine_versions.to_string(),
        r.carved_records.to_string(),
        pct(r.secret_rate),
        if r.ordering_intact { "INTACT" } else { "-" }.into(),
        r.distinct_ciphertexts.to_string(),
    ]);
}

/// Runs the experiment.
pub fn run(opts: &Options) -> Vec<Table> {
    let k = if opts.quick { 12 } else { 48 };

    let mut archive = Table::new(
        "E18 - version-chain carve of an EDB-encrypted victim's edit history",
        &[
            "variant",
            "updates",
            "engine versions",
            "carved records",
            "secret history recovered",
            "ordering",
            "edb ciphertexts",
        ],
    );

    // Production default: nobody ran vacuum. The cold disk image holds
    // the full supersession history.
    let db = victim(k, false, opts.seed ^ 0x1801);
    let disk = score(&db, &carve_disk(&db.disk_image()), k);
    row_for(&mut archive, "no vacuum, disk image carve", k, &disk);
    // The same history, replayed from a memory snapshot (the EDBSNAP6
    // container carries `version_chains` — no byte carving needed).
    let mem = score(&db, &from_memory(&db.memory_image()), k);
    row_for(&mut archive, "no vacuum, memory image chains", k, &mem);
    opts.absorb_db(&db);
    drop(db);

    // Tombstoning vacuum (the default): the engine forgets every
    // version, but reclamation only flips a state byte — the payload
    // bytes stay on disk and the carve is undiminished.
    let db = victim(k, false, opts.seed ^ 0x1802);
    db.vacuum();
    let tomb = score(&db, &carve_disk(&db.disk_image()), k);
    row_for(&mut archive, "vacuum (tombstoning default)", k, &tomb);
    opts.absorb_db(&db);
    drop(db);

    // Scrubbing vacuum: `scrub_before_images` physically rewrites the
    // version file, and the history is gone.
    let db = victim(k, true, opts.seed ^ 0x1803);
    db.vacuum();
    let scrub = score(&db, &carve_disk(&db.disk_image()), k);
    row_for(&mut archive, "vacuum + scrub_before_images", k, &scrub);
    opts.absorb_db(&db);
    drop(db);

    // ---- part two: the sharded pool that serves those snapshots ----
    let mut pool = Table::new(
        "E18 - buffer pool at 8 client threads, mixed scan/write with 100us faults",
        &["pool", "shards", "ops", "ops/sec", "speedup"],
    );
    let ops = if opts.quick { 300 } else { 1_500 };
    let b = serverbench::run(8, ops);
    pool.row(&[
        "single latch (BufferPool discipline)".into(),
        b.single.shards.to_string(),
        b.single.ops.to_string(),
        format!("{:.0}", b.single.ops_per_sec),
        "1.00x".into(),
    ]);
    pool.row(&[
        "latch-partitioned (server default)".into(),
        b.sharded.shards.to_string(),
        b.sharded.ops.to_string(),
        format!("{:.0}", b.sharded.ops_per_sec),
        format!("{}x", f2(b.speedup())),
    ]);

    vec![archive, pool]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn carve_recovers_history_and_scrub_destroys_it() {
        let tables = run(&Options {
            quick: true,
            ..Default::default()
        });
        let rate = |row: &Vec<String>, col: usize| -> f64 {
            row[col].trim_end_matches('%').parse::<f64>().unwrap() / 100.0
        };
        let archive = &tables[0].rows;

        // Acceptance: before vacuum, the carve recovers >= 90% of the
        // superseded secrets, in order, from the disk image alone.
        assert!(rate(&archive[0], 4) >= 0.9, "{:?}", archive[0]);
        assert_eq!(archive[0][5], "INTACT", "{:?}", archive[0]);
        // One distinct EDB ciphertext per edit: re-encryption hides the
        // values but not the edit count.
        assert_eq!(archive[0][6], archive[0][1], "{:?}", archive[0]);
        // The memory image replays the same history.
        assert!(rate(&archive[1], 4) >= 0.9, "{:?}", archive[1]);

        // Tombstoning vacuum: engine forgot, carver did not.
        assert_eq!(archive[2][2], "0", "{:?}", archive[2]);
        assert!(rate(&archive[2], 4) >= 0.9, "{:?}", archive[2]);

        // Scrubbing vacuum: recovery collapses.
        assert!(rate(&archive[3], 4) <= 0.05, "{:?}", archive[3]);

        // The sharded pool clears the 2x acceptance bar.
        let pool = &tables[1].rows;
        let speedup: f64 = pool[1][4].trim_end_matches('x').parse().unwrap();
        assert!(speedup >= 2.0, "{pool:?}");
    }
}
