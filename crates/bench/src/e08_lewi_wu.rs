//! E8 — §6's headline simulation: Lewi–Wu ORE (1-bit blocks) bit leakage
//! from recovered range-query tokens.
//!
//! Paper: database of 10,000 uniform 32-bit integers, uniform range
//! queries, 1,000 trials. Average fraction of the 320,000 bits leaked:
//! ≈12% at 5 queries, ≈19% at 25, ≈25% at 50.

use snapshot_attack::attacks::bit_leakage::{simulate, Mode, SimParams};
use snapshot_attack::report::Table;

use crate::{f2, pct, Options};

/// Paper reference points: (queries, fraction of bits leaked).
pub const PAPER: [(usize, f64); 3] = [(5, 0.12), (25, 0.19), (50, 0.25)];

/// Runs the experiment.
pub fn run(opts: &Options) -> Vec<Table> {
    let (db_size, trials) = if opts.quick {
        (1_000, 30)
    } else {
        (10_000, 1_000)
    };
    let mut t = Table::new(
        &format!(
            "E8 - Lewi-Wu bit leakage (db={db_size}, trials={trials}, paper: db=10000, trials=1000)"
        ),
        &[
            "range queries",
            "paper",
            "measured (propagate)",
            "bits/value",
            "direct-only (ablation)",
        ],
    );
    for (queries, paper_frac) in PAPER {
        let prop = simulate(&SimParams {
            db_size,
            num_queries: queries,
            trials,
            mode: Mode::Propagate,
            seed: opts.seed + queries as u64,
        });
        let direct = simulate(&SimParams {
            db_size,
            num_queries: queries,
            trials: trials.min(50),
            mode: Mode::DirectOnly,
            seed: opts.seed + queries as u64,
        });
        t.row(&[
            queries.to_string(),
            pct(paper_frac),
            pct(prop.fraction_bits_leaked),
            f2(prop.bits_per_value),
            pct(direct.fraction_bits_leaked),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curve_matches_paper_shape() {
        let tables = run(&Options {
            quick: true,
            ..Default::default()
        });
        let rows = &tables[0].rows;
        let parse = |s: &str| s.trim_end_matches('%').parse::<f64>().unwrap() / 100.0;
        let measured: Vec<f64> = rows.iter().map(|r| parse(&r[2])).collect();
        // Monotone increasing.
        assert!(measured[0] < measured[1] && measured[1] < measured[2]);
        // Within ±4 percentage points of the paper at each point.
        for (row, (_, paper)) in rows.iter().zip(PAPER) {
            let m = parse(&row[2]);
            assert!((m - paper).abs() < 0.045, "measured {m} vs paper {paper}");
        }
    }
}
