//! Schema-stability tests for the harness `--json` report: downstream
//! tooling (the CI artifact consumers) key on these exact field names.

use bench::{reports_to_json, run_report, Options, ALL};

fn quick_opts() -> Options {
    Options {
        quick: true,
        ..Options::default()
    }
}

/// Asserts `key` appears as a JSON object key in `doc`.
fn has_key(doc: &str, key: &str) -> bool {
    doc.contains(&format!("\"{key}\":"))
}

#[test]
fn report_json_has_stable_top_level_schema() {
    let opts = quick_opts();
    let report = run_report("e1", &opts).expect("e1 exists");
    let doc = reports_to_json(&[report], &opts);

    for key in ["quick", "seed", "experiments"] {
        assert!(has_key(&doc, key), "missing top-level key {key}: {doc}");
    }
    assert!(doc.contains("\"quick\":true"));
    assert!(doc.contains(&format!("\"seed\":{}", opts.seed)));
}

#[test]
fn per_experiment_entries_carry_wall_time_tables_and_metrics() {
    let opts = quick_opts();
    let report = run_report("e2", &opts).expect("e2 exists");
    assert_eq!(report.id, "e2");
    assert!(!report.tables.is_empty(), "experiments emit tables");

    let doc = reports_to_json(&[report], &opts);
    for key in ["id", "wall_time_us", "tables", "metrics"] {
        assert!(has_key(&doc, key), "missing per-experiment key {key}");
    }
    // Table sub-schema.
    for key in ["title", "headers", "rows"] {
        assert!(has_key(&doc, key), "missing table key {key}");
    }
    // Absorbed engine metrics are present (counters of the experiment's
    // own databases, folded into the harness registry).
    for key in ["counters", "gauges", "histograms"] {
        assert!(has_key(&doc, key), "missing metrics key {key}");
    }
    assert!(
        doc.contains("sql.statements"),
        "absorbed engine counters appear in the report"
    );
}

#[test]
fn wall_time_is_recorded_per_experiment() {
    let opts = quick_opts();
    let report = run_report("e4", &opts).expect("e4 exists");
    // Quick-mode experiments still do real work; wall time is non-zero
    // and the JSON carries the same number.
    assert!(report.wall_time_us > 0);
    let doc = reports_to_json(std::slice::from_ref(&report), &opts);
    assert!(doc.contains(&format!("\"wall_time_us\":{}", report.wall_time_us)));
}

#[test]
fn all_registry_includes_e21_and_every_id_runs_under_run_report() {
    assert_eq!(ALL.len(), 21);
    assert_eq!(*ALL.last().unwrap(), "e21");
    // Unknown ids are rejected, not silently empty.
    assert!(run_report("e99", &quick_opts()).is_none());
}
