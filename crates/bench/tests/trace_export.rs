//! Schema tests for the `--trace` Chrome `trace_event` export: the
//! files must load in `chrome://tracing` / Perfetto, so every event
//! needs the `ph`/`ts`/`dur`/`pid`/`tid` fields with the right shapes.

use bench::{run_report, Options};

fn quick_opts() -> Options {
    Options {
        quick: true,
        ..Options::default()
    }
}

/// Counts non-overlapping occurrences of `needle` in `doc`.
fn count(doc: &str, needle: &str) -> usize {
    doc.matches(needle).count()
}

#[test]
fn experiment_traces_export_as_valid_chrome_trace_events() {
    // e5 exercises the diagnostic surfaces, so its engines always record
    // statement traces.
    let report = run_report("e5", &quick_opts()).expect("e5 exists");
    assert!(
        !report.traces.is_empty(),
        "experiments absorb their engines' statement traces"
    );

    let doc = mdb_trace::chrome::to_chrome_json(&report.traces);

    // Container shape.
    assert!(doc.starts_with("{\"traceEvents\":["), "{doc:.>80}");
    assert!(doc.contains("\"displayTimeUnit\":\"ms\""));

    // Two event shapes: complete ("X") span events with timestamp and
    // duration, and process/thread-name ("M") metadata events labeling
    // the lanes.
    let events = count(&doc, "\"ph\":");
    let spans = count(&doc, "\"ph\":\"X\"");
    let metadata = count(&doc, "\"ph\":\"M\"");
    assert!(spans > 0);
    assert_eq!(spans + metadata, events, "only X and M events");
    assert_eq!(count(&doc, "\"ts\":"), spans, "every span has ts");
    assert_eq!(count(&doc, "\"dur\":"), spans, "every span has dur");
    assert_eq!(count(&doc, "\"pid\":"), events, "every event has pid");
    assert_eq!(
        count(&doc, "\"name\":\"process_name\"") + count(&doc, "\"name\":\"thread_name\""),
        metadata,
        "metadata events only label lanes"
    );

    // Statement roots carry the query text in args, and there is one
    // root event per absorbed trace.
    assert_eq!(count(&doc, "\"cat\":\"statement\""), spans);
    assert_eq!(count(&doc, "\"statement\":"), report.traces.len());

    // Balanced JSON structure (the writer emits no trailing commas; a
    // quick brace balance catches truncation bugs).
    let opens = count(&doc, "{");
    let closes = count(&doc, "}");
    assert_eq!(opens, closes, "balanced braces");
    assert_eq!(count(&doc, "["), count(&doc, "]"), "balanced brackets");
}

#[test]
fn chrome_export_of_empty_trace_set_is_still_a_valid_document() {
    let doc = mdb_trace::chrome::to_chrome_json(&[]);
    assert_eq!(doc, "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}");
}
