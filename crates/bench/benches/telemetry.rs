//! Telemetry overhead benchmarks.
//!
//! The design target: a *disabled* registry's record path is one relaxed
//! atomic load, and an *enabled* counter increment is one relaxed
//! fetch-add — so instrumenting the engine hot paths costs well under 5%
//! even for cache-hit point queries. The `engine` group measures that
//! end-to-end: the same query workload against `telemetry_enabled` on
//! vs off.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mdb_telemetry::Registry;
use minidb::engine::{Db, DbConfig};

fn bench_record_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("telemetry/record");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(500));

    let enabled = Registry::new();
    let disabled = Registry::new_disabled();
    let c_on = enabled.counter("bench.c");
    let c_off = disabled.counter("bench.c");
    let h_on = enabled.histogram("bench.h");
    let h_off = disabled.histogram("bench.h");

    g.bench_function("counter/enabled", |b| b.iter(|| c_on.inc()));
    g.bench_function("counter/disabled", |b| b.iter(|| c_off.inc()));
    g.bench_function("histogram/enabled", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(2_654_435_761);
            h_on.record(i & 0xFFFF);
        })
    });
    g.bench_function("histogram/disabled", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(2_654_435_761);
            h_off.record(i & 0xFFFF);
        })
    });
    g.bench_function("span/enabled", |b| {
        b.iter(|| {
            let _s = enabled.span("bench.span");
        })
    });
    g.finish();
}

fn query_db(telemetry_enabled: bool) -> Db {
    let config = DbConfig {
        redo_capacity: 1 << 20,
        undo_capacity: 1 << 20,
        telemetry_enabled,
        ..DbConfig::default()
    };
    let db = Db::open(config);
    let conn = db.connect("bench");
    conn.execute("CREATE TABLE kv (id INT PRIMARY KEY, v TEXT)")
        .unwrap();
    for i in 0..64 {
        conn.execute(&format!("INSERT INTO kv VALUES ({i}, 'value-{i}')"))
            .unwrap();
    }
    db
}

fn bench_engine_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("telemetry/engine");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(500));
    for (label, enabled) in [("enabled", true), ("disabled", false)] {
        let db = query_db(enabled);
        let conn = db.connect("bench");
        let mut i = 0u64;
        g.bench_with_input(BenchmarkId::new("point-select", label), &(), |b, _| {
            b.iter(|| {
                i = (i + 1) % 64;
                conn.execute(&format!("SELECT * FROM kv WHERE id = {i}"))
                    .unwrap()
            })
        });
    }
    g.finish();
}

fn bench_snapshot_export(c: &mut Criterion) {
    let mut g = c.benchmark_group("telemetry/export");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(500));
    let r = Registry::new();
    for i in 0..100 {
        r.counter(&format!("bench.counter.{i}")).add(i);
    }
    for i in 0..10 {
        let h = r.histogram(&format!("bench.hist.{i}"));
        for v in 0..1000u64 {
            h.record(v * v);
        }
    }
    g.bench_function("snapshot", |b| b.iter(|| r.snapshot()));
    let snap = r.snapshot();
    g.bench_function("to_json", |b| b.iter(|| snap.to_json()));
    g.finish();
}

criterion_group!(
    benches,
    bench_record_path,
    bench_engine_overhead,
    bench_snapshot_export
);
criterion_main!(benches);
