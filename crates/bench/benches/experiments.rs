//! One bench target per paper table/figure: times a quick-mode run of
//! each experiment end to end (workload + snapshot + attack). The
//! `experiments` binary regenerates the actual numbers; these benches
//! track the cost of regenerating them.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench_experiments(c: &mut Criterion) {
    let mut g = c.benchmark_group("experiments_quick");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(500));
    let opts = bench::Options {
        quick: true,
        ..Default::default()
    };
    for id in bench::ALL {
        g.bench_function(id, |b| {
            b.iter(|| bench::run(id, &opts).expect("known experiment"))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_experiments);
criterion_main!(benches);
