//! Benchmarks of the MiniDB substrate: statement throughput and the cost
//! of the instrumentation that makes the leakage possible.

use criterion::{criterion_group, criterion_main, Criterion};
use minidb::engine::{Db, DbConfig};
use std::time::Duration;

fn small_config() -> DbConfig {
    DbConfig {
        redo_capacity: 8 << 20,
        undo_capacity: 8 << 20,
        ..DbConfig::default()
    }
}

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("minidb");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(500));

    g.bench_function("insert_per_stmt", |b| {
        let db = Db::open(small_config());
        let conn = db.connect("bench");
        conn.execute("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
            .unwrap();
        let mut i = 0i64;
        b.iter(|| {
            conn.execute(&format!("INSERT INTO t VALUES ({i}, 'payload-{i}')"))
                .unwrap();
            i += 1;
        });
    });

    g.bench_function("point_select_indexed", |b| {
        let db = Db::open(small_config());
        let conn = db.connect("bench");
        conn.execute("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
            .unwrap();
        for i in 0..5_000 {
            conn.execute(&format!("INSERT INTO t VALUES ({i}, 'p{i}')"))
                .unwrap();
        }
        let mut i = 0i64;
        b.iter(|| {
            // Distinct text per call defeats the query cache, measuring
            // the real index path.
            conn.execute(&format!("SELECT v FROM t WHERE id = {}", i % 5000))
                .unwrap();
            i += 1;
        });
    });

    g.bench_function("range_select_indexed", |b| {
        let db = Db::open(small_config());
        let conn = db.connect("bench");
        conn.execute("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
            .unwrap();
        for i in 0..5_000 {
            conn.execute(&format!("INSERT INTO t VALUES ({i}, 'p{i}')"))
                .unwrap();
        }
        let mut i = 0i64;
        b.iter(|| {
            let lo = (i * 37) % 4900;
            conn.execute(&format!(
                "SELECT v FROM t WHERE id >= {lo} AND id < {}",
                lo + 100
            ))
            .unwrap();
            i += 1;
        });
    });

    g.bench_function("query_cache_hit", |b| {
        let db = Db::open(small_config());
        let conn = db.connect("bench");
        conn.execute("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
            .unwrap();
        for i in 0..1_000 {
            conn.execute(&format!("INSERT INTO t VALUES ({i}, 'p{i}')"))
                .unwrap();
        }
        conn.execute("SELECT * FROM t WHERE id = 7").unwrap();
        b.iter(|| conn.execute("SELECT * FROM t WHERE id = 7").unwrap());
    });

    g.bench_function("crash_recovery_1k_rows", |b| {
        b.iter_with_setup(
            || {
                let db = Db::open(small_config());
                let conn = db.connect("bench");
                conn.execute("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
                    .unwrap();
                for i in 0..1_000 {
                    conn.execute(&format!("INSERT INTO t VALUES ({i}, 'p{i}')"))
                        .unwrap();
                }
                db.crash();
                db
            },
            |db| db.recover().unwrap(),
        );
    });

    g.bench_function("system_snapshot", |b| {
        let db = Db::open(small_config());
        let conn = db.connect("bench");
        conn.execute("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
            .unwrap();
        for i in 0..1_000 {
            conn.execute(&format!("INSERT INTO t VALUES ({i}, 'p{i}')"))
                .unwrap();
        }
        b.iter(|| db.system_image());
    });

    g.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
