//! Scan-path benchmarks: materialize-everything full scans vs
//! zone-map-pruned streaming scans, 1% selectivity over an unindexed
//! column (the `scanbench` fixture). The pruned path's win is the
//! tentpole claim: >= 5x throughput at 100k rows.

use std::time::Duration;

use bench::scanbench;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_scan(c: &mut Criterion) {
    let mut g = c.benchmark_group("scan");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(3));
    g.warm_up_time(Duration::from_millis(500));

    for &rows in &[10_000usize, 100_000] {
        let full_db = scanbench::build_db(rows, false);
        let full_conn = full_db.connect("bench");
        let mut q = 0usize;
        g.bench_with_input(BenchmarkId::new("full", rows), &rows, |b, &rows| {
            b.iter(|| {
                // Rotating literals defeat any caching between runs.
                full_conn.execute(&scanbench::query(rows, q)).unwrap();
                q += 1;
            });
        });

        let pruned_db = scanbench::build_db(rows, true);
        let pruned_conn = pruned_db.connect("bench");
        let mut q = 0usize;
        g.bench_with_input(BenchmarkId::new("pruned", rows), &rows, |b, &rows| {
            b.iter(|| {
                pruned_conn.execute(&scanbench::query(rows, q)).unwrap();
                q += 1;
            });
        });
    }

    g.finish();
}

criterion_group!(benches, bench_scan);
criterion_main!(benches);
