//! Benchmarks of the attack primitives: how cheap plaintext recovery is
//! once the snapshot artifacts are in hand.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use minidb::wal::{carve_frames, frame};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use snapshot_attack::attacks::bit_leakage::{leak_once, Mode};
use snapshot_attack::attacks::count::{count_attack_batch, AuxiliaryCounts};
use snapshot_attack::attacks::frequency::rank_match;
use snapshot_attack::attacks::matching::min_cost_assignment;
use snapshot_attack::forensics::memscan;
use std::time::Duration;

fn bench_carving(c: &mut Criterion) {
    let mut g = c.benchmark_group("forensics");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(500));
    // 1 MiB of framed records with garbage in between.
    let mut raw = Vec::with_capacity(1 << 20);
    let mut rng = StdRng::seed_from_u64(1);
    while raw.len() < (1 << 20) - 128 {
        if rng.gen_bool(0.8) {
            raw.extend_from_slice(&frame(&[0u8; 48]));
        } else {
            raw.extend_from_slice(&[0xEE; 32]);
        }
    }
    g.throughput(Throughput::Bytes(raw.len() as u64));
    g.bench_function("carve_frames_1MiB", |b| b.iter(|| carve_frames(&raw)));

    let mut dump = vec![0u8; 1 << 20];
    for i in 0..2_000 {
        let s = format!("SELECT * FROM t WHERE id = {i}");
        let off = (i * 500) % (dump.len() - 64);
        dump[off..off + s.len()].copy_from_slice(s.as_bytes());
    }
    g.throughput(Throughput::Bytes(dump.len() as u64));
    g.bench_function("carve_sql_1MiB", |b| b.iter(|| memscan::carve_sql(&dump)));
    g.finish();
}

fn bench_bit_leakage(c: &mut Criterion) {
    let mut g = c.benchmark_group("bit_leakage");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(500));
    let mut rng = StdRng::seed_from_u64(2);
    for &queries in &[5usize, 50] {
        let db: Vec<u32> = (0..10_000).map(|_| rng.gen()).collect();
        let tokens: Vec<u32> = (0..queries * 2).map(|_| rng.gen()).collect();
        g.bench_with_input(
            BenchmarkId::new("one_trial_10k_db", queries),
            &queries,
            |b, _| b.iter(|| leak_once(&db, &tokens, Mode::Propagate)),
        );
    }
    g.finish();
}

fn bench_matching(c: &mut Criterion) {
    let mut g = c.benchmark_group("hungarian");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(500));
    let mut rng = StdRng::seed_from_u64(3);
    for &n in &[16usize, 64, 128] {
        let cost: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..n).map(|_| rng.gen_range(0.0..1.0)).collect())
            .collect();
        g.bench_with_input(BenchmarkId::from_parameter(n), &cost, |b, m| {
            b.iter(|| min_cost_assignment(m))
        });
    }
    g.finish();
}

fn bench_statistics(c: &mut Criterion) {
    let mut g = c.benchmark_group("statistical_attacks");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(500));
    let mut rng = StdRng::seed_from_u64(4);

    let aux = AuxiliaryCounts::new((0..5_000).map(|i| (format!("word{i}"), i * 3 + (i % 7))));
    let obs: Vec<(usize, usize)> = (0..500).map(|i| (i, i * 3 + (i % 7))).collect();
    g.bench_function("count_attack_500_tokens", |b| {
        b.iter(|| count_attack_batch(&aux, &obs))
    });

    let observed: Vec<(u32, f64)> = (0..1_000).map(|i| (i, rng.gen_range(0.0..100.0))).collect();
    let model: Vec<(u32, f64)> = (0..1_000).map(|i| (i, rng.gen_range(0.0..1.0))).collect();
    g.bench_function("rank_match_1000", |b| {
        b.iter(|| rank_match(&observed, &model))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_carving,
    bench_bit_leakage,
    bench_matching,
    bench_statistics
);
criterion_main!(benches);
