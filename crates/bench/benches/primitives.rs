//! Micro-benchmarks of the cryptographic primitives and PRE schemes —
//! the cost side of the paper's leakage/performance trade-off discussion.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use edb_crypto::ore::{compare, OreKey, OreParams};
use edb_crypto::swp::{server_match, SwpClient};
use edb_crypto::{ashe, chacha20, det, hmac, rnd, sha256, Key};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn bench_hashes(c: &mut Criterion) {
    let mut g = c.benchmark_group("hash");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(500));
    for size in [64usize, 1024, 16 * 1024] {
        let data = vec![0xA5u8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::new("sha256", size), &data, |b, d| {
            b.iter(|| sha256::digest(d))
        });
        g.bench_with_input(BenchmarkId::new("hmac", size), &data, |b, d| {
            b.iter(|| hmac::hmac(&[7u8; 32], d))
        });
    }
    g.finish();
}

fn bench_chacha(c: &mut Criterion) {
    let mut g = c.benchmark_group("chacha20");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(500));
    for size in [1024usize, 64 * 1024] {
        let mut data = vec![0u8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| chacha20::xor_stream(&[1u8; 32], &[2u8; 12], 1, &mut data))
        });
    }
    g.finish();
}

fn bench_schemes(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let key = Key([9u8; 32]);
    let mut g = c.benchmark_group("schemes");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(500));

    g.bench_function("rnd_encrypt_64B", |b| {
        b.iter(|| rnd::encrypt(&key, &[0u8; 64], &mut rng))
    });
    g.bench_function("det_encrypt_64B", |b| {
        b.iter(|| det::encrypt(&key, &[0u8; 64]))
    });

    let ore = OreKey::new(&key, OreParams::PAPER).unwrap();
    g.bench_function("ore_encrypt_left_u32", |b| {
        b.iter(|| ore.encrypt_left(0xDEAD_BEEF).unwrap())
    });
    g.bench_function("ore_encrypt_right_u32", |b| {
        b.iter(|| ore.encrypt_right(0xDEAD_BEEF, &mut rng).unwrap())
    });
    let left = ore.encrypt_left(123456).unwrap();
    let right = ore.encrypt_right(654321, &mut rng).unwrap();
    g.bench_function("ore_compare", |b| {
        b.iter(|| compare(&left, &right).unwrap())
    });

    let swp = SwpClient::new(&key);
    g.bench_function("swp_encrypt_word", |b| {
        b.iter(|| swp.encrypt_word(1, 0, "keyword"))
    });
    let td = swp.trapdoor("keyword");
    let ct = swp.encrypt_word(1, 0, "keyword");
    g.bench_function("swp_server_match", |b| b.iter(|| server_match(&td, &ct)));

    let ak = ashe::AsheKey::new(&key, "col");
    g.bench_function("ashe_encrypt", |b| b.iter(|| ak.encrypt(7, 1234)));
    g.finish();
}

criterion_group!(benches, bench_hashes, bench_chacha, bench_schemes);
criterion_main!(benches);
