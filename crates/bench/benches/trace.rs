//! Tracing overhead benchmarks.
//!
//! The design target (ISSUE acceptance criterion): with tracing
//! disabled, the entire per-statement cost of the tracer is a single
//! relaxed atomic load — `Recorder::is_enabled` — plus one `Option`
//! check per stage hook. The `engine` group measures the end-to-end
//! difference on cache-hit point selects; the `gate` group pins down
//! the primitive itself.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mdb_trace::{Recorder, TraceBuilder};
use minidb::engine::{Db, DbConfig};

fn bench_gate_and_builder(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace/record");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(500));

    // The disabled-path primitive: one relaxed load.
    let armed = Recorder::new(64);
    let disarmed = Recorder::new_disabled(64);
    g.bench_function("is_enabled/armed", |b| b.iter(|| armed.is_enabled()));
    g.bench_function("is_enabled/disarmed", |b| b.iter(|| disarmed.is_enabled()));

    // The enabled path: build a representative 5-span statement trace
    // and deposit it in the ring.
    g.bench_function("build+record", |b| {
        b.iter(|| {
            let mut t = TraceBuilder::new(1, 1_500_000_000, "SELECT * FROM kv WHERE id = 7", "d");
            t.begin("parse");
            t.end(37);
            t.begin("plan");
            t.attr("index_used", 1);
            t.end(37);
            t.begin("scan");
            t.attr("rows_examined", 1);
            t.begin("bufpool");
            t.attr("pages_hit", 1);
            t.end(0);
            t.table("kv");
            t.end_elastic();
            armed.record(t.finish(300))
        })
    });
    g.finish();
}

fn query_db(trace_enabled: bool) -> Db {
    let config = DbConfig {
        redo_capacity: 1 << 20,
        undo_capacity: 1 << 20,
        trace_enabled,
        ..DbConfig::default()
    };
    let db = Db::open(config);
    let conn = db.connect("bench");
    conn.execute("CREATE TABLE kv (id INT PRIMARY KEY, v TEXT)")
        .unwrap();
    for i in 0..64 {
        conn.execute(&format!("INSERT INTO kv VALUES ({i}, 'value-{i}')"))
            .unwrap();
    }
    db
}

fn bench_engine_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace/engine");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(500));
    for (label, enabled) in [("enabled", true), ("disabled", false)] {
        let db = query_db(enabled);
        let conn = db.connect("bench");
        let mut i = 0u64;
        g.bench_with_input(BenchmarkId::new("point-select", label), &(), |b, _| {
            b.iter(|| {
                i = (i + 1) % 64;
                conn.execute(&format!("SELECT * FROM kv WHERE id = {i}"))
                    .unwrap()
            })
        });
    }
    g.finish();
}

fn bench_chrome_export(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace/export");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(500));
    let db = query_db(true);
    let conn = db.connect("bench");
    for i in 0..64 {
        conn.execute(&format!("SELECT * FROM kv WHERE id = {}", i % 64))
            .unwrap();
    }
    let traces = db.query_traces();
    g.bench_function("to_chrome_json/64", |b| {
        b.iter(|| mdb_trace::chrome::to_chrome_json(&traces))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_gate_and_builder,
    bench_engine_overhead,
    bench_chrome_export
);
criterion_main!(benches);
