//! # mdb-telemetry — engine-wide metrics for MiniDB and the harness
//!
//! Lock-free counters, gauges, and log2-bucket histograms behind a
//! [`Registry`], plus RAII [`SpanTimer`]s, point-in-time
//! [`MetricsSnapshot`]s, and hand-rolled JSON export (no serde).
//!
//! Two design constraints drive the shape of this crate:
//!
//! * **Hot-path cost.** Every record call is gated on one relaxed atomic
//!   load; a disabled registry does no other work. Enabled updates are
//!   single relaxed `fetch_add`s on pre-registered handles — the name
//!   lookup happens once at registration, never per event.
//! * **Telemetry is a leakage surface.** This repo reproduces "Why Your
//!   Encrypted Database Is Not Secure": the thesis that *auxiliary* DBMS
//!   state betrays encrypted data. A metrics registry is exactly such
//!   state — per-table counters and latency histograms encode the query
//!   distribution, survive `PerfSchema::clear()`, ride along in VM
//!   snapshots (`MemoryImage`), and are SQL-readable via
//!   `information_schema.metrics`. The experiments treat this crate as
//!   an attack surface, and [`Registry::scrub`] is the mitigation knob.

pub mod json;

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

/// Number of log2 buckets per histogram: bucket 0 holds zeros, bucket
/// `i >= 1` holds values in `[2^(i-1), 2^i)`, the last bucket clamps.
pub const HISTOGRAM_BUCKETS: usize = 64;

#[derive(Default)]
struct CounterCell {
    value: AtomicU64,
}

#[derive(Default)]
struct GaugeCell {
    value: AtomicI64,
}

struct HistogramCell {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    /// Per-bucket exemplars: the most recent `(trace_id, value)`
    /// observed in each bucket, OpenMetrics-style. Off the hot path —
    /// only [`Histogram::record_with_exemplar`] takes this lock, and
    /// only statements that carry a distributed trace context call it.
    exemplars: Mutex<BTreeMap<u8, (u128, u64)>>,
}

impl Default for HistogramCell {
    fn default() -> Self {
        HistogramCell {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            exemplars: Mutex::new(BTreeMap::new()),
        }
    }
}

#[derive(Default)]
struct Metrics {
    counters: BTreeMap<String, Arc<CounterCell>>,
    gauges: BTreeMap<String, Arc<GaugeCell>>,
    histograms: BTreeMap<String, Arc<HistogramCell>>,
}

/// A named registry of metrics. Cheap to clone (all clones share state).
///
/// Handles returned by [`counter`](Registry::counter) /
/// [`gauge`](Registry::gauge) / [`histogram`](Registry::histogram) are
/// pre-resolved: record calls never touch the name map.
#[derive(Clone)]
pub struct Registry {
    enabled: Arc<AtomicBool>,
    metrics: Arc<Mutex<Metrics>>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl fmt::Debug for Registry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Registry")
            .field("enabled", &self.is_enabled())
            .finish_non_exhaustive()
    }
}

impl Registry {
    /// An enabled registry.
    pub fn new() -> Self {
        Registry {
            enabled: Arc::new(AtomicBool::new(true)),
            metrics: Arc::new(Mutex::new(Metrics::default())),
        }
    }

    /// A disabled registry: handles still register, but every record
    /// call returns after a single relaxed load.
    pub fn new_disabled() -> Self {
        let r = Registry::new();
        r.set_enabled(false);
        r
    }

    /// Whether record calls currently take effect.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Enables or disables recording (registrations are kept).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Returns the counter named `name`, registering it if new.
    pub fn counter(&self, name: &str) -> Counter {
        let mut m = self.metrics.lock();
        let cell = m.counters.entry(name.to_string()).or_default().clone();
        Counter {
            enabled: self.enabled.clone(),
            cell,
        }
    }

    /// Returns the gauge named `name`, registering it if new.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut m = self.metrics.lock();
        let cell = m.gauges.entry(name.to_string()).or_default().clone();
        Gauge {
            enabled: self.enabled.clone(),
            cell,
        }
    }

    /// Returns the histogram named `name`, registering it if new.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut m = self.metrics.lock();
        let cell = m.histograms.entry(name.to_string()).or_default().clone();
        Histogram {
            enabled: self.enabled.clone(),
            cell,
        }
    }

    /// Starts an RAII span recording elapsed microseconds into the
    /// histogram named `name` when dropped. On a disabled registry the
    /// span never reads the clock.
    pub fn span(&self, name: &str) -> SpanTimer {
        let hist = self.histogram(name);
        SpanTimer::new(hist)
    }

    /// Point-in-time snapshot of every registered metric, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let m = self.metrics.lock();
        MetricsSnapshot {
            counters: m
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.value.load(Ordering::Relaxed)))
                .collect(),
            gauges: m
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), v.value.load(Ordering::Relaxed)))
                .collect(),
            histograms: m
                .histograms
                .iter()
                .map(|(k, v)| {
                    let buckets: Vec<(u8, u64)> = v
                        .buckets
                        .iter()
                        .enumerate()
                        .filter_map(|(i, b)| {
                            let n = b.load(Ordering::Relaxed);
                            (n > 0).then_some((i as u8, n))
                        })
                        .collect();
                    let exemplars = v
                        .exemplars
                        .lock()
                        .iter()
                        .map(|(b, (tid, val))| (*b, *tid, *val))
                        .collect();
                    HistogramSnapshot {
                        name: k.clone(),
                        count: v.count.load(Ordering::Relaxed),
                        sum: v.sum.load(Ordering::Relaxed),
                        buckets,
                        exemplars,
                    }
                })
                .collect(),
        }
    }

    /// Folds a snapshot into this registry: counters and histogram
    /// buckets add, gauges add. Lets a harness registry accumulate
    /// engine snapshots across runs. No-op when disabled.
    pub fn absorb(&self, snap: &MetricsSnapshot) {
        if !self.is_enabled() {
            return;
        }
        let mut m = self.metrics.lock();
        for (name, v) in &snap.counters {
            m.counters
                .entry(name.clone())
                .or_default()
                .value
                .fetch_add(*v, Ordering::Relaxed);
        }
        for (name, v) in &snap.gauges {
            m.gauges
                .entry(name.clone())
                .or_default()
                .value
                .fetch_add(*v, Ordering::Relaxed);
        }
        for h in &snap.histograms {
            let cell = m.histograms.entry(h.name.clone()).or_default().clone();
            cell.count.fetch_add(h.count, Ordering::Relaxed);
            cell.sum.fetch_add(h.sum, Ordering::Relaxed);
            for (idx, n) in &h.buckets {
                cell.buckets[*idx as usize].fetch_add(*n, Ordering::Relaxed);
            }
            if !h.exemplars.is_empty() {
                let mut ex = cell.exemplars.lock();
                for (idx, tid, val) in &h.exemplars {
                    ex.insert(*idx, (*tid, *val));
                }
            }
        }
    }

    /// Zeroes every metric value, keeping registrations and handles
    /// valid. This is the mitigation: a deployment that wipes telemetry
    /// alongside `PerfSchema::clear()` denies the snapshot attacker the
    /// accumulated query distribution.
    pub fn scrub(&self) {
        let m = self.metrics.lock();
        for c in m.counters.values() {
            c.value.store(0, Ordering::Relaxed);
        }
        for g in m.gauges.values() {
            g.value.store(0, Ordering::Relaxed);
        }
        for h in m.histograms.values() {
            h.count.store(0, Ordering::Relaxed);
            h.sum.store(0, Ordering::Relaxed);
            for b in &h.buckets {
                b.store(0, Ordering::Relaxed);
            }
            // Exemplars are the most pointed leak — each one names a
            // concrete trace — so a scrub drops them too.
            h.exemplars.lock().clear();
        }
    }
}

/// Monotonically increasing event count.
#[derive(Clone)]
pub struct Counter {
    enabled: Arc<AtomicBool>,
    cell: Arc<CounterCell>,
}

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.cell.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.value.load(Ordering::Relaxed)
    }

    /// Resets the counter to zero. For counters that track the *live*
    /// volume of a purgeable artifact (e.g. binlog bytes on disk), the
    /// owning subsystem calls this when the artifact is purged so the
    /// registry stops reporting long-gone state. Like
    /// [`Registry::scrub`], the store happens even on a disabled
    /// registry — a reset reflects reality, not new instrumentation.
    pub fn reset(&self) {
        self.cell.value.store(0, Ordering::Relaxed);
    }
}

/// Instantaneous signed level (e.g. bytes resident, open cursors).
#[derive(Clone)]
pub struct Gauge {
    enabled: Arc<AtomicBool>,
    cell: Arc<GaugeCell>,
}

impl Gauge {
    /// Sets the level.
    #[inline]
    pub fn set(&self, v: i64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.cell.value.store(v, Ordering::Relaxed);
        }
    }

    /// Adjusts the level by `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.cell.value.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.cell.value.load(Ordering::Relaxed)
    }
}

/// Log2-bucket distribution of a u64-valued observation.
#[derive(Clone)]
pub struct Histogram {
    enabled: Arc<AtomicBool>,
    cell: Arc<HistogramCell>,
}

/// Bucket index for `value`: 0 for 0, else `floor(log2(value)) + 1`,
/// clamped to the last bucket.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    ((64 - value.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
}

impl Histogram {
    /// Records one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.cell.count.fetch_add(1, Ordering::Relaxed);
            self.cell.sum.fetch_add(value, Ordering::Relaxed);
            self.cell.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records one observation and stamps `trace_id` as the bucket's
    /// exemplar (OpenMetrics-style: each bucket remembers the trace of
    /// the *last* observation that landed in it). Exemplars link the
    /// `/metrics` latency distribution back to individual distributed
    /// traces — which also makes them a correlation surface: an
    /// exemplar ties an aggregate bucket to one concrete statement.
    pub fn record_with_exemplar(&self, value: u64, trace_id: u128) {
        if self.enabled.load(Ordering::Relaxed) {
            self.cell.count.fetch_add(1, Ordering::Relaxed);
            self.cell.sum.fetch_add(value, Ordering::Relaxed);
            let idx = bucket_index(value);
            self.cell.buckets[idx].fetch_add(1, Ordering::Relaxed);
            self.cell
                .exemplars
                .lock()
                .insert(idx as u8, (trace_id, value));
        }
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.cell.count.load(Ordering::Relaxed)
    }

    /// Sum of observations so far.
    pub fn sum(&self) -> u64 {
        self.cell.sum.load(Ordering::Relaxed)
    }
}

/// RAII timer recording elapsed microseconds into a histogram on drop.
///
/// On a disabled registry the timer neither reads the clock nor records.
pub struct SpanTimer {
    hist: Histogram,
    start: Option<Instant>,
}

impl SpanTimer {
    fn new(hist: Histogram) -> Self {
        let start = hist.enabled.load(Ordering::Relaxed).then(Instant::now);
        SpanTimer { hist, start }
    }

    /// Stops the span early, recording now instead of at drop.
    pub fn finish(mut self) {
        self.record_elapsed();
    }

    fn record_elapsed(&mut self) {
        if let Some(start) = self.start.take() {
            self.hist.record(start.elapsed().as_micros() as u64);
        }
    }
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        self.record_elapsed();
    }
}

/// Point-in-time value of every metric in a [`Registry`].
///
/// This struct is deliberately `Clone` + comparable: the engine embeds
/// it in VM-snapshot memory images, which is precisely how telemetry
/// becomes attacker-visible state.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// `(name, value)`, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, level)`, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// Histograms, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
}

/// Snapshot of one histogram; `buckets` is sparse `(index, count)`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Total observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Non-empty buckets as `(bucket_index, count)`.
    pub buckets: Vec<(u8, u64)>,
    /// Per-bucket exemplars as `(bucket_index, trace_id, value)` —
    /// the last traced observation seen in each bucket. Empty unless
    /// [`Histogram::record_with_exemplar`] was used.
    pub exemplars: Vec<(u8, u128, u64)>,
}

impl HistogramSnapshot {
    /// Mean observation, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Median upper bound — [`quantile_upper_bound`](Self::quantile_upper_bound) at 0.5.
    pub fn p50(&self) -> u64 {
        self.quantile_upper_bound(0.50)
    }

    /// 95th-percentile upper bound.
    pub fn p95(&self) -> u64 {
        self.quantile_upper_bound(0.95)
    }

    /// 99th-percentile upper bound.
    pub fn p99(&self) -> u64 {
        self.quantile_upper_bound(0.99)
    }

    /// Upper bound of the bucket containing quantile `q` in `[0, 1]`.
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (idx, n) in &self.buckets {
            seen += n;
            if seen >= target {
                return bucket_upper_bound(*idx as usize);
            }
        }
        self.buckets
            .last()
            .map(|(idx, _)| bucket_upper_bound(*idx as usize))
            .unwrap_or(0)
    }
}

/// Largest value that lands in bucket `idx`.
pub fn bucket_upper_bound(idx: usize) -> u64 {
    match idx {
        0 => 0,
        i if i >= HISTOGRAM_BUCKETS - 1 => u64::MAX,
        i => (1u64 << i) - 1,
    }
}

impl MetricsSnapshot {
    /// True when no metric has a non-zero value.
    pub fn is_zero(&self) -> bool {
        self.counters.iter().all(|(_, v)| *v == 0)
            && self.gauges.iter().all(|(_, v)| *v == 0)
            && self.histograms.iter().all(|h| h.count == 0)
    }

    /// Value of the counter named `name`, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Level of the gauge named `name`, if registered.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// The histogram named `name`, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Serialises as a compact JSON object:
    /// `{"counters":{..},"gauges":{..},"histograms":{name:{"count":..,"sum":..,"buckets":[[idx,n],..]}}}`.
    pub fn to_json(&self) -> String {
        let mut w = json::Writer::new();
        w.obj_open();
        w.key("counters");
        w.obj_open();
        for (name, v) in &self.counters {
            w.key(name);
            w.u64(*v);
        }
        w.obj_close();
        w.key("gauges");
        w.obj_open();
        for (name, v) in &self.gauges {
            w.key(name);
            w.i64(*v);
        }
        w.obj_close();
        w.key("histograms");
        w.obj_open();
        for h in &self.histograms {
            w.key(&h.name);
            w.obj_open();
            w.key("count");
            w.u64(h.count);
            w.key("sum");
            w.u64(h.sum);
            w.key("mean_us");
            w.f64(h.mean());
            w.key("buckets");
            w.arr_open();
            for (idx, n) in &h.buckets {
                w.arr_open();
                w.u64(*idx as u64);
                w.u64(*n);
                w.arr_close();
            }
            w.arr_close();
            // Exemplars are emitted only when present so untraced
            // snapshots keep their historical JSON shape.
            if !h.exemplars.is_empty() {
                w.key("exemplars");
                w.arr_open();
                for (idx, tid, val) in &h.exemplars {
                    w.arr_open();
                    w.u64(*idx as u64);
                    w.string(&format!("{tid:032x}"));
                    w.u64(*val);
                    w.arr_close();
                }
                w.arr_close();
            }
            w.obj_close();
        }
        w.obj_close();
        w.obj_close();
        w.into_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_roundtrip() {
        let r = Registry::new();
        let c = r.counter("hits");
        c.inc();
        c.add(41);
        let g = r.gauge("depth");
        g.set(7);
        g.add(-2);
        let snap = r.snapshot();
        assert_eq!(snap.counter("hits"), Some(42));
        assert_eq!(snap.gauge("depth"), Some(5));
        assert_eq!(snap.counter("absent"), None);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(3), 7);

        let r = Registry::new();
        let h = r.histogram("lat");
        for v in [0, 1, 3, 1000, 1000, 5000] {
            h.record(v);
        }
        let snap = r.snapshot();
        let hs = snap.histogram("lat").unwrap();
        assert_eq!(hs.count, 6);
        assert_eq!(hs.sum, 7004);
        assert!((hs.mean() - 7004.0 / 6.0).abs() < 1e-9);
        // 0→b0, 1→b1, 3→b2, 1000×2→b10, 5000→b13
        assert_eq!(hs.buckets, vec![(0, 1), (1, 1), (2, 1), (10, 2), (13, 1)]);
        // target rank ceil(0.5*6)=3 lands in bucket 2 (values 2..=3);
        // rank ceil(0.75*6)=5 lands in bucket 10 (values 512..=1023).
        assert_eq!(hs.quantile_upper_bound(0.5), 3);
        assert_eq!(hs.quantile_upper_bound(0.75), 1023);
        assert_eq!(hs.quantile_upper_bound(1.0), 8191);
    }

    #[test]
    fn percentile_conveniences_wrap_quantile_upper_bound() {
        // Empty histogram: every percentile is 0 (no buckets at all).
        let empty = HistogramSnapshot::default();
        assert_eq!(empty.p50(), 0);
        assert_eq!(empty.p95(), 0);
        assert_eq!(empty.p99(), 0);

        // Single-bucket histogram: every percentile is that bucket's
        // upper bound, regardless of count.
        let r = Registry::new();
        let h = r.histogram("single");
        for _ in 0..10 {
            h.record(700); // bucket 10: values 512..=1023
        }
        let snap = r.snapshot();
        let hs = snap.histogram("single").unwrap();
        assert_eq!(hs.buckets.len(), 1);
        assert_eq!(hs.p50(), 1023);
        assert_eq!(hs.p95(), 1023);
        assert_eq!(hs.p99(), 1023);

        // Multi-bucket: p50/p95/p99 agree with quantile_upper_bound.
        let h2 = r.histogram("multi");
        for v in [1, 1, 1, 1, 1, 1, 1, 1, 1000, 5000] {
            h2.record(v);
        }
        let snap = r.snapshot();
        let hs = snap.histogram("multi").unwrap();
        assert_eq!(hs.p50(), hs.quantile_upper_bound(0.50));
        assert_eq!(hs.p50(), 1);
        assert_eq!(hs.p95(), hs.quantile_upper_bound(0.95));
        assert_eq!(hs.p95(), 8191);
        assert_eq!(hs.p99(), hs.quantile_upper_bound(0.99));
    }

    #[test]
    fn exemplars_track_last_trace_per_bucket() {
        let r = Registry::new();
        let h = r.histogram("lat");
        h.record(5); // bucket 3, no exemplar
        h.record_with_exemplar(6, 0xAAAA); // bucket 3
        h.record_with_exemplar(7, 0xBBBB); // bucket 3 — overwrites
        h.record_with_exemplar(1000, 0xCCCC); // bucket 10
        let snap = r.snapshot();
        let hs = snap.histogram("lat").unwrap();
        assert_eq!(hs.count, 4);
        assert_eq!(hs.exemplars, vec![(3, 0xBBBB, 7), (10, 0xCCCC, 1000)]);
        // JSON gains an "exemplars" key only when exemplars exist.
        let js = snap.to_json();
        assert!(
            js.contains(r#""exemplars":[[3,"0000000000000000000000000000bbbb",7]"#),
            "{js}"
        );

        // Scrub drops exemplars along with the distribution.
        r.scrub();
        let hs2 = r.snapshot();
        let hs2 = hs2.histogram("lat").unwrap();
        assert!(hs2.exemplars.is_empty());
        assert!(!r.snapshot().to_json().contains("exemplars"));

        // Absorb carries exemplars across registries (latest wins).
        let sink = Registry::new();
        sink.absorb(&snap);
        let folded = sink.snapshot();
        assert_eq!(
            folded.histogram("lat").unwrap().exemplars,
            vec![(3, 0xBBBB, 7), (10, 0xCCCC, 1000)]
        );
    }

    #[test]
    fn disabled_registry_records_nothing() {
        {
            // record_with_exemplar is gated like record.
            let r = Registry::new_disabled();
            let h = r.histogram("lat");
            h.record_with_exemplar(9, 0x1234);
            assert!(r.snapshot().is_zero());
            assert!(r.snapshot().histogram("lat").unwrap().exemplars.is_empty());
        }
        let r = Registry::new_disabled();
        let c = r.counter("hits");
        let h = r.histogram("lat");
        let g = r.gauge("lvl");
        c.inc();
        h.record(99);
        g.set(7);
        {
            let _span = r.span("span_us");
        }
        assert!(r.snapshot().is_zero());
        // Re-enabling makes the same handles live.
        r.set_enabled(true);
        c.inc();
        assert_eq!(r.snapshot().counter("hits"), Some(1));
    }

    #[test]
    fn span_timer_records_on_drop() {
        let r = Registry::new();
        {
            let _span = r.span("op_us");
        }
        let snap = r.snapshot();
        assert_eq!(snap.histogram("op_us").unwrap().count, 1);
    }

    #[test]
    fn absorb_accumulates() {
        let engine = Registry::new();
        engine.counter("bufpool.hits").add(10);
        engine.histogram("stmt.us").record(8);

        let harness = Registry::new();
        harness.absorb(&engine.snapshot());
        harness.absorb(&engine.snapshot());
        let snap = harness.snapshot();
        assert_eq!(snap.counter("bufpool.hits"), Some(20));
        let h = snap.histogram("stmt.us").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 16);
        assert_eq!(h.buckets, vec![(4, 2)]);
    }

    #[test]
    fn scrub_zeroes_but_keeps_registrations() {
        let r = Registry::new();
        let c = r.counter("secret.by_table.patients");
        c.add(1337);
        r.scrub();
        let snap = r.snapshot();
        assert_eq!(snap.counter("secret.by_table.patients"), Some(0));
        assert!(snap.is_zero());
        c.inc();
        assert_eq!(r.snapshot().counter("secret.by_table.patients"), Some(1));
    }

    #[test]
    fn json_shape_is_valid_and_escaped() {
        let r = Registry::new();
        r.counter("a\"b\\c\n").inc();
        r.histogram("h").record(3);
        let js = r.snapshot().to_json();
        assert!(js.starts_with('{') && js.ends_with('}'));
        assert!(js.contains(r#""a\"b\\c\n":1"#), "{js}");
        assert!(
            js.contains(r#""h":{"count":1,"sum":3,"mean_us":3,"buckets":[[2,1]]}"#),
            "{js}"
        );
    }

    #[test]
    fn concurrent_counter_increments_sum_exactly() {
        let r = Registry::new();
        let c = r.counter("n");
        let h = r.histogram("d");
        crossbeam::thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                let h = h.clone();
                s.spawn(move |_| {
                    for i in 0..10_000u64 {
                        c.inc();
                        h.record(i % 17);
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(c.get(), 80_000);
        assert_eq!(h.count(), 80_000);
    }
}
