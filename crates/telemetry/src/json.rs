//! Minimal hand-rolled JSON writer (no serde — this crate is
//! dependency-free by design, and the harness reuses this writer for
//! its `--json` export).

/// Streaming JSON writer with automatic comma management.
///
/// The caller is responsible for structural validity (matching
/// open/close, keys only inside objects); the writer handles commas,
/// string escaping, and non-finite floats (emitted as `null`).
pub struct Writer {
    buf: String,
    // True when the next value/key at this nesting level needs a comma.
    comma: Vec<bool>,
}

impl Default for Writer {
    fn default() -> Self {
        Writer::new()
    }
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Self {
        Writer {
            buf: String::new(),
            comma: vec![false],
        }
    }

    /// Finishes and returns the JSON text.
    pub fn into_string(self) -> String {
        self.buf
    }

    fn before_value(&mut self) {
        if let Some(need) = self.comma.last_mut() {
            if *need {
                self.buf.push(',');
            }
            *need = true;
        }
    }

    /// Opens an object (`{`).
    pub fn obj_open(&mut self) {
        self.before_value();
        self.buf.push('{');
        self.comma.push(false);
    }

    /// Closes an object (`}`).
    pub fn obj_close(&mut self) {
        self.comma.pop();
        self.buf.push('}');
    }

    /// Opens an array (`[`).
    pub fn arr_open(&mut self) {
        self.before_value();
        self.buf.push('[');
        self.comma.push(false);
    }

    /// Closes an array (`]`).
    pub fn arr_close(&mut self) {
        self.comma.pop();
        self.buf.push(']');
    }

    /// Writes an object key; the next write is its value.
    pub fn key(&mut self, k: &str) {
        self.before_value();
        escape_into(&mut self.buf, k);
        self.buf.push(':');
        // The value directly after a key must not be preceded by a comma.
        if let Some(need) = self.comma.last_mut() {
            *need = false;
        }
    }

    /// Writes a string value.
    pub fn string(&mut self, s: &str) {
        self.before_value();
        escape_into(&mut self.buf, s);
    }

    /// Writes an unsigned integer value.
    pub fn u64(&mut self, v: u64) {
        self.before_value();
        self.buf.push_str(&v.to_string());
    }

    /// Writes a signed integer value.
    pub fn i64(&mut self, v: i64) {
        self.before_value();
        self.buf.push_str(&v.to_string());
    }

    /// Writes a float value (`null` if non-finite; integral values
    /// printed without a trailing `.0` — still valid JSON numbers).
    pub fn f64(&mut self, v: f64) {
        self.before_value();
        if v.is_finite() {
            self.buf.push_str(&format_f64(v));
        } else {
            self.buf.push_str("null");
        }
    }

    /// Writes a boolean value.
    pub fn bool(&mut self, v: bool) {
        self.before_value();
        self.buf.push_str(if v { "true" } else { "false" });
    }

    /// Writes pre-serialised JSON verbatim as one value.
    pub fn raw(&mut self, json: &str) {
        self.before_value();
        self.buf.push_str(json);
    }
}

fn format_f64(v: f64) -> String {
    // Shortest roundtrip-ish: prefer integer form, else up to 6 decimals
    // with trailing zeros trimmed. Metrics are rates and averages, not
    // exact reals — 6 decimals is plenty.
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        let s = format!("{v:.6}");
        let s = s.trim_end_matches('0').trim_end_matches('.');
        s.to_string()
    }
}

/// Appends `s` as a JSON string literal (quoted, escaped).
pub fn escape_into(buf: &mut String, s: &str) {
    buf.push('"');
    for c in s.chars() {
        match c {
            '"' => buf.push_str("\\\""),
            '\\' => buf.push_str("\\\\"),
            '\n' => buf.push_str("\\n"),
            '\r' => buf.push_str("\\r"),
            '\t' => buf.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                buf.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => buf.push(c),
        }
    }
    buf.push('"');
}

/// `s` as a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut buf = String::new();
    escape_into(&mut buf, s);
    buf
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_produces_valid_nested_json() {
        let mut w = Writer::new();
        w.obj_open();
        w.key("a");
        w.u64(1);
        w.key("b");
        w.arr_open();
        w.string("x");
        w.i64(-2);
        w.f64(1.5);
        w.bool(true);
        w.arr_close();
        w.key("c");
        w.obj_open();
        w.obj_close();
        w.obj_close();
        assert_eq!(w.into_string(), r#"{"a":1,"b":["x",-2,1.5,true],"c":{}}"#);
    }

    #[test]
    fn escapes_control_and_quote_chars() {
        assert_eq!(escape("a\"b\\c\n\u{1}"), "\"a\\\"b\\\\c\\n\\u0001\"");
    }

    #[test]
    fn floats_are_compact_and_finite_only() {
        let mut w = Writer::new();
        w.arr_open();
        w.f64(2.0);
        w.f64(0.333333333);
        w.f64(f64::NAN);
        w.arr_close();
        assert_eq!(w.into_string(), "[2,0.333333,null]");
    }
}
