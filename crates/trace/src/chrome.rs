//! Chrome `trace_event` exporter: renders statement traces as the JSON
//! Trace Event Format (`chrome://tracing`, Perfetto). Every span becomes
//! one complete (`"ph":"X"`) event; `ts`/`dur` are microseconds, with
//! `ts` anchored at the simulated UNIX start time of the statement. The
//! connection id becomes the thread id, so concurrent connections land
//! on separate tracks.

use crate::{Span, StatementTrace};

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

fn push_event(out: &mut String, trace: &StatementTrace, span: &Span, first: &mut bool) {
    if !*first {
        out.push(',');
    }
    *first = false;
    let base_ts = trace.started_unix * 1_000_000;
    out.push_str("{\"name\":\"");
    escape_into(out, &span.name);
    out.push_str("\",\"cat\":\"statement\",\"ph\":\"X\",\"ts\":");
    out.push_str(&(base_ts + span.start_us as i64).to_string());
    out.push_str(",\"dur\":");
    out.push_str(&span.dur_us.to_string());
    out.push_str(",\"pid\":1,\"tid\":");
    out.push_str(&trace.conn_id.to_string());
    out.push_str(",\"args\":{");
    let mut first_arg = true;
    if span.name == "statement" {
        out.push_str("\"statement\":\"");
        escape_into(out, &trace.statement);
        out.push_str("\",\"digest\":\"");
        escape_into(out, &trace.digest);
        out.push_str("\",\"tables\":\"");
        escape_into(out, &trace.tables.join(","));
        out.push_str("\",\"trace_id\":");
        out.push_str(&trace.trace_id.to_string());
        first_arg = false;
    }
    for (k, v) in &span.attrs {
        if !first_arg {
            out.push(',');
        }
        first_arg = false;
        out.push('"');
        escape_into(out, k);
        out.push_str("\":");
        out.push_str(&v.to_string());
    }
    out.push_str("}}");
    for c in &span.children {
        push_event(out, trace, c, first);
    }
}

/// Serializes traces as one Trace Event Format document:
/// `{"traceEvents":[…],"displayTimeUnit":"ms"}`.
pub fn to_chrome_json(traces: &[StatementTrace]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    for t in traces {
        push_event(&mut out, t, &t.root, &mut first);
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exports_complete_events_with_ts_and_dur() {
        let mut b = crate::TraceBuilder::new(3, 1_483_228_805, "SELECT \"x\"\n", "d1");
        b.begin("parse");
        b.end(25);
        b.begin("scan");
        b.attr("rows_examined", 9);
        b.end_elastic();
        let t = b.finish(400);
        let doc = to_chrome_json(&[t]);
        assert!(doc.starts_with("{\"traceEvents\":["));
        assert!(doc.ends_with("]}") || doc.ends_with("\"ms\"}"));
        assert!(doc.contains("\"ph\":\"X\""));
        assert!(doc.contains("\"dur\":400"));
        assert!(doc.contains("\"dur\":25"));
        assert!(doc.contains(&format!("\"ts\":{}", 1_483_228_805i64 * 1_000_000)));
        assert!(doc.contains("\"tid\":3"));
        assert!(doc.contains("\"rows_examined\":9"));
        // Statement text is escaped, not emitted raw.
        assert!(doc.contains("SELECT \\\"x\\\"\\n"));
    }

    #[test]
    fn empty_input_is_still_a_valid_document() {
        assert_eq!(
            to_chrome_json(&[]),
            "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}"
        );
    }
}
