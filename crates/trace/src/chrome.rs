//! Chrome `trace_event` exporter: renders statement traces as the JSON
//! Trace Event Format (`chrome://tracing`, Perfetto). Every span becomes
//! one complete (`"ph":"X"`) event; `ts`/`dur` are microseconds, with
//! `ts` anchored at the simulated UNIX start time of the statement. Each
//! distinct node gets its own process lane (pid), labeled via
//! `process_name` metadata events; the connection id becomes the thread
//! id, labeled via `thread_name` metadata, so concurrent connections
//! land on separate named tracks.
//!
//! Multi-node exports with clock-offset correction live in
//! [`crate::merge`]; this module renders whatever lane layout it is
//! handed.

use crate::{Span, StatementTrace};

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

fn push_sep(out: &mut String, first: &mut bool) {
    if !*first {
        out.push(',');
    }
    *first = false;
}

/// One `"ph":"M"` metadata event naming a process or thread lane.
fn push_metadata(
    out: &mut String,
    first: &mut bool,
    what: &str,
    pid: u64,
    tid: Option<u64>,
    name: &str,
) {
    push_sep(out, first);
    out.push_str("{\"name\":\"");
    out.push_str(what);
    out.push_str("\",\"ph\":\"M\",\"pid\":");
    out.push_str(&pid.to_string());
    if let Some(tid) = tid {
        out.push_str(",\"tid\":");
        out.push_str(&tid.to_string());
    }
    out.push_str(",\"args\":{\"name\":\"");
    escape_into(out, name);
    out.push_str("\"}}");
}

fn push_event(
    out: &mut String,
    trace: &StatementTrace,
    span: &Span,
    pid: u64,
    shift_us: i64,
    first: &mut bool,
) {
    push_sep(out, first);
    let base_ts = trace.started_unix * 1_000_000 + shift_us;
    out.push_str("{\"name\":\"");
    escape_into(out, &span.name);
    out.push_str("\",\"cat\":\"statement\",\"ph\":\"X\",\"ts\":");
    out.push_str(&(base_ts + span.start_us as i64).to_string());
    out.push_str(",\"dur\":");
    out.push_str(&span.dur_us.to_string());
    out.push_str(",\"pid\":");
    out.push_str(&pid.to_string());
    out.push_str(",\"tid\":");
    out.push_str(&trace.conn_id.to_string());
    out.push_str(",\"args\":{");
    let mut first_arg = true;
    if span.name == "statement" {
        out.push_str("\"statement\":\"");
        escape_into(out, &trace.statement);
        out.push_str("\",\"digest\":\"");
        escape_into(out, &trace.digest);
        out.push_str("\",\"tables\":\"");
        escape_into(out, &trace.tables.join(","));
        out.push_str("\",\"trace_id\":");
        out.push_str(&trace.trace_id.to_string());
        if let Some(ctx) = &trace.ctx {
            out.push_str(",\"traceparent\":\"");
            out.push_str(&ctx.to_traceparent());
            out.push('"');
        }
        first_arg = false;
    }
    for (k, v) in &span.attrs {
        if !first_arg {
            out.push(',');
        }
        first_arg = false;
        out.push('"');
        escape_into(out, k);
        out.push_str("\":");
        out.push_str(&v.to_string());
    }
    out.push_str("}}");
    for c in &span.children {
        push_event(out, trace, c, pid, shift_us, first);
    }
}

/// One process lane of a rendered document: a label, a clock shift
/// applied to every timestamp (µs), and the traces on the lane.
pub(crate) struct Lane<'a> {
    pub label: String,
    pub shift_us: i64,
    pub traces: &'a [StatementTrace],
}

/// Renders lanes as one Trace Event Format document. Lane `i` becomes
/// pid `i + 1`, named by a `process_name` metadata event; every
/// distinct connection on a lane gets a `thread_name`.
pub(crate) fn render(lanes: &[Lane]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    for (i, lane) in lanes.iter().enumerate() {
        let pid = i as u64 + 1;
        push_metadata(&mut out, &mut first, "process_name", pid, None, &lane.label);
        let mut tids: Vec<u64> = lane.traces.iter().map(|t| t.conn_id).collect();
        tids.sort_unstable();
        tids.dedup();
        for tid in tids {
            push_metadata(
                &mut out,
                &mut first,
                "thread_name",
                pid,
                Some(tid),
                &format!("conn {tid}"),
            );
        }
        for t in lane.traces {
            push_event(&mut out, t, &t.root, pid, lane.shift_us, &mut first);
        }
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

/// Serializes traces as one Trace Event Format document:
/// `{"traceEvents":[…],"displayTimeUnit":"ms"}`. Traces are grouped
/// into one process lane per distinct `node` (first-appearance order;
/// untagged traces land on a `"minidb"` lane), with no clock
/// correction — for that, see [`crate::merge::merge_chrome_json`].
pub fn to_chrome_json(traces: &[StatementTrace]) -> String {
    let mut nodes: Vec<String> = Vec::new();
    for t in traces {
        let label = lane_label(t);
        if !nodes.iter().any(|n| n == label) {
            nodes.push(label.to_string());
        }
    }
    let grouped: Vec<Vec<StatementTrace>> = nodes
        .iter()
        .map(|n| {
            traces
                .iter()
                .filter(|t| lane_label(t) == n)
                .cloned()
                .collect()
        })
        .collect();
    let lanes: Vec<Lane> = nodes
        .iter()
        .zip(&grouped)
        .map(|(label, traces)| Lane {
            label: label.clone(),
            shift_us: 0,
            traces,
        })
        .collect();
    render(&lanes)
}

fn lane_label(t: &StatementTrace) -> &str {
    if t.node.is_empty() {
        "minidb"
    } else {
        &t.node
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exports_complete_events_with_ts_and_dur() {
        let mut b = crate::TraceBuilder::new(3, 1_483_228_805, "SELECT \"x\"\n", "d1");
        b.begin("parse");
        b.end(25);
        b.begin("scan");
        b.attr("rows_examined", 9);
        b.end_elastic();
        let t = b.finish(400);
        let doc = to_chrome_json(&[t]);
        assert!(doc.starts_with("{\"traceEvents\":["));
        assert!(doc.ends_with("]}") || doc.ends_with("\"ms\"}"));
        assert!(doc.contains("\"ph\":\"X\""));
        assert!(doc.contains("\"dur\":400"));
        assert!(doc.contains("\"dur\":25"));
        assert!(doc.contains(&format!("\"ts\":{}", 1_483_228_805i64 * 1_000_000)));
        assert!(doc.contains("\"tid\":3"));
        assert!(doc.contains("\"rows_examined\":9"));
        // Statement text is escaped, not emitted raw.
        assert!(doc.contains("SELECT \\\"x\\\"\\n"));
    }

    #[test]
    fn empty_input_is_still_a_valid_document() {
        assert_eq!(
            to_chrome_json(&[]),
            "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}"
        );
    }

    #[test]
    fn lanes_are_labeled_with_process_and_thread_metadata() {
        let mut a = crate::StatementTrace::minimal(7, 10, "SELECT 1", "d", 5, 0);
        a.node = "primary".into();
        let mut b = crate::StatementTrace::minimal(3, 11, "INSERT", "d", 5, 0);
        b.node = "replica-0".into();
        let doc = to_chrome_json(&[a, b]);
        assert!(doc.contains(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{\"name\":\"primary\"}}"
        ));
        assert!(doc.contains(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2,\"args\":{\"name\":\"replica-0\"}}"
        ));
        assert!(doc.contains(
            "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":7,\"args\":{\"name\":\"conn 7\"}}"
        ));
        // The replica's span lands on pid 2.
        assert!(doc.contains("\"pid\":2,\"tid\":3"));
    }

    #[test]
    fn statement_args_carry_the_traceparent() {
        let mut t = crate::StatementTrace::minimal(1, 0, "SELECT 1", "d", 5, 0);
        let ctx = crate::TraceContext {
            trace_id: 0xAB,
            span_id: 0xCD,
            sampled: true,
        };
        t.ctx = Some(ctx);
        let doc = to_chrome_json(&[t]);
        assert!(doc.contains(&format!("\"traceparent\":\"{}\"", ctx.to_traceparent())));
    }
}
