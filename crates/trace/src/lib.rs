//! mdb-trace — per-statement execution traces for MiniDB.
//!
//! A trace is a tree of causally-nested [`Span`]s (parse → plan →
//! heap/index scan → buffer-pool I/O → WAL append → commit), each
//! carrying numeric attributes (rows examined, pages hit/missed, bytes
//! logged). The engine builds one [`StatementTrace`] per statement with
//! a [`TraceBuilder`] and deposits it in a bounded in-memory
//! [`Recorder`] ring — the *flight recorder* of the last N statements.
//!
//! Durations are **simulated** microseconds from the engine's
//! deterministic cost model, not wall-clock samples: fixed-cost stages
//! close with an explicit cost, one *elastic* stage per statement
//! absorbs the residual, so the top-level children always sum exactly
//! to the statement total (the `EXPLAIN ANALYZE` invariant).
//!
//! Like the telemetry registry, the disabled hot path is a single
//! relaxed atomic load ([`Recorder::is_enabled`]); no span state is
//! allocated when tracing is off.
//!
//! True to the paper, all of this is modeled as *leakage*: the ring
//! rides along in every memory image, and the versioned slow-log
//! records ([`record`]) are carvable from stolen disks long after
//! `performance_schema` has been wiped.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

pub mod chrome;
pub mod merge;
pub mod record;

// ================= distributed trace context =================

/// SplitMix64: the id mixer behind [`TraceContext`] generation and the
/// `trace_id_hashing` mitigation. Zero-dependency, full-period, and
/// statistically fine for identifiers (not for cryptography — the
/// mitigation's strength is the secrecy of the key, modeled here).
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Process-local entropy without a `rand` dependency: the std hasher's
/// per-process random keys, folded through SplitMix64. Each call hashes
/// a fresh [`std::collections::hash_map::RandomState`], so successive
/// calls yield independent values. Public because the engine draws its
/// `trace_id_hashing` key from the same well.
pub fn entropy64() -> u64 {
    use std::hash::{BuildHasher, Hasher};
    let h = std::collections::hash_map::RandomState::new().build_hasher();
    splitmix64(h.finish())
}

/// A W3C-traceparent-style distributed trace context: the identity a
/// request carries across process boundaries so every node's spans land
/// in the same trace.
///
/// The client generates a root context per statement; each hop derives
/// a [`child`](TraceContext::child) (same `trace_id`, fresh `span_id`)
/// before doing its own work, so the received `span_id` is the parent
/// of the work the receiver records. The 25-byte wire form
/// ([`encode`](TraceContext::encode)) rides in v2 MSRV frames, binlog
/// events, and v2 slow-log records — which is exactly why E19 treats it
/// as a leakage surface: one identifier, recoverable from three
/// machines' disks, joins them all.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TraceContext {
    /// 128-bit trace identity, shared by every span of the trace.
    pub trace_id: u128,
    /// 64-bit id of the sender's span (the parent of work done under
    /// this context).
    pub span_id: u64,
    /// Whether the trace is sampled; unsampled contexts propagate but
    /// recorders treat them as absent (the sampling mitigation).
    pub sampled: bool,
}

impl TraceContext {
    /// Encoded wire length: trace_id (16) + span_id (8) + flags (1).
    pub const WIRE_LEN: usize = 25;

    /// A fresh root context (new random trace and span ids, sampled).
    pub fn generate() -> TraceContext {
        let hi = entropy64();
        let lo = entropy64();
        let trace_id = ((hi as u128) << 64) | lo as u128;
        TraceContext {
            // Zero trace ids are reserved as "absent" in traceparent.
            trace_id: if trace_id == 0 { 1 } else { trace_id },
            span_id: entropy64() | 1,
            sampled: true,
        }
    }

    /// Derives the context for work caused by this one: same trace,
    /// fresh span id. The receiver records `self.span_id` as the parent.
    pub fn child(&self) -> TraceContext {
        TraceContext {
            trace_id: self.trace_id,
            span_id: entropy64() | 1,
            sampled: self.sampled,
        }
    }

    /// The `trace_id_hashing` mitigation: a keyed rehash applied at the
    /// replication boundary. Ids stay stable under one key (replica-side
    /// spans of one trace still correlate with each other) but join
    /// against nothing recorded outside that boundary.
    pub fn rehash(&self, key: u64) -> TraceContext {
        let lo = splitmix64(self.trace_id as u64 ^ key);
        let hi = splitmix64((self.trace_id >> 64) as u64 ^ key.rotate_left(17));
        TraceContext {
            trace_id: ((hi as u128) << 64) | lo as u128,
            span_id: splitmix64(self.span_id ^ key),
            sampled: self.sampled,
        }
    }

    /// Formats as a W3C `traceparent` header value
    /// (`00-<32 hex>-<16 hex>-<flags>`).
    pub fn to_traceparent(&self) -> String {
        format!(
            "00-{:032x}-{:016x}-{:02x}",
            self.trace_id,
            self.span_id,
            u8::from(self.sampled)
        )
    }

    /// Parses a W3C `traceparent` value (version 00; zero ids rejected,
    /// per the spec).
    pub fn parse_traceparent(s: &str) -> Option<TraceContext> {
        let mut parts = s.split('-');
        let (version, tid, sid, flags) =
            (parts.next()?, parts.next()?, parts.next()?, parts.next()?);
        if parts.next().is_some() || version != "00" || tid.len() != 32 || sid.len() != 16 {
            return None;
        }
        let trace_id = u128::from_str_radix(tid, 16).ok()?;
        let span_id = u64::from_str_radix(sid, 16).ok()?;
        let flags = u8::from_str_radix(flags, 16).ok()?;
        if trace_id == 0 || span_id == 0 {
            return None;
        }
        Some(TraceContext {
            trace_id,
            span_id,
            sampled: flags & 1 != 0,
        })
    }

    /// Appends the 25-byte wire form (all little-endian).
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.trace_id.to_le_bytes());
        out.extend_from_slice(&self.span_id.to_le_bytes());
        out.push(u8::from(self.sampled));
    }

    /// Decodes the wire form from the first [`WIRE_LEN`](Self::WIRE_LEN)
    /// bytes of `buf`.
    pub fn decode(buf: &[u8]) -> Option<TraceContext> {
        if buf.len() < Self::WIRE_LEN {
            return None;
        }
        let trace_id = u128::from_le_bytes(buf[..16].try_into().ok()?);
        let span_id = u64::from_le_bytes(buf[16..24].try_into().ok()?);
        Some(TraceContext {
            trace_id,
            span_id,
            sampled: buf[24] & 1 != 0,
        })
    }
}

/// One node of the span tree: a named execution stage with a start
/// offset and duration (simulated µs, relative to statement start),
/// numeric attributes, and causally-nested children.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Span {
    /// Stage name (`"parse"`, `"plan"`, `"scan"`, `"bufpool"`, …).
    pub name: String,
    /// Offset from statement start, simulated µs.
    pub start_us: u64,
    /// Duration, simulated µs.
    pub dur_us: u64,
    /// Numeric attributes, e.g. `("rows_examined", 512)`.
    pub attrs: Vec<(String, u64)>,
    /// Child spans, in execution order.
    pub children: Vec<Span>,
}

impl Span {
    /// Looks up an attribute by key.
    pub fn attr(&self, key: &str) -> Option<u64> {
        self.attrs.iter().find(|(k, _)| k == key).map(|(_, v)| *v)
    }

    /// First direct child with the given name.
    pub fn child(&self, name: &str) -> Option<&Span> {
        self.children.iter().find(|c| c.name == name)
    }

    /// First span with the given name anywhere in the subtree.
    pub fn find(&self, name: &str) -> Option<&Span> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }

    /// Number of spans in the subtree (including this one).
    pub fn span_count(&self) -> usize {
        1 + self.children.iter().map(Span::span_count).sum::<usize>()
    }

    /// Depth-first flattening: `(span, depth)` pairs, preorder.
    pub fn flatten(&self) -> Vec<(&Span, usize)> {
        let mut out = Vec::new();
        self.flatten_into(0, &mut out);
        out
    }

    fn flatten_into<'a>(&'a self, depth: usize, out: &mut Vec<(&'a Span, usize)>) {
        out.push((self, depth));
        for c in &self.children {
            c.flatten_into(depth + 1, out);
        }
    }
}

/// A completed per-statement trace: identity, timing, the statement
/// text and digest, the tables it touched, and the span tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StatementTrace {
    /// Ring-assigned id (0 until recorded).
    pub trace_id: u64,
    /// Connection ("thread") that ran the statement.
    pub conn_id: u64,
    /// Simulated UNIX time the statement started.
    pub started_unix: i64,
    /// Full statement text — verbatim, ciphertext literals included.
    pub statement: String,
    /// Statement digest (normalized-text hash).
    pub digest: String,
    /// Total statement duration, simulated µs.
    pub total_us: u64,
    /// Tables the statement touched, deduplicated, in first-touch order.
    pub tables: Vec<String>,
    /// Root of the span tree (named `"statement"`).
    pub root: Span,
    /// Which node recorded the trace (`"primary"`, `"replica-0"`, a
    /// client name, or `""` for an untagged single-node recorder).
    pub node: String,
    /// Distributed trace context, when the statement carried one. All
    /// spans of one logical request — client, server, replica apply —
    /// share `ctx.trace_id`.
    pub ctx: Option<TraceContext>,
}

impl StatementTrace {
    /// A minimal single-span trace, used for slow-log records when the
    /// full tracer is disarmed: text, timing, and row count survive even
    /// then — only the span tree and table list are lost.
    pub fn minimal(
        conn_id: u64,
        started_unix: i64,
        statement: &str,
        digest: &str,
        total_us: u64,
        rows_examined: u64,
    ) -> StatementTrace {
        StatementTrace {
            trace_id: 0,
            conn_id,
            started_unix,
            statement: statement.to_string(),
            digest: digest.to_string(),
            total_us,
            tables: Vec::new(),
            root: Span {
                name: "statement".to_string(),
                start_us: 0,
                dur_us: total_us,
                attrs: vec![("rows_examined".to_string(), rows_examined)],
                children: Vec::new(),
            },
            node: String::new(),
            ctx: None,
        }
    }

    /// Absolute start of the trace in simulated microseconds
    /// (`started_unix` seconds plus the root span's offset).
    pub fn start_abs_us(&self) -> i64 {
        self.started_unix * 1_000_000 + self.root.start_us as i64
    }
}

// ================= builder =================

struct Node {
    name: String,
    dur_us: u64,
    attrs: Vec<(String, u64)>,
    children: Vec<usize>,
}

/// Incrementally builds one statement's span tree. The engine opens a
/// builder per traced statement, brackets each execution stage with
/// [`begin`](TraceBuilder::begin) / [`end`](TraceBuilder::end) (passing
/// the stage's simulated cost), marks exactly one stage *elastic* —
/// typically the scan or write — and calls
/// [`finish`](TraceBuilder::finish) with the statement total; the
/// elastic stage absorbs the residual so top-level durations sum
/// exactly to the total.
pub struct TraceBuilder {
    conn_id: u64,
    started_unix: i64,
    statement: String,
    digest: String,
    tables: Vec<String>,
    nodes: Vec<Node>,
    /// Open spans, innermost last. `stack[0]` is always the root.
    stack: Vec<usize>,
    elastic: Option<usize>,
    ctx: Option<TraceContext>,
}

impl TraceBuilder {
    /// Starts a trace for one statement.
    pub fn new(conn_id: u64, started_unix: i64, statement: &str, digest: &str) -> TraceBuilder {
        TraceBuilder {
            conn_id,
            started_unix,
            statement: statement.to_string(),
            digest: digest.to_string(),
            tables: Vec::new(),
            nodes: vec![Node {
                name: "statement".to_string(),
                dur_us: 0,
                attrs: Vec::new(),
                children: Vec::new(),
            }],
            stack: vec![0],
            elastic: None,
            ctx: None,
        }
    }

    /// Attaches the distributed trace context this statement runs
    /// under (the node's own span context, not the parent's).
    pub fn set_ctx(&mut self, ctx: TraceContext) {
        self.ctx = Some(ctx);
    }

    /// The attached distributed context, if any.
    pub fn ctx(&self) -> Option<TraceContext> {
        self.ctx
    }

    /// Opens a child span of the innermost open span.
    pub fn begin(&mut self, name: &str) {
        let idx = self.nodes.len();
        self.nodes.push(Node {
            name: name.to_string(),
            dur_us: 0,
            attrs: Vec::new(),
            children: Vec::new(),
        });
        let parent = *self.stack.last().expect("root never closes");
        self.nodes[parent].children.push(idx);
        self.stack.push(idx);
    }

    /// Adds an attribute to the innermost open span.
    pub fn attr(&mut self, key: &str, value: u64) {
        let idx = *self.stack.last().expect("root never closes");
        self.nodes[idx].attrs.push((key.to_string(), value));
    }

    /// Records a touched table (deduplicated, order-preserving).
    pub fn table(&mut self, name: &str) {
        if !self.tables.iter().any(|t| t == name) {
            self.tables.push(name.to_string());
        }
    }

    /// Closes the innermost open span with a fixed simulated cost.
    pub fn end(&mut self, cost_us: u64) {
        if self.stack.len() > 1 {
            let idx = self.stack.pop().expect("checked");
            self.nodes[idx].dur_us = cost_us;
        }
    }

    /// Closes the innermost open span and marks it elastic: it will
    /// absorb the residual between the fixed stage costs and the
    /// statement total at [`finish`](TraceBuilder::finish). Last call
    /// wins if invoked more than once.
    pub fn end_elastic(&mut self) {
        if self.stack.len() > 1 {
            let idx = self.stack.pop().expect("checked");
            self.nodes[idx].dur_us = 0;
            self.elastic = Some(idx);
        }
    }

    /// Finalizes the trace given the statement's total simulated
    /// duration. Any still-open spans are closed at zero cost; the
    /// elastic span (or, failing one at top level, a synthetic `other`
    /// stage) absorbs the residual, so the root's direct children sum
    /// exactly to `total_us`.
    pub fn finish(mut self, total_us: u64) -> StatementTrace {
        while self.stack.len() > 1 {
            self.end(0);
        }
        self.nodes[0].dur_us = total_us;
        let top_sum: u64 = self.nodes[0]
            .children
            .iter()
            .map(|&c| self.nodes[c].dur_us)
            .sum();
        let residual = total_us.saturating_sub(top_sum);
        if residual > 0 {
            match self.elastic.filter(|e| self.nodes[0].children.contains(e)) {
                Some(e) => self.nodes[e].dur_us += residual,
                None => {
                    let idx = self.nodes.len();
                    self.nodes.push(Node {
                        name: "other".to_string(),
                        dur_us: residual,
                        attrs: Vec::new(),
                        children: Vec::new(),
                    });
                    self.nodes[0].children.push(idx);
                }
            }
        }
        let root = materialize(&self.nodes, 0, 0, total_us);
        StatementTrace {
            trace_id: 0,
            conn_id: self.conn_id,
            started_unix: self.started_unix,
            statement: self.statement,
            digest: self.digest,
            total_us,
            tables: self.tables,
            root,
            node: String::new(),
            ctx: self.ctx,
        }
    }
}

/// Converts the builder arena into the recursive span tree, laying
/// children out sequentially from the parent's start and clamping them
/// to the parent's extent (nested costs are advisory; top-level costs
/// are exact by construction).
fn materialize(nodes: &[Node], idx: usize, start_us: u64, dur_us: u64) -> Span {
    let n = &nodes[idx];
    let end = start_us + dur_us;
    let mut cursor = start_us;
    let mut children = Vec::with_capacity(n.children.len());
    for &c in &n.children {
        let child_start = cursor.min(end);
        let child_dur = nodes[c].dur_us.min(end - child_start);
        children.push(materialize(nodes, c, child_start, child_dur));
        cursor = child_start + child_dur;
    }
    Span {
        name: n.name.clone(),
        start_us,
        dur_us,
        attrs: n.attrs.clone(),
        children,
    }
}

// ================= flight recorder =================

#[derive(Debug)]
struct RingInner {
    ring: VecDeque<StatementTrace>,
    capacity: usize,
    next_id: u64,
    evicted: u64,
    /// Node identity stamped onto recorded traces (cross-node merge key).
    node: String,
}

/// The flight recorder: a bounded ring of the last N statement traces.
/// Cloneable; clones share state (the engine, `information_schema`, and
/// the memory-image capture all read the same ring). Note what the ring
/// deliberately does **not** do: it survives
/// `Db::flush_diagnostics` — wiping `performance_schema` leaves the
/// flight recorder intact, which is exactly the residual surface e15
/// measures.
#[derive(Clone, Debug)]
pub struct Recorder {
    enabled: Arc<AtomicBool>,
    inner: Arc<Mutex<RingInner>>,
}

impl Recorder {
    /// An armed recorder holding up to `capacity` traces.
    pub fn new(capacity: usize) -> Recorder {
        Recorder::with_enabled(capacity, true)
    }

    /// A disarmed recorder: `is_enabled` is false, `record` drops.
    pub fn new_disabled(capacity: usize) -> Recorder {
        Recorder::with_enabled(capacity, false)
    }

    fn with_enabled(capacity: usize, enabled: bool) -> Recorder {
        Recorder {
            enabled: Arc::new(AtomicBool::new(enabled)),
            inner: Arc::new(Mutex::new(RingInner {
                ring: VecDeque::with_capacity(capacity.min(1024)),
                capacity: capacity.max(1),
                next_id: 1,
                evicted: 0,
                node: String::new(),
            })),
        }
    }

    /// Sets the node identity stamped onto traces recorded here (traces
    /// that already carry a node keep it — absorbed rings stay tagged
    /// with their origin).
    pub fn set_node(&self, node: &str) {
        self.inner.lock().unwrap().node = node.to_string();
    }

    /// This recorder's node identity.
    pub fn node(&self) -> String {
        self.inner.lock().unwrap().node.clone()
    }

    /// The hot-path gate: one relaxed atomic load.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Arms or disarms the recorder.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Assigns the next trace id, pushes the trace (evicting the oldest
    /// past capacity), and returns the id-stamped trace. Records even
    /// when disarmed — the caller gates on [`is_enabled`](Self::is_enabled).
    pub fn record(&self, mut trace: StatementTrace) -> StatementTrace {
        let mut g = self.inner.lock().unwrap();
        trace.trace_id = g.next_id;
        g.next_id += 1;
        if trace.node.is_empty() {
            trace.node = g.node.clone();
        }
        g.ring.push_back(trace.clone());
        while g.ring.len() > g.capacity {
            g.ring.pop_front();
            g.evicted += 1;
        }
        trace
    }

    /// Folds externally produced traces in (the harness absorbing an
    /// experiment database's ring). Ids are reassigned locally.
    pub fn absorb(&self, traces: Vec<StatementTrace>) {
        for t in traces {
            self.record(t);
        }
    }

    /// Ring contents, oldest first.
    pub fn traces(&self) -> Vec<StatementTrace> {
        self.inner.lock().unwrap().ring.iter().cloned().collect()
    }

    /// Number of traces currently held.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().ring.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.inner.lock().unwrap().capacity
    }

    /// Traces evicted so far (lifetime count).
    pub fn evicted(&self) -> u64 {
        self.inner.lock().unwrap().evicted
    }

    /// Drops all traces (crash, or an explicit diagnostics scrub). Id
    /// assignment continues — like restarting `performance_schema`,
    /// the wipe is observable in the numbering gap.
    pub fn clear(&self) {
        self.inner.lock().unwrap().ring.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(statement: &str) -> TraceBuilder {
        TraceBuilder::new(7, 1_483_228_801, statement, "digest-x")
    }

    #[test]
    fn builder_top_level_durations_sum_to_total() {
        let mut b = build("SELECT * FROM t");
        b.begin("parse");
        b.end(40);
        b.begin("plan");
        b.attr("index_used", 0);
        b.end(40);
        b.begin("scan");
        b.begin("bufpool");
        b.attr("pages_hit", 3);
        b.end(5);
        b.attr("rows_examined", 100);
        b.end_elastic();
        let t = b.finish(500);
        assert_eq!(t.total_us, 500);
        assert_eq!(t.root.dur_us, 500);
        let sum: u64 = t.root.children.iter().map(|c| c.dur_us).sum();
        assert_eq!(sum, 500);
        // The elastic scan absorbed the residual.
        assert_eq!(t.root.child("scan").unwrap().dur_us, 420);
        // Children are laid out sequentially.
        assert_eq!(t.root.child("plan").unwrap().start_us, 40);
        assert_eq!(t.root.child("scan").unwrap().start_us, 80);
        assert_eq!(
            t.root
                .child("scan")
                .unwrap()
                .child("bufpool")
                .unwrap()
                .start_us,
            80
        );
    }

    #[test]
    fn builder_without_elastic_synthesizes_other() {
        let mut b = build("BEGIN");
        b.begin("parse");
        b.end(40);
        let t = b.finish(300);
        let sum: u64 = t.root.children.iter().map(|c| c.dur_us).sum();
        assert_eq!(sum, 300);
        assert_eq!(t.root.child("other").unwrap().dur_us, 260);
    }

    #[test]
    fn builder_closes_dangling_spans_and_clamps_children() {
        let mut b = build("SELECT 1");
        b.begin("scan");
        b.begin("bufpool");
        b.end(9999); // Advisory nested cost larger than the statement.
                     // "scan" left open: finish closes it.
        let t = b.finish(100);
        let scan = t.root.child("scan").unwrap();
        assert!(scan.child("bufpool").unwrap().dur_us <= scan.dur_us);
        let sum: u64 = t.root.children.iter().map(|c| c.dur_us).sum();
        assert_eq!(sum, 100);
    }

    #[test]
    fn tables_dedup_preserving_order() {
        let mut b = build("SELECT …");
        b.table("orders");
        b.table("customers");
        b.table("orders");
        let t = b.finish(1);
        assert_eq!(t.tables, ["orders", "customers"]);
    }

    #[test]
    fn ring_assigns_ids_and_evicts_oldest() {
        let r = Recorder::new(3);
        for i in 0..5 {
            let t = r.record(StatementTrace::minimal(1, i, &format!("q{i}"), "d", 10, 0));
            assert_eq!(t.trace_id, i as u64 + 1);
        }
        let held = r.traces();
        assert_eq!(held.len(), 3);
        assert_eq!(r.evicted(), 2);
        let texts: Vec<&str> = held.iter().map(|t| t.statement.as_str()).collect();
        assert_eq!(texts, ["q2", "q3", "q4"]);
        r.clear();
        assert!(r.is_empty());
        // Numbering continues across the wipe.
        assert_eq!(
            r.record(StatementTrace::minimal(1, 9, "q", "d", 1, 0))
                .trace_id,
            6
        );
    }

    #[test]
    fn disabled_recorder_gate() {
        let r = Recorder::new_disabled(8);
        assert!(!r.is_enabled());
        r.set_enabled(true);
        assert!(r.is_enabled());
    }

    #[test]
    fn context_generation_and_children_share_the_trace_id() {
        let root = TraceContext::generate();
        assert_ne!(root.trace_id, 0);
        assert_ne!(root.span_id, 0);
        assert!(root.sampled);
        let child = root.child();
        assert_eq!(child.trace_id, root.trace_id);
        assert_ne!(child.span_id, root.span_id);
        // Two generated roots collide with probability ~2^-128.
        assert_ne!(TraceContext::generate().trace_id, root.trace_id);
    }

    #[test]
    fn traceparent_round_trip() {
        let ctx = TraceContext {
            trace_id: 0x0102_0304_0506_0708_090A_0B0C_0D0E_0F10,
            span_id: 0xDEAD_BEEF_0BAD_F00D,
            sampled: true,
        };
        let s = ctx.to_traceparent();
        assert_eq!(s, "00-0102030405060708090a0b0c0d0e0f10-deadbeef0badf00d-01");
        assert_eq!(TraceContext::parse_traceparent(&s), Some(ctx));
        // Zero ids, wrong version, and wrong shapes are rejected.
        assert!(TraceContext::parse_traceparent(
            "00-00000000000000000000000000000000-deadbeef0badf00d-01"
        )
        .is_none());
        assert!(TraceContext::parse_traceparent("01-aa-bb-01").is_none());
        assert!(TraceContext::parse_traceparent("garbage").is_none());
    }

    #[test]
    fn context_wire_round_trip() {
        let ctx = TraceContext {
            trace_id: u128::MAX - 7,
            span_id: 42,
            sampled: false,
        };
        let mut buf = Vec::new();
        ctx.encode(&mut buf);
        assert_eq!(buf.len(), TraceContext::WIRE_LEN);
        assert_eq!(TraceContext::decode(&buf), Some(ctx));
        assert!(TraceContext::decode(&buf[..24]).is_none());
    }

    #[test]
    fn rehash_is_keyed_and_stable() {
        let ctx = TraceContext::generate();
        let a = ctx.rehash(0x1234);
        assert_eq!(a, ctx.rehash(0x1234), "same key, same rehash");
        assert_ne!(a.trace_id, ctx.trace_id, "join against the original breaks");
        assert_ne!(a.trace_id, ctx.rehash(0x5678).trace_id, "key matters");
        assert_eq!(a.sampled, ctx.sampled);
    }

    #[test]
    fn recorder_stamps_node_on_untagged_traces_only() {
        let r = Recorder::new(8);
        r.set_node("replica-0");
        let t = r.record(StatementTrace::minimal(1, 0, "q", "d", 1, 0));
        assert_eq!(t.node, "replica-0");
        let mut foreign = StatementTrace::minimal(1, 0, "q2", "d", 1, 0);
        foreign.node = "primary".to_string();
        assert_eq!(r.record(foreign).node, "primary");
    }

    #[test]
    fn builder_carries_the_context_into_the_trace() {
        let ctx = TraceContext::generate();
        let mut b = build("SELECT 1");
        b.set_ctx(ctx);
        assert_eq!(b.ctx(), Some(ctx));
        assert_eq!(b.finish(10).ctx, Some(ctx));
    }
}
