//! mdb-trace — per-statement execution traces for MiniDB.
//!
//! A trace is a tree of causally-nested [`Span`]s (parse → plan →
//! heap/index scan → buffer-pool I/O → WAL append → commit), each
//! carrying numeric attributes (rows examined, pages hit/missed, bytes
//! logged). The engine builds one [`StatementTrace`] per statement with
//! a [`TraceBuilder`] and deposits it in a bounded in-memory
//! [`Recorder`] ring — the *flight recorder* of the last N statements.
//!
//! Durations are **simulated** microseconds from the engine's
//! deterministic cost model, not wall-clock samples: fixed-cost stages
//! close with an explicit cost, one *elastic* stage per statement
//! absorbs the residual, so the top-level children always sum exactly
//! to the statement total (the `EXPLAIN ANALYZE` invariant).
//!
//! Like the telemetry registry, the disabled hot path is a single
//! relaxed atomic load ([`Recorder::is_enabled`]); no span state is
//! allocated when tracing is off.
//!
//! True to the paper, all of this is modeled as *leakage*: the ring
//! rides along in every memory image, and the versioned slow-log
//! records ([`record`]) are carvable from stolen disks long after
//! `performance_schema` has been wiped.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

pub mod chrome;
pub mod record;

/// One node of the span tree: a named execution stage with a start
/// offset and duration (simulated µs, relative to statement start),
/// numeric attributes, and causally-nested children.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Span {
    /// Stage name (`"parse"`, `"plan"`, `"scan"`, `"bufpool"`, …).
    pub name: String,
    /// Offset from statement start, simulated µs.
    pub start_us: u64,
    /// Duration, simulated µs.
    pub dur_us: u64,
    /// Numeric attributes, e.g. `("rows_examined", 512)`.
    pub attrs: Vec<(String, u64)>,
    /// Child spans, in execution order.
    pub children: Vec<Span>,
}

impl Span {
    /// Looks up an attribute by key.
    pub fn attr(&self, key: &str) -> Option<u64> {
        self.attrs.iter().find(|(k, _)| k == key).map(|(_, v)| *v)
    }

    /// First direct child with the given name.
    pub fn child(&self, name: &str) -> Option<&Span> {
        self.children.iter().find(|c| c.name == name)
    }

    /// First span with the given name anywhere in the subtree.
    pub fn find(&self, name: &str) -> Option<&Span> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }

    /// Number of spans in the subtree (including this one).
    pub fn span_count(&self) -> usize {
        1 + self.children.iter().map(Span::span_count).sum::<usize>()
    }

    /// Depth-first flattening: `(span, depth)` pairs, preorder.
    pub fn flatten(&self) -> Vec<(&Span, usize)> {
        let mut out = Vec::new();
        self.flatten_into(0, &mut out);
        out
    }

    fn flatten_into<'a>(&'a self, depth: usize, out: &mut Vec<(&'a Span, usize)>) {
        out.push((self, depth));
        for c in &self.children {
            c.flatten_into(depth + 1, out);
        }
    }
}

/// A completed per-statement trace: identity, timing, the statement
/// text and digest, the tables it touched, and the span tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StatementTrace {
    /// Ring-assigned id (0 until recorded).
    pub trace_id: u64,
    /// Connection ("thread") that ran the statement.
    pub conn_id: u64,
    /// Simulated UNIX time the statement started.
    pub started_unix: i64,
    /// Full statement text — verbatim, ciphertext literals included.
    pub statement: String,
    /// Statement digest (normalized-text hash).
    pub digest: String,
    /// Total statement duration, simulated µs.
    pub total_us: u64,
    /// Tables the statement touched, deduplicated, in first-touch order.
    pub tables: Vec<String>,
    /// Root of the span tree (named `"statement"`).
    pub root: Span,
}

impl StatementTrace {
    /// A minimal single-span trace, used for slow-log records when the
    /// full tracer is disarmed: text, timing, and row count survive even
    /// then — only the span tree and table list are lost.
    pub fn minimal(
        conn_id: u64,
        started_unix: i64,
        statement: &str,
        digest: &str,
        total_us: u64,
        rows_examined: u64,
    ) -> StatementTrace {
        StatementTrace {
            trace_id: 0,
            conn_id,
            started_unix,
            statement: statement.to_string(),
            digest: digest.to_string(),
            total_us,
            tables: Vec::new(),
            root: Span {
                name: "statement".to_string(),
                start_us: 0,
                dur_us: total_us,
                attrs: vec![("rows_examined".to_string(), rows_examined)],
                children: Vec::new(),
            },
        }
    }
}

// ================= builder =================

struct Node {
    name: String,
    dur_us: u64,
    attrs: Vec<(String, u64)>,
    children: Vec<usize>,
}

/// Incrementally builds one statement's span tree. The engine opens a
/// builder per traced statement, brackets each execution stage with
/// [`begin`](TraceBuilder::begin) / [`end`](TraceBuilder::end) (passing
/// the stage's simulated cost), marks exactly one stage *elastic* —
/// typically the scan or write — and calls
/// [`finish`](TraceBuilder::finish) with the statement total; the
/// elastic stage absorbs the residual so top-level durations sum
/// exactly to the total.
pub struct TraceBuilder {
    conn_id: u64,
    started_unix: i64,
    statement: String,
    digest: String,
    tables: Vec<String>,
    nodes: Vec<Node>,
    /// Open spans, innermost last. `stack[0]` is always the root.
    stack: Vec<usize>,
    elastic: Option<usize>,
}

impl TraceBuilder {
    /// Starts a trace for one statement.
    pub fn new(conn_id: u64, started_unix: i64, statement: &str, digest: &str) -> TraceBuilder {
        TraceBuilder {
            conn_id,
            started_unix,
            statement: statement.to_string(),
            digest: digest.to_string(),
            tables: Vec::new(),
            nodes: vec![Node {
                name: "statement".to_string(),
                dur_us: 0,
                attrs: Vec::new(),
                children: Vec::new(),
            }],
            stack: vec![0],
            elastic: None,
        }
    }

    /// Opens a child span of the innermost open span.
    pub fn begin(&mut self, name: &str) {
        let idx = self.nodes.len();
        self.nodes.push(Node {
            name: name.to_string(),
            dur_us: 0,
            attrs: Vec::new(),
            children: Vec::new(),
        });
        let parent = *self.stack.last().expect("root never closes");
        self.nodes[parent].children.push(idx);
        self.stack.push(idx);
    }

    /// Adds an attribute to the innermost open span.
    pub fn attr(&mut self, key: &str, value: u64) {
        let idx = *self.stack.last().expect("root never closes");
        self.nodes[idx].attrs.push((key.to_string(), value));
    }

    /// Records a touched table (deduplicated, order-preserving).
    pub fn table(&mut self, name: &str) {
        if !self.tables.iter().any(|t| t == name) {
            self.tables.push(name.to_string());
        }
    }

    /// Closes the innermost open span with a fixed simulated cost.
    pub fn end(&mut self, cost_us: u64) {
        if self.stack.len() > 1 {
            let idx = self.stack.pop().expect("checked");
            self.nodes[idx].dur_us = cost_us;
        }
    }

    /// Closes the innermost open span and marks it elastic: it will
    /// absorb the residual between the fixed stage costs and the
    /// statement total at [`finish`](TraceBuilder::finish). Last call
    /// wins if invoked more than once.
    pub fn end_elastic(&mut self) {
        if self.stack.len() > 1 {
            let idx = self.stack.pop().expect("checked");
            self.nodes[idx].dur_us = 0;
            self.elastic = Some(idx);
        }
    }

    /// Finalizes the trace given the statement's total simulated
    /// duration. Any still-open spans are closed at zero cost; the
    /// elastic span (or, failing one at top level, a synthetic `other`
    /// stage) absorbs the residual, so the root's direct children sum
    /// exactly to `total_us`.
    pub fn finish(mut self, total_us: u64) -> StatementTrace {
        while self.stack.len() > 1 {
            self.end(0);
        }
        self.nodes[0].dur_us = total_us;
        let top_sum: u64 = self.nodes[0]
            .children
            .iter()
            .map(|&c| self.nodes[c].dur_us)
            .sum();
        let residual = total_us.saturating_sub(top_sum);
        if residual > 0 {
            match self.elastic.filter(|e| self.nodes[0].children.contains(e)) {
                Some(e) => self.nodes[e].dur_us += residual,
                None => {
                    let idx = self.nodes.len();
                    self.nodes.push(Node {
                        name: "other".to_string(),
                        dur_us: residual,
                        attrs: Vec::new(),
                        children: Vec::new(),
                    });
                    self.nodes[0].children.push(idx);
                }
            }
        }
        let root = materialize(&self.nodes, 0, 0, total_us);
        StatementTrace {
            trace_id: 0,
            conn_id: self.conn_id,
            started_unix: self.started_unix,
            statement: self.statement,
            digest: self.digest,
            total_us,
            tables: self.tables,
            root,
        }
    }
}

/// Converts the builder arena into the recursive span tree, laying
/// children out sequentially from the parent's start and clamping them
/// to the parent's extent (nested costs are advisory; top-level costs
/// are exact by construction).
fn materialize(nodes: &[Node], idx: usize, start_us: u64, dur_us: u64) -> Span {
    let n = &nodes[idx];
    let end = start_us + dur_us;
    let mut cursor = start_us;
    let mut children = Vec::with_capacity(n.children.len());
    for &c in &n.children {
        let child_start = cursor.min(end);
        let child_dur = nodes[c].dur_us.min(end - child_start);
        children.push(materialize(nodes, c, child_start, child_dur));
        cursor = child_start + child_dur;
    }
    Span {
        name: n.name.clone(),
        start_us,
        dur_us,
        attrs: n.attrs.clone(),
        children,
    }
}

// ================= flight recorder =================

#[derive(Debug)]
struct RingInner {
    ring: VecDeque<StatementTrace>,
    capacity: usize,
    next_id: u64,
    evicted: u64,
}

/// The flight recorder: a bounded ring of the last N statement traces.
/// Cloneable; clones share state (the engine, `information_schema`, and
/// the memory-image capture all read the same ring). Note what the ring
/// deliberately does **not** do: it survives
/// `Db::flush_diagnostics` — wiping `performance_schema` leaves the
/// flight recorder intact, which is exactly the residual surface e15
/// measures.
#[derive(Clone, Debug)]
pub struct Recorder {
    enabled: Arc<AtomicBool>,
    inner: Arc<Mutex<RingInner>>,
}

impl Recorder {
    /// An armed recorder holding up to `capacity` traces.
    pub fn new(capacity: usize) -> Recorder {
        Recorder::with_enabled(capacity, true)
    }

    /// A disarmed recorder: `is_enabled` is false, `record` drops.
    pub fn new_disabled(capacity: usize) -> Recorder {
        Recorder::with_enabled(capacity, false)
    }

    fn with_enabled(capacity: usize, enabled: bool) -> Recorder {
        Recorder {
            enabled: Arc::new(AtomicBool::new(enabled)),
            inner: Arc::new(Mutex::new(RingInner {
                ring: VecDeque::with_capacity(capacity.min(1024)),
                capacity: capacity.max(1),
                next_id: 1,
                evicted: 0,
            })),
        }
    }

    /// The hot-path gate: one relaxed atomic load.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Arms or disarms the recorder.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Assigns the next trace id, pushes the trace (evicting the oldest
    /// past capacity), and returns the id-stamped trace. Records even
    /// when disarmed — the caller gates on [`is_enabled`](Self::is_enabled).
    pub fn record(&self, mut trace: StatementTrace) -> StatementTrace {
        let mut g = self.inner.lock().unwrap();
        trace.trace_id = g.next_id;
        g.next_id += 1;
        g.ring.push_back(trace.clone());
        while g.ring.len() > g.capacity {
            g.ring.pop_front();
            g.evicted += 1;
        }
        trace
    }

    /// Folds externally produced traces in (the harness absorbing an
    /// experiment database's ring). Ids are reassigned locally.
    pub fn absorb(&self, traces: Vec<StatementTrace>) {
        for t in traces {
            self.record(t);
        }
    }

    /// Ring contents, oldest first.
    pub fn traces(&self) -> Vec<StatementTrace> {
        self.inner.lock().unwrap().ring.iter().cloned().collect()
    }

    /// Number of traces currently held.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().ring.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.inner.lock().unwrap().capacity
    }

    /// Traces evicted so far (lifetime count).
    pub fn evicted(&self) -> u64 {
        self.inner.lock().unwrap().evicted
    }

    /// Drops all traces (crash, or an explicit diagnostics scrub). Id
    /// assignment continues — like restarting `performance_schema`,
    /// the wipe is observable in the numbering gap.
    pub fn clear(&self) {
        self.inner.lock().unwrap().ring.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(statement: &str) -> TraceBuilder {
        TraceBuilder::new(7, 1_483_228_801, statement, "digest-x")
    }

    #[test]
    fn builder_top_level_durations_sum_to_total() {
        let mut b = build("SELECT * FROM t");
        b.begin("parse");
        b.end(40);
        b.begin("plan");
        b.attr("index_used", 0);
        b.end(40);
        b.begin("scan");
        b.begin("bufpool");
        b.attr("pages_hit", 3);
        b.end(5);
        b.attr("rows_examined", 100);
        b.end_elastic();
        let t = b.finish(500);
        assert_eq!(t.total_us, 500);
        assert_eq!(t.root.dur_us, 500);
        let sum: u64 = t.root.children.iter().map(|c| c.dur_us).sum();
        assert_eq!(sum, 500);
        // The elastic scan absorbed the residual.
        assert_eq!(t.root.child("scan").unwrap().dur_us, 420);
        // Children are laid out sequentially.
        assert_eq!(t.root.child("plan").unwrap().start_us, 40);
        assert_eq!(t.root.child("scan").unwrap().start_us, 80);
        assert_eq!(
            t.root
                .child("scan")
                .unwrap()
                .child("bufpool")
                .unwrap()
                .start_us,
            80
        );
    }

    #[test]
    fn builder_without_elastic_synthesizes_other() {
        let mut b = build("BEGIN");
        b.begin("parse");
        b.end(40);
        let t = b.finish(300);
        let sum: u64 = t.root.children.iter().map(|c| c.dur_us).sum();
        assert_eq!(sum, 300);
        assert_eq!(t.root.child("other").unwrap().dur_us, 260);
    }

    #[test]
    fn builder_closes_dangling_spans_and_clamps_children() {
        let mut b = build("SELECT 1");
        b.begin("scan");
        b.begin("bufpool");
        b.end(9999); // Advisory nested cost larger than the statement.
                     // "scan" left open: finish closes it.
        let t = b.finish(100);
        let scan = t.root.child("scan").unwrap();
        assert!(scan.child("bufpool").unwrap().dur_us <= scan.dur_us);
        let sum: u64 = t.root.children.iter().map(|c| c.dur_us).sum();
        assert_eq!(sum, 100);
    }

    #[test]
    fn tables_dedup_preserving_order() {
        let mut b = build("SELECT …");
        b.table("orders");
        b.table("customers");
        b.table("orders");
        let t = b.finish(1);
        assert_eq!(t.tables, ["orders", "customers"]);
    }

    #[test]
    fn ring_assigns_ids_and_evicts_oldest() {
        let r = Recorder::new(3);
        for i in 0..5 {
            let t = r.record(StatementTrace::minimal(1, i, &format!("q{i}"), "d", 10, 0));
            assert_eq!(t.trace_id, i as u64 + 1);
        }
        let held = r.traces();
        assert_eq!(held.len(), 3);
        assert_eq!(r.evicted(), 2);
        let texts: Vec<&str> = held.iter().map(|t| t.statement.as_str()).collect();
        assert_eq!(texts, ["q2", "q3", "q4"]);
        r.clear();
        assert!(r.is_empty());
        // Numbering continues across the wipe.
        assert_eq!(
            r.record(StatementTrace::minimal(1, 9, "q", "d", 1, 0))
                .trace_id,
            6
        );
    }

    #[test]
    fn disabled_recorder_gate() {
        let r = Recorder::new_disabled(8);
        assert!(!r.is_enabled());
        r.set_enabled(true);
        assert!(r.is_enabled());
    }
}
