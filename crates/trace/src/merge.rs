//! `trace merge` — joins per-node trace collections into one multi-node
//! timeline.
//!
//! Each node records its own [`StatementTrace`]s against its own clock.
//! Spans of one logical request share a distributed
//! [`TraceContext`](crate::TraceContext) `trace_id`, so the merge can
//! (a) find the same request on every node and (b) estimate each
//! node's clock offset against a reference node: for every shared
//! trace id the two nodes' span anchors *should* coincide, and the
//! median of the observed differences is the offset estimate.
//!
//! The anchor is chosen from the wire spans when present: a client
//! trace brackets the network round trip with `wire_send` / `wire_recv`
//! spans, and the server's whole statement executes inside that gap, so
//! the gap's midpoint is the client-clock estimate of the server
//! statement's midpoint. Traces without wire spans anchor at their own
//! midpoint. With symmetric links this cancels the transport delay —
//! the classic NTP-style estimate, computed offline from traces alone.
//!
//! The output is a single Chrome `trace_event` document with one
//! labeled process lane per node and every lane's timestamps shifted
//! onto the reference clock.

use crate::chrome::{render, Lane};
use crate::StatementTrace;

/// One node's trace collection, as fed to the merge.
#[derive(Clone, Debug)]
pub struct NodeTraces {
    /// Node identity (becomes the process-lane label).
    pub node: String,
    /// The node's recorded traces, any order.
    pub traces: Vec<StatementTrace>,
}

/// A trace's anchor on its own clock, in absolute simulated µs: the
/// midpoint of the `wire_send` → `wire_recv` gap when the trace
/// brackets a network round trip, else the trace's own midpoint.
fn anchor_us(t: &StatementTrace) -> i64 {
    let base = t.started_unix * 1_000_000;
    if let (Some(send), Some(recv)) = (t.root.find("wire_send"), t.root.find("wire_recv")) {
        let send_end = send.start_us + send.dur_us;
        let recv_start = recv.start_us;
        if recv_start >= send_end {
            return base + ((send_end + recv_start) / 2) as i64;
        }
    }
    base + (t.root.start_us + t.root.dur_us / 2) as i64
}

/// Estimates `other`'s clock offset against `reference`, in µs: the
/// amount to **add** to `other`'s timestamps to land them on the
/// reference clock. Pairs traces by distributed `trace_id` and takes
/// the median anchor difference; returns 0 when the nodes share no
/// trace ids (nothing to correlate — also the mitigated case).
pub fn estimate_offset_us(reference: &[StatementTrace], other: &[StatementTrace]) -> i64 {
    let mut deltas: Vec<i64> = Vec::new();
    for o in other {
        let Some(ctx) = &o.ctx else { continue };
        for r in reference {
            if r.ctx.as_ref().is_some_and(|rc| rc.trace_id == ctx.trace_id) {
                deltas.push(anchor_us(r) - anchor_us(o));
            }
        }
    }
    if deltas.is_empty() {
        return 0;
    }
    deltas.sort_unstable();
    deltas[deltas.len() / 2]
}

/// How many nodes hold at least one span of the given distributed
/// trace — the "process lanes" a request appears on after a merge.
pub fn lanes_with_trace(nodes: &[NodeTraces], trace_id: u128) -> usize {
    nodes
        .iter()
        .filter(|n| {
            n.traces
                .iter()
                .any(|t| t.ctx.as_ref().is_some_and(|c| c.trace_id == trace_id))
        })
        .count()
}

/// Per-node clock offsets against the first node, µs (the first node's
/// offset is 0 by definition).
pub fn offsets_us(nodes: &[NodeTraces]) -> Vec<(String, i64)> {
    let Some(reference) = nodes.first() else {
        return Vec::new();
    };
    nodes
        .iter()
        .enumerate()
        .map(|(i, n)| {
            let off = if i == 0 {
                0
            } else {
                estimate_offset_us(&reference.traces, &n.traces)
            };
            (n.node.clone(), off)
        })
        .collect()
}

/// Merges per-node trace collections into one Chrome `trace_event`
/// document: one labeled process lane per node (in input order, the
/// first node being the reference clock), every non-reference lane
/// shifted by its estimated clock offset.
pub fn merge_chrome_json(nodes: &[NodeTraces]) -> String {
    let offsets = offsets_us(nodes);
    let lanes: Vec<Lane> = nodes
        .iter()
        .zip(&offsets)
        .map(|(n, (_, off))| Lane {
            label: n.node.clone(),
            shift_us: *off,
            traces: &n.traces,
        })
        .collect();
    render(&lanes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Span, TraceContext};

    fn ctx(id: u128) -> TraceContext {
        TraceContext {
            trace_id: id,
            span_id: id as u64 | 1,
            sampled: true,
        }
    }

    /// A client-side trace: total 1000µs with wire_send at [100, 200)
    /// and wire_recv at [800, 900), so the gap midpoint is start+500µs.
    fn client_trace(started: i64, id: u128) -> StatementTrace {
        let mut t = StatementTrace::minimal(1, started, "SELECT 1", "d", 1000, 0);
        t.ctx = Some(ctx(id));
        t.root.children = vec![
            Span {
                name: "wire_send".into(),
                start_us: 100,
                dur_us: 100,
                attrs: Vec::new(),
                children: Vec::new(),
            },
            Span {
                name: "wire_recv".into(),
                start_us: 800,
                dur_us: 100,
                attrs: Vec::new(),
                children: Vec::new(),
            },
        ];
        t
    }

    /// A server-side trace of the same request on a skewed clock.
    fn server_trace(started: i64, id: u128, total: u64) -> StatementTrace {
        let mut t = StatementTrace::minimal(9, started, "SELECT 1", "d", total, 0);
        t.ctx = Some(ctx(id));
        t
    }

    #[test]
    fn offset_recovers_a_known_clock_skew() {
        // Client statements start at t=100s; the server clock runs 7s
        // ahead, so the same requests appear at t=107s server-side.
        // True offset (add to server timestamps to reach client clock):
        // client anchor (100s + 500µs) - server anchor (107s + 500µs).
        let clients: Vec<StatementTrace> = (0..5)
            .map(|i| client_trace(100 + i, 0xC0 + i as u128))
            .collect();
        let servers: Vec<StatementTrace> = (0..5)
            .map(|i| server_trace(107 + i, 0xC0 + i as u128, 1000))
            .collect();
        let off = estimate_offset_us(&clients, &servers);
        assert_eq!(off, -7_000_000);
    }

    #[test]
    fn offset_without_shared_ids_is_zero() {
        let a = vec![client_trace(1, 0x1)];
        let b = vec![server_trace(2, 0x2, 100)];
        assert_eq!(estimate_offset_us(&a, &b), 0);
    }

    #[test]
    fn merge_emits_one_labeled_lane_per_node_with_shifted_timestamps() {
        let nodes = vec![
            NodeTraces {
                node: "client".into(),
                traces: vec![client_trace(100, 0xAA)],
            },
            NodeTraces {
                node: "server".into(),
                traces: vec![server_trace(107, 0xAA, 1000)],
            },
        ];
        let doc = merge_chrome_json(&nodes);
        assert!(doc.contains("\"pid\":1,\"args\":{\"name\":\"client\"}"));
        assert!(doc.contains("\"pid\":2,\"args\":{\"name\":\"server\"}"));
        // The server statement (started 107s, shifted -7s) lands at the
        // client-clock 100s mark.
        assert!(doc.contains(&format!("\"ts\":{}", 100i64 * 1_000_000)));
        assert_eq!(lanes_with_trace(&nodes, 0xAA), 2);
        assert_eq!(lanes_with_trace(&nodes, 0xBB), 0);
    }
}
