//! The versioned on-disk trace record — the slow log's wire format —
//! and its forensic carver.
//!
//! ```text
//! record  = magic "MTRC" | version u8 | payload_len u32 LE | payload | crc32 u32 LE
//! payload = conn_id u64 | started i64 | total_us u64 | trace_id u64
//!           | statement str | digest str
//!           | tables:  u16 n, n × str
//!           | root span
//!           | (v2) node str
//!           | (v2) ctx flag u8, flag=1 → trace_id u128 | span_id u64 | flags u8
//! span    = name str | start_us u64 | dur_us u64
//!           | attrs:    u16 n, n × (str, u64)
//!           | children: u16 n, n × span
//! str     = u16 len LE | utf-8 bytes
//! ```
//!
//! Version 2 (this PR) appends the recording node's identity and the
//! optional distributed [`TraceContext`] — the cross-node join key E19
//! carves. [`carve`] accepts both versions: v1 records decode with an
//! empty node and no context.
//!
//! The CRC covers `version | payload_len | payload`. Every record is
//! self-delimiting and checksummed, so [`carve`] recovers all intact
//! records from a byte stream that has been truncated mid-record or
//! corrupted in the middle — the realistic state of a slow log lifted
//! from a stolen disk. Decoding is bounded (string/fan-out/depth caps)
//! so carving adversarial bytes stays cheap.

use crate::{Span, StatementTrace, TraceContext};

/// Record preamble.
pub const MAGIC: [u8; 4] = *b"MTRC";
/// Current format version (v2: node identity + distributed context).
pub const VERSION: u8 = 2;
/// The pre-xtrace format, still carvable.
pub const VERSION_V1: u8 = 1;

/// Decode caps: longest string, widest fan-out, deepest nesting.
const MAX_STR: usize = 1 << 20;
const MAX_FANOUT: usize = 4096;
const MAX_DEPTH: usize = 64;

/// CRC-32 (IEEE 802.3, reflected), bitwise — zero-dependency and fast
/// enough for log-append volumes.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = !0;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

fn w_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn w_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn w_str(out: &mut Vec<u8>, s: &str) {
    let b = s.as_bytes();
    let n = b.len().min(u16::MAX as usize);
    w_u16(out, n as u16);
    out.extend_from_slice(&b[..n]);
}

fn w_span(out: &mut Vec<u8>, s: &Span) {
    w_str(out, &s.name);
    w_u64(out, s.start_us);
    w_u64(out, s.dur_us);
    w_u16(out, s.attrs.len().min(u16::MAX as usize) as u16);
    for (k, v) in s.attrs.iter().take(u16::MAX as usize) {
        w_str(out, k);
        w_u64(out, *v);
    }
    w_u16(out, s.children.len().min(u16::MAX as usize) as u16);
    for c in s.children.iter().take(u16::MAX as usize) {
        w_span(out, c);
    }
}

/// Serializes just the payload (no framing). Shared with the snapshot
/// container, which frames sections itself.
pub fn encode_payload(t: &StatementTrace, out: &mut Vec<u8>) {
    w_u64(out, t.conn_id);
    out.extend_from_slice(&t.started_unix.to_le_bytes());
    w_u64(out, t.total_us);
    w_u64(out, t.trace_id);
    w_str(out, &t.statement);
    w_str(out, &t.digest);
    w_u16(out, t.tables.len().min(u16::MAX as usize) as u16);
    for tab in t.tables.iter().take(u16::MAX as usize) {
        w_str(out, tab);
    }
    w_span(out, &t.root);
    // v2 tail: node identity + optional distributed context.
    w_str(out, &t.node);
    match &t.ctx {
        Some(ctx) => {
            out.push(1);
            ctx.encode(out);
        }
        None => out.push(0),
    }
}

/// Serializes one framed, checksummed record (what the engine appends
/// to `slow.log`).
pub fn encode_record(t: &StatementTrace) -> Vec<u8> {
    let mut payload = Vec::new();
    encode_payload(t, &mut payload);
    let mut out = Vec::with_capacity(payload.len() + 13);
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&payload);
    let crc = crc32(&out[MAGIC.len()..]);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let b = self.buf.get(self.pos..self.pos.checked_add(n)?)?;
        self.pos += n;
        Some(b)
    }

    fn u16(&mut self) -> Option<u16> {
        Some(u16::from_le_bytes(self.take(2)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn i64(&mut self) -> Option<i64> {
        Some(i64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn str(&mut self) -> Option<String> {
        let n = self.u16()? as usize;
        if n > MAX_STR {
            return None;
        }
        String::from_utf8(self.take(n)?.to_vec()).ok()
    }

    fn span(&mut self, depth: usize) -> Option<Span> {
        if depth > MAX_DEPTH {
            return None;
        }
        let name = self.str()?;
        let start_us = self.u64()?;
        let dur_us = self.u64()?;
        let n_attrs = self.u16()? as usize;
        if n_attrs > MAX_FANOUT {
            return None;
        }
        let mut attrs = Vec::with_capacity(n_attrs.min(64));
        for _ in 0..n_attrs {
            let k = self.str()?;
            let v = self.u64()?;
            attrs.push((k, v));
        }
        let n_children = self.u16()? as usize;
        if n_children > MAX_FANOUT {
            return None;
        }
        let mut children = Vec::with_capacity(n_children.min(64));
        for _ in 0..n_children {
            children.push(self.span(depth + 1)?);
        }
        Some(Span {
            name,
            start_us,
            dur_us,
            attrs,
            children,
        })
    }
}

/// Decodes the fields shared by every payload version.
fn decode_common(r: &mut Reader) -> Option<StatementTrace> {
    let conn_id = r.u64()?;
    let started_unix = r.i64()?;
    let total_us = r.u64()?;
    let trace_id = r.u64()?;
    let statement = r.str()?;
    let digest = r.str()?;
    let n_tables = r.u16()? as usize;
    if n_tables > MAX_FANOUT {
        return None;
    }
    let mut tables = Vec::with_capacity(n_tables.min(64));
    for _ in 0..n_tables {
        tables.push(r.str()?);
    }
    let root = r.span(0)?;
    Some(StatementTrace {
        trace_id,
        conn_id,
        started_unix,
        statement,
        digest,
        total_us,
        tables,
        root,
        node: String::new(),
        ctx: None,
    })
}

/// Deserializes a v2 payload produced by [`encode_payload`]. Returns
/// the trace and the number of bytes consumed; `None` on malformation.
pub fn decode_payload(buf: &[u8]) -> Option<(StatementTrace, usize)> {
    let mut r = Reader { buf, pos: 0 };
    let mut t = decode_common(&mut r)?;
    t.node = r.str()?;
    t.ctx = match r.take(1)?[0] {
        0 => None,
        1 => Some(TraceContext::decode(r.take(TraceContext::WIRE_LEN)?)?),
        _ => return None,
    };
    Some((t, r.pos))
}

/// Deserializes a v1 payload (no node, no context).
pub fn decode_payload_v1(buf: &[u8]) -> Option<(StatementTrace, usize)> {
    let mut r = Reader { buf, pos: 0 };
    let t = decode_common(&mut r)?;
    Some((t, r.pos))
}

/// One record recovered by [`carve`], with its byte offset in the input.
#[derive(Clone, Debug)]
pub struct CarvedRecord {
    /// Offset of the record's magic in the scanned bytes.
    pub offset: usize,
    /// The decoded trace.
    pub trace: StatementTrace,
}

/// Scans raw bytes for intact trace records. Resynchronizes on the
/// magic after truncated or corrupted stretches: a record is accepted
/// only if its version, length, CRC, and payload all check out, so a
/// flipped byte costs at most the record it lands in.
pub fn carve(raw: &[u8]) -> Vec<CarvedRecord> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i + MAGIC.len() + 9 <= raw.len() {
        if raw[i..i + MAGIC.len()] != MAGIC {
            i += 1;
            continue;
        }
        match try_decode_at(raw, i) {
            Some((trace, consumed)) => {
                out.push(CarvedRecord { offset: i, trace });
                i += consumed;
            }
            None => i += 1,
        }
    }
    out
}

/// Attempts to decode one full record starting at `offset`; returns the
/// trace and total framed length on success.
fn try_decode_at(raw: &[u8], offset: usize) -> Option<(StatementTrace, usize)> {
    let body = &raw[offset + MAGIC.len()..];
    if body.len() < 9 {
        return None;
    }
    let version = body[0];
    if version != VERSION && version != VERSION_V1 {
        return None;
    }
    let len = u32::from_le_bytes(body[1..5].try_into().ok()?) as usize;
    let framed = body.get(..5 + len + 4)?;
    let stored_crc = u32::from_le_bytes(framed[5 + len..].try_into().ok()?);
    if crc32(&framed[..5 + len]) != stored_crc {
        return None;
    }
    let payload = &framed[5..5 + len];
    let (trace, consumed) = if version == VERSION {
        decode_payload(payload)?
    } else {
        decode_payload_v1(payload)?
    };
    if consumed != len {
        return None;
    }
    Some((trace, MAGIC.len() + 5 + len + 4))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(i: u64) -> StatementTrace {
        let mut b = crate::TraceBuilder::new(
            i,
            1_483_228_800 + i as i64,
            &format!("SELECT * FROM t{i} WHERE id = {i}"),
            &format!("d{i:04x}"),
        );
        b.table(&format!("t{i}"));
        b.begin("parse");
        b.end(30);
        b.begin("scan");
        b.attr("rows_examined", i * 10);
        b.end_elastic();
        b.finish(300 + i * 2)
    }

    #[test]
    fn record_round_trip() {
        let t = sample(3);
        let bytes = encode_record(&t);
        let carved = carve(&bytes);
        assert_eq!(carved.len(), 1);
        assert_eq!(carved[0].offset, 0);
        assert_eq!(carved[0].trace, t);
    }

    #[test]
    fn carve_concatenated_with_leading_noise() {
        let mut buf = b"some textual noise\n".to_vec();
        let traces: Vec<StatementTrace> = (0..4).map(sample).collect();
        for t in &traces {
            buf.extend_from_slice(&encode_record(t));
            buf.extend_from_slice(b"||"); // Inter-record garbage.
        }
        let carved = carve(&buf);
        assert_eq!(carved.len(), 4);
        for (c, t) in carved.iter().zip(&traces) {
            assert_eq!(&c.trace, t);
        }
    }

    #[test]
    fn truncation_drops_only_the_tail_record() {
        let mut buf = Vec::new();
        for i in 0..3 {
            buf.extend_from_slice(&encode_record(&sample(i)));
        }
        let cut = buf.len() - 5; // Mid final record.
        let carved = carve(&buf[..cut]);
        assert_eq!(carved.len(), 2);
    }

    #[test]
    fn corruption_is_contained_by_the_crc() {
        let mut buf = Vec::new();
        for i in 0..3 {
            buf.extend_from_slice(&encode_record(&sample(i)));
        }
        let mid = buf.len() / 2; // Lands in the middle record.
        buf[mid] ^= 0xFF;
        let carved = carve(&buf);
        assert_eq!(carved.len(), 2, "exactly the hit record is lost");
        let originals: Vec<StatementTrace> = (0..3).map(sample).collect();
        for c in &carved {
            assert!(originals.contains(&c.trace), "no fabricated records");
        }
    }

    #[test]
    fn embedded_magic_inside_a_statement_does_not_confuse_the_carver() {
        let t = StatementTrace::minimal(1, 0, "SELECT 'MTRC' FROM t -- MTRC", "d", 10, 0);
        let mut buf = encode_record(&t);
        buf.extend_from_slice(&encode_record(&sample(1)));
        let carved = carve(&buf);
        assert_eq!(carved.len(), 2);
        assert_eq!(carved[0].trace.statement, "SELECT 'MTRC' FROM t -- MTRC");
    }

    #[test]
    fn crc32_known_vector() {
        // IEEE CRC-32 of "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    /// Frames a payload as a v1 record (what a pre-xtrace slow log
    /// holds): same framing, version byte 1, no node/ctx tail.
    fn encode_record_v1(t: &StatementTrace) -> Vec<u8> {
        let mut payload = Vec::new();
        let mut bare = t.clone();
        bare.node = String::new();
        bare.ctx = None;
        encode_payload(&bare, &mut payload);
        // Strip the v2 tail: node str (2-byte len + bytes) + flag byte.
        let tail = 2 + bare.node.len() + 1;
        payload.truncate(payload.len() - tail);
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        out.push(VERSION_V1);
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&payload);
        let crc = crc32(&out[MAGIC.len()..]);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    #[test]
    fn v2_round_trip_keeps_node_and_context() {
        let mut t = sample(5);
        t.node = "replica-0".to_string();
        t.ctx = Some(TraceContext {
            trace_id: 0xABCD_EF01_2345_6789_0011_2233_4455_6677,
            span_id: 0x1122_3344_5566_7788,
            sampled: true,
        });
        let carved = carve(&encode_record(&t));
        assert_eq!(carved.len(), 1);
        assert_eq!(carved[0].trace, t);
    }

    #[test]
    fn carve_accepts_mixed_v1_and_v2_records() {
        let mut buf = Vec::new();
        let old = sample(1);
        buf.extend_from_slice(&encode_record_v1(&old));
        let mut new = sample(2);
        new.node = "primary".into();
        new.ctx = Some(TraceContext::generate());
        buf.extend_from_slice(&encode_record(&new));
        let carved = carve(&buf);
        assert_eq!(carved.len(), 2);
        assert_eq!(carved[0].trace, old, "v1 decodes with empty node, no ctx");
        assert_eq!(carved[0].trace.node, "");
        assert_eq!(carved[0].trace.ctx, None);
        assert_eq!(carved[1].trace, new);
    }

    #[test]
    fn unknown_version_is_skipped_not_misparsed() {
        let mut rec = encode_record(&sample(1));
        rec[4] = 9; // Version byte.
                    // Fix the CRC so only the version check can reject it.
        let len = rec.len();
        let crc = crc32(&rec[4..len - 4]);
        rec[len - 4..].copy_from_slice(&crc.to_le_bytes());
        assert!(carve(&rec).is_empty());
    }
}
