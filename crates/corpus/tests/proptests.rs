//! Property-based tests for the generators: determinism, domain bounds,
//! and distribution sanity.

use corpus::customers::{generate, CustomerParams};
use corpus::enron::{pseudo_word, Corpus, EnronParams};
use corpus::workload::{uniform_range_queries, write_stream, Write, WriteStreamParams};
use corpus::zipf::Zipf;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn zipf_pmf_is_a_distribution(n in 1usize..200, s in 0.0f64..3.0) {
        let z = Zipf::new(n, s);
        let total: f64 = (0..n).map(|r| z.pmf(r)).sum();
        prop_assert!((total - 1.0).abs() < 1e-6);
        // Monotone non-increasing in rank.
        for r in 1..n {
            prop_assert!(z.pmf(r) <= z.pmf(r - 1) + 1e-12);
        }
    }

    #[test]
    fn zipf_samples_in_range(n in 1usize..100, s in 0.0f64..2.0, seed in any::<u64>()) {
        use rand::SeedableRng;
        let z = Zipf::new(n, s);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..200 {
            prop_assert!(z.sample(&mut rng) < n);
        }
    }

    #[test]
    fn pseudo_words_injective(a in 0usize..20_000, b in 0usize..20_000) {
        prop_assert_eq!(pseudo_word(a) == pseudo_word(b), a == b);
    }

    #[test]
    fn corpus_is_deterministic_and_self_consistent(
        docs in 10usize..80,
        vocab in 50usize..300,
        seed in any::<u64>(),
    ) {
        let p = EnronParams {
            num_docs: docs,
            vocab_size: vocab,
            words_per_doc: 20,
            zipf_s: 1.0,
            seed,
        };
        let a = Corpus::generate(&p);
        let b = Corpus::generate(&p);
        prop_assert_eq!(a.docs.len(), b.docs.len());
        // Per-document words deduplicated; doc_frequency consistent.
        for d in &a.docs {
            let set: std::collections::BTreeSet<&String> = d.words.iter().collect();
            prop_assert_eq!(set.len(), d.words.len(), "duplicates inside a doc");
        }
        for w in a.top_words(10) {
            prop_assert_eq!(a.doc_frequency(&w), a.matching_docs(&w).len());
        }
    }

    #[test]
    fn customers_within_domain(rows in 1usize..500, seed in any::<u64>()) {
        let r = generate(&CustomerParams { rows, state_skew: 1.0, seed });
        prop_assert_eq!(r.len(), rows);
        for c in &r {
            prop_assert!((18..=90).contains(&c.age));
            prop_assert!(corpus::customers::STATES.contains(&c.state));
        }
    }

    #[test]
    fn range_queries_ordered(n in 0usize..200, seed in any::<u64>()) {
        for q in uniform_range_queries(n, seed) {
            prop_assert!(q.lo <= q.hi);
        }
    }

    #[test]
    fn write_streams_reference_only_live_rows(
        count in 1usize..300,
        update in 0.0f64..0.5,
        delete in 0.0f64..0.3,
        seed in any::<u64>(),
    ) {
        let ws = write_stream(&WriteStreamParams {
            count,
            payload_len: 12,
            update_fraction: update,
            delete_fraction: delete,
            seed,
        });
        prop_assert_eq!(ws.len(), count);
        let mut live = std::collections::BTreeSet::new();
        for w in &ws {
            match w {
                Write::Insert { id, .. } => {
                    prop_assert!(live.insert(*id));
                }
                Write::Update { id, .. } => prop_assert!(live.contains(id)),
                Write::Delete { id } => {
                    prop_assert!(live.remove(id));
                }
            }
        }
    }
}
