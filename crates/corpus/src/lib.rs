//! Synthetic data and workload generators for the reproduction.
//!
//! The paper's demonstrations use data the authors had but this offline
//! reproduction does not: the Enron email corpus (for the §6 count-attack
//! statistic), realistic customer tables (for the §4 digest examples), and
//! ad-hoc query workloads. This crate builds statistically calibrated
//! stand-ins:
//!
//! * [`zipf`] — a Zipf(s) sampler, the backbone of realistic word and
//!   query-frequency distributions.
//! * [`enron`] — a synthetic email corpus whose per-keyword result-count
//!   profile is calibrated so that ≈63% of the 500 most frequent words
//!   have a unique result count, matching the statistic the paper cites
//!   from Cash et al.
//! * [`customers`] — a `CUSTOMERS(name, state, age)` table generator with
//!   census-like categorical skew, used for DET/SPLASHE experiments.
//! * [`workload`] — query workload generators: uniform 32-bit range
//!   queries (the §6 Lewi–Wu simulation), Zipf-distributed point queries
//!   (for frequency analysis), and mixed OLTP write streams (for the §3
//!   log-forensics experiments).

pub mod customers;
pub mod enron;
pub mod workload;
pub mod zipf;
