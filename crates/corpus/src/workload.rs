//! Query and write workload generators.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::zipf::Zipf;

/// A range query over `u32` values: `lo <= x AND x <= hi`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RangeQuery {
    /// Lower bound (inclusive).
    pub lo: u32,
    /// Upper bound (inclusive).
    pub hi: u32,
}

/// Samples `count` uniformly random 32-bit values — the §6 Lewi–Wu
/// database ("we sampled a database of 32-bit integers ... uniformly at
/// random").
pub fn uniform_u32_database(count: usize, seed: u64) -> Vec<u32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count).map(|_| rng.gen()).collect()
}

/// Samples `count` uniformly random range queries (both endpoints uniform,
/// swapped into order) — the §6 Lewi–Wu query model.
pub fn uniform_range_queries(count: usize, seed: u64) -> Vec<RangeQuery> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let a: u32 = rng.gen();
            let b: u32 = rng.gen();
            RangeQuery {
                lo: a.min(b),
                hi: a.max(b),
            }
        })
        .collect()
}

/// A stream of point queries over a categorical domain, Zipf-distributed —
/// the query model for the Seabed/SPLASHE frequency-analysis experiment
/// ("if the attacker has a sufficiently good model of the query
/// distribution").
pub fn zipf_point_queries(domain: u32, skew: f64, count: usize, seed: u64) -> Vec<u32> {
    let mut rng = StdRng::seed_from_u64(seed);
    let z = Zipf::new(domain as usize, skew);
    (0..count).map(|_| z.sample(&mut rng) as u32).collect()
}

/// One write in an OLTP stream (the §3 log-forensics workload).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Write {
    /// Insert a fresh row `(id, payload)`.
    Insert {
        /// New row id.
        id: u64,
        /// Payload field (fixed width keeps log-arithmetic predictable).
        payload: String,
    },
    /// Update row `id`'s payload.
    Update {
        /// Existing row id.
        id: u64,
        /// Replacement payload.
        payload: String,
    },
    /// Delete row `id`.
    Delete {
        /// Existing row id.
        id: u64,
    },
}

/// Parameters for the OLTP write stream.
#[derive(Clone, Debug)]
pub struct WriteStreamParams {
    /// Number of writes to emit.
    pub count: usize,
    /// Payload width in bytes (the paper's §3 arithmetic uses 20).
    pub payload_len: usize,
    /// Fraction of updates (remainder splits between inserts and deletes).
    pub update_fraction: f64,
    /// Fraction of deletes.
    pub delete_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WriteStreamParams {
    fn default() -> Self {
        WriteStreamParams {
            count: 1_000,
            payload_len: 20,
            update_fraction: 0.3,
            delete_fraction: 0.1,
            seed: 0x57A7,
        }
    }
}

/// Generates a write stream. Inserts allocate increasing ids; updates and
/// deletes target previously inserted, still-live ids. The first write is
/// always an insert so the stream is self-contained.
pub fn write_stream(params: &WriteStreamParams) -> Vec<Write> {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut live: Vec<u64> = Vec::new();
    let mut next_id: u64 = 0;
    let mut out = Vec::with_capacity(params.count);
    for i in 0..params.count {
        let roll: f64 = rng.gen();
        let payload = random_payload(params.payload_len, &mut rng);
        if i == 0 || live.is_empty() || roll >= params.update_fraction + params.delete_fraction {
            let id = next_id;
            next_id += 1;
            live.push(id);
            out.push(Write::Insert { id, payload });
        } else if roll < params.update_fraction {
            let id = live[rng.gen_range(0..live.len())];
            out.push(Write::Update { id, payload });
        } else {
            let idx = rng.gen_range(0..live.len());
            let id = live.swap_remove(idx);
            out.push(Write::Delete { id });
        }
    }
    out
}

fn random_payload<R: Rng + ?Sized>(len: usize, rng: &mut R) -> String {
    const ALPHA: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789";
    (0..len)
        .map(|_| ALPHA[rng.gen_range(0..ALPHA.len())] as char)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_queries_are_ordered() {
        for q in uniform_range_queries(500, 1) {
            assert!(q.lo <= q.hi);
        }
    }

    #[test]
    fn database_deterministic() {
        assert_eq!(uniform_u32_database(100, 7), uniform_u32_database(100, 7));
        assert_ne!(uniform_u32_database(100, 7), uniform_u32_database(100, 8));
    }

    #[test]
    fn zipf_queries_in_domain_and_skewed() {
        let qs = zipf_point_queries(20, 1.0, 10_000, 3);
        assert!(qs.iter().all(|&q| q < 20));
        let zero = qs.iter().filter(|&&q| q == 0).count();
        let nineteen = qs.iter().filter(|&&q| q == 19).count();
        assert!(zero > nineteen * 3, "head {zero} tail {nineteen}");
    }

    #[test]
    fn write_stream_is_well_formed() {
        let ws = write_stream(&WriteStreamParams {
            count: 2_000,
            ..Default::default()
        });
        assert_eq!(ws.len(), 2_000);
        assert!(matches!(ws[0], Write::Insert { .. }));
        // Updates/deletes only touch ids that are live at that point.
        let mut live = std::collections::BTreeSet::new();
        for w in &ws {
            match w {
                Write::Insert { id, payload } => {
                    assert!(live.insert(*id), "duplicate insert id {id}");
                    assert_eq!(payload.len(), 20);
                }
                Write::Update { id, payload } => {
                    assert!(live.contains(id), "update of dead id {id}");
                    assert_eq!(payload.len(), 20);
                }
                Write::Delete { id } => {
                    assert!(live.remove(id), "delete of dead id {id}");
                }
            }
        }
        // The mix should contain all three kinds.
        assert!(ws.iter().any(|w| matches!(w, Write::Update { .. })));
        assert!(ws.iter().any(|w| matches!(w, Write::Delete { .. })));
    }
}
