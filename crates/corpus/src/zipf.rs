//! Zipf-distributed sampling over a finite rank space.

use rand::Rng;

/// A Zipf(s) distribution over ranks `0..n` (rank 0 is the most frequent).
///
/// Sampling uses the inverse-CDF method over precomputed cumulative
/// weights, O(log n) per draw.
///
/// # Examples
///
/// ```
/// use corpus::zipf::Zipf;
/// use rand::SeedableRng;
///
/// let z = Zipf::new(100, 1.0);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let r = z.sample(&mut rng);
/// assert!(r < 100);
/// ```
#[derive(Clone, Debug)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Creates a Zipf distribution over `n` ranks with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is not finite and non-negative.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "rank space must be non-empty");
        assert!(
            s.is_finite() && s >= 0.0,
            "exponent must be finite and >= 0"
        );
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 1..=n {
            total += 1.0 / (k as f64).powf(s);
            cumulative.push(total);
        }
        for c in &mut cumulative {
            *c /= total;
        }
        Zipf { cumulative }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Whether the rank space is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Probability mass of `rank`.
    pub fn pmf(&self, rank: usize) -> f64 {
        if rank == 0 {
            self.cumulative[0]
        } else {
            self.cumulative[rank] - self.cumulative[rank - 1]
        }
    }

    /// Draws a rank.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&u).expect("weights are finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cumulative.len() - 1),
        }
    }

    /// Draws `count` ranks.
    pub fn sample_many<R: Rng + ?Sized>(&self, count: usize, rng: &mut R) -> Vec<usize> {
        (0..count).map(|_| self.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(50, 1.2);
        let total: f64 = (0..50).map(|r| z.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rank_zero_most_likely() {
        let z = Zipf::new(20, 1.0);
        for r in 1..20 {
            assert!(z.pmf(0) > z.pmf(r));
        }
    }

    #[test]
    fn uniform_when_s_is_zero() {
        let z = Zipf::new(10, 0.0);
        for r in 0..10 {
            assert!((z.pmf(r) - 0.1).abs() < 1e-9);
        }
    }

    #[test]
    fn empirical_frequencies_track_pmf() {
        let z = Zipf::new(10, 1.0);
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = [0usize; 10];
        let n = 200_000;
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for r in 0..10 {
            let emp = counts[r] as f64 / n as f64;
            assert!(
                (emp - z.pmf(r)).abs() < 0.01,
                "rank {r}: empirical {emp} vs pmf {}",
                z.pmf(r)
            );
        }
    }

    #[test]
    fn samples_in_range() {
        let z = Zipf::new(3, 2.0);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 3);
        }
    }
}
