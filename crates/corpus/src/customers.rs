//! A `CUSTOMERS(name, state, age)` table generator with census-like skew.
//!
//! Used by the §4 digest examples (the paper's worked queries filter on
//! `STATE` and `AGE`) and by the DET/SPLASHE frequency-analysis
//! experiments, which need a categorical column with a publicly modellable
//! non-uniform distribution.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::zipf::Zipf;

/// Two-letter codes of the 50 US states, ordered by (approximate 2016)
/// population so that rank correlates with frequency.
pub const STATES: [&str; 50] = [
    "CA", "TX", "FL", "NY", "PA", "IL", "OH", "GA", "NC", "MI", "NJ", "VA", "WA", "AZ", "MA", "TN",
    "IN", "MO", "MD", "WI", "CO", "MN", "SC", "AL", "LA", "KY", "OR", "OK", "CT", "UT", "IA", "NV",
    "AR", "MS", "KS", "NM", "NE", "WV", "ID", "HI", "NH", "ME", "MT", "RI", "DE", "SD", "ND", "AK",
    "VT", "WY",
];

/// One generated customer row.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CustomerRow {
    /// Primary key.
    pub id: u64,
    /// Pseudonymous name.
    pub name: String,
    /// Two-letter state code, Zipf-skewed over [`STATES`].
    pub state: &'static str,
    /// Age in years, 18..=90 with a rough working-age bulge.
    pub age: u32,
}

/// Parameters for the generator.
#[derive(Clone, Debug)]
pub struct CustomerParams {
    /// Number of rows.
    pub rows: usize,
    /// Zipf exponent over state ranks (1.0 ≈ US population skew).
    pub state_skew: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CustomerParams {
    fn default() -> Self {
        CustomerParams {
            rows: 10_000,
            state_skew: 1.0,
            seed: 0xC057,
        }
    }
}

/// Generates the table.
pub fn generate(params: &CustomerParams) -> Vec<CustomerRow> {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let state_dist = Zipf::new(STATES.len(), params.state_skew);
    (0..params.rows)
        .map(|id| {
            let state = STATES[state_dist.sample(&mut rng)];
            // Sum of two uniforms gives a triangular bulge around the mean.
            let age = 18 + (rng.gen_range(0..=36) + rng.gen_range(0..=36));
            CustomerRow {
                id: id as u64,
                name: crate::enron::pseudo_word(id),
                state,
                age,
            }
        })
        .collect()
}

/// The true histogram of `state` over `rows` — the auxiliary model an
/// attacker would take from public census data.
pub fn state_histogram(rows: &[CustomerRow]) -> Vec<(&'static str, usize)> {
    let mut counts: std::collections::BTreeMap<&'static str, usize> = Default::default();
    for r in rows {
        *counts.entry(r.state).or_insert(0) += 1;
    }
    let mut v: Vec<_> = counts.into_iter().collect();
    v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_sized() {
        let p = CustomerParams {
            rows: 100,
            ..Default::default()
        };
        assert_eq!(generate(&p), generate(&p));
        assert_eq!(generate(&p).len(), 100);
    }

    #[test]
    fn ages_in_range_with_bulge() {
        let rows = generate(&CustomerParams {
            rows: 5000,
            ..Default::default()
        });
        assert!(rows.iter().all(|r| (18..=90).contains(&r.age)));
        let mid = rows.iter().filter(|r| (40..=68).contains(&r.age)).count();
        let edge = rows.iter().filter(|r| r.age < 30 || r.age > 78).count();
        assert!(
            mid > edge,
            "triangular bulge missing: mid={mid} edge={edge}"
        );
    }

    #[test]
    fn state_skew_matches_rank_order() {
        let rows = generate(&CustomerParams {
            rows: 20_000,
            ..Default::default()
        });
        let hist = state_histogram(&rows);
        // The most common observed state should be one of the top-3 ranks.
        assert!(STATES[..3].contains(&hist[0].0), "top state {}", hist[0].0);
        // And the tail should be much rarer than the head.
        let head = hist[0].1;
        let tail = hist.last().unwrap().1;
        assert!(head > tail * 5, "head {head} vs tail {tail}");
    }
}
