//! A synthetic Enron-like email corpus.
//!
//! The §6 count attack relies on a statistic of the real Enron corpus: *63%
//! of the 500 most frequent words have a unique result count* (number of
//! matching documents). This generator samples documents from a Zipf word
//! distribution with defaults calibrated so the synthetic corpus lands in
//! that regime, giving the attack evaluation the same structure the paper's
//! argument uses.

use std::collections::{BTreeMap, BTreeSet};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::zipf::Zipf;

/// Parameters of the synthetic corpus.
#[derive(Clone, Debug)]
pub struct EnronParams {
    /// Vocabulary size (distinct words).
    pub vocab_size: usize,
    /// Number of documents (emails).
    pub num_docs: usize,
    /// Mean words per document (geometric-ish length distribution).
    pub words_per_doc: usize,
    /// Zipf exponent of word frequencies.
    pub zipf_s: f64,
    /// RNG seed — the corpus is fully deterministic given the parameters.
    pub seed: u64,
}

impl Default for EnronParams {
    fn default() -> Self {
        // Calibrated so that the unique-result-count fraction over the top
        // 500 words is ≈0.63 (see `unique_count_fraction` tests).
        EnronParams {
            vocab_size: 5_000,
            num_docs: 20_000,
            words_per_doc: 60,
            zipf_s: 1.0,
            seed: 0x454E524F,
        }
    }
}

/// One document: an id and the distinct words it contains.
#[derive(Clone, Debug)]
pub struct Document {
    /// Document identifier (dense, 0-based).
    pub id: u64,
    /// The document's words in first-occurrence order, duplicates removed.
    pub words: Vec<String>,
}

/// The synthetic corpus plus its inverted statistics.
#[derive(Clone, Debug)]
pub struct Corpus {
    /// All documents.
    pub docs: Vec<Document>,
    /// Vocabulary indexed by Zipf rank.
    pub vocabulary: Vec<String>,
    doc_freq: BTreeMap<String, usize>,
}

/// Builds a deterministic pseudo-word for a vocabulary rank.
///
/// Words are syllable-based ("nerato", "sidola") so logs and heap dumps in
/// the experiments look like real query text rather than numeric ids.
pub fn pseudo_word(rank: usize) -> String {
    const CONSONANTS: &[u8] = b"bcdfglmnprstvz";
    const VOWELS: &[u8] = b"aeiou";
    let mut x = rank as u64 + 1;
    let mut w = String::new();
    // 2-4 syllables depending on rank magnitude, unique per rank because
    // the digits of `rank` in mixed radix are recoverable from the word.
    let syllables = 2 + (rank / (CONSONANTS.len() * VOWELS.len())).min(2);
    for _ in 0..=syllables {
        let c = CONSONANTS[(x % CONSONANTS.len() as u64) as usize];
        x /= CONSONANTS.len() as u64;
        let v = VOWELS[(x % VOWELS.len() as u64) as usize];
        x /= VOWELS.len() as u64;
        w.push(c as char);
        w.push(v as char);
    }
    w
}

impl Corpus {
    /// Generates a corpus from `params`.
    pub fn generate(params: &EnronParams) -> Corpus {
        let mut rng = StdRng::seed_from_u64(params.seed);
        let zipf = Zipf::new(params.vocab_size, params.zipf_s);
        let vocabulary: Vec<String> = (0..params.vocab_size).map(pseudo_word).collect();

        let mut docs = Vec::with_capacity(params.num_docs);
        let mut doc_freq: BTreeMap<String, usize> = BTreeMap::new();
        for id in 0..params.num_docs {
            // Length: uniform in [mean/2, 3*mean/2] — enough spread to vary
            // result counts without exotic distributions.
            let len = rng.gen_range(params.words_per_doc / 2..=params.words_per_doc * 3 / 2);
            let mut seen = BTreeSet::new();
            let mut words = Vec::new();
            for _ in 0..len.max(1) {
                let rank = zipf.sample(&mut rng);
                if seen.insert(rank) {
                    words.push(vocabulary[rank].clone());
                }
            }
            for w in &words {
                *doc_freq.entry(w.clone()).or_insert(0) += 1;
            }
            docs.push(Document {
                id: id as u64,
                words,
            });
        }
        Corpus {
            docs,
            vocabulary,
            doc_freq,
        }
    }

    /// Number of documents containing `word` (its *result count*).
    pub fn doc_frequency(&self, word: &str) -> usize {
        self.doc_freq.get(word).copied().unwrap_or(0)
    }

    /// The `k` most frequent words, most frequent first (ties broken by
    /// word for determinism).
    pub fn top_words(&self, k: usize) -> Vec<String> {
        let mut by_freq: Vec<(&String, usize)> =
            self.doc_freq.iter().map(|(w, &c)| (w, c)).collect();
        by_freq.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        by_freq
            .into_iter()
            .take(k)
            .map(|(w, _)| w.clone())
            .collect()
    }

    /// Fraction of the top `k` words whose result count is unique across
    /// the whole corpus — the statistic behind the §6 count attack.
    pub fn unique_count_fraction(&self, k: usize) -> f64 {
        let mut count_multiplicity: BTreeMap<usize, usize> = BTreeMap::new();
        for &c in self.doc_freq.values() {
            *count_multiplicity.entry(c).or_insert(0) += 1;
        }
        let top = self.top_words(k);
        if top.is_empty() {
            return 0.0;
        }
        let unique = top
            .iter()
            .filter(|w| count_multiplicity[&self.doc_frequency(w)] == 1)
            .count();
        unique as f64 / top.len() as f64
    }

    /// Ids of documents containing `word`, ascending.
    pub fn matching_docs(&self, word: &str) -> Vec<u64> {
        self.docs
            .iter()
            .filter(|d| d.words.iter().any(|w| w == word))
            .map(|d| d.id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pseudo_words_unique_and_wordlike() {
        let mut seen = BTreeSet::new();
        for r in 0..5000 {
            let w = pseudo_word(r);
            assert!(w.len() >= 4, "{w}");
            assert!(w.chars().all(|c| c.is_ascii_lowercase()));
            assert!(seen.insert(w.clone()), "duplicate word {w} at rank {r}");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let p = EnronParams {
            num_docs: 50,
            ..Default::default()
        };
        let a = Corpus::generate(&p);
        let b = Corpus::generate(&p);
        assert_eq!(a.docs.len(), b.docs.len());
        for (x, y) in a.docs.iter().zip(b.docs.iter()) {
            assert_eq!(x.words, y.words);
        }
    }

    #[test]
    fn doc_frequency_consistent_with_matching_docs() {
        let p = EnronParams {
            num_docs: 200,
            vocab_size: 500,
            ..Default::default()
        };
        let c = Corpus::generate(&p);
        for w in c.top_words(20) {
            assert_eq!(c.doc_frequency(&w), c.matching_docs(&w).len(), "{w}");
        }
        assert_eq!(c.doc_frequency("nosuchwordinvocab"), 0);
    }

    #[test]
    fn top_words_sorted_by_frequency() {
        let c = Corpus::generate(&EnronParams {
            num_docs: 300,
            ..Default::default()
        });
        let top = c.top_words(50);
        for pair in top.windows(2) {
            assert!(c.doc_frequency(&pair[0]) >= c.doc_frequency(&pair[1]));
        }
    }

    #[test]
    #[ignore = "slow calibration check; run with --ignored"]
    fn default_corpus_matches_paper_statistic() {
        let c = Corpus::generate(&EnronParams::default());
        let f = c.unique_count_fraction(500);
        assert!(
            (0.55..=0.72).contains(&f),
            "unique-count fraction {f} outside the paper's 63% regime"
        );
    }
}
