//! Property-based tests for the attack suite: optimality of the matcher,
//! soundness of the leakage accounting, and parser robustness.

use proptest::prelude::*;
use snapshot_attack::attacks::bit_leakage::{leak_once, Mode};
use snapshot_attack::attacks::frequency::rank_match;
use snapshot_attack::attacks::matching::{max_weight_assignment, min_cost_assignment};
use snapshot_attack::forensics::binlog::extract_hex_literals;
use snapshot_attack::forensics::memscan::{carve_strings, count_occurrences};

fn brute_force_min(cost: &[Vec<f64>]) -> f64 {
    fn rec(cost: &[Vec<f64>], row: usize, used: &mut Vec<bool>) -> f64 {
        if row == cost.len() {
            return 0.0;
        }
        let mut best = f64::INFINITY;
        for j in 0..cost[0].len() {
            if !used[j] {
                used[j] = true;
                best = best.min(cost[row][j] + rec(cost, row + 1, used));
                used[j] = false;
            }
        }
        best
    }
    rec(cost, 0, &mut vec![false; cost[0].len()])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn hungarian_is_optimal(
        n in 1usize..5,
        extra in 0usize..3,
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let m = n + extra;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let cost: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..m).map(|_| rng.gen_range(0.0..9.0)).collect())
            .collect();
        let a = min_cost_assignment(&cost);
        // A valid injective assignment…
        let mut used = vec![false; m];
        let mut total = 0.0;
        for (i, &j) in a.iter().enumerate() {
            prop_assert!(j < m);
            prop_assert!(!used[j]);
            used[j] = true;
            total += cost[i][j];
        }
        // …that achieves the brute-force optimum.
        prop_assert!((total - brute_force_min(&cost)).abs() < 1e-9);
    }

    #[test]
    fn max_weight_equals_negated_min_cost(
        n in 1usize..5,
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let w: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..n).map(|_| rng.gen_range(0.0..9.0)).collect())
            .collect();
        let neg: Vec<Vec<f64>> = w.iter().map(|r| r.iter().map(|x| -x).collect()).collect();
        let a = max_weight_assignment(&w);
        let b = min_cost_assignment(&neg);
        let score = |assign: &[usize]| -> f64 {
            assign.iter().enumerate().map(|(i, &j)| w[i][j]).sum()
        };
        prop_assert!((score(&a) - score(&b)).abs() < 1e-9);
    }

    #[test]
    fn rank_match_is_a_bijection_on_prefixes(
        counts in proptest::collection::vec(0.0f64..1000.0, 1..30),
        model in proptest::collection::vec(0.0f64..1.0, 1..30),
    ) {
        let observed: Vec<(usize, f64)> = counts.iter().copied().enumerate().collect();
        let m: Vec<(usize, f64)> = model.iter().copied().enumerate().collect();
        let pairs = rank_match(&observed, &m);
        prop_assert_eq!(pairs.len(), observed.len().min(m.len()));
        let mut cts: Vec<usize> = pairs.iter().map(|(c, _)| *c).collect();
        let mut pts: Vec<usize> = pairs.iter().map(|(_, p)| *p).collect();
        cts.sort_unstable();
        cts.dedup();
        pts.sort_unstable();
        pts.dedup();
        prop_assert_eq!(cts.len(), pairs.len(), "no ciphertext matched twice");
        prop_assert_eq!(pts.len(), pairs.len(), "no plaintext matched twice");
    }

    #[test]
    fn propagation_dominates_direct_leakage(
        db in proptest::collection::vec(any::<u32>(), 1..80),
        tokens in proptest::collection::vec(any::<u32>(), 0..12),
    ) {
        let direct = leak_once(&db, &tokens, Mode::DirectOnly);
        let prop_mode = leak_once(&db, &tokens, Mode::Propagate);
        prop_assert!(prop_mode.fraction_bits_leaked >= direct.fraction_bits_leaked - 1e-12);
        prop_assert!(prop_mode.fraction_bits_leaked <= 1.0);
    }

    #[test]
    fn leakage_is_monotone_in_tokens(
        db in proptest::collection::vec(any::<u32>(), 1..60),
        tokens in proptest::collection::vec(any::<u32>(), 1..10),
    ) {
        let fewer = leak_once(&db, &tokens[..tokens.len() / 2], Mode::Propagate);
        let more = leak_once(&db, &tokens, Mode::Propagate);
        prop_assert!(more.fraction_bits_leaked >= fewer.fraction_bits_leaked - 1e-12);
    }

    #[test]
    fn carve_strings_never_panics_and_respects_min_len(
        dump in proptest::collection::vec(any::<u8>(), 0..600),
        min_len in 1usize..12,
    ) {
        for s in carve_strings(&dump, min_len) {
            prop_assert!(s.text.len() >= min_len);
            prop_assert!(s.offset + s.text.len() <= dump.len());
        }
    }

    #[test]
    fn count_occurrences_matches_naive(
        dump in proptest::collection::vec(0u8..4, 0..200),
        needle in proptest::collection::vec(0u8..4, 1..5),
    ) {
        let fast = count_occurrences(&dump, &needle);
        // Naive non-overlapping count.
        let mut naive = 0;
        let mut i = 0;
        while i + needle.len() <= dump.len() {
            if &dump[i..i + needle.len()] == needle.as_slice() {
                naive += 1;
                i += needle.len();
            } else {
                i += 1;
            }
        }
        prop_assert_eq!(fast, naive);
    }

    #[test]
    fn hex_literal_extraction_round_trips(
        blobs in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..24), 0..5),
    ) {
        let stmt = blobs
            .iter()
            .map(|b| {
                let hex: String = b.iter().map(|x| format!("{x:02x}")).collect();
                format!("col = X'{hex}'")
            })
            .collect::<Vec<_>>()
            .join(" AND ");
        let got = extract_hex_literals(&stmt);
        prop_assert_eq!(got, blobs);
    }
}
