//! §5: the adaptive hash index betrays *which key values were searched
//! frequently* to a memory-snapshot attacker — even for values that no
//! longer appear in any log or history ring.

use minidb::engine::{Db, DbConfig};
use minidb::value::Value;
use snapshot_attack::threat::{capture, AttackVector};

#[test]
fn hot_search_keys_appear_in_the_memory_image() {
    let mut config = DbConfig::default();
    config.redo_capacity = 2 << 20;
    config.undo_capacity = 2 << 20;
    config.adaptive_hash_threshold = 5;
    config.query_cache_enabled = false; // Force every search to the index.
    let db = Db::open(config);
    let conn = db.connect("app");
    conn.execute("CREATE TABLE t (k INT PRIMARY KEY, v TEXT)")
        .unwrap();
    for i in 0..2_000 {
        conn.execute(&format!("INSERT INTO t VALUES ({i}, 'v{i}')"))
            .unwrap();
    }
    // The victim hammers one key and touches others once.
    for _ in 0..40 {
        conn.execute("SELECT v FROM t WHERE k = 777").unwrap();
    }
    conn.execute("SELECT v FROM t WHERE k = 3").unwrap();

    // Drown the statement history and heap in noise so the only place the
    // hot key survives is the adaptive hash index.
    for i in 0..200 {
        conn.execute(&format!("SELECT v FROM t WHERE k = {}", 1000 + i))
            .unwrap();
    }

    let obs = capture(&db, AttackVector::VmSnapshotLeak);
    let mem = obs.volatile_db.unwrap();
    assert!(
        !mem.adaptive_hash_keys.is_empty(),
        "hot pages must have indexed keys"
    );
    // Decode the indexed keys back to values: the hot key is among them.
    let mut decoded = Vec::new();
    for (key_bytes, _page) in &mem.adaptive_hash_keys {
        let mut pos = 0;
        if let Ok(v) = Value::decode(key_bytes, &mut pos) {
            decoded.push(v);
        }
    }
    assert!(
        decoded.contains(&Value::Int(777)),
        "the frequently searched key leaks from the AHI: {decoded:?}"
    );
    // Per-page access counters are part of the image as well.
    assert!(!mem.page_access_counts.is_empty());
}
