//! Regression: `DbConfig::encrypted_wal` closes the log-forensics
//! channels this crate attacks. Every carver that defines E2 (redo/undo
//! write reconstruction), E3 (binlog timestamps), and E14 (relay-log
//! recovery) must come back **empty** from a cold image of a sealed-log
//! engine — while the identical workload on a stock engine stays fully
//! carvable, proving the carvers themselves still work.

use minidb::engine::{Db, DbConfig};
use minidb::wal::{frame_enc, BINLOG_FILE, REDO_FILE, UNDO_FILE};
use snapshot_attack::forensics::{binlog, relay, wal};

const SECRET: &[u8] = b"dx-oncology";

fn run_workload(db: &Db) {
    let conn = db.connect("oltp");
    conn.execute("CREATE TABLE visits (id INT PRIMARY KEY, diagnosis TEXT)")
        .unwrap();
    for i in 0..40 {
        conn.execute(&format!(
            "INSERT INTO visits VALUES ({i}, 'dx-oncology-{i}')"
        ))
        .unwrap();
    }
    for i in (0..40).step_by(5) {
        conn.execute(&format!(
            "UPDATE visits SET diagnosis = 'dx-remission-{i}' WHERE id = {i}"
        ))
        .unwrap();
    }
    // Simulate the replica side of statement shipping: the raw binlog
    // frame payloads (ciphertext under encrypted_wal) re-framed into a
    // relay log on the same disk, exactly as `mdb-repl`'s relay module
    // writes them.
    let (frames, _) = db.binlog_frames_from(0, 1024);
    assert!(!frames.is_empty());
    for (_, sealed, payload) in &frames {
        // The frame cursor's explicit sealed bit picks the relay frame
        // magic, exactly as `mdb-repl`'s relay module does.
        if *sealed {
            db.append_server_file("relay-bin.000001", &frame_enc(payload));
        } else {
            db.append_server_file("relay-bin.000001", &minidb::wal::frame(payload));
        }
    }
}

fn secret_windows(raw: &[u8]) -> usize {
    raw.windows(SECRET.len()).filter(|w| *w == SECRET).count()
}

#[test]
fn log_carvers_recover_nothing_from_an_encrypted_image() {
    let enc_db = Db::open(DbConfig {
        encrypted_wal: true,
        wal_key: Some([3u8; 32]),
        group_commit: true,
        ..DbConfig::default()
    });
    run_workload(&enc_db);
    let disk = enc_db.disk_image();

    // E2: redo write reconstruction and undo before-images.
    let redo = disk.file(REDO_FILE).unwrap();
    let undo = disk.file(UNDO_FILE).unwrap();
    assert!(wal::reconstruct_writes(redo).is_empty(), "E2 redo carver");
    assert!(
        wal::reconstruct_before_images(undo).is_empty(),
        "E2 undo carver"
    );

    // E3: binlog statement/timestamp recovery.
    let bl = disk.file(BINLOG_FILE).unwrap();
    assert!(binlog::parse_binlog(bl).is_empty(), "E3 binlog carver");

    // E14: relay-log recovery from the (simulated) replica volume.
    assert!(!relay::relay_files(&disk).is_empty());
    assert!(relay::carve_relay(&disk).is_empty(), "E14 relay carver");

    // And no log file leaks the sensitive value as raw bytes.
    for name in [REDO_FILE, UNDO_FILE, BINLOG_FILE, "relay-bin.000001"] {
        let raw = disk.file(name).unwrap();
        assert_eq!(secret_windows(raw), 0, "{name} leaks plaintext bytes");
    }

    // Control: the same workload on a stock engine carves completely —
    // the emptiness above is the mitigation, not a broken carver.
    let plain_db = Db::open(DbConfig::default());
    run_workload(&plain_db);
    let pdisk = plain_db.disk_image();
    assert!(!wal::reconstruct_writes(pdisk.file(REDO_FILE).unwrap()).is_empty());
    assert!(!wal::reconstruct_before_images(pdisk.file(UNDO_FILE).unwrap()).is_empty());
    assert!(!binlog::parse_binlog(pdisk.file(BINLOG_FILE).unwrap()).is_empty());
    assert!(!relay::carve_relay(&pdisk).is_empty());
    assert!(secret_windows(pdisk.file(BINLOG_FILE).unwrap()) > 0);
}
