//! Plain-text table rendering for the experiment harness.

use core::fmt;

/// A simple aligned text table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    /// Table title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and headers.
    pub fn new(title: &str, headers: &[&str]) -> Table {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        self.rows.push(cells.to_vec());
        self
    }

    /// Appends a row of string slices.
    pub fn row_str(&mut self, cells: &[&str]) -> &mut Self {
        self.rows
            .push(cells.iter().map(|s| s.to_string()).collect());
        self
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self
            .headers
            .len()
            .max(self.rows.iter().map(|r| r.len()).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let empty = String::new();
                let cell = cells.get(i).unwrap_or(&empty);
                line.push_str(&format!("{cell:<width$}  ", width = w));
            }
            writeln!(f, "{}", line.trim_end())
        };
        if !self.headers.is_empty() {
            write_row(f, &self.headers)?;
            let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
            write_row(f, &sep)?;
        }
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("Demo", &["col", "value"]);
        t.row_str(&["a", "1"]).row_str(&["long-name", "2"]);
        let s = t.to_string();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("long-name"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
        // Header and separator aligned to the widest cell.
        assert!(lines[1].starts_with("col"));
        assert!(lines[2].starts_with("---"));
    }

    #[test]
    fn tolerates_ragged_rows() {
        let mut t = Table::new("R", &["a"]);
        t.row_str(&["1", "extra"]);
        let s = t.to_string();
        assert!(s.contains("extra"));
    }
}
