//! # snapshot-attack
//!
//! The paper's contribution, as a library: a realistic model of what each
//! concrete attack on a DBMS host actually yields ([`threat`], Figure 1),
//! forensic parsers that turn those artifacts into query history
//! ([`forensics`], §3–§5), and the leakage-abuse attack suite that turns
//! query history into plaintext recovery against encrypted databases
//! ([`attacks`], §6).
//!
//! The central claim this crate operationalizes: **there is no such thing
//! as a snapshot attacker who cannot observe past queries**. Every vector
//! stronger than pure disk theft of an at-rest-encrypted disk yields
//! transaction logs, diagnostic tables, caches, or heap residue — and each
//! of those contains query tokens, statement texts, or access patterns
//! that collapse the "snapshot security" claims of CryptDB-style,
//! Seabed-style, and Arx-style designs.

pub mod attacks;
pub mod forensics;
pub mod report;
pub mod threat;
