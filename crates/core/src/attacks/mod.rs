//! Leakage-abuse attacks (§6): from recovered query artifacts to
//! plaintext.
//!
//! * [`matching`] — max-weight bipartite matching (Hungarian algorithm),
//!   the engine behind the Seabed-ORE and Arx recovery attacks.
//! * [`frequency`] — rank-matching frequency analysis, the
//!   Lacharité–Paterson maximum-likelihood estimator.
//! * [`count`] — the Cash et al. count attack on searchable encryption.
//! * [`binomial`] — the binomial attack on order-revealing encryption.
//! * [`bit_leakage`] — the paper's Lewi–Wu token-leakage accounting
//!   simulation (12%/19%/25% of plaintext bits at 5/25/50 queries).
//! * [`arx_transcript`] — range-query transcript reconstruction from the
//!   read-repair writes Arx leaves in the transaction logs.
//! * [`volume`] — the scrape-channel volume attack: a remote observer
//!   polling `/metrics` reconstructs per-query result volumes from
//!   counter deltas (E17).

pub mod arx_transcript;
pub mod binomial;
pub mod bit_leakage;
pub mod count;
pub mod frequency;
pub mod matching;
pub mod volume;
