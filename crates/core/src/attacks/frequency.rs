//! Frequency analysis by rank matching — §6's "very simple cryptanalytic
//! technique", which Lacharité–Paterson proved to be a maximum-likelihood
//! estimator for deterministic encryption under a known plaintext (or
//! query) distribution.
//!
//! Sort the observed ciphertext histogram and the model histogram in
//! decreasing order, then match by rank: the most frequent ciphertext is
//! guessed to be the most frequent plaintext, and so on.

/// Runs rank-matching frequency analysis.
///
/// `observed` maps opaque ciphertext identifiers to their observed counts;
/// `model` maps candidate plaintexts to modeled frequencies (counts or
/// probabilities — only the order matters). Returns `(ciphertext,
/// guessed plaintext)` pairs for the `min(observed, model)` top ranks.
///
/// Ties are broken by identifier order, deterministically.
pub fn rank_match<C: Clone + Ord, P: Clone + Ord>(
    observed: &[(C, f64)],
    model: &[(P, f64)],
) -> Vec<(C, P)> {
    let mut obs = observed.to_vec();
    obs.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then_with(|| a.0.cmp(&b.0)));
    let mut mdl = model.to_vec();
    mdl.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then_with(|| a.0.cmp(&b.0)));
    obs.into_iter()
        .zip(mdl)
        .map(|((c, _), (p, _))| (c, p))
        .collect()
}

/// Convenience: recovery accuracy of a guess list against ground truth,
/// weighted by observation counts (the metric used in the literature:
/// fraction of *observations* whose ciphertext was correctly labeled).
pub fn weighted_accuracy<C: Ord + Clone, P: PartialEq>(
    guesses: &[(C, P)],
    truth: impl Fn(&C) -> P,
    observed: &[(C, f64)],
) -> f64 {
    let counts: std::collections::BTreeMap<&C, f64> =
        observed.iter().map(|(c, n)| (c, *n)).collect();
    let total: f64 = observed.iter().map(|(_, n)| n).sum();
    if total == 0.0 {
        return 0.0;
    }
    let correct: f64 = guesses
        .iter()
        .filter(|(c, p)| truth(c) == *p)
        .map(|(c, _)| counts.get(c).copied().unwrap_or(0.0))
        .sum();
    correct / total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_recovery_with_matching_histograms() {
        // Ciphertexts 10/11/12 with counts 50/30/20; plaintexts a/b/c with
        // model 5/3/2 — ranks align exactly.
        let observed = vec![(11u32, 30.0), (10, 50.0), (12, 20.0)];
        let model = vec![("c", 2.0), ("a", 5.0), ("b", 3.0)];
        let guesses = rank_match(&observed, &model);
        assert_eq!(guesses, vec![(10, "a"), (11, "b"), (12, "c")]);
    }

    #[test]
    fn accuracy_weighted_by_counts() {
        let observed = vec![(1u32, 90.0), (2, 10.0)];
        let model = vec![("x", 0.9), ("y", 0.1)];
        let guesses = rank_match(&observed, &model);
        // Truth: 1→x (correct, 90 obs), 2→x (wrong, 10 obs).
        let acc = weighted_accuracy(&guesses, |c| if *c == 1 { "x" } else { "x" }, &observed);
        assert!((acc - 0.9).abs() < 1e-9);
    }

    #[test]
    fn handles_size_mismatch() {
        let observed = vec![(1u32, 5.0)];
        let model = vec![("a", 3.0), ("b", 1.0)];
        assert_eq!(rank_match(&observed, &model), vec![(1, "a")]);
        let empty: Vec<(u32, f64)> = Vec::new();
        assert!(rank_match(&empty, &model).is_empty());
    }

    #[test]
    fn mle_property_on_sampled_data() {
        // Sample a Zipf-ish distribution; with enough samples the rank
        // match recovers the true mapping for well-separated ranks.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        let probs = [0.5, 0.25, 0.12, 0.08, 0.05];
        // Secret substitution: plaintext p encrypts to ciphertext (p*7)%11.
        let enc = |p: usize| (p * 7) % 11;
        let mut counts = std::collections::BTreeMap::new();
        for _ in 0..20_000 {
            let u: f64 = rng.gen();
            let mut acc = 0.0;
            let mut p = probs.len() - 1;
            for (i, &q) in probs.iter().enumerate() {
                acc += q;
                if u < acc {
                    p = i;
                    break;
                }
            }
            *counts.entry(enc(p)).or_insert(0.0) += 1.0;
        }
        let observed: Vec<(usize, f64)> = counts.into_iter().collect();
        let model: Vec<(usize, f64)> = probs.iter().copied().enumerate().collect();
        let guesses = rank_match(&observed, &model);
        for (ct, pt) in guesses {
            assert_eq!(enc(pt), ct, "plaintext {pt} should encrypt to {ct}");
        }
    }
}
