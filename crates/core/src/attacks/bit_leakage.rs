//! The paper's §6 Lewi–Wu leakage simulation.
//!
//! Setup (verbatim from the paper): a database of 32-bit integers and
//! several range queries (both an upper and a lower bound), all sampled
//! uniformly at random; compute the leakage each query set induces
//! against the database, aggregated over many trials.
//!
//! Leakage model: comparing a recovered *left* token `t` against a stored
//! *right* ciphertext `v` (1-bit blocks) reveals the index `j` of the
//! most significant differing bit — hence `v_j` and `t_j` themselves
//! (the smaller operand has 0 there) and the bitwise *equality* of every
//! more significant position. The attacker accumulates these facts across
//! all token × ciphertext pairs and propagates them: known bits flow
//! through equality classes (union-find), so a database value inherits
//! bits its equal-prefix partners learned elsewhere.
//!
//! Paper's numbers: with a 10,000-value database, the average fraction of
//! the 320,000 database bits recovered is ≈12% at 5 queries, ≈19% at 25,
//! and ≈25% at 50.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Plaintext width of the simulation.
pub const WIDTH: u32 = 32;

/// Union-find over bit-cells with a known-value payload at each root.
struct BitCells {
    parent: Vec<u32>,
    /// Known value at the *root* of each class, if any.
    known: Vec<Option<bool>>,
}

impl BitCells {
    fn new(n: usize) -> Self {
        BitCells {
            parent: (0..n as u32).collect(),
            known: vec![None; n],
        }
    }

    fn find(&mut self, x: u32) -> u32 {
        let mut root = x;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }

    fn union(&mut self, a: u32, b: u32) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return;
        }
        let value = self.known[ra as usize].or(self.known[rb as usize]);
        self.parent[rb as usize] = ra;
        self.known[ra as usize] = value;
    }

    fn set_known(&mut self, x: u32, bit: bool) {
        let r = self.find(x);
        self.known[r as usize] = Some(bit);
    }

    fn is_known(&mut self, x: u32) -> bool {
        let r = self.find(x);
        self.known[r as usize].is_some()
    }
}

/// Result of one simulation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LeakageResult {
    /// Fraction of all database-value bits determined.
    pub fraction_bits_leaked: f64,
    /// Mean bits leaked per 32-bit value.
    pub bits_per_value: f64,
}

/// Leakage accounting mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Count only bits learned directly at msdb positions (ablation).
    DirectOnly,
    /// Propagate known bits through prefix-equality classes (the attack).
    Propagate,
}

/// Runs the leakage computation for one concrete database + token set.
pub fn leak_once(db_values: &[u32], token_values: &[u32], mode: Mode) -> LeakageResult {
    let n = db_values.len();
    let t = token_values.len();
    let width = WIDTH as usize;
    // Cell layout: db value i bit j → i*32+j; token k bit j → (n+k)*32+j.
    let mut cells = BitCells::new((n + t) * width);
    let cell = |entity: usize, bit: usize| (entity * width + bit) as u32;

    let mut direct_known = vec![false; n * width];
    for (k, &tok) in token_values.iter().enumerate() {
        for (i, &val) in db_values.iter().enumerate() {
            let diff = tok ^ val;
            if diff == 0 {
                // Total equality: all 32 positions pairwise equal.
                if mode == Mode::Propagate {
                    for j in 0..width {
                        cells.union(cell(i, j), cell(n + k, j));
                    }
                }
                continue;
            }
            let msdb = (diff.leading_zeros()) as usize; // Bit 0 = MSB.
                                                        // Direct leakage: position msdb of both operands.
            let v_bit = (val >> (31 - msdb)) & 1 == 1;
            let t_bit = (tok >> (31 - msdb)) & 1 == 1;
            direct_known[i * width + msdb] = true;
            match mode {
                Mode::DirectOnly => {}
                Mode::Propagate => {
                    cells.set_known(cell(i, msdb), v_bit);
                    cells.set_known(cell(n + k, msdb), t_bit);
                    for j in 0..msdb {
                        cells.union(cell(i, j), cell(n + k, j));
                    }
                }
            }
        }
    }

    let known_bits: usize = match mode {
        Mode::DirectOnly => direct_known.iter().filter(|&&b| b).count(),
        Mode::Propagate => {
            let mut count = 0;
            for i in 0..n {
                for j in 0..width {
                    if cells.is_known(cell(i, j)) {
                        count += 1;
                    }
                }
            }
            count
        }
    };
    LeakageResult {
        fraction_bits_leaked: known_bits as f64 / (n * width) as f64,
        bits_per_value: known_bits as f64 / n as f64,
    }
}

/// Parameters of the aggregate simulation (paper defaults).
#[derive(Clone, Copy, Debug)]
pub struct SimParams {
    /// Database size (paper: 10,000).
    pub db_size: usize,
    /// Number of range queries; each contributes two tokens.
    pub num_queries: usize,
    /// Trials to average over (paper: 1,000).
    pub trials: usize,
    /// Leakage accounting mode.
    pub mode: Mode,
    /// RNG seed.
    pub seed: u64,
}

/// Runs the full §6 simulation: fresh uniform database and queries per
/// trial, averaged leakage.
pub fn simulate(params: &SimParams) -> LeakageResult {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut total_fraction = 0.0;
    for _ in 0..params.trials {
        let db: Vec<u32> = (0..params.db_size).map(|_| rng.gen()).collect();
        let mut tokens = Vec::with_capacity(params.num_queries * 2);
        for _ in 0..params.num_queries {
            let a: u32 = rng.gen();
            let b: u32 = rng.gen();
            tokens.push(a.min(b));
            tokens.push(a.max(b));
        }
        total_fraction += leak_once(&db, &tokens, params.mode).fraction_bits_leaked;
    }
    let fraction = total_fraction / params.trials as f64;
    LeakageResult {
        fraction_bits_leaked: fraction,
        bits_per_value: fraction * WIDTH as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_pair_leaks_exactly_the_msdb_bit_directly() {
        // db = [0b10...0], token = [0b11...0]: msdb at bit 1 (from MSB).
        let db = [0x8000_0000u32];
        let tok = [0xC000_0000u32];
        let r = leak_once(&db, &tok, Mode::DirectOnly);
        assert!((r.bits_per_value - 1.0).abs() < 1e-9);
    }

    #[test]
    fn propagation_never_loses_direct_bits() {
        let mut rng = StdRng::seed_from_u64(3);
        let db: Vec<u32> = (0..200).map(|_| rng.gen()).collect();
        let toks: Vec<u32> = (0..10).map(|_| rng.gen()).collect();
        let direct = leak_once(&db, &toks, Mode::DirectOnly);
        let prop = leak_once(&db, &toks, Mode::Propagate);
        assert!(prop.fraction_bits_leaked >= direct.fraction_bits_leaked - 1e-12);
    }

    #[test]
    fn equal_value_and_token_share_all_bits() {
        // One token equals a db value, another reveals the token's bits.
        let db = [0xDEAD_BEEFu32, 0xDEAD_BEEE];
        let tok = [0xDEAD_BEEF];
        let r = leak_once(&db, &tok, Mode::Propagate);
        // v0 == token: 32-way equality; v1 differs at the last bit so both
        // learn bit 31 and share bits 0..31 with the token. The token's
        // bit 31 is also known (from v1), flowing to v0.
        assert!(
            r.bits_per_value >= 1.0,
            "bits per value {}",
            r.bits_per_value
        );
    }

    #[test]
    fn more_queries_leak_more() {
        let params5 = SimParams {
            db_size: 500,
            num_queries: 5,
            trials: 10,
            mode: Mode::Propagate,
            seed: 7,
        };
        let params50 = SimParams {
            num_queries: 50,
            ..params5
        };
        let r5 = simulate(&params5);
        let r50 = simulate(&params50);
        assert!(r50.fraction_bits_leaked > r5.fraction_bits_leaked);
    }

    #[test]
    fn small_scale_matches_paper_ballpark() {
        // Scaled-down (500 values, 20 trials) sanity check: at 5 queries
        // the leakage should already be around 10-16% of all bits.
        let r = simulate(&SimParams {
            db_size: 500,
            num_queries: 5,
            trials: 20,
            mode: Mode::Propagate,
            seed: 13,
        });
        assert!(
            (0.08..=0.20).contains(&r.fraction_bits_leaked),
            "fraction {}",
            r.fraction_bits_leaked
        );
    }

    #[test]
    fn no_tokens_no_leakage() {
        let db = [1u32, 2, 3];
        let r = leak_once(&db, &[], Mode::Propagate);
        assert_eq!(r.fraction_bits_leaked, 0.0);
    }
}
