//! The scrape-channel volume attack (E17): a *remote* observer that
//! only polls `GET /metrics` recovers per-query result volumes.
//!
//! Every attack before this one needed the paper's snapshot adversary —
//! disk images, memory dumps, logs. This one needs a TCP route to the
//! status port. The counters a production DBMS exports for dashboards
//! (`sql.statements`, per-table access counts, the `sql.rows_returned`
//! histogram's `_sum`) are *cumulative*, so the difference between two
//! consecutive scrapes is exactly the work done in that window. When at
//! most one query lands per scrape window, the delta IS that query's
//! result volume — and result volumes are the entire input the
//! volume-based attacks on encrypted databases need (see
//! "Practical Volume-Based Attacks on Encrypted Databases"): against an
//! EDB whose range queries return `k+1` rows for secret bound `k`, the
//! volume inverts to the plaintext query parameter outright.
//!
//! The pipeline here is deliberately honest about its observation
//! limits: windows where the query counter moved by more than one are
//! *merged* — the observer sees only the sum of the colliding volumes
//! and reports them unrecovered. E17 measures exactly this: recovery
//! rate vs scrape interval, and the channel narrowing under the
//! `obs_scrub` / auth-gating mitigations.

use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use mdb_obs::{http, prom};
use parking_lot::Mutex;

/// One observed scrape: every numeric series the exposition yielded,
/// keyed by the *original* metric name (recovered from the `name`
/// label; histogram `_sum`/`_count` series keyed `<name>.sum` /
/// `<name>.count`).
#[derive(Clone, Debug, Default)]
pub struct Scrape {
    /// Milliseconds since the observer started, at receive time.
    pub at_ms: u64,
    /// Series name → value.
    pub counters: BTreeMap<String, u64>,
}

/// Parses one `/metrics` body into a [`Scrape`]. Returns `None` when
/// the body is not a well-formed exposition (the observer records the
/// scrape as missing rather than inventing zeros).
pub fn parse_scrape(at_ms: u64, body: &str) -> Option<Scrape> {
    let samples = prom::parse(body)?;
    let mut counters = BTreeMap::new();
    for s in &samples {
        let Some(name) = s.metric_name() else {
            continue;
        };
        if s.series.ends_with("_bucket") || s.series.ends_with("_rate") {
            continue;
        }
        let key = if s.series.ends_with("_sum") {
            format!("{name}.sum")
        } else if s.series.ends_with("_count") {
            format!("{name}.count")
        } else {
            name.to_string()
        };
        if let Some(v) = s.value_u64() {
            counters.insert(key, v);
        }
    }
    Some(Scrape { at_ms, counters })
}

/// What one scrape attempt produced.
#[derive(Clone, Debug)]
pub enum Observation {
    /// A parsed exposition.
    Scrape(Scrape),
    /// The endpoint refused us (`401` — the auth mitigation working).
    Denied(u16),
    /// Transport-level failure.
    Unreachable,
}

/// A remote observer: a thread that polls `/metrics` at a fixed
/// interval, exactly like a Prometheus scraper — and with exactly a
/// Prometheus scraper's powers. No disk, no memory, no SQL.
pub struct RemoteObserver {
    observations: Arc<Mutex<Vec<Observation>>>,
    shutdown: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl RemoteObserver {
    /// Starts polling `addr` every `interval`, optionally presenting a
    /// bearer token.
    pub fn start(addr: SocketAddr, interval: Duration, bearer: Option<String>) -> RemoteObserver {
        let observations: Arc<Mutex<Vec<Observation>>> = Arc::default();
        let shutdown = Arc::new(AtomicBool::new(false));
        let handle = {
            let observations = Arc::clone(&observations);
            let shutdown = Arc::clone(&shutdown);
            std::thread::spawn(move || {
                let started = std::time::Instant::now();
                while !shutdown.load(Ordering::SeqCst) {
                    let at_ms = started.elapsed().as_millis() as u64;
                    let obs = match http::get(addr, "/metrics", bearer.as_deref()) {
                        Ok((200, body)) => match parse_scrape(at_ms, &body) {
                            Some(s) => Observation::Scrape(s),
                            None => Observation::Unreachable,
                        },
                        Ok((status, _)) => Observation::Denied(status),
                        Err(_) => Observation::Unreachable,
                    };
                    observations.lock().push(obs);
                    std::thread::sleep(interval);
                }
            })
        };
        RemoteObserver {
            observations,
            shutdown,
            handle: Some(handle),
        }
    }

    /// Stops polling and returns everything observed.
    pub fn stop(mut self) -> Vec<Observation> {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        std::mem::take(&mut *self.observations.lock())
    }
}

/// Successful scrapes only, in order.
pub fn scrapes(observations: &[Observation]) -> Vec<Scrape> {
    observations
        .iter()
        .filter_map(|o| match o {
            Observation::Scrape(s) => Some(s.clone()),
            _ => None,
        })
        .collect()
}

/// Number of denied attempts (the auth mitigation's score).
pub fn denied_count(observations: &[Observation]) -> usize {
    observations
        .iter()
        .filter(|o| matches!(o, Observation::Denied(_)))
        .count()
}

/// Per-window delta of `key` between consecutive scrapes. A key absent
/// from either endpoint of a window yields 0 for that window (scrubbed
/// series simply stop moving, from the observer's point of view).
pub fn window_deltas(scrapes: &[Scrape], key: &str) -> Vec<u64> {
    scrapes
        .windows(2)
        .map(|w| {
            let before = w[0].counters.get(key).copied().unwrap_or(0);
            let after = w[1].counters.get(key).copied().unwrap_or(0);
            after.saturating_sub(before)
        })
        .collect()
}

/// One reconstructed window.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WindowInference {
    /// No query landed in this window.
    Idle,
    /// Exactly one query landed: its result volume is the delta.
    Isolated { volume: u64 },
    /// `queries` queries collided in one window; only their combined
    /// volume is visible.
    Merged { queries: u64, combined_volume: u64 },
}

/// Reconstructs per-window query activity from two counter streams: a
/// *query count* key (how many queries ran — e.g. the per-table access
/// counter, or `sql.statements` when tables are scrubbed) and a
/// *volume* key (total rows returned — the `sql.rows_returned`
/// histogram's `.sum`).
pub fn infer_windows(
    scrapes: &[Scrape],
    query_count_key: &str,
    volume_key: &str,
) -> Vec<WindowInference> {
    let queries = window_deltas(scrapes, query_count_key);
    let volumes = window_deltas(scrapes, volume_key);
    queries
        .iter()
        .zip(&volumes)
        .map(|(&q, &v)| match q {
            0 => WindowInference::Idle,
            1 => WindowInference::Isolated { volume: v },
            n => WindowInference::Merged {
                queries: n,
                combined_volume: v,
            },
        })
        .collect()
}

/// The isolated (one-query-per-window) volumes, in observation order.
pub fn isolated_volumes(windows: &[WindowInference]) -> Vec<u64> {
    windows
        .iter()
        .filter_map(|w| match w {
            WindowInference::Isolated { volume } => Some(*volume),
            _ => None,
        })
        .collect()
}

/// Scoreboard for one attack run.
#[derive(Clone, Debug, Default)]
pub struct VolumeRecovery {
    /// Volumes the observer isolated, one per recovered query.
    pub recovered: Vec<u64>,
    /// Queries that collided into merged windows (volume unresolved).
    pub merged_queries: u64,
    /// True query volumes, as issued by the victim's client.
    pub truth: Vec<u64>,
    /// Multiset fraction of true volumes the observer recovered exactly.
    pub recovery_rate: f64,
}

/// Scores recovered volumes against ground truth as a multiset match:
/// each true volume is creditable at most once, order-independent
/// (volumes are the leak, not their order — and this scores honestly
/// even when windows drop or merge).
pub fn evaluate(windows: &[WindowInference], truth: &[u64]) -> VolumeRecovery {
    let recovered = isolated_volumes(windows);
    let merged_queries = windows
        .iter()
        .map(|w| match w {
            WindowInference::Merged { queries, .. } => *queries,
            _ => 0,
        })
        .sum();
    let mut remaining: BTreeMap<u64, usize> = BTreeMap::new();
    for &t in truth {
        *remaining.entry(t).or_default() += 1;
    }
    let mut hits = 0usize;
    for &r in &recovered {
        if let Some(n) = remaining.get_mut(&r) {
            if *n > 0 {
                *n -= 1;
                hits += 1;
            }
        }
    }
    VolumeRecovery {
        recovered,
        merged_queries,
        truth: truth.to_vec(),
        recovery_rate: if truth.is_empty() {
            0.0
        } else {
            hits as f64 / truth.len() as f64
        },
    }
}

/// Inverts a recovered volume back to the victim's secret range bound,
/// for the E17 victim's query family `ts >= 0 AND ts <= k*step` over a
/// dense table (`volume = k + 1`). `None` when the volume is impossible
/// (zero — range queries on the fixture always match the row at 0).
pub fn invert_range_volume(volume: u64) -> Option<u64> {
    volume.checked_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scrape(at_ms: u64, pairs: &[(&str, u64)]) -> Scrape {
        Scrape {
            at_ms,
            counters: pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
        }
    }

    #[test]
    fn deltas_and_inference_classify_windows() {
        let scrapes = vec![
            scrape(0, &[("q", 0), ("rows.sum", 0)]),
            scrape(100, &[("q", 1), ("rows.sum", 7)]), // isolated: 7
            scrape(200, &[("q", 1), ("rows.sum", 7)]), // idle
            scrape(300, &[("q", 3), ("rows.sum", 12)]), // merged: 2 queries, 5 rows
            scrape(400, &[("q", 4), ("rows.sum", 13)]), // isolated: 1
        ];
        let windows = infer_windows(&scrapes, "q", "rows.sum");
        assert_eq!(
            windows,
            vec![
                WindowInference::Isolated { volume: 7 },
                WindowInference::Idle,
                WindowInference::Merged {
                    queries: 2,
                    combined_volume: 5
                },
                WindowInference::Isolated { volume: 1 },
            ]
        );
        assert_eq!(isolated_volumes(&windows), vec![7, 1]);
    }

    #[test]
    fn evaluate_scores_multiset_overlap() {
        let windows = vec![
            WindowInference::Isolated { volume: 7 },
            WindowInference::Isolated { volume: 7 },
            WindowInference::Isolated { volume: 3 },
            WindowInference::Merged {
                queries: 2,
                combined_volume: 9,
            },
        ];
        // Truth has one 7 — the second recovered 7 must not double-count.
        let r = evaluate(&windows, &[7, 3, 4, 5]);
        assert_eq!(r.merged_queries, 2);
        assert!((r.recovery_rate - 0.5).abs() < 1e-9);
    }

    #[test]
    fn parse_scrape_reads_exposition_counters_and_sums() {
        let registry = mdb_telemetry::Registry::new();
        registry.counter("sql.statements").add(4);
        registry.histogram("sql.rows_returned").record(9);
        let body = prom::encode(&registry.snapshot(), &[]);
        let s = parse_scrape(50, &body).unwrap();
        assert_eq!(s.counters.get("sql.statements"), Some(&4));
        assert_eq!(s.counters.get("sql.rows_returned.sum"), Some(&9));
        assert_eq!(s.counters.get("sql.rows_returned.count"), Some(&1));
        assert_eq!(s.at_ms, 50);
    }

    #[test]
    fn range_volume_inverts_to_secret_bound() {
        assert_eq!(invert_range_volume(1), Some(0));
        assert_eq!(invert_range_volume(11), Some(10));
        assert_eq!(invert_range_volume(0), None);
    }
}
