//! The count attack on searchable encryption (Cash et al., CCS 2015),
//! which §6 applies to CryptDB/Mylar the moment a snapshot yields search
//! tokens.
//!
//! Premise: the attacker recovered one or more trapdoors (from logs, the
//! heap, or diagnostic tables) and can apply them to the encrypted index,
//! learning each token's *result count* and matching document set. With
//! auxiliary knowledge of per-keyword document frequencies — 63% of the
//! top-500 Enron words have a *unique* count — a count equality pins the
//! keyword immediately, and the matching documents' partial content
//! follows.

use std::collections::BTreeMap;

/// Auxiliary knowledge: keyword → expected document frequency.
#[derive(Clone, Debug, Default)]
pub struct AuxiliaryCounts {
    counts: BTreeMap<String, usize>,
    by_count: BTreeMap<usize, Vec<String>>,
}

impl AuxiliaryCounts {
    /// Builds the auxiliary model from `(keyword, document count)` pairs.
    pub fn new(pairs: impl IntoIterator<Item = (String, usize)>) -> Self {
        let mut counts = BTreeMap::new();
        let mut by_count: BTreeMap<usize, Vec<String>> = BTreeMap::new();
        for (w, c) in pairs {
            counts.insert(w.clone(), c);
            by_count.entry(c).or_default().push(w);
        }
        AuxiliaryCounts { counts, by_count }
    }

    /// Number of keywords in the model.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether the model is empty.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Keywords whose modeled count is exactly `c`.
    pub fn keywords_with_count(&self, c: usize) -> &[String] {
        self.by_count.get(&c).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Fraction of the given keywords whose count is unique in the model.
    pub fn unique_fraction(&self, keywords: &[String]) -> f64 {
        if keywords.is_empty() {
            return 0.0;
        }
        let unique = keywords
            .iter()
            .filter(|w| {
                self.counts
                    .get(*w)
                    .map(|c| self.by_count[c].len() == 1)
                    .unwrap_or(false)
            })
            .count();
        unique as f64 / keywords.len() as f64
    }
}

/// Result of running the count attack on one recovered token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CountAttackOutcome {
    /// Exactly one keyword matches the observed count: recovered.
    Recovered(String),
    /// Multiple candidates share the count.
    Ambiguous(Vec<String>),
    /// No keyword in the model has the count.
    NoCandidate,
}

/// Runs the count attack for a token with the observed `result_count`.
pub fn count_attack(aux: &AuxiliaryCounts, result_count: usize) -> CountAttackOutcome {
    match aux.keywords_with_count(result_count) {
        [] => CountAttackOutcome::NoCandidate,
        [one] => CountAttackOutcome::Recovered(one.clone()),
        many => CountAttackOutcome::Ambiguous(many.to_vec()),
    }
}

/// Batch evaluation: runs the attack over `(token id, observed count)`
/// pairs and reports aggregate statistics.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CountAttackReport {
    /// Tokens uniquely recovered: `(token id, keyword)`.
    pub recovered: Vec<(usize, String)>,
    /// Tokens with multiple candidates.
    pub ambiguous: usize,
    /// Tokens with no candidate.
    pub missed: usize,
}

impl CountAttackReport {
    /// Recovery rate over all tokens.
    pub fn recovery_rate(&self) -> f64 {
        let total = self.recovered.len() + self.ambiguous + self.missed;
        if total == 0 {
            0.0
        } else {
            self.recovered.len() as f64 / total as f64
        }
    }
}

/// Runs the attack over a batch of observed token counts.
pub fn count_attack_batch(
    aux: &AuxiliaryCounts,
    observations: &[(usize, usize)],
) -> CountAttackReport {
    let mut report = CountAttackReport::default();
    for &(token, count) in observations {
        match count_attack(aux, count) {
            CountAttackOutcome::Recovered(w) => report.recovered.push((token, w)),
            CountAttackOutcome::Ambiguous(_) => report.ambiguous += 1,
            CountAttackOutcome::NoCandidate => report.missed += 1,
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn aux() -> AuxiliaryCounts {
        AuxiliaryCounts::new([
            ("energy".to_string(), 120),
            ("gas".to_string(), 87),
            ("meeting".to_string(), 87),
            ("pipeline".to_string(), 30),
        ])
    }

    #[test]
    fn unique_count_recovers() {
        assert_eq!(
            count_attack(&aux(), 120),
            CountAttackOutcome::Recovered("energy".into())
        );
    }

    #[test]
    fn shared_count_is_ambiguous() {
        match count_attack(&aux(), 87) {
            CountAttackOutcome::Ambiguous(ws) => {
                assert_eq!(ws.len(), 2);
                assert!(ws.contains(&"gas".to_string()));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unknown_count_misses() {
        assert_eq!(count_attack(&aux(), 999), CountAttackOutcome::NoCandidate);
    }

    #[test]
    fn unique_fraction_statistic() {
        let a = aux();
        let all: Vec<String> = ["energy", "gas", "meeting", "pipeline"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        // energy and pipeline are unique; gas/meeting collide.
        assert!((a.unique_fraction(&all) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn batch_report() {
        let obs = vec![(0usize, 120usize), (1, 87), (2, 30), (3, 5)];
        let report = count_attack_batch(&aux(), &obs);
        assert_eq!(report.recovered.len(), 2);
        assert_eq!(report.ambiguous, 1);
        assert_eq!(report.missed, 1);
        assert!((report.recovery_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn end_to_end_against_synthetic_corpus() {
        // Generate a corpus, encrypt nothing — the attack needs only the
        // count profile, which is the point: counts alone identify words.
        let corpus = corpus::enron::Corpus::generate(&corpus::enron::EnronParams {
            num_docs: 2000,
            vocab_size: 800,
            ..Default::default()
        });
        let aux = AuxiliaryCounts::new(
            corpus
                .top_words(800)
                .into_iter()
                .map(|w| (w.clone(), corpus.doc_frequency(&w))),
        );
        // The "victim" queries the 50 most frequent words; the attacker
        // observes each token's result count.
        let top = corpus.top_words(50);
        let obs: Vec<(usize, usize)> = top
            .iter()
            .enumerate()
            .map(|(i, w)| (i, corpus.doc_frequency(w)))
            .collect();
        let report = count_attack_batch(&aux, &obs);
        // Every recovered token must be correct.
        for (tok, word) in &report.recovered {
            assert_eq!(&top[*tok], word);
        }
        // Well-separated head frequencies: most tokens recover.
        assert!(
            report.recovery_rate() > 0.5,
            "rate {}",
            report.recovery_rate()
        );
    }
}
