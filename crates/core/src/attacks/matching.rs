//! Assignment problems: the Hungarian algorithm, plus the generic
//! weighted bipartite-matching recovery attack of Grubbs et al. (S&P'17)
//! that the paper invokes against Seabed's ORE and Arx's index.

/// Solves the min-cost assignment problem on an `n × m` cost matrix
/// (`n <= m`), returning for each row its assigned column.
///
/// O(n²m) Hungarian algorithm with potentials.
///
/// # Panics
///
/// Panics if the matrix is empty, ragged, or has more rows than columns.
pub fn min_cost_assignment(cost: &[Vec<f64>]) -> Vec<usize> {
    let n = cost.len();
    assert!(n > 0, "empty cost matrix");
    let m = cost[0].len();
    assert!(cost.iter().all(|r| r.len() == m), "ragged cost matrix");
    assert!(n <= m, "need rows <= columns");

    const INF: f64 = f64::INFINITY;
    let mut u = vec![0.0f64; n + 1];
    let mut v = vec![0.0f64; m + 1];
    let mut p = vec![0usize; m + 1]; // Row matched to column j (0 = none).
    let mut way = vec![0usize; m + 1];

    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![INF; m + 1];
        let mut used = vec![false; m + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = INF;
            let mut j1 = 0usize;
            for j in 1..=m {
                if used[j] {
                    continue;
                }
                let cur = cost[i0 - 1][j - 1] - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for j in 0..=m {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut assignment = vec![usize::MAX; n];
    for j in 1..=m {
        if p[j] != 0 {
            assignment[p[j] - 1] = j - 1;
        }
    }
    assignment
}

/// Max-weight variant: maximizes the total weight instead.
pub fn max_weight_assignment(weight: &[Vec<f64>]) -> Vec<usize> {
    let neg: Vec<Vec<f64>> = weight
        .iter()
        .map(|r| r.iter().map(|w| -w).collect())
        .collect();
    min_cost_assignment(&neg)
}

/// The bipartite-matching recovery attack: left nodes are ciphertext
/// observations with a leakage feature vector, right nodes are candidate
/// plaintexts with model feature vectors; edges are weighted by a
/// log-likelihood score, and the best assignment is the adversary's
/// plaintext guess for every ciphertext.
///
/// `score(i, j)` must return the (higher = more plausible) affinity of
/// ciphertext `i` with candidate `j`. Returns the per-ciphertext guesses.
pub fn recovery_by_matching(
    num_ciphertexts: usize,
    num_candidates: usize,
    score: impl Fn(usize, usize) -> f64,
) -> Vec<usize> {
    let weight: Vec<Vec<f64>> = (0..num_ciphertexts)
        .map(|i| (0..num_candidates).map(|j| score(i, j)).collect())
        .collect();
    max_weight_assignment(&weight)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force optimal assignment for cross-checking.
    fn brute_force(cost: &[Vec<f64>]) -> f64 {
        fn rec(cost: &[Vec<f64>], row: usize, used: &mut Vec<bool>) -> f64 {
            if row == cost.len() {
                return 0.0;
            }
            let mut best = f64::INFINITY;
            for j in 0..cost[0].len() {
                if !used[j] {
                    used[j] = true;
                    let v = cost[row][j] + rec(cost, row + 1, used);
                    if v < best {
                        best = v;
                    }
                    used[j] = false;
                }
            }
            best
        }
        rec(cost, 0, &mut vec![false; cost[0].len()])
    }

    fn total(cost: &[Vec<f64>], assignment: &[usize]) -> f64 {
        assignment
            .iter()
            .enumerate()
            .map(|(i, &j)| cost[i][j])
            .sum()
    }

    #[test]
    fn simple_known_case() {
        let cost = vec![
            vec![4.0, 1.0, 3.0],
            vec![2.0, 0.0, 5.0],
            vec![3.0, 2.0, 2.0],
        ];
        let a = min_cost_assignment(&cost);
        assert_eq!(total(&cost, &a), 5.0); // 1 + 2 + 2.
                                           // Valid permutation.
        let mut seen = vec![false; 3];
        for &j in &a {
            assert!(!seen[j]);
            seen[j] = true;
        }
    }

    #[test]
    fn matches_brute_force_on_random_matrices() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        for trial in 0..30 {
            let n = rng.gen_range(1..=6);
            let m = rng.gen_range(n..=7);
            let cost: Vec<Vec<f64>> = (0..n)
                .map(|_| (0..m).map(|_| rng.gen_range(0.0..10.0)).collect())
                .collect();
            let a = min_cost_assignment(&cost);
            let opt = brute_force(&cost);
            assert!(
                (total(&cost, &a) - opt).abs() < 1e-9,
                "trial {trial}: got {} want {opt}",
                total(&cost, &a)
            );
        }
    }

    #[test]
    fn max_weight_is_negated_min_cost() {
        let w = vec![vec![1.0, 9.0], vec![9.0, 2.0]];
        let a = max_weight_assignment(&w);
        assert_eq!(a, vec![1, 0]);
    }

    #[test]
    fn rectangular_assignment() {
        let cost = vec![vec![5.0, 1.0, 5.0, 5.0]];
        assert_eq!(min_cost_assignment(&cost), vec![1]);
    }

    #[test]
    fn recovery_by_matching_prefers_high_scores() {
        // Ciphertext i should map to candidate i (score 10 on diagonal).
        let guesses = recovery_by_matching(4, 4, |i, j| if i == j { 10.0 } else { 0.0 });
        assert_eq!(guesses, vec![0, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "rows <= columns")]
    fn too_many_rows_rejected() {
        min_cost_assignment(&[vec![1.0], vec![2.0]]);
    }
}
