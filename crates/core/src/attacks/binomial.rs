//! The binomial attack on order-revealing encryption (Grubbs et al.,
//! S&P 2017), which §6 notes applies to the Lewi–Wu scheme "even in the
//! absence of tokens" once equality/order leakage yields ranks, and which
//! breaks Seabed's (deterministic, comparable) ORE outright.
//!
//! Given ciphertexts whose pairwise order is known (so each ciphertext
//! has a *rank*) and a prior over plaintexts, the attacker estimates each
//! plaintext as the quantile of its rank: for `N` uniform draws over
//! `[0, 2³²)`, the value of rank `r` concentrates (binomially) around
//! `(r+1)/(N+1) · 2³²` — which fixes the high-order bits.

/// Estimates plaintexts from ranks under a uniform prior on `[0, modulus)`.
///
/// `ranks[i]` is the rank (0-based, ascending) of ciphertext `i` among
/// `n` total ciphertexts.
pub fn estimate_uniform(ranks: &[usize], n: usize, modulus: u64) -> Vec<u64> {
    assert!(n > 0, "empty ciphertext set");
    ranks
        .iter()
        .map(|&r| {
            let q = (r as f64 + 1.0) / (n as f64 + 1.0);
            ((q * modulus as f64) as u64).min(modulus - 1)
        })
        .collect()
}

/// Counts how many leading (most significant) bits of `estimate` agree
/// with `truth`, over a `width`-bit domain.
pub fn correct_leading_bits(estimate: u64, truth: u64, width: u32) -> u32 {
    let diff = estimate ^ truth;
    if diff == 0 {
        width
    } else {
        let highest = 63 - diff.leading_zeros(); // Highest differing bit.
        if highest >= width {
            0
        } else {
            width - 1 - highest
        }
    }
}

/// Outcome of the attack against a set of ciphertexts.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BinomialAttackReport {
    /// Mean correctly recovered leading bits per value.
    pub mean_leading_bits: f64,
    /// Fraction of all plaintext bits recovered (leading-bit metric).
    pub bit_recovery_rate: f64,
    /// Mean absolute relative error of the value estimates.
    pub mean_relative_error: f64,
}

/// Runs the full attack: sorts the (attacker-comparable) values into
/// ranks, estimates by quantile, and scores against the ground truth.
///
/// `truth` is ground truth used only for scoring — the estimate uses
/// ranks alone.
pub fn attack_uniform_u32(truth: &[u32]) -> BinomialAttackReport {
    let n = truth.len();
    assert!(n > 0);
    // The attacker can sort ciphertexts (ORE comparisons), i.e. knows each
    // ciphertext's rank.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| truth[i]);
    let mut ranks = vec![0usize; n];
    for (rank, &i) in order.iter().enumerate() {
        ranks[i] = rank;
    }
    let estimates = estimate_uniform(&ranks, n, 1 << 32);
    let mut bits = 0u64;
    let mut rel_err = 0.0f64;
    for (i, &est) in estimates.iter().enumerate() {
        bits += u64::from(correct_leading_bits(est, truth[i] as u64, 32));
        rel_err += ((est as f64) - (truth[i] as f64)).abs() / (1u64 << 32) as f64;
    }
    BinomialAttackReport {
        mean_leading_bits: bits as f64 / n as f64,
        bit_recovery_rate: bits as f64 / (n as f64 * 32.0),
        mean_relative_error: rel_err / n as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn leading_bits_metric() {
        assert_eq!(correct_leading_bits(0b1010, 0b1010, 4), 4);
        assert_eq!(correct_leading_bits(0b1010, 0b1011, 4), 3);
        assert_eq!(correct_leading_bits(0b1010, 0b0010, 4), 0);
        assert_eq!(correct_leading_bits(0, u32::MAX as u64, 32), 0);
    }

    #[test]
    fn quantile_estimates_monotone_and_in_range() {
        let est = estimate_uniform(&[0, 1, 2, 3], 4, 1 << 32);
        assert!(est.windows(2).all(|w| w[0] < w[1]));
        assert!(est.iter().all(|&e| e < (1u64 << 32)));
    }

    #[test]
    fn recovers_high_bits_of_uniform_data() {
        let mut rng = StdRng::seed_from_u64(11);
        let truth: Vec<u32> = (0..10_000).map(|_| rng.gen()).collect();
        let report = attack_uniform_u32(&truth);
        // With N = 10⁴ uniform draws, rank quantiles pin down roughly
        // log2(sqrt(N)) ≈ 6-7 high bits on average.
        assert!(
            report.mean_leading_bits > 4.0,
            "mean bits {}",
            report.mean_leading_bits
        );
        assert!(report.mean_relative_error < 0.01);
    }

    #[test]
    fn attack_beats_random_guessing() {
        let mut rng = StdRng::seed_from_u64(12);
        let truth: Vec<u32> = (0..1000).map(|_| rng.gen()).collect();
        let report = attack_uniform_u32(&truth);
        // A random guess gets 1 leading bit right in expectation
        // (sum 2^-k ≈ 1).
        assert!(report.mean_leading_bits > 3.0);
    }

    #[test]
    fn small_sets_still_work() {
        let report = attack_uniform_u32(&[7]);
        assert!(report.mean_relative_error < 1.0);
    }
}
