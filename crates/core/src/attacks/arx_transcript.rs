//! Reconstructing Arx range-query transcripts from transaction logs (§6).
//!
//! Arx repairs every index node a range query touches by overwriting its
//! ciphertext — a write. Writes land in the binlog (statement text) and
//! the undo/redo logs (row images). A snapshot of *persistent state only*
//! therefore contains, for every past range query, the exact set of index
//! nodes it visited: "a transcript of every range query made on the
//! index".
//!
//! From the transcript the attacker gets per-node visit frequencies and,
//! combined with the index structure (the in-order traversal of a search
//! tree *is* the rank order of its hidden values), the rank of each
//! query's bounds. With an auxiliary model of the value distribution, the
//! rank-quantile estimator then recovers approximate node values.

use std::collections::BTreeMap;

use minidb::wal::BinlogEvent;

/// One reconstructed range-query traversal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryTranscript {
    /// Index of the first repair statement in the binlog.
    pub first_event: usize,
    /// Commit timestamp of the repairs.
    pub timestamp: i64,
    /// Node ids the query visited (repair order = traversal order).
    pub visited: Vec<u32>,
}

/// Groups the repair `UPDATE`s of `index_table` into per-query
/// transcripts. The Arx client commits one repair round per query, so the
/// repairs of one query share a transaction id in the binlog; a change of
/// transaction (or any non-repair statement) ends the current group.
pub fn reconstruct_transcripts(events: &[BinlogEvent], index_table: &str) -> Vec<QueryTranscript> {
    let prefix = format!("UPDATE {index_table} SET ");
    let mut out = Vec::new();
    let mut current: Option<(u64, QueryTranscript)> = None;
    for (i, ev) in events.iter().enumerate() {
        let node = ev
            .statement
            .strip_prefix(&prefix)
            .and_then(|rest| rest.rsplit_once("WHERE node_id = "))
            .and_then(|(_, id)| id.trim().trim_end_matches(';').parse::<u32>().ok());
        match (node, &mut current) {
            (Some(n), Some((txn, t))) if *txn == ev.txn => t.visited.push(n),
            (Some(n), _) => {
                if let Some((_, t)) = current.take() {
                    out.push(t);
                }
                current = Some((
                    ev.txn,
                    QueryTranscript {
                        first_event: i,
                        timestamp: ev.timestamp,
                        visited: vec![n],
                    },
                ));
            }
            (None, Some(_)) => out.push(current.take().unwrap().1),
            (None, None) => {}
        }
    }
    out.extend(current.map(|(_, t)| t));
    out
}

/// Per-node visit counts across all reconstructed queries.
pub fn visit_frequencies(transcripts: &[QueryTranscript]) -> BTreeMap<u32, usize> {
    let mut freq = BTreeMap::new();
    for t in transcripts {
        for &n in &t.visited {
            *freq.entry(n).or_insert(0) += 1;
        }
    }
    freq
}

/// Rank-quantile value recovery: node with rank `r` among `n` (known from
/// the index structure's in-order traversal) is estimated as the
/// `(r+1)/(n+1)` quantile of the auxiliary value distribution, supplied
/// as a sorted sample.
pub fn recover_values_by_rank(inorder_nodes: &[u32], aux_sorted: &[u64]) -> BTreeMap<u32, u64> {
    let n = inorder_nodes.len();
    let mut out = BTreeMap::new();
    if n == 0 || aux_sorted.is_empty() {
        return out;
    }
    for (rank, &node) in inorder_nodes.iter().enumerate() {
        let q = (rank as f64 + 1.0) / (n as f64 + 1.0);
        let idx = ((q * aux_sorted.len() as f64) as usize).min(aux_sorted.len() - 1);
        out.insert(node, aux_sorted[idx]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(stmt: &str, ts: i64) -> BinlogEvent {
        BinlogEvent {
            lsn: 0,
            txn: 0,
            timestamp: ts,
            statement: stmt.to_string(),
            ctx: None,
        }
    }

    #[test]
    fn groups_consecutive_repairs() {
        let events = vec![
            ev("INSERT INTO arx_ix VALUES (0, X'aa')", 1),
            ev("UPDATE arx_ix SET ct = X'01' WHERE node_id = 3", 2),
            ev("UPDATE arx_ix SET ct = X'02' WHERE node_id = 1", 2),
            ev("INSERT INTO other VALUES (9)", 3),
            ev("UPDATE arx_ix SET ct = X'03' WHERE node_id = 3", 4),
        ];
        let ts = reconstruct_transcripts(&events, "arx_ix");
        assert_eq!(ts.len(), 2);
        assert_eq!(ts[0].visited, vec![3, 1]);
        assert_eq!(ts[0].timestamp, 2);
        assert_eq!(ts[1].visited, vec![3]);
        let freq = visit_frequencies(&ts);
        assert_eq!(freq[&3], 2);
        assert_eq!(freq[&1], 1);
    }

    #[test]
    fn ignores_other_tables() {
        let events = vec![ev("UPDATE not_arx SET ct = X'01' WHERE node_id = 3", 1)];
        assert!(reconstruct_transcripts(&events, "arx_ix").is_empty());
    }

    #[test]
    fn rank_recovery_monotone() {
        let inorder = vec![5u32, 2, 9, 1];
        let aux: Vec<u64> = (0..1000).map(|i| i * 10).collect();
        let rec = recover_values_by_rank(&inorder, &aux);
        assert!(rec[&5] < rec[&2] && rec[&2] < rec[&9] && rec[&9] < rec[&1]);
    }

    #[test]
    fn end_to_end_against_real_arx() {
        use edb::arx::ArxRangeIndex;
        use edb_crypto::Key;
        use minidb::engine::{Db, DbConfig};
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        let mut config = DbConfig::default();
        config.redo_capacity = 1 << 20;
        config.undo_capacity = 1 << 20;
        let db = Db::open(config);
        let mut ix = ArxRangeIndex::create(&db, &Key([6u8; 32]), "arx_age", 3).unwrap();

        // Victim data: 256 uniform values.
        let mut rng = StdRng::seed_from_u64(21);
        let values: Vec<u64> = (0..256).map(|_| rng.gen_range(0..1_000_000)).collect();
        for (row, &v) in values.iter().enumerate() {
            ix.insert(v, row as u64).unwrap();
        }
        // Victim queries.
        let queries = [(100_000u64, 200_000u64), (500_000, 650_000), (0, 50_000)];
        for &(lo, hi) in &queries {
            ix.range(lo, hi).unwrap();
        }

        // ---- attacker side: persistent state only ----
        let disk = db.disk_image();
        let events =
            crate::forensics::binlog::parse_binlog(disk.file(minidb::wal::BINLOG_FILE).unwrap());
        let transcripts = reconstruct_transcripts(&events, "arx_age");
        assert_eq!(
            transcripts.len(),
            queries.len(),
            "one transcript per range query"
        );
        // Visit sets are non-trivial (a path, not the whole tree).
        for t in &transcripts {
            assert!(!t.visited.is_empty());
            assert!(t.visited.len() < values.len());
        }

        // Rank recovery with an auxiliary sample from the same
        // distribution (independent draws).
        let mut aux: Vec<u64> = (0..4096).map(|_| rng.gen_range(0..1_000_000)).collect();
        aux.sort_unstable();
        let recovered = recover_values_by_rank(&ix.oracle_inorder(), &aux);
        // Mean relative error well below random guessing (~0.33 expected
        // |error| for uniform guesses on uniform data).
        let mut err = 0.0;
        for (node, est) in &recovered {
            let truth = ix.oracle_value(*node) as f64;
            err += (truth - *est as f64).abs() / 1_000_000.0;
        }
        let mean_err = err / recovered.len() as f64;
        assert!(mean_err < 0.05, "mean relative error {mean_err}");
    }
}
