//! `forensic` — standalone snapshot analysis, the attacker's offline
//! toolbox: point it at a captured `EDBSNAP6` image and carve.
//!
//! ```text
//! forensic <image-file> <command>
//!
//! commands:
//!   summary    what the image contains
//!   writes     reconstruct data-modifying queries from the redo log
//!   undo       before-images from the undo log
//!   binlog     statements with timestamps (mysqlbinlog-alike)
//!   relay      statements from a replica's relay log(s) — survives a
//!              primary-side PURGE BINARY LOGS
//!   divergent  the failover quarantine sidecar from a deposed primary:
//!              every write it acked but never replicated
//!   strings    SQL statements carved from the heap dump
//!   tokens     hex tokens (trapdoors, ORE tokens, DET cts) in carved SQL
//!   digests    performance_schema digest histogram
//!   bufpool    recently-read index key ranges from the LRU dump
//!   metrics    telemetry registry: per-table access distribution etc.
//!   tracelog   query timeline from the slow log + flight recorder
//!   zonemap    per-page plaintext min/max ranges from heap synopses
//!   versions   per-row edit history carved from the MVCC version store
//!   xtrace [primary-image]
//!              distributed trace ids carved from this (replica) image;
//!              with a second image, join them against the primary's
//!              slow log and attribute statements to client sessions
//! ```
//!
//! Generate an image with `minidb::SystemImage::to_bytes` (see the
//! `quickstart` example) or programmatically in tests.

use minidb::snapshot::SystemImage;
use minidb::storage::DUMP_FILE;
use minidb::wal::{BINLOG_FILE, REDO_FILE, UNDO_FILE};
use snapshot_attack::forensics::{
    binlog, bufpool, divergent, memscan, relay, telemetry, tracelog, versions, wal, xtrace, zonemap,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (Some(path), Some(cmd)) = (args.first(), args.get(1)) else {
        eprintln!("usage: forensic <image-file> <summary|writes|undo|binlog|relay|divergent|strings|tokens|digests|bufpool|metrics|tracelog|zonemap|versions>");
        std::process::exit(2);
    };
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("forensic: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let image = match SystemImage::from_bytes(&bytes) {
        Ok(i) => i,
        Err(e) => {
            eprintln!("forensic: not a valid EDBSNAP6 image: {e}");
            std::process::exit(1);
        }
    };
    match cmd.as_str() {
        "summary" => summary(&image),
        "writes" => writes(&image),
        "undo" => undo(&image),
        "binlog" => binlog_cmd(&image),
        "relay" => relay_cmd(&image),
        "divergent" => divergent_cmd(&image),
        "strings" => strings(&image),
        "tokens" => tokens(&image),
        "digests" => digests(&image),
        "bufpool" => bufpool_cmd(&image),
        "metrics" => metrics_cmd(&image),
        "tracelog" => tracelog_cmd(&image),
        "zonemap" => zonemap_cmd(&image),
        "versions" => versions_cmd(&image),
        "xtrace" => xtrace_cmd(&image, args.get(2).map(String::as_str)),
        other => {
            eprintln!("forensic: unknown command {other}");
            std::process::exit(2);
        }
    }
}

fn summary(image: &SystemImage) {
    println!("captured_at: {}", image.captured_at);
    println!("disk files ({}):", image.disk.files.len());
    for (name, data) in &image.disk.files {
        println!("  {name:<24} {:>10} bytes", data.len());
    }
    let m = &image.memory;
    println!("memory:");
    println!("  heap dump            {:>10} bytes", m.heap.len());
    println!("  cached queries       {:>10}", m.cached_queries.len());
    println!("  cached pages (LRU)   {:>10}", m.cached_pages.len());
    println!("  statement history    {:>10}", m.statements_history.len());
    println!("  digest rows          {:>10}", m.digest_summary.len());
    println!("  processlist entries  {:>10}", m.processlist.len());
    println!("  adaptive-hash keys   {:>10}", m.adaptive_hash_keys.len());
    println!(
        "  telemetry            {:>10} counters, {} histograms",
        m.metrics.counters.len(),
        m.metrics.histograms.len()
    );
    println!("  query traces (ring)  {:>10}", m.query_traces.len());
    println!("  zone-map mirrors     {:>10}", m.zone_maps.len());
    println!(
        "  version chains       {:>10} rows, {} archived versions",
        m.version_chains.len(),
        m.version_chains
            .iter()
            .map(|c| c.versions.len())
            .sum::<usize>()
    );
}

fn zonemap_cmd(image: &SystemImage) {
    let pages = zonemap::recover(Some(&image.disk), Some(&image.memory));
    if pages.is_empty() {
        println!("no page synopses recovered (zone maps disabled?)");
        return;
    }
    for p in &pages {
        let src = match p.source {
            zonemap::ZoneMapSource::Disk => "disk",
            zonemap::ZoneMapSource::Memory => "mem",
            zonemap::ZoneMapSource::Both => "both",
        };
        let cols: Vec<String> = p
            .columns
            .iter()
            .map(|(c, min, max)| format!("col{c} [{min} .. {max}]"))
            .collect();
        println!(
            "{} page {:<6} [{src}] rows={:<5} {}",
            p.file,
            p.page_no,
            p.rows,
            cols.join("  ")
        );
    }
    let mut cols: Vec<u16> = pages
        .iter()
        .flat_map(|p| p.columns.iter().map(|c| c.0))
        .collect();
    cols.sort_unstable();
    cols.dedup();
    for c in cols {
        let f = zonemap::bracket_fraction(&pages, c, 1u128 << 32);
        eprintln!("col{c}: {:.4}% of the 32-bit space bracketed", f * 100.0);
    }
    eprintln!("{} pages recovered", pages.len());
}

fn versions_cmd(image: &SystemImage) {
    // Prefer the raw file carve (it sees tombstoned records the engine
    // already forgot); fall back to the memory image's chains.
    let mut carved = versions::carve_disk(&image.disk);
    if carved.is_empty() {
        carved = versions::from_memory(&image.memory);
    }
    if carved.is_empty() {
        println!("no version records recovered (vacuumed with scrub, or no updates)");
        return;
    }
    let state_name = |s: u8| match s {
        minidb::mvcc::STATE_PENDING => "pending",
        minidb::mvcc::STATE_COMMITTED => "committed",
        minidb::mvcc::STATE_ABORTED => "aborted",
        _ => "vacuumed",
    };
    for ((table, row_id), chain) in versions::chains(&carved) {
        println!("{table} row {row_id}: {} superseded versions", chain.len());
        for v in &chain {
            let op = if v.op == minidb::mvcc::OP_DELETE {
                "DELETE"
            } else {
                "UPDATE"
            };
            println!(
                "  xmin={:<6} xmax={:<6} [{}/{op}] {:?}",
                v.xmin,
                v.xmax,
                state_name(v.state),
                v.values
            );
        }
    }
    eprintln!("{} version records recovered", carved.len());
}

fn tracelog_cmd(image: &SystemImage) {
    let tl = tracelog::timeline(Some(&image.disk), Some(&image.memory));
    if tl.is_empty() {
        println!("no trace records in image (tracer disabled and nothing slow)");
        return;
    }
    for e in &tl {
        let src = match e.source {
            tracelog::TraceSource::SlowLog => "disk",
            tracelog::TraceSource::FlightRecorder => "mem",
            tracelog::TraceSource::Both => "both",
        };
        println!(
            "t={} [{src}] {:>8}us tables=[{}] {}",
            e.started,
            e.duration_us,
            e.tables.join(","),
            e.statement
        );
    }
    eprintln!("{} timeline entries", tl.len());
}

fn metrics_cmd(image: &SystemImage) {
    let ms = &image.memory.metrics;
    if ms.is_zero() && ms.counters.is_empty() {
        println!("no telemetry in image (registry disabled or scrubbed)");
        return;
    }
    println!(
        "statements observed: {}",
        telemetry::statements_observed(ms)
    );
    let dist = telemetry::table_access_distribution(ms);
    if !dist.is_empty() {
        println!("table access distribution (the victim's query targets):");
        for d in &dist {
            println!(
                "  {:<24} {:>8}  {:>5.1}%",
                d.table,
                d.count,
                d.share * 100.0
            );
        }
    }
    let mix = telemetry::statement_mix(ms);
    if !mix.is_empty() {
        println!("statement mix:");
        for (kind, n) in &mix {
            println!("  {kind:<24} {n:>8}");
        }
    }
    if telemetry::onion_was_peeled(ms) {
        println!("onion downgrade events present: a column was ratcheted to DET");
    }
}

fn xtrace_cmd(image: &SystemImage, primary_path: Option<&str>) {
    let carved = xtrace::carve_replica_trace_ids(&image.disk);
    if carved.is_empty() {
        println!("no trace ids in image (tracing off, sampled out, or id-hashed)");
        return;
    }
    for c in &carved {
        let src = match c.source {
            xtrace::XtraceSource::RelayLog => "relay",
            xtrace::XtraceSource::SlowLog => "slow",
        };
        println!(
            "t={} [{src:<5}] trace={:032x} {}",
            c.timestamp, c.trace_id, c.statement
        );
    }
    eprintln!("{} trace ids carved", carved.len());
    let Some(path) = primary_path else {
        eprintln!("(pass a primary image to attribute statements to sessions)");
        return;
    };
    let primary = match std::fs::read(path)
        .map_err(|e| e.to_string())
        .and_then(|b| SystemImage::from_bytes(&b).map_err(|e| e.to_string()))
    {
        Ok(i) => i,
        Err(e) => {
            eprintln!("forensic: cannot load primary image {path}: {e}");
            std::process::exit(1);
        }
    };
    let index = xtrace::primary_session_index(&primary.disk);
    let a = xtrace::attribute(&carved, &index);
    for hit in &a.attributed {
        println!(
            "session {:<4} trace={:032x} {}",
            hit.session_id, hit.trace_id, hit.primary_statement
        );
    }
    eprintln!(
        "attribution: {}/{} distinct trace ids ({:.1}%)",
        a.matched,
        a.carved,
        a.rate() * 100.0
    );
}

fn writes(image: &SystemImage) {
    let Some(raw) = image.disk.file(REDO_FILE) else {
        eprintln!("no redo log in image");
        return;
    };
    for w in wal::reconstruct_writes(raw) {
        match &w.row {
            Some(row) => println!(
                "lsn {:>8} txn {:>6} {:?} {:?}",
                w.lsn, w.txn, w.op, row.values
            ),
            None => println!("lsn {:>8} txn {:>6} {:?} (no image)", w.lsn, w.txn, w.op),
        }
    }
}

fn undo(image: &SystemImage) {
    let Some(raw) = image.disk.file(UNDO_FILE) else {
        eprintln!("no undo log in image");
        return;
    };
    for b in wal::reconstruct_before_images(raw) {
        match &b.before {
            Some(row) => println!(
                "lsn {:>8} txn {:>6} {:?} row {} was {:?}",
                b.lsn, b.txn, b.op, b.row_id, row.values
            ),
            None => println!(
                "lsn {:>8} txn {:>6} {:?} row {}",
                b.lsn, b.txn, b.op, b.row_id
            ),
        }
    }
}

fn binlog_cmd(image: &SystemImage) {
    let Some(raw) = image.disk.file(BINLOG_FILE) else {
        eprintln!("no binlog in image");
        return;
    };
    for e in binlog::parse_binlog(raw) {
        println!(
            "t={} lsn={} txn={} {}",
            e.timestamp, e.lsn, e.txn, e.statement
        );
    }
}

fn relay_cmd(image: &SystemImage) {
    let files = relay::relay_files(&image.disk);
    if files.is_empty() {
        eprintln!("no relay logs in image (not a replica, or logs rotated away)");
        return;
    }
    eprintln!("relay files: {}", files.join(", "));
    for e in relay::carve_relay(&image.disk) {
        println!(
            "t={} lsn={} txn={} {}",
            e.timestamp, e.lsn, e.txn, e.statement
        );
    }
}

fn divergent_cmd(image: &SystemImage) {
    if divergent::divergent_file(&image.disk).is_none() {
        eprintln!("no divergent sidecar in image (node was never fenced)");
        return;
    }
    let (total, sealed) = divergent::frame_census(&image.disk);
    eprintln!("{total} quarantined frames ({sealed} sealed)");
    for e in divergent::carve_divergent(&image.disk) {
        println!(
            "t={} lsn={} txn={} {}",
            e.timestamp, e.lsn, e.txn, e.statement
        );
    }
}

fn strings(image: &SystemImage) {
    for s in memscan::carve_sql(&image.memory.heap) {
        println!("heap@{:<8} {}", s.offset, s.text);
    }
}

fn tokens(image: &SystemImage) {
    let mut seen = std::collections::BTreeSet::new();
    // Tokens hide in heap SQL, history texts, cached queries, and the
    // binlog statements alike.
    let mut texts: Vec<String> = memscan::carve_sql(&image.memory.heap)
        .into_iter()
        .map(|s| s.text)
        .collect();
    texts.extend(image.memory.cached_queries.iter().cloned());
    texts.extend(
        image
            .memory
            .statements_history
            .iter()
            .map(|e| e.sql_text.clone()),
    );
    if let Some(raw) = image.disk.file(BINLOG_FILE) {
        texts.extend(binlog::parse_binlog(raw).into_iter().map(|e| e.statement));
    }
    for t in &texts {
        for tok in binlog::extract_hex_literals(t) {
            if seen.insert(tok.clone()) {
                let hex: String = tok.iter().take(24).map(|b| format!("{b:02x}")).collect();
                println!(
                    "{:>5} bytes  {hex}{}",
                    tok.len(),
                    if tok.len() > 24 { "…" } else { "" }
                );
            }
        }
    }
    eprintln!("{} distinct tokens", seen.len());
}

fn digests(image: &SystemImage) {
    let mut rows = image.memory.digest_summary.clone();
    rows.sort_by_key(|d| std::cmp::Reverse(d.count_star));
    for d in rows {
        println!(
            "{:>8}x  rows_examined={:<8} {}",
            d.count_star, d.sum_rows_examined, d.digest
        );
    }
}

fn bufpool_cmd(image: &SystemImage) {
    let Some(dump_raw) = image.disk.file(DUMP_FILE) else {
        eprintln!("no buffer-pool dump in image (did the victim shut down cleanly?)");
        return;
    };
    let dump = bufpool::parse_dump(dump_raw);
    // Analyse every index file present.
    for (name, data) in &image.disk.files {
        if !name.starts_with("index_") {
            continue;
        }
        let ranges = bufpool::recently_read_ranges(&dump, name, data);
        if ranges.is_empty() {
            continue;
        }
        println!("{name}:");
        for (page, min, max) in ranges.iter().take(10) {
            println!("  leaf {page:<6} keys [{min} .. {max}]");
        }
    }
}
