//! The threat model: four concrete attack vectors and what each yields
//! (the paper's Figure 1).
//!
//! System state is split along two axes — DB vs OS, persistent vs
//! volatile — and each attack vector reveals a characteristic subset:
//!
//! | Vector                | pers. DB | vol. DB | pers. OS | vol. OS |
//! |-----------------------|----------|---------|----------|---------|
//! | Disk theft            | ✓        |         | ✓        |         |
//! | SQL injection         | ✓        | ✓       |          |         |
//! | VM snapshot leak      | ✓        | ✓       | ✓        | ✓       |
//! | Full-system compromise| ✓        | ✓       | ✓        | ✓       |
//!
//! (§2: disk theft "yields the persistent OS and DB state, but not any
//! volatile state"; SQL injection yields the persistent and volatile
//! DB state"; a full-state VM snapshot and a full compromise yield all
//! four.)
//!
//! **Replication multiplies the matrix.** With statement-shipping
//! replication every row of Figure 1 applies *per host*: a 1-primary /
//! N-replica deployment offers N+1 independent snapshot surfaces, and
//! each replica's disk adds a relay log that duplicates the primary's
//! binlog — outliving a primary-side `PURGE BINARY LOGS`. See
//! [`capture_replicated`] and `forensics::relay`.

use minidb::engine::{Connection, Db};
use minidb::snapshot::{DiskImage, MemoryImage};

/// The four concrete attacks of §2.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AttackVector {
    /// Theft of the persistent storage (no FDE).
    DiskTheft,
    /// SQL injection escalated to code execution in the DB process.
    SqlInjection,
    /// A leaked full-state VM image (memory + disk).
    VmSnapshotLeak,
    /// Rooting the host ("smash-and-grab" single observation).
    FullCompromise,
}

impl AttackVector {
    /// All four vectors, in the paper's order.
    pub const ALL: [AttackVector; 4] = [
        AttackVector::DiskTheft,
        AttackVector::SqlInjection,
        AttackVector::VmSnapshotLeak,
        AttackVector::FullCompromise,
    ];

    /// Human-readable name as used in Figure 1.
    pub fn name(&self) -> &'static str {
        match self {
            AttackVector::DiskTheft => "Disk theft",
            AttackVector::SqlInjection => "SQL injection",
            AttackVector::VmSnapshotLeak => "VM snapshot leak",
            AttackVector::FullCompromise => "Full-system compromise",
        }
    }
}

/// Persistent OS-level state about the DBMS host: filesystem metadata and
/// a boot journal. Coarse, but enough to betray file sizes and activity
/// windows even when file *contents* are encrypted.
#[derive(Clone, Debug)]
pub struct OsPersistent {
    /// `(file name, size in bytes)` for every file on the data volume.
    pub file_metadata: Vec<(String, usize)>,
}

/// Volatile OS-level state: the page cache, which holds clean copies of
/// recently touched file bytes independent of the DB process.
#[derive(Clone, Debug)]
pub struct OsVolatile {
    /// Names of files with pages resident in the OS page cache. (MiniDB
    /// models residency coarsely: every disk file that exists is
    /// cacheable; recency lives in the DB-level buffer pool.)
    pub page_cache_files: Vec<String>,
}

/// What one attack yields. Fields are `None` when the vector does not
/// reveal that state category.
pub struct Observation {
    /// Which attack produced this observation.
    pub vector: AttackVector,
    /// Persistent DB state: every file on disk.
    pub persistent_db: Option<DiskImage>,
    /// Volatile DB state: the process memory image.
    pub volatile_db: Option<MemoryImage>,
    /// Persistent OS state.
    pub persistent_os: Option<OsPersistent>,
    /// Volatile OS state.
    pub volatile_os: Option<OsVolatile>,
    /// Live SQL access (SQL injection only): the attacker can run
    /// statements as the application user, reaching diagnostic tables.
    pub sql: Option<Connection>,
}

impl Observation {
    /// Figure 1 row: which of the four state categories are visible.
    pub fn visibility(&self) -> [bool; 4] {
        [
            self.persistent_db.is_some(),
            self.volatile_db.is_some(),
            self.persistent_os.is_some(),
            self.volatile_os.is_some(),
        ]
    }
}

/// Performs the attack against a running MiniDB instance, returning
/// exactly the state Figure 1 assigns to the vector.
pub fn capture(db: &Db, vector: AttackVector) -> Observation {
    let disk = db.disk_image();
    let os_persistent = OsPersistent {
        file_metadata: disk
            .files
            .iter()
            .map(|(n, d)| (n.clone(), d.len()))
            .collect(),
    };
    let os_volatile = OsVolatile {
        page_cache_files: disk.file_names().iter().map(|s| s.to_string()).collect(),
    };
    match vector {
        AttackVector::DiskTheft => Observation {
            vector,
            persistent_db: Some(disk),
            volatile_db: None,
            persistent_os: Some(os_persistent),
            volatile_os: None,
            sql: None,
        },
        AttackVector::SqlInjection => Observation {
            vector,
            persistent_db: Some(disk),
            volatile_db: Some(db.memory_image()),
            persistent_os: None,
            volatile_os: None,
            sql: Some(db.connect("webapp")),
        },
        AttackVector::VmSnapshotLeak | AttackVector::FullCompromise => Observation {
            vector,
            persistent_db: Some(disk),
            volatile_db: Some(db.memory_image()),
            persistent_os: Some(os_persistent),
            volatile_os: Some(os_volatile),
            sql: (vector == AttackVector::FullCompromise).then(|| db.connect("root")),
        },
    }
}

/// Which host in a replicated topology a snapshot was taken from.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CaptureSite {
    /// The write primary.
    Primary,
    /// Read replica by index (0-based).
    Replica(usize),
}

impl CaptureSite {
    /// Human-readable site label ("primary", "replica-0"...).
    pub fn name(&self) -> String {
        match self {
            CaptureSite::Primary => "primary".to_string(),
            CaptureSite::Replica(i) => format!("replica-{i}"),
        }
    }
}

/// One observation from one host of a replicated deployment.
pub struct ReplicatedObservation {
    /// Which host was snapshotted.
    pub site: CaptureSite,
    /// What the attack yielded there.
    pub observation: Observation,
}

/// Performs the same attack against every host of a replicated
/// topology. The threat model takes plain [`Db`] handles — replication
/// wiring lives in `mdb-repl`; a compromised host is a compromised host.
pub fn capture_replicated(
    primary: &Db,
    replicas: &[&Db],
    vector: AttackVector,
) -> Vec<ReplicatedObservation> {
    let mut out = Vec::with_capacity(1 + replicas.len());
    out.push(ReplicatedObservation {
        site: CaptureSite::Primary,
        observation: capture(primary, vector),
    });
    for (i, r) in replicas.iter().enumerate() {
        out.push(ReplicatedObservation {
            site: CaptureSite::Replica(i),
            observation: capture(r, vector),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use minidb::engine::DbConfig;

    fn small_db() -> Db {
        let mut config = DbConfig::default();
        config.redo_capacity = 1 << 16;
        config.undo_capacity = 1 << 16;
        let db = Db::open(config);
        let conn = db.connect("app");
        conn.execute("CREATE TABLE t (id INT PRIMARY KEY)").unwrap();
        conn.execute("INSERT INTO t VALUES (1)").unwrap();
        db
    }

    #[test]
    fn figure1_matrix() {
        let db = small_db();
        let expect = [
            (AttackVector::DiskTheft, [true, false, true, false]),
            (AttackVector::SqlInjection, [true, true, false, false]),
            (AttackVector::VmSnapshotLeak, [true, true, true, true]),
            (AttackVector::FullCompromise, [true, true, true, true]),
        ];
        for (vector, want) in expect {
            let obs = capture(&db, vector);
            assert_eq!(obs.visibility(), want, "{}", vector.name());
        }
    }

    #[test]
    fn disk_theft_has_no_live_sql() {
        let db = small_db();
        assert!(capture(&db, AttackVector::DiskTheft).sql.is_none());
        assert!(capture(&db, AttackVector::SqlInjection).sql.is_some());
    }

    #[test]
    fn sql_injection_reaches_diagnostic_tables() {
        let db = small_db();
        let obs = capture(&db, AttackVector::SqlInjection);
        let conn = obs.sql.unwrap();
        let r = conn
            .execute("SELECT * FROM information_schema.processlist")
            .unwrap();
        assert!(!r.rows.is_empty());
    }

    #[test]
    fn telemetry_is_visible_to_injection_and_vm_snapshot() {
        let db = small_db();
        // Live SQL: the metrics registry is one injected SELECT away.
        let obs = capture(&db, AttackVector::SqlInjection);
        let conn = obs.sql.unwrap();
        let r = conn
            .execute("SELECT metric, kind, value FROM information_schema.metrics")
            .unwrap();
        assert!(r
            .rows
            .iter()
            .any(|row| row[0].to_string() == "sql.table_access.t"));
        // VM snapshot: the same state arrives pre-aggregated in the
        // memory image, no SQL needed.
        db.connect("app").execute("SELECT * FROM t").unwrap();
        let obs = capture(&db, AttackVector::VmSnapshotLeak);
        let metrics = &obs.volatile_db.unwrap().metrics;
        let dist = crate::forensics::telemetry::table_access_distribution(metrics);
        assert!(dist.iter().any(|d| d.table == "t" && d.count >= 2));
    }

    #[test]
    fn replicated_capture_covers_every_host() {
        let primary = small_db();
        let r0 = small_db();
        let r1 = small_db();
        let obs = capture_replicated(&primary, &[&r0, &r1], AttackVector::DiskTheft);
        assert_eq!(obs.len(), 3);
        assert_eq!(obs[0].site, CaptureSite::Primary);
        assert_eq!(obs[2].site, CaptureSite::Replica(1));
        assert_eq!(obs[2].site.name(), "replica-1");
        for o in &obs {
            assert_eq!(o.observation.visibility(), [true, false, true, false]);
        }
    }

    #[test]
    fn os_metadata_matches_disk() {
        let db = small_db();
        let obs = capture(&db, AttackVector::DiskTheft);
        let os = obs.persistent_os.unwrap();
        let disk = obs.persistent_db.unwrap();
        assert_eq!(os.file_metadata.len(), disk.files.len());
        for (name, size) in &os.file_metadata {
            assert_eq!(disk.file(name).unwrap().len(), *size);
        }
    }
}
