//! Reconstructing data-modifying queries from the circular undo/redo logs
//! (§3 "Inferring writes", after Frühwirt et al.).
//!
//! The attacker holds the raw bytes of `ib_logfile0` / `undo_001` from a
//! disk image and carves framed records by magic scan. Redo records yield
//! full row *after-images* (insert/update content); undo records yield
//! *before-images* (what updates and deletes destroyed). Together they
//! reconstruct the recent write history — bounded only by the circular
//! capacity, which is the paper's "16 days" arithmetic.

use minidb::row::Row;
use minidb::wal::{carve_frames, OpKind, RedoRecord, UndoRecord};

/// One write reconstructed from the redo log.
#[derive(Clone, Debug)]
pub struct ReconstructedWrite {
    /// Log sequence number.
    pub lsn: u64,
    /// Transaction id.
    pub txn: u64,
    /// Operation kind.
    pub op: OpKind,
    /// Table id.
    pub table_id: u32,
    /// Decoded row after-image (inserts and in-place updates).
    pub row: Option<Row>,
}

/// One before-image reconstructed from the undo log.
#[derive(Clone, Debug)]
pub struct ReconstructedBefore {
    /// Log sequence number.
    pub lsn: u64,
    /// Transaction id.
    pub txn: u64,
    /// Operation the record belongs to.
    pub op: OpKind,
    /// Table id.
    pub table_id: u32,
    /// Row id.
    pub row_id: u64,
    /// Decoded row before-image (updates and deletes).
    pub before: Option<Row>,
}

/// Carves and decodes every intact redo record from raw log bytes.
pub fn reconstruct_writes(raw_redo: &[u8]) -> Vec<ReconstructedWrite> {
    let mut out: Vec<ReconstructedWrite> = carve_frames(raw_redo)
        .into_iter()
        .filter_map(|(_, payload)| RedoRecord::decode(payload).ok())
        .filter(|r| r.op != OpKind::Commit)
        .map(|r| ReconstructedWrite {
            lsn: r.lsn,
            txn: r.txn,
            op: r.op,
            table_id: r.table_id,
            row: if r.after.is_empty() {
                None
            } else {
                Row::decode(&r.after).ok()
            },
        })
        .collect();
    out.sort_by_key(|r| r.lsn);
    out
}

/// Carves and decodes every intact undo record from raw log bytes.
pub fn reconstruct_before_images(raw_undo: &[u8]) -> Vec<ReconstructedBefore> {
    let mut out: Vec<ReconstructedBefore> = carve_frames(raw_undo)
        .into_iter()
        .filter_map(|(_, payload)| UndoRecord::decode(payload).ok())
        .map(|r| ReconstructedBefore {
            lsn: r.lsn,
            txn: r.txn,
            op: r.op,
            table_id: r.table_id,
            row_id: r.row_id,
            before: if r.before.is_empty() {
                None
            } else {
                Row::decode(&r.before).ok()
            },
        })
        .collect();
    out.sort_by_key(|r| r.lsn);
    out
}

/// Statistics of a carved circular log: how much history it retains.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LogHistoryStats {
    /// Records currently recoverable.
    pub records: usize,
    /// Mean framed record size in bytes.
    pub mean_record_bytes: f64,
    /// Capacity of the log file in bytes.
    pub capacity_bytes: usize,
    /// Records the log can hold before wrapping.
    pub records_at_capacity: f64,
}

impl LogHistoryStats {
    /// §3 arithmetic: days of history at `writes_per_second`.
    pub fn days_of_history(&self, writes_per_second: f64) -> f64 {
        self.records_at_capacity / writes_per_second / 86_400.0
    }
}

/// Measures a carved log's retention characteristics.
pub fn history_stats(raw_log: &[u8], capacity_bytes: usize) -> LogHistoryStats {
    let frames = carve_frames(raw_log);
    let records = frames.len();
    let total: usize = frames.iter().map(|(_, p)| p.len() + 8).sum();
    let mean = if records == 0 {
        0.0
    } else {
        total as f64 / records as f64
    };
    LogHistoryStats {
        records,
        mean_record_bytes: mean,
        capacity_bytes,
        records_at_capacity: if mean == 0.0 {
            0.0
        } else {
            capacity_bytes as f64 / mean
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minidb::engine::{Db, DbConfig};
    use minidb::value::Value;
    use minidb::wal::{REDO_FILE, UNDO_FILE};

    fn small_db() -> Db {
        let mut config = DbConfig::default();
        config.redo_capacity = 1 << 18;
        config.undo_capacity = 1 << 18;
        Db::open(config)
    }

    #[test]
    fn reconstructs_insert_update_delete() {
        let db = small_db();
        let conn = db.connect("app");
        conn.execute("CREATE TABLE p (id INT PRIMARY KEY, v TEXT)")
            .unwrap();
        conn.execute("INSERT INTO p VALUES (1, 'original-secret')")
            .unwrap();
        conn.execute("UPDATE p SET v = 'replaced-value!' WHERE id = 1")
            .unwrap();
        conn.execute("DELETE FROM p WHERE id = 1").unwrap();

        let disk = db.disk_image();
        let writes = reconstruct_writes(disk.file(REDO_FILE).unwrap());
        let kinds: Vec<OpKind> = writes.iter().map(|w| w.op).collect();
        assert_eq!(kinds, vec![OpKind::Insert, OpKind::Update, OpKind::Delete]);
        // The insert's full content is recoverable.
        let row = writes[0].row.as_ref().unwrap();
        assert_eq!(row.values[1], Value::Text("original-secret".into()));
        // The update's after-image too.
        let row = writes[1].row.as_ref().unwrap();
        assert_eq!(row.values[1], Value::Text("replaced-value!".into()));

        // Undo log: before-images of the update and delete.
        let befores = reconstruct_before_images(disk.file(UNDO_FILE).unwrap());
        let update_before = befores.iter().find(|b| b.op == OpKind::Update).unwrap();
        assert_eq!(
            update_before.before.as_ref().unwrap().values[1],
            Value::Text("original-secret".into())
        );
        let delete_before = befores.iter().find(|b| b.op == OpKind::Delete).unwrap();
        assert_eq!(
            delete_before.before.as_ref().unwrap().values[1],
            Value::Text("replaced-value!".into())
        );
    }

    #[test]
    fn circular_wrap_bounds_history() {
        let mut config = DbConfig::default();
        config.redo_capacity = 8 * 1024; // Tiny: forces wrap quickly.
        config.undo_capacity = 8 * 1024;
        let db = Db::open(config);
        let conn = db.connect("app");
        conn.execute("CREATE TABLE p (id INT PRIMARY KEY, v TEXT)")
            .unwrap();
        for i in 0..500 {
            conn.execute(&format!(
                "INSERT INTO p VALUES ({i}, 'xxxxxxxxxxxxxxxxxxxx')"
            ))
            .unwrap();
        }
        let disk = db.disk_image();
        let writes = reconstruct_writes(disk.file(REDO_FILE).unwrap());
        assert!(writes.len() < 500, "wrap must have discarded old records");
        assert!(!writes.is_empty());
        // The newest insert survives; the oldest does not.
        let ids: Vec<i64> = writes
            .iter()
            .filter_map(|w| w.row.as_ref())
            .map(|r| match r.values[0] {
                Value::Int(i) => i,
                _ => -1,
            })
            .collect();
        assert!(ids.contains(&499));
        assert!(!ids.contains(&0));
    }

    #[test]
    fn history_stats_days_arithmetic() {
        let db = small_db();
        let conn = db.connect("app");
        conn.execute("CREATE TABLE p (id INT PRIMARY KEY, v TEXT)")
            .unwrap();
        for i in 0..100 {
            // 20-byte payload, the paper's example write.
            conn.execute(&format!("INSERT INTO p VALUES ({i}, '{:020}')", i))
                .unwrap();
        }
        let disk = db.disk_image();
        let stats = history_stats(disk.file(UNDO_FILE).unwrap(), 50_000_000);
        assert!(stats.records >= 100);
        assert!(stats.mean_record_bytes > 0.0);
        // With the paper's parameters (50 MB, 1 write/s), undo history is
        // on the order of two weeks.
        let days = stats.days_of_history(1.0);
        assert!(days > 5.0 && days < 40.0, "days = {days}");
    }

    #[test]
    fn empty_log_is_safe() {
        let stats = history_stats(&[], 1000);
        assert_eq!(stats.records, 0);
        assert_eq!(stats.days_of_history(1.0), 0.0);
        assert!(reconstruct_writes(&[]).is_empty());
    }
}
