//! Trace-log forensics: reconstructing a per-statement query timeline
//! from the engine's flight recorder.
//!
//! The query tracer (`mdb-trace`) is the most literal instance of the
//! paper's thesis this repo models: an *observability* feature whose
//! entire purpose is to remember what queries ran, when, and what they
//! touched. Two artifacts survive into a snapshot:
//!
//! * **slow.log** — a disk file of versioned, checksummed trace records
//!   ([`mdb_trace::record`]). Disk theft alone recovers every statement
//!   that ever crossed the slow threshold, text and timestamps intact.
//! * **the flight-recorder ring** — the last N statement traces in
//!   process memory, captured by a [`MemoryImage`]. It survives
//!   `Db::flush_diagnostics` (the perf-schema wipe E12 models) unless
//!   the operator opted into `telemetry_scrub_on_flush`.
//!
//! [`timeline`] merges both into one deduplicated, time-ordered query
//! history — experiment e15's reconstruction step.

use mdb_trace::StatementTrace;
use minidb::engine::SLOW_LOG_FILE;
use minidb::snapshot::{DiskImage, MemoryImage};

/// Where a timeline entry was recovered from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceSource {
    /// Carved from the on-disk slow log only.
    SlowLog,
    /// Read from the in-memory flight-recorder ring only.
    FlightRecorder,
    /// Present in both artifacts.
    Both,
}

/// One reconstructed statement execution.
#[derive(Clone, Debug, PartialEq)]
pub struct TimelineEntry {
    /// Statement start, simulated UNIX seconds.
    pub started: i64,
    /// Full statement text, literals included.
    pub statement: String,
    /// Normalized digest text.
    pub digest: String,
    /// Tables the statement touched (empty for minimal records).
    pub tables: Vec<String>,
    /// Modeled execution time in microseconds.
    pub duration_us: u64,
    /// Which artifact(s) the entry was recovered from.
    pub source: TraceSource,
}

/// Carves every intact trace record out of the on-disk slow log.
/// Returns records in file order (which is append order).
pub fn carve_slow_log(disk: &DiskImage) -> Vec<StatementTrace> {
    disk.file(SLOW_LOG_FILE)
        .map(|raw| {
            mdb_trace::record::carve(raw)
                .into_iter()
                .map(|c| c.trace)
                .collect()
        })
        .unwrap_or_default()
}

/// The flight-recorder ring captured in a memory image, oldest first.
pub fn flight_recorder(memory: &MemoryImage) -> &[StatementTrace] {
    &memory.query_traces
}

/// Reconstructs a deduplicated, time-ordered query timeline from
/// whichever artifacts the threat model yields. Entries are keyed by
/// (start time, statement text); when a statement appears in both the
/// slow log and the ring, the richer record (the one that kept its
/// table list) wins and the source is [`TraceSource::Both`].
pub fn timeline(disk: Option<&DiskImage>, memory: Option<&MemoryImage>) -> Vec<TimelineEntry> {
    let mut out: Vec<TimelineEntry> = Vec::new();
    let mut merge = |t: &StatementTrace, source: TraceSource| {
        if let Some(existing) = out
            .iter_mut()
            .find(|e| e.started == t.started_unix && e.statement == t.statement)
        {
            if existing.source != source {
                existing.source = TraceSource::Both;
            }
            if existing.tables.is_empty() && !t.tables.is_empty() {
                existing.tables = t.tables.clone();
            }
            return;
        }
        out.push(TimelineEntry {
            started: t.started_unix,
            statement: t.statement.clone(),
            digest: t.digest.clone(),
            tables: t.tables.clone(),
            duration_us: t.total_us,
            source,
        });
    };
    if let Some(d) = disk {
        for t in carve_slow_log(d) {
            merge(&t, TraceSource::SlowLog);
        }
    }
    if let Some(m) = memory {
        for t in flight_recorder(m) {
            merge(t, TraceSource::FlightRecorder);
        }
    }
    out.sort_by(|a, b| {
        a.started
            .cmp(&b.started)
            .then_with(|| a.statement.cmp(&b.statement))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use minidb::engine::{Db, DbConfig};

    fn victim() -> Db {
        let mut config = DbConfig::default();
        config.slow_query_threshold_us = 100; // Everything with rows is slow.
        let db = Db::open(config);
        let conn = db.connect("app");
        conn.execute("CREATE TABLE patients (id INT PRIMARY KEY, dx TEXT)")
            .unwrap();
        conn.execute("INSERT INTO patients VALUES (1, 'flu'), (2, 'hiv')")
            .unwrap();
        conn.execute("SELECT * FROM patients WHERE dx = 'hiv'")
            .unwrap();
        db
    }

    #[test]
    fn slow_log_carves_statement_texts() {
        let db = victim();
        let carved = carve_slow_log(&db.disk_image());
        assert!(
            carved.iter().any(|t| t.statement.contains("dx = 'hiv'")),
            "{carved:?}"
        );
        let hit = carved
            .iter()
            .find(|t| t.statement.contains("dx = 'hiv'"))
            .unwrap();
        assert_eq!(hit.tables, vec!["patients".to_string()]);
        assert!(hit.total_us > 0);
    }

    #[test]
    fn timeline_merges_disk_and_memory_and_dedups() {
        let db = victim();
        let sys = db.system_image();
        // The select is slow (on disk) AND still in the ring: one entry.
        let tl = timeline(Some(&sys.disk), Some(&sys.memory));
        let selects: Vec<&TimelineEntry> = tl
            .iter()
            .filter(|e| e.statement.contains("dx = 'hiv'"))
            .collect();
        assert_eq!(selects.len(), 1);
        assert_eq!(selects[0].source, TraceSource::Both);
        assert_eq!(selects[0].tables, vec!["patients".to_string()]);
        // Ordered by start time.
        assert!(tl.windows(2).all(|w| w[0].started <= w[1].started));
    }

    #[test]
    fn timeline_from_memory_survives_diagnostics_flush() {
        let db = victim();
        db.flush_diagnostics(); // Wipes perf schema; ring survives.
        let mem = db.memory_image();
        assert!(mem.statements_history.is_empty());
        let tl = timeline(None, Some(&mem));
        assert!(tl.iter().any(|e| e.statement.contains("dx = 'hiv'")));
        assert!(tl.iter().all(|e| e.source == TraceSource::FlightRecorder));
    }
}
