//! Binlog forensics (§3): every data-modifying statement, verbatim, with
//! its commit timestamp — the attacker's `mysqlbinlog`.

use minidb::wal::{carve_frames, BinlogEvent};

/// Parses every intact event from raw binlog bytes, in file order.
pub fn parse_binlog(raw: &[u8]) -> Vec<BinlogEvent> {
    carve_frames(raw)
        .into_iter()
        .filter_map(|(_, p)| BinlogEvent::decode(p).ok())
        .collect()
}

/// A coarse classification of a recovered statement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StatementKind {
    /// `INSERT …`
    Insert,
    /// `UPDATE …`
    Update,
    /// `DELETE …`
    Delete,
    /// Anything else.
    Other,
}

/// Classifies a statement by its leading keyword.
pub fn classify(statement: &str) -> StatementKind {
    let s = statement.trim_start();
    if s.len() >= 6 {
        match s[..6].to_ascii_uppercase().as_str() {
            "INSERT" => return StatementKind::Insert,
            "UPDATE" => return StatementKind::Update,
            "DELETE" => return StatementKind::Delete,
            _ => {}
        }
    }
    StatementKind::Other
}

/// Extracts hex literals (`X'…'`) from a statement — how an attacker
/// pulls ciphertexts and *query tokens* out of recovered SQL text.
pub fn extract_hex_literals(statement: &str) -> Vec<Vec<u8>> {
    let bytes = statement.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i + 2 < bytes.len() {
        if (bytes[i] == b'X' || bytes[i] == b'x') && bytes[i + 1] == b'\'' {
            if let Some(end) = statement[i + 2..].find('\'') {
                let hex = &statement[i + 2..i + 2 + end];
                if hex.len().is_multiple_of(2) {
                    if let Ok(v) = decode_hex(hex) {
                        out.push(v);
                    }
                }
                i += 2 + end + 1;
                continue;
            }
        }
        i += 1;
    }
    out
}

fn decode_hex(s: &str) -> Result<Vec<u8>, ()> {
    let b = s.as_bytes();
    let mut out = Vec::with_capacity(b.len() / 2);
    for pair in b.chunks_exact(2) {
        let hi = hex_val(pair[0])?;
        let lo = hex_val(pair[1])?;
        out.push(hi << 4 | lo);
    }
    Ok(out)
}

fn hex_val(c: u8) -> Result<u8, ()> {
    match c {
        b'0'..=b'9' => Ok(c - b'0'),
        b'a'..=b'f' => Ok(c - b'a' + 10),
        b'A'..=b'F' => Ok(c - b'A' + 10),
        _ => Err(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minidb::engine::{Db, DbConfig};
    use minidb::wal::BINLOG_FILE;

    #[test]
    fn binlog_yields_statements_and_timestamps() {
        let mut config = DbConfig::default();
        config.redo_capacity = 1 << 16;
        config.undo_capacity = 1 << 16;
        let db = Db::open(config);
        let conn = db.connect("app");
        conn.execute("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
            .unwrap();
        conn.execute("INSERT INTO t VALUES (1, 'a')").unwrap();
        db.advance_time(3600);
        conn.execute("UPDATE t SET v = 'b' WHERE id = 1").unwrap();

        let disk = db.disk_image();
        let events = parse_binlog(disk.file(BINLOG_FILE).unwrap());
        // DDL is binlogged too (implicit commit), so CREATE rides along.
        assert_eq!(events.len(), 3);
        assert_eq!(classify(&events[0].statement), StatementKind::Other);
        assert_eq!(classify(&events[1].statement), StatementKind::Insert);
        assert_eq!(classify(&events[2].statement), StatementKind::Update);
        assert!(
            events[2].timestamp - events[1].timestamp >= 3600,
            "timestamps reflect the hour gap"
        );
        assert!(events[1]
            .statement
            .contains("INSERT INTO t VALUES (1, 'a')"));
    }

    #[test]
    fn classify_kinds() {
        assert_eq!(classify("  insert into x"), StatementKind::Insert);
        assert_eq!(classify("DELETE FROM t"), StatementKind::Delete);
        assert_eq!(classify("SELECT 1"), StatementKind::Other);
        assert_eq!(classify(""), StatementKind::Other);
    }

    #[test]
    fn hex_literal_extraction() {
        let lits = extract_hex_literals("UPDATE t SET ct = X'0aFF' WHERE id = x'00'");
        assert_eq!(lits, vec![vec![0x0A, 0xFF], vec![0x00]]);
        assert!(extract_hex_literals("no literals here").is_empty());
        assert!(extract_hex_literals("X'zz'").is_empty());
        assert!(extract_hex_literals("X'abc").is_empty(), "unterminated");
    }
}
