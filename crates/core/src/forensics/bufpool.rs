//! Buffer-pool dump forensics (§3 "Inferring reads").
//!
//! MySQL persists the buffer pool's page list in LRU order so restarts
//! skip the cache warm-up. The attacker parses this file from a disk
//! image, reconstructs the B+ tree from the (also on-disk) index file,
//! and reads off *which key ranges recent `SELECT`s traversed* — read
//! queries leaking from persistent state alone.

use minidb::storage::PAGE_SIZE;
use minidb::value::Value;

/// One parsed dump line: a page reference in LRU order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DumpEntry {
    /// Tablespace file.
    pub file: String,
    /// Page number.
    pub page_no: u32,
}

/// Parses the `ib_buffer_pool` dump (most-recently-used first).
pub fn parse_dump(raw: &[u8]) -> Vec<DumpEntry> {
    let Ok(text) = std::str::from_utf8(raw) else {
        return Vec::new();
    };
    text.lines()
        .filter_map(|line| {
            let (file, page) = line.rsplit_once(' ')?;
            Some(DumpEntry {
                file: file.to_string(),
                page_no: page.parse().ok()?,
            })
        })
        .collect()
}

/// A reconstructed B+ tree node, as carved from an index file.
#[derive(Clone, Debug)]
pub struct CarvedNode {
    /// Page number within the index file.
    pub page_no: u32,
    /// Whether this is a leaf.
    pub is_leaf: bool,
    /// Keys present on the page (routing keys for internal nodes, entry
    /// keys for leaves).
    pub keys: Vec<Value>,
}

impl CarvedNode {
    /// Smallest key on the page.
    pub fn min_key(&self) -> Option<&Value> {
        self.keys.first()
    }

    /// Largest key on the page.
    pub fn max_key(&self) -> Option<&Value> {
        self.keys.last()
    }
}

/// Carves every B+ tree node out of a raw index file. Uses only the
/// storage engine's public page format (the forensic analogue of InnoDB
/// page carving).
pub fn carve_index_file(raw: &[u8]) -> Vec<CarvedNode> {
    let mut out = Vec::new();
    for (page_no, page) in raw.chunks(PAGE_SIZE).enumerate() {
        if page.len() < 16 {
            continue;
        }
        // Node layout: [12-byte page header][u16 node_len][node bytes].
        let node_len = u16::from_le_bytes([page[12], page[13]]) as usize;
        let Some(node) = page.get(14..14 + node_len) else {
            continue;
        };
        if let Some(parsed) = parse_node(node) {
            out.push(CarvedNode {
                page_no: page_no as u32,
                is_leaf: parsed.0,
                keys: parsed.1,
            });
        }
    }
    out
}

fn parse_node(buf: &[u8]) -> Option<(bool, Vec<Value>)> {
    let tag = *buf.first()?;
    let n = u16::from_le_bytes([*buf.get(1)?, *buf.get(2)?]) as usize;
    let mut pos = 3;
    match tag {
        1 => {
            // Internal: n+1 children then n keys.
            pos += (n + 1) * 4;
            let mut keys = Vec::with_capacity(n);
            for _ in 0..n {
                keys.push(Value::decode(buf, &mut pos).ok()?);
            }
            Some((false, keys))
        }
        2 => {
            pos += 4; // Next-leaf pointer.
            let mut keys = Vec::with_capacity(n);
            for _ in 0..n {
                keys.push(Value::decode(buf, &mut pos).ok()?);
                pos += 8; // Row id.
            }
            Some((true, keys))
        }
        _ => None,
    }
}

/// The §3 read-inference attack: given the LRU dump and the raw index
/// file, report the key ranges of recently touched leaf pages, most
/// recent first.
pub fn recently_read_ranges(
    dump: &[DumpEntry],
    index_file_name: &str,
    index_file_raw: &[u8],
) -> Vec<(u32, Value, Value)> {
    let nodes = carve_index_file(index_file_raw);
    let by_page: std::collections::HashMap<u32, &CarvedNode> =
        nodes.iter().map(|n| (n.page_no, n)).collect();
    dump.iter()
        .filter(|e| e.file == index_file_name)
        .filter_map(|e| {
            let node = by_page.get(&e.page_no)?;
            if !node.is_leaf || node.keys.is_empty() {
                return None;
            }
            Some((
                e.page_no,
                node.min_key().unwrap().clone(),
                node.max_key().unwrap().clone(),
            ))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use minidb::engine::{Db, DbConfig};
    use minidb::storage::DUMP_FILE;

    fn db_with_index() -> Db {
        let mut config = DbConfig::default();
        config.redo_capacity = 1 << 18;
        config.undo_capacity = 1 << 18;
        // Small pool: recency is meaningful.
        config.buffer_pool_pages = 64;
        let db = Db::open(config);
        let conn = db.connect("app");
        conn.execute("CREATE TABLE s (k INT PRIMARY KEY, v TEXT)")
            .unwrap();
        for chunk in (0..2000i64).collect::<Vec<_>>().chunks(100) {
            let values: Vec<String> = chunk.iter().map(|i| format!("({i}, 'v{i}')")).collect();
            conn.execute(&format!("INSERT INTO s VALUES {}", values.join(", ")))
                .unwrap();
        }
        db
    }

    #[test]
    fn parse_dump_round_trip() {
        let entries = parse_dump(b"a.ibd 3\nb.ibd 0\n");
        assert_eq!(
            entries,
            vec![
                DumpEntry {
                    file: "a.ibd".into(),
                    page_no: 3
                },
                DumpEntry {
                    file: "b.ibd".into(),
                    page_no: 0
                },
            ]
        );
        assert!(parse_dump(b"garbage without spaces\n").is_empty());
        assert!(parse_dump(&[0xFF, 0xFE]).is_empty());
    }

    #[test]
    fn carve_reconstructs_the_tree() {
        let db = db_with_index();
        db.shutdown();
        let disk = db.disk_image();
        let raw = disk.file("index_s_k.ibd").unwrap();
        let nodes = carve_index_file(raw);
        assert!(nodes.len() > 10, "expected a multi-page tree");
        let leaves: Vec<&CarvedNode> = nodes.iter().filter(|n| n.is_leaf).collect();
        // Every key 0..2000 appears in exactly one leaf.
        let mut all_keys: Vec<i64> = leaves
            .iter()
            .flat_map(|l| l.keys.iter())
            .map(|k| match k {
                Value::Int(i) => *i,
                _ => panic!("unexpected key type"),
            })
            .collect();
        all_keys.sort_unstable();
        assert_eq!(all_keys, (0..2000).collect::<Vec<i64>>());
    }

    #[test]
    fn dump_reveals_recent_select_ranges() {
        let db = db_with_index();
        let conn = db.connect("app");
        // Flood the pool with unrelated reads, then touch one narrow range.
        conn.execute("SELECT * FROM s WHERE v = 'none'").unwrap(); // Full scan.
        conn.execute("SELECT * FROM s WHERE k >= 1500 AND k <= 1510")
            .unwrap();
        db.shutdown();

        let disk = db.disk_image();
        let dump = parse_dump(disk.file(DUMP_FILE).unwrap());
        let ranges =
            recently_read_ranges(&dump, "index_s_k.ibd", disk.file("index_s_k.ibd").unwrap());
        assert!(!ranges.is_empty());
        // The most recent index leaf covers the queried range.
        let (_, min, max) = &ranges[0];
        let (Value::Int(lo), Value::Int(hi)) = (min, max) else {
            panic!()
        };
        assert!(
            *lo <= 1510 && *hi >= 1500,
            "hottest leaf [{lo}, {hi}] should overlap the queried range"
        );
    }
}
