//! Forensic parsers: from raw snapshot artifacts to query history.
//!
//! Everything here operates on *attacker-visible* bytes and structures —
//! circular-log buffers, the binlog file, the buffer-pool dump, heap
//! dumps — using only public knowledge of the storage engine's formats
//! (the moral equivalent of `mysqlbinlog` and the InnoDB forensics of
//! Frühwirt et al.).

pub mod binlog;
pub mod bufpool;
pub mod divergent;
pub mod lsn_time;
pub mod memscan;
pub mod relay;
pub mod telemetry;
pub mod tracelog;
pub mod versions;
pub mod wal;
pub mod xtrace;
pub mod zonemap;
