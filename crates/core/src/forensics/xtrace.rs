//! Cross-node trace-correlation forensics: joining a **replica's** cold
//! disk image back to the **primary's** client sessions via distributed
//! trace ids (experiment E19).
//!
//! Distributed tracing stamps every statement with a 128-bit trace id
//! that rides the client wire frame, the engine's trace records, *and*
//! the binlog — so each replica's relay log and slow log persist the
//! same id the primary's slow log associates with a concrete client
//! connection. An attacker who images one replica therefore does not
//! just read the write history (E14): with one more artifact — any
//! snapshot of the primary's slow log — every carved statement is
//! *attributed* to the session (and therefore the application or user)
//! that issued it. Correlation is the whole point of tracing; here it
//! is the leak.
//!
//! Two mitigations break the join, and both are measured by E19:
//!
//! * `DbConfig::trace_id_hashing` — the primary rehashes the trace id
//!   with a process-local key at the replication boundary, so replica
//!   artifacts carry ids that match nothing the primary ever logged.
//! * client-side sampling — unsampled statements propagate no usable
//!   context, shrinking the joinable population.

use std::collections::BTreeMap;

use minidb::snapshot::DiskImage;

use super::relay::carve_relay;
use super::tracelog::carve_slow_log;

/// Which replica artifact a trace id was carved from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum XtraceSource {
    /// A relay-log event's optional trace-context tail.
    RelayLog,
    /// A v2 slow-log record written by the replica's own apply path.
    SlowLog,
}

/// One traced statement carved from a replica image.
#[derive(Clone, Debug, PartialEq)]
pub struct CarvedTraceId {
    /// The 128-bit distributed trace id.
    pub trace_id: u128,
    /// Statement text as it appears in the replica artifact.
    pub statement: String,
    /// Event timestamp (relay) or statement start (slow log), simulated
    /// UNIX seconds.
    pub timestamp: i64,
    /// Artifact the id came from.
    pub source: XtraceSource,
}

/// Carves every trace id present in a replica's disk image: relay-log
/// events that carried a context tail, plus v2 slow-log records from
/// the replica's apply path. Statements replicated without tracing (or
/// with an unsampled context) simply do not appear.
pub fn carve_replica_trace_ids(disk: &DiskImage) -> Vec<CarvedTraceId> {
    let mut out = Vec::new();
    for ev in carve_relay(disk) {
        if let Some(ctx) = ev.ctx {
            out.push(CarvedTraceId {
                trace_id: ctx.trace_id,
                statement: ev.statement,
                timestamp: ev.timestamp,
                source: XtraceSource::RelayLog,
            });
        }
    }
    for t in carve_slow_log(disk) {
        if let Some(ctx) = t.ctx {
            out.push(CarvedTraceId {
                trace_id: ctx.trace_id,
                statement: t.statement,
                timestamp: t.started_unix,
                source: XtraceSource::SlowLog,
            });
        }
    }
    out
}

/// The primary-side join index: trace id → `(conn_id, statement text)`
/// carved from the primary's slow log. This is the second artifact the
/// correlation attack needs — the one that names sessions.
pub fn primary_session_index(disk: &DiskImage) -> BTreeMap<u128, (u64, String)> {
    let mut index = BTreeMap::new();
    for t in carve_slow_log(disk) {
        if let Some(ctx) = t.ctx {
            index.insert(ctx.trace_id, (t.conn_id, t.statement));
        }
    }
    index
}

/// One replica statement successfully attributed to a primary session.
#[derive(Clone, Debug, PartialEq)]
pub struct AttributedStatement {
    /// The joining trace id.
    pub trace_id: u128,
    /// Statement text from the replica artifact.
    pub replica_statement: String,
    /// Engine connection id of the client session on the primary.
    pub session_id: u64,
    /// Statement text the primary's slow log recorded for that session.
    pub primary_statement: String,
    /// Replica artifact the id was carved from.
    pub source: XtraceSource,
}

/// Outcome of the cross-node join.
#[derive(Clone, Debug, Default)]
pub struct Attribution {
    /// Every successful join, one entry per carved artifact record.
    pub attributed: Vec<AttributedStatement>,
    /// Distinct trace ids carved from the replica.
    pub carved: usize,
    /// Distinct carved ids that joined to a primary session.
    pub matched: usize,
}

impl Attribution {
    /// Fraction of distinct carved trace ids attributed to a session —
    /// E19's headline number (≥0.9 with tracing on; 0.0 under
    /// `trace_id_hashing`, whose whole point is an empty join).
    pub fn rate(&self) -> f64 {
        if self.carved == 0 {
            0.0
        } else {
            self.matched as f64 / self.carved as f64
        }
    }
}

/// Joins replica-carved trace ids against the primary's session index.
pub fn attribute(
    replica: &[CarvedTraceId],
    primary: &BTreeMap<u128, (u64, String)>,
) -> Attribution {
    let mut distinct = std::collections::BTreeSet::new();
    let mut matched_ids = std::collections::BTreeSet::new();
    let mut attributed = Vec::new();
    for c in replica {
        distinct.insert(c.trace_id);
        if let Some((session_id, primary_statement)) = primary.get(&c.trace_id) {
            matched_ids.insert(c.trace_id);
            attributed.push(AttributedStatement {
                trace_id: c.trace_id,
                replica_statement: c.statement.clone(),
                session_id: *session_id,
                primary_statement: primary_statement.clone(),
                source: c.source,
            });
        }
    }
    Attribution {
        attributed,
        carved: distinct.len(),
        matched: matched_ids.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdb_trace::TraceContext;
    use minidb::engine::{Db, DbConfig};
    use minidb::wal::BinlogEvent;
    use std::collections::BTreeMap as Map;

    fn ctx(id: u128) -> TraceContext {
        TraceContext {
            trace_id: id,
            span_id: id as u64 ^ 0x5555,
            sampled: true,
        }
    }

    fn replica_image(events: Vec<(&str, Option<TraceContext>)>) -> DiskImage {
        let mut relay = Vec::new();
        for (i, (stmt, c)) in events.iter().enumerate() {
            relay.extend(minidb::wal::frame(
                &BinlogEvent {
                    lsn: i as u64 + 1,
                    txn: i as u64 + 1,
                    timestamp: 100 + i as i64,
                    statement: stmt.to_string(),
                    ctx: *c,
                }
                .encode(),
            ));
        }
        let mut files = Map::new();
        files.insert("relay-bin.000001".to_string(), relay);
        DiskImage { files }
    }

    #[test]
    fn carves_only_traced_relay_events() {
        let disk = replica_image(vec![
            ("INSERT INTO t VALUES (1)", Some(ctx(0xA1))),
            ("INSERT INTO t VALUES (2)", None),
            ("INSERT INTO t VALUES (3)", Some(ctx(0xA3))),
        ]);
        let carved = carve_replica_trace_ids(&disk);
        assert_eq!(carved.len(), 2);
        assert!(carved.iter().all(|c| c.source == XtraceSource::RelayLog));
        assert_eq!(carved[0].trace_id, 0xA1);
        assert_eq!(carved[1].statement, "INSERT INTO t VALUES (3)");
    }

    #[test]
    fn join_attributes_replica_statements_to_primary_sessions() {
        // Primary: a real engine whose slow log records the trace ids
        // the client sessions ran under.
        let db = Db::open(DbConfig {
            slow_query_threshold_us: 0,
            ..DbConfig::default()
        });
        let conn = db.connect("app");
        conn.execute("CREATE TABLE t (id INT PRIMARY KEY)").unwrap();
        conn.execute_traced("INSERT INTO t VALUES (1)", Some(ctx(0xB1)))
            .unwrap();
        conn.execute_traced("INSERT INTO t VALUES (2)", Some(ctx(0xB2)))
            .unwrap();
        let index = primary_session_index(&db.disk_image());
        // The engine traces under a *child* context — same trace id.
        assert!(index.contains_key(&0xB1), "{index:?}");

        let disk = replica_image(vec![
            ("INSERT INTO t VALUES (1)", Some(ctx(0xB1))),
            ("INSERT INTO t VALUES (2)", Some(ctx(0xB2))),
            ("INSERT INTO t VALUES (9)", Some(ctx(0xEE))), // foreign id
        ]);
        let a = attribute(&carve_replica_trace_ids(&disk), &index);
        assert_eq!(a.carved, 3);
        assert_eq!(a.matched, 2);
        assert!((a.rate() - 2.0 / 3.0).abs() < 1e-9);
        let hit = &a.attributed[0];
        assert_eq!(hit.session_id, conn.id);
        assert_eq!(hit.primary_statement, "INSERT INTO t VALUES (1)");
    }

    #[test]
    fn empty_carve_rates_zero() {
        let a = attribute(&[], &Map::new());
        assert_eq!(a.rate(), 0.0);
    }
}
