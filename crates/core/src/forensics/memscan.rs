//! Memory-dump carving (§5): query strings and tokens in the DB process
//! heap, long after the statements that carried them finished.

/// A string carved from a memory dump.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CarvedString {
    /// Byte offset in the dump.
    pub offset: usize,
    /// The carved text.
    pub text: String,
}

/// Carves printable-ASCII runs of at least `min_len` bytes (the classic
/// `strings(1)` pass over a core dump).
pub fn carve_strings(dump: &[u8], min_len: usize) -> Vec<CarvedString> {
    let mut out = Vec::new();
    let mut start: Option<usize> = None;
    for (i, &b) in dump.iter().enumerate() {
        let printable = (0x20..0x7F).contains(&b);
        match (printable, start) {
            (true, None) => start = Some(i),
            (false, Some(s)) => {
                if i - s >= min_len {
                    out.push(CarvedString {
                        offset: s,
                        text: String::from_utf8_lossy(&dump[s..i]).into_owned(),
                    });
                }
                start = None;
            }
            _ => {}
        }
    }
    if let Some(s) = start {
        if dump.len() - s >= min_len {
            out.push(CarvedString {
                offset: s,
                text: String::from_utf8_lossy(&dump[s..]).into_owned(),
            });
        }
    }
    out
}

/// Filters carved strings down to SQL-looking statements.
pub fn carve_sql(dump: &[u8]) -> Vec<CarvedString> {
    carve_strings(dump, 12)
        .into_iter()
        .filter(|s| {
            let upper = s.text.to_ascii_uppercase();
            ["SELECT ", "INSERT ", "UPDATE ", "DELETE "]
                .iter()
                .any(|kw| upper.contains(kw))
        })
        .collect()
}

/// Counts non-overlapping occurrences of `needle` in the dump — the §5
/// experiment's measurement.
pub fn count_occurrences(dump: &[u8], needle: &[u8]) -> usize {
    if needle.is_empty() || needle.len() > dump.len() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i + needle.len() <= dump.len() {
        if &dump[i..i + needle.len()] == needle {
            count += 1;
            i += needle.len();
        } else {
            i += 1;
        }
    }
    count
}

/// Extracts the hex literals of every carved SQL string — where the
/// attacker finds SWP trapdoors and ORE tokens in a memory image.
pub fn carve_tokens(dump: &[u8]) -> Vec<Vec<u8>> {
    carve_sql(dump)
        .iter()
        .flat_map(|s| crate::forensics::binlog::extract_hex_literals(&s.text))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn carves_printable_runs() {
        let mut dump = vec![0u8; 16];
        dump.extend_from_slice(b"SELECT * FROM t WHERE a = 1");
        dump.push(0);
        dump.extend_from_slice(b"short");
        dump.push(0);
        dump.extend_from_slice(b"another long printable run here");
        let strings = carve_strings(&dump, 10);
        assert_eq!(strings.len(), 2);
        assert_eq!(strings[0].offset, 16);
        assert!(strings[0].text.starts_with("SELECT"));
    }

    #[test]
    fn sql_filter() {
        let mut dump = Vec::new();
        dump.extend_from_slice(b"not a query, just text padding");
        dump.push(0);
        dump.extend_from_slice(b"select * from secrets where k = 'x'");
        dump.push(0);
        dump.extend_from_slice(b"UPDATE t SET a = 1");
        let sql = carve_sql(&dump);
        assert_eq!(sql.len(), 2);
    }

    #[test]
    fn token_extraction_from_dump() {
        let mut dump = vec![0u8; 8];
        dump.extend_from_slice(b"SELECT * FROM d WHERE SWP_MATCH(c, X'a1b2c3')");
        let tokens = carve_tokens(&dump);
        assert_eq!(tokens, vec![vec![0xA1, 0xB2, 0xC3]]);
    }

    #[test]
    fn occurrence_counting() {
        assert_eq!(count_occurrences(b"abXabXab", b"ab"), 3);
        assert_eq!(count_occurrences(b"aaaa", b"aa"), 2, "non-overlapping");
        assert_eq!(count_occurrences(b"", b"a"), 0);
        assert_eq!(count_occurrences(b"a", b""), 0);
    }

    #[test]
    fn end_of_dump_run_is_carved() {
        let strings = carve_strings(b"ends with printable text!", 5);
        assert_eq!(strings.len(), 1);
    }
}
