//! LSN–timestamp correlation (§3): the binlog pairs every commit LSN with
//! a UNIX timestamp; a least-squares fit of time against LSN dates any
//! undo/redo record — including ones older than the binlog horizon (e.g.
//! after an administrative `PURGE BINARY LOGS`).

use minidb::wal::BinlogEvent;

/// A fitted `time ≈ slope · lsn + intercept` model.
#[derive(Clone, Copy, Debug)]
pub struct LsnTimeModel {
    /// Seconds per LSN unit.
    pub slope: f64,
    /// Intercept (UNIX seconds).
    pub intercept: f64,
    /// Number of points the fit used.
    pub points: usize,
}

impl LsnTimeModel {
    /// Estimates the UNIX timestamp of an arbitrary LSN.
    pub fn estimate(&self, lsn: u64) -> f64 {
        self.slope * lsn as f64 + self.intercept
    }
}

/// Fits the model from recovered binlog events. Returns `None` with fewer
/// than two distinct LSNs.
pub fn fit(events: &[BinlogEvent]) -> Option<LsnTimeModel> {
    let pts: Vec<(f64, f64)> = events
        .iter()
        .map(|e| (e.lsn as f64, e.timestamp as f64))
        .collect();
    if pts.len() < 2 {
        return None;
    }
    let n = pts.len() as f64;
    let mean_x = pts.iter().map(|p| p.0).sum::<f64>() / n;
    let mean_y = pts.iter().map(|p| p.1).sum::<f64>() / n;
    let sxx: f64 = pts.iter().map(|p| (p.0 - mean_x).powi(2)).sum();
    if sxx == 0.0 {
        return None;
    }
    let sxy: f64 = pts.iter().map(|p| (p.0 - mean_x) * (p.1 - mean_y)).sum();
    let slope = sxy / sxx;
    Some(LsnTimeModel {
        slope,
        intercept: mean_y - slope * mean_x,
        points: pts.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(lsn: u64, timestamp: i64) -> BinlogEvent {
        BinlogEvent {
            lsn,
            txn: lsn,
            timestamp,
            statement: String::new(),
            ctx: None,
        }
    }

    #[test]
    fn exact_linear_fit() {
        // time = 2·lsn + 100.
        let events: Vec<BinlogEvent> = (1..=10).map(|l| ev(l, 2 * l as i64 + 100)).collect();
        let m = fit(&events).unwrap();
        assert!((m.slope - 2.0).abs() < 1e-9);
        assert!((m.intercept - 100.0).abs() < 1e-6);
        // Extrapolation back before the first event (the purged horizon).
        assert!((m.estimate(0) - 100.0).abs() < 1e-6);
    }

    #[test]
    fn noisy_fit_recovers_trend() {
        let events: Vec<BinlogEvent> = (0..100)
            .map(|l| ev(l * 10, (l * 10) as i64 * 3 + 500 + (l % 5) as i64 - 2))
            .collect();
        let m = fit(&events).unwrap();
        assert!((m.slope - 3.0).abs() < 0.01, "slope {}", m.slope);
        let est = m.estimate(550);
        assert!((est - (550.0 * 3.0 + 500.0)).abs() < 10.0);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(fit(&[]).is_none());
        assert!(fit(&[ev(1, 1)]).is_none());
        assert!(fit(&[ev(5, 1), ev(5, 2)]).is_none(), "no LSN spread");
    }
}
