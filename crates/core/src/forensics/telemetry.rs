//! Telemetry forensics: what a snapshot attacker learns from the
//! engine's *own* metrics registry.
//!
//! The paper's inventory of snapshot-visible auxiliary state (§4) was
//! written before "observability" became a product category. A modern
//! deployment exports counters and latency histograms on purpose — and
//! a [`MetricsSnapshot`] captured from process memory (or read over a
//! `SELECT * FROM information_schema.metrics` injection) is a compact,
//! pre-aggregated summary of the entire query history:
//!
//! * `sql.table_access.<t>` counters are exactly the per-table access
//!   frequencies an access-pattern attacker wants, already tallied.
//! * `sql.latency_us.<kind>` histograms reveal the read/write mix.
//! * `edb.onion.peel_downgrades` proves an onion column was ratcheted
//!   to DET even if the downgrade happened long before the snapshot.
//!
//! Crucially, these survive `TRUNCATE performance_schema.*` / `FLUSH
//! STATUS` (MiniDB's `Db::flush_diagnostics`): wiping the statement
//! history does not reset the metrics registry unless the operator also
//! set `telemetry_scrub_on_flush`.

use mdb_telemetry::MetricsSnapshot;

/// One table's share of the observed accesses.
#[derive(Clone, Debug, PartialEq)]
pub struct TableAccess {
    /// Table name, as recovered from the `sql.table_access.` counter.
    pub table: String,
    /// Lifetime access count.
    pub count: u64,
    /// Fraction of all table accesses in the snapshot (0 when none).
    pub share: f64,
}

/// Recovers the per-table access distribution from a metrics snapshot —
/// the attacker's estimate of the victim's query distribution. Sorted
/// by descending count, then name.
pub fn table_access_distribution(metrics: &MetricsSnapshot) -> Vec<TableAccess> {
    const PREFIX: &str = "sql.table_access.";
    let mut hits: Vec<(String, u64)> = metrics
        .counters
        .iter()
        .filter_map(|(name, v)| name.strip_prefix(PREFIX).map(|t| (t.to_string(), *v)))
        .collect();
    let total: u64 = hits.iter().map(|(_, v)| v).sum();
    hits.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    hits.into_iter()
        .map(|(table, count)| TableAccess {
            table,
            count,
            share: if total == 0 {
                0.0
            } else {
                count as f64 / total as f64
            },
        })
        .collect()
}

/// Per-statement-kind counts recovered from the latency histograms
/// (`sql.latency_us.<kind>`), revealing the workload's read/write mix.
/// Sorted by descending count, then kind.
pub fn statement_mix(metrics: &MetricsSnapshot) -> Vec<(String, u64)> {
    const PREFIX: &str = "sql.latency_us.";
    let mut mix: Vec<(String, u64)> = metrics
        .histograms
        .iter()
        .filter_map(|h| {
            h.name
                .strip_prefix(PREFIX)
                .map(|k| (k.to_string(), h.count))
        })
        .filter(|(_, c)| *c > 0)
        .collect();
    mix.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    mix
}

/// True when the snapshot proves at least one onion column was ratcheted
/// down to DET (the `edb.onion.peel_downgrades` counter is non-zero).
pub fn onion_was_peeled(metrics: &MetricsSnapshot) -> bool {
    metrics.counter("edb.onion.peel_downgrades").unwrap_or(0) > 0
}

/// Total statements the registry has seen — a floor on how much query
/// history the telemetry summarizes, regardless of any perf-schema wipe.
pub fn statements_observed(metrics: &MetricsSnapshot) -> u64 {
    metrics.counter("sql.statements").unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdb_telemetry::Registry;

    fn snapshot_with_accesses(pairs: &[(&str, u64)]) -> MetricsSnapshot {
        let r = Registry::new();
        for (t, n) in pairs {
            r.counter(&format!("sql.table_access.{t}")).add(*n);
        }
        r.snapshot()
    }

    #[test]
    fn distribution_sorted_and_normalized() {
        let snap = snapshot_with_accesses(&[("a", 1), ("b", 3), ("c", 1)]);
        let dist = table_access_distribution(&snap);
        assert_eq!(dist.len(), 3);
        assert_eq!(dist[0].table, "b");
        assert_eq!(dist[0].count, 3);
        assert!((dist[0].share - 0.6).abs() < 1e-9);
        // Ties broken by name.
        assert_eq!(dist[1].table, "a");
        assert_eq!(dist[2].table, "c");
        let total: f64 = dist.iter().map(|d| d.share).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_snapshot_yields_nothing() {
        let snap = MetricsSnapshot::default();
        assert!(table_access_distribution(&snap).is_empty());
        assert!(statement_mix(&snap).is_empty());
        assert!(!onion_was_peeled(&snap));
        assert_eq!(statements_observed(&snap), 0);
    }

    #[test]
    fn statement_mix_reads_latency_histograms() {
        let r = Registry::new();
        for _ in 0..5 {
            r.histogram("sql.latency_us.select").record(10);
        }
        r.histogram("sql.latency_us.insert").record(7);
        r.histogram("sql.latency_us.delete"); // registered, never hit
        let mix = statement_mix(&r.snapshot());
        assert_eq!(
            mix,
            vec![("select".to_string(), 5), ("insert".to_string(), 1)]
        );
    }

    #[test]
    fn onion_peel_flag() {
        let r = Registry::new();
        assert!(!onion_was_peeled(&r.snapshot()));
        r.counter("edb.onion.peel_downgrades").inc();
        assert!(onion_was_peeled(&r.snapshot()));
    }
}
