//! Divergent-tail forensics: the failover quarantine file, carved from a
//! **deposed primary's** image.
//!
//! When a fleet fails over, the old primary's binlog tail past the
//! promoted cursor — every write it acked but never replicated — is
//! fenced into the `binlog.divergent` sidecar. Operationally that is
//! the *safe* move (the acked data is preserved instead of silently
//! truncated), but it concentrates exactly the most interesting
//! secrets in one small file: data recent enough to be unreplicated is
//! data written moments before the crash. A cold image of the corpse —
//! the disk of a machine that, by definition, just failed and is
//! awaiting repair — yields the whole tail to the same keyless
//! `carve_frames` scan as a stolen binlog. With `encrypted_wal`, the
//! sidecar inherits the binlog's sealed frames: the keyless carve
//! recovers nothing, while the key holder still decodes the quarantined
//! writes in full (that is the point of quarantining instead of
//! deleting).

use minidb::snapshot::DiskImage;
use minidb::wal::{carve_all_frames, BinlogEvent, DIVERGENT_FILE};
use minidb::Db;

use super::binlog::parse_binlog;

/// Raw bytes of the quarantine sidecar, if the imaged node was fenced.
pub fn divergent_file(disk: &DiskImage) -> Option<&[u8]> {
    disk.file(DIVERGENT_FILE)
}

/// Keyless carve: every plaintext statement recoverable from the
/// sidecar. On a plaintext fleet this is the deposed primary's entire
/// unreplicated tail; on an `encrypted_wal` fleet it is empty.
pub fn carve_divergent(disk: &DiskImage) -> Vec<BinlogEvent> {
    divergent_file(disk).map(parse_binlog).unwrap_or_default()
}

/// `(total, sealed)` frame counts in the sidecar — the attacker can
/// always see how *many* writes diverged, even when every frame is
/// sealed (size-and-count metadata is not hidden by the AEAD).
pub fn frame_census(disk: &DiskImage) -> (usize, usize) {
    let Some(raw) = divergent_file(disk) else {
        return (0, 0);
    };
    let frames = carve_all_frames(raw);
    let sealed = frames.iter().filter(|(_, s, _)| *s).count();
    (frames.len(), sealed)
}

/// Key-holder recovery: decodes every sidecar frame with `key_holder`'s
/// log key (each frame under the codec its magic declares). This is the
/// legitimate operator path for re-injecting quarantined writes after a
/// failover post-mortem.
pub fn recover_with_key(disk: &DiskImage, key_holder: &Db) -> Vec<BinlogEvent> {
    let Some(raw) = divergent_file(disk) else {
        return Vec::new();
    };
    carve_all_frames(raw)
        .into_iter()
        .filter_map(|(_, sealed, p)| key_holder.decode_binlog_frame(sealed, p).ok())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use minidb::DbConfig;

    fn fenced_db(config: DbConfig) -> Db {
        let db = Db::open(config);
        let conn = db.connect("app");
        conn.execute("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
            .unwrap();
        conn.execute("INSERT INTO t VALUES (1, 'replicated')")
            .unwrap();
        conn.execute("INSERT INTO t VALUES (2, 'secret-unreplicated')")
            .unwrap();
        // Failover happened elsewhere with the promoted cursor at 2:
        // the second INSERT never replicated.
        let fenced = db.fence_divergent(2);
        assert_eq!(fenced.len(), 1);
        db
    }

    #[test]
    fn carves_the_quarantined_tail_from_a_cold_image() {
        let db = fenced_db(DbConfig::default());
        let disk = db.disk_image();
        let carved = carve_divergent(&disk);
        assert_eq!(carved.len(), 1);
        assert!(carved[0].statement.contains("secret-unreplicated"));
        assert_eq!(frame_census(&disk), (1, 0));
        // And the truncated binlog no longer holds the secret.
        let binlog = parse_binlog(disk.file(minidb::wal::BINLOG_FILE).unwrap());
        assert!(binlog.iter().all(|e| !e.statement.contains("secret")));
    }

    #[test]
    fn sealed_sidecar_defeats_keyless_carving_but_not_the_key_holder() {
        let key = [9u8; 32];
        let db = fenced_db(DbConfig {
            encrypted_wal: true,
            wal_key: Some(key),
            ..DbConfig::default()
        });
        let disk = db.disk_image();
        assert!(
            carve_divergent(&disk).is_empty(),
            "keyless carve must recover nothing from a sealed sidecar"
        );
        let (total, sealed) = frame_census(&disk);
        assert_eq!(total, sealed);
        assert!(sealed > 0, "the fenced frames are present, just sealed");
        let recovered = recover_with_key(&disk, &db);
        assert_eq!(recovered.len(), 1);
        assert!(recovered[0].statement.contains("secret-unreplicated"));
    }

    #[test]
    fn unfenced_image_has_no_sidecar() {
        let db = Db::open(DbConfig::default());
        let disk = db.disk_image();
        assert!(divergent_file(&disk).is_none());
        assert!(carve_divergent(&disk).is_empty());
        assert_eq!(frame_census(&disk), (0, 0));
    }
}
