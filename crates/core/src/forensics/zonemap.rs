//! Zone-map forensics (§3 "reading the metadata, not the data").
//!
//! The scan pruner persists a per-page synopsis — min/max per indexable
//! column plus a live-row count — in every heap page header, and keeps
//! an in-memory mirror of the same. Both surfaces leak: the page header
//! rides in any disk image, the mirror in any memory image. Crucially
//! the bounds are *plaintext even when the row payloads are not*: a
//! CryptDB-style deployment that stores ciphertext cells still lets the
//! engine zone-map the range-queryable column, so an attacker with a
//! cold snapshot brackets the column's values page by page without
//! touching a single ciphertext.

use std::collections::BTreeMap;

use minidb::snapshot::{DiskImage, MemoryImage};
use minidb::storage::{PAGE_SIZE, SYN_MAX_COLS};

/// Where a recovered synopsis was carved from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ZoneMapSource {
    /// Parsed out of a flushed heap page header in the disk image.
    Disk,
    /// Read from the heap's in-memory mirror in the memory image.
    Memory,
    /// Present in both, byte-for-byte agreeing or not.
    Both,
}

/// One page's recovered zone map.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecoveredZoneMap {
    /// Tablespace file the page belongs to.
    pub file: String,
    /// Page number within the file.
    pub page_no: u32,
    /// Live rows the synopsis reflects.
    pub rows: u64,
    /// Per-column `(ordinal, min, max)` plaintext bounds.
    pub columns: Vec<(u16, i64, i64)>,
    /// Which snapshot surface(s) yielded it.
    pub source: ZoneMapSource,
}

// Page-header offsets, public knowledge of the storage format (the
// header is documented in minidb's `storage::page`). Duplicated here by
// design: the attacker parses raw bytes, not engine structs.
const HDR_SYN_VALID: usize = 12;
const HDR_SYN_NCOLS: usize = 13;
const HDR_SYN_ROWS: usize = 14;
const HDR_SYN_ENTRIES: usize = 16;
const SYN_ENTRY_SIZE: usize = 2 + 8 + 8;

/// A carved synopsis: the page's live row count plus its
/// `(column, min, max)` entries.
pub type CarvedSynopsis = (u64, Vec<(u16, i64, i64)>);

/// Carves the synopsis out of one raw 16 KiB page, if the valid bit is
/// set and the entries pass sanity checks (`ncols` within capacity,
/// `min <= max` per entry).
pub fn carve_page(page: &[u8]) -> Option<CarvedSynopsis> {
    if page.len() < HDR_SYN_ENTRIES + SYN_MAX_COLS * SYN_ENTRY_SIZE {
        return None;
    }
    if page[HDR_SYN_VALID] != 1 {
        return None;
    }
    let ncols = page[HDR_SYN_NCOLS] as usize;
    if ncols > SYN_MAX_COLS {
        return None;
    }
    let rows = u16::from_le_bytes([page[HDR_SYN_ROWS], page[HDR_SYN_ROWS + 1]]) as u64;
    let mut columns = Vec::with_capacity(ncols);
    for i in 0..ncols {
        let off = HDR_SYN_ENTRIES + i * SYN_ENTRY_SIZE;
        let col = u16::from_le_bytes([page[off], page[off + 1]]);
        let min = i64::from_le_bytes(page[off + 2..off + 10].try_into().unwrap());
        let max = i64::from_le_bytes(page[off + 10..off + 18].try_into().unwrap());
        if min > max {
            return None;
        }
        columns.push((col, min, max));
    }
    Some((rows, columns))
}

/// Carves every valid page synopsis out of the heap tablespace files in
/// a disk image (`table_*.ibd`; index files use a different layout and
/// are skipped).
pub fn carve_disk(disk: &DiskImage) -> Vec<RecoveredZoneMap> {
    let mut out = Vec::new();
    for (name, data) in &disk.files {
        if !name.starts_with("table_") || !name.ends_with(".ibd") {
            continue;
        }
        for (page_no, page) in data.chunks(PAGE_SIZE).enumerate() {
            if let Some((rows, columns)) = carve_page(page) {
                out.push(RecoveredZoneMap {
                    file: name.clone(),
                    page_no: page_no as u32,
                    rows,
                    columns,
                    source: ZoneMapSource::Disk,
                });
            }
        }
    }
    out
}

/// Reads the heaps' in-memory zone-map mirrors out of a memory image.
pub fn from_memory(memory: &MemoryImage) -> Vec<RecoveredZoneMap> {
    memory
        .zone_maps
        .iter()
        .map(|z| RecoveredZoneMap {
            file: z.file.clone(),
            page_no: z.page_no,
            rows: z.rows,
            columns: z.columns.clone(),
            source: ZoneMapSource::Memory,
        })
        .collect()
}

/// Recovers zone maps from whatever surfaces the attacker holds,
/// deduplicated by `(file, page)`. A page present in both surfaces is
/// reported once with [`ZoneMapSource::Both`], preferring the memory
/// mirror's bounds (it reflects un-flushed DML the disk page missed).
pub fn recover(disk: Option<&DiskImage>, memory: Option<&MemoryImage>) -> Vec<RecoveredZoneMap> {
    let mut by_page: BTreeMap<(String, u32), RecoveredZoneMap> = BTreeMap::new();
    if let Some(d) = disk {
        for r in carve_disk(d) {
            by_page.insert((r.file.clone(), r.page_no), r);
        }
    }
    if let Some(m) = memory {
        for mut r in from_memory(m) {
            let key = (r.file.clone(), r.page_no);
            if by_page.contains_key(&key) {
                r.source = ZoneMapSource::Both;
            }
            by_page.insert(key, r);
        }
    }
    by_page.into_values().collect()
}

/// Merges closed intervals `[lo, hi]` into a sorted, disjoint union.
pub fn union_intervals(mut intervals: Vec<(i64, i64)>) -> Vec<(i64, i64)> {
    intervals.sort_unstable();
    let mut out: Vec<(i64, i64)> = Vec::new();
    for (lo, hi) in intervals {
        match out.last_mut() {
            // `hi + 1`: adjacent intervals merge too ([0,4] + [5,9]).
            Some(last) if lo <= last.1.saturating_add(1) => last.1 = last.1.max(hi),
            _ => out.push((lo, hi)),
        }
    }
    out
}

/// The fraction of a value domain of `domain_size` points that the
/// recovered synopses bracket for column `col`: the measure of the union
/// of all per-page `[min, max]` ranges, over the domain size. This is
/// the attacker's *direct plaintext recovery* from metadata alone — no
/// ciphertexts consulted, no query workload needed.
pub fn bracket_fraction(pages: &[RecoveredZoneMap], col: u16, domain_size: u128) -> f64 {
    if domain_size == 0 {
        return 0.0;
    }
    let intervals: Vec<(i64, i64)> = pages
        .iter()
        .filter(|p| p.rows > 0)
        .flat_map(|p| p.columns.iter())
        .filter(|(c, _, _)| *c == col)
        .map(|&(_, min, max)| (min, max))
        .collect();
    let covered: u128 = union_intervals(intervals)
        .iter()
        .map(|&(lo, hi)| (hi as i128 - lo as i128 + 1) as u128)
        .sum();
    (covered.min(domain_size) as f64) / (domain_size as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use minidb::engine::{Db, DbConfig};

    fn db_with_rows() -> Db {
        let mut config = DbConfig::default();
        config.redo_capacity = 1 << 18;
        config.undo_capacity = 1 << 18;
        let db = Db::open(config);
        let conn = db.connect("app");
        conn.execute("CREATE TABLE m (id INT PRIMARY KEY, ts INT, note TEXT)")
            .unwrap();
        for chunk in (0..800i64).collect::<Vec<_>>().chunks(100) {
            let values: Vec<String> = chunk
                .iter()
                .map(|i| format!("({i}, {}, 'n{i}')", i * 10))
                .collect();
            conn.execute(&format!("INSERT INTO m VALUES {}", values.join(", ")))
                .unwrap();
        }
        db
    }

    #[test]
    fn carves_flushed_heap_pages() {
        let db = db_with_rows();
        db.shutdown();
        let disk = db.disk_image();
        let pages = carve_disk(&disk);
        assert!(
            pages.len() >= 2,
            "expected a multi-page heap, got {}",
            pages.len()
        );
        // Column 1 (ts) spans 0..=7990 across the recovered pages.
        let lo = pages
            .iter()
            .flat_map(|p| p.columns.iter())
            .filter(|(c, _, _)| *c == 1)
            .map(|&(_, min, _)| min)
            .min()
            .unwrap();
        let hi = pages
            .iter()
            .flat_map(|p| p.columns.iter())
            .filter(|(c, _, _)| *c == 1)
            .map(|&(_, _, max)| max)
            .max()
            .unwrap();
        assert_eq!((lo, hi), (0, 7990));
    }

    #[test]
    fn memory_mirror_matches_disk_after_flush() {
        let db = db_with_rows();
        db.shutdown();
        let mem = db.memory_image();
        let disk = db.disk_image();
        let merged = recover(Some(&disk), Some(&mem));
        assert!(!merged.is_empty());
        // Everything was flushed, so every page shows up on both surfaces.
        assert!(merged.iter().all(|p| p.source == ZoneMapSource::Both));
    }

    #[test]
    fn memory_only_capture_still_recovers() {
        let db = db_with_rows();
        // No shutdown/checkpoint: dirty pages may never have hit disk,
        // but the mirror leaks through the memory image regardless.
        let mem = db.memory_image();
        let pages = recover(None, Some(&mem));
        assert!(!pages.is_empty());
        assert!(pages.iter().all(|p| p.source == ZoneMapSource::Memory));
    }

    #[test]
    fn union_merges_overlap_and_adjacency() {
        assert_eq!(
            union_intervals(vec![(5, 9), (0, 4), (20, 30), (25, 40)]),
            vec![(0, 9), (20, 40)]
        );
        assert!(union_intervals(vec![]).is_empty());
    }

    #[test]
    fn bracket_fraction_measures_recovered_ranges() {
        let pages = vec![RecoveredZoneMap {
            file: "table_m.ibd".into(),
            page_no: 0,
            rows: 10,
            columns: vec![(1, 0, (1 << 31) - 1)],
            source: ZoneMapSource::Disk,
        }];
        let f = bracket_fraction(&pages, 1, 1u128 << 32);
        assert!((f - 0.5).abs() < 1e-9, "got {f}");
        // Untracked column: nothing bracketed.
        assert_eq!(bracket_fraction(&pages, 7, 1u128 << 32), 0.0);
        // Empty pages don't count.
        let empty = vec![RecoveredZoneMap {
            rows: 0,
            ..pages[0].clone()
        }];
        assert_eq!(bracket_fraction(&empty, 1, 1u128 << 32), 0.0);
    }

    #[test]
    fn rejects_garbage_pages() {
        assert!(carve_page(&[0u8; 32]).is_none());
        let mut page = vec![0u8; PAGE_SIZE];
        page[HDR_SYN_VALID] = 1;
        page[HDR_SYN_NCOLS] = 9; // Over capacity.
        assert!(carve_page(&page).is_none());
        page[HDR_SYN_NCOLS] = 1;
        // min > max in the first entry.
        page[HDR_SYN_ENTRIES + 2..HDR_SYN_ENTRIES + 10].copy_from_slice(&5i64.to_le_bytes());
        page[HDR_SYN_ENTRIES + 10..HDR_SYN_ENTRIES + 18].copy_from_slice(&1i64.to_le_bytes());
        assert!(carve_page(&page).is_none());
    }
}
