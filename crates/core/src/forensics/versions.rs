//! Version-chain forensics: recovering a row's *edit history* from the
//! MVCC version store (experiment e18).
//!
//! Snapshot isolation makes the engine an archivist: every UPDATE and
//! DELETE appends the superseded row image to `undo_versions.ibd`, with
//! `(xmin, xmax)` commit stamps that totally order the supersessions.
//! The paper's §3 observation about undo logs applies with force — the
//! version store is an undo log that *never wraps*: until vacuum runs,
//! a cold disk image replays the full history of a secret column, one
//! committed value per record, in commit order. And a *tombstoning*
//! vacuum (the default) only flips a state byte: the payload bytes
//! stay carvable. Only `DbConfig::scrub_before_images` makes vacuum
//! physically rewrite the file.
//!
//! Like every carver here, this parses raw bytes with public knowledge
//! of the record format — no engine structs, no live engine.

use std::collections::BTreeMap;

use minidb::mvcc::{STATE_COMMITTED, STATE_PENDING, STATE_VACUUMED, VERSIONS_FILE};
use minidb::row::Row;
use minidb::snapshot::{DiskImage, MemoryImage};
use minidb::value::Value;

/// Record-format knowledge, restated from the storage format docs:
/// `"MVER" | state u8 | op u8 | xmin u64 | xmax u64 | row_id u64 |
/// name_len u16 | row_len u32 | name | row`.
const MAGIC: &[u8; 4] = b"MVER";
const HEADER_LEN: usize = 36;
/// Sanity bounds: a table name over 4 KiB or a row over 16 MiB is
/// garbage, not a record.
const MAX_NAME: usize = 4096;
const MAX_ROW: usize = 16 * 1024 * 1024;

/// One version record carved from raw bytes.
#[derive(Clone, Debug, PartialEq)]
pub struct CarvedVersion {
    /// Table the row belonged to.
    pub table: String,
    /// Row id whose before-image this is.
    pub row_id: u64,
    /// CSN that created the image (0 = predates tracking).
    pub xmin: u64,
    /// CSN that superseded it (0 = still pending at capture).
    pub xmax: u64,
    /// Lifecycle state byte (`minidb::mvcc::STATE_*`).
    pub state: u8,
    /// Supersession kind (`minidb::mvcc::OP_*`).
    pub op: u8,
    /// The recovered before-image values.
    pub values: Vec<Value>,
    /// Byte offset of the record in the carved file.
    pub offset: usize,
}

impl CarvedVersion {
    /// Whether the engine still considers this version live history
    /// (pending or committed). Aborted and vacuumed records are dead to
    /// the engine — and exactly as readable to the carver.
    pub fn engine_live(&self) -> bool {
        self.state == STATE_PENDING || self.state == STATE_COMMITTED
    }
}

/// Carves every version record out of a raw byte buffer (the
/// `undo_versions.ibd` contents, or any slab that embeds them). Scans
/// for the record magic and resyncs past corruption, so a partially
/// scrubbed or truncated file still yields its survivors.
pub fn carve_bytes(data: &[u8]) -> Vec<CarvedVersion> {
    let mut out = Vec::new();
    let mut pos = 0;
    while pos + HEADER_LEN <= data.len() {
        if &data[pos..pos + 4] != MAGIC {
            pos += 1;
            continue;
        }
        match parse_record(data, pos) {
            Some((v, len)) => {
                out.push(v);
                pos += len;
            }
            None => pos += 1,
        }
    }
    out
}

fn parse_record(data: &[u8], pos: usize) -> Option<(CarvedVersion, usize)> {
    let h = &data[pos..pos + HEADER_LEN];
    let state = h[4];
    let op = h[5];
    if state > STATE_VACUUMED || !(1..=2).contains(&op) {
        return None;
    }
    let xmin = u64::from_le_bytes(h[6..14].try_into().unwrap());
    let xmax = u64::from_le_bytes(h[14..22].try_into().unwrap());
    let row_id = u64::from_le_bytes(h[22..30].try_into().unwrap());
    let name_len = u16::from_le_bytes(h[30..32].try_into().unwrap()) as usize;
    let row_len = u32::from_le_bytes(h[32..36].try_into().unwrap()) as usize;
    if name_len > MAX_NAME || row_len > MAX_ROW {
        return None;
    }
    let body = data.get(pos + HEADER_LEN..pos + HEADER_LEN + name_len + row_len)?;
    let table = std::str::from_utf8(&body[..name_len]).ok()?.to_string();
    let row = Row::decode(&body[name_len..]).ok()?;
    if row.id != row_id {
        return None;
    }
    Some((
        CarvedVersion {
            table,
            row_id,
            xmin,
            xmax,
            state,
            op,
            values: row.values,
            offset: pos,
        },
        HEADER_LEN + name_len + row_len,
    ))
}

/// Carves the version store out of a disk image.
pub fn carve_disk(disk: &DiskImage) -> Vec<CarvedVersion> {
    disk.file(VERSIONS_FILE).map_or_else(Vec::new, carve_bytes)
}

/// Reads the in-memory version chains out of a memory image — the same
/// history, no byte carving required.
pub fn from_memory(memory: &MemoryImage) -> Vec<CarvedVersion> {
    memory
        .version_chains
        .iter()
        .flat_map(|c| {
            c.versions.iter().map(|v| CarvedVersion {
                table: c.table.clone(),
                row_id: c.row_id,
                xmin: v.xmin,
                xmax: v.xmax,
                state: v.state,
                op: v.op,
                values: v.row.values.clone(),
                offset: v.offset,
            })
        })
        .collect()
}

/// Groups carved versions into per-row supersession histories, ordered
/// by append position (which is write order — the file is append-only).
/// The returned map is the attacker's reconstruction of every row's
/// edit timeline.
pub fn chains(versions: &[CarvedVersion]) -> BTreeMap<(String, u64), Vec<CarvedVersion>> {
    let mut by_row: BTreeMap<(String, u64), Vec<CarvedVersion>> = BTreeMap::new();
    for v in versions {
        by_row
            .entry((v.table.clone(), v.row_id))
            .or_default()
            .push(v.clone());
    }
    for chain in by_row.values_mut() {
        chain.sort_by_key(|v| v.offset);
    }
    by_row
}

/// The recovered edit history of one row's column: the sequence of
/// superseded values of column `col`, in supersession order, restricted
/// to committed (or tombstoned-after-commit) records. This is the E18
/// payoff: for a victim that UPDATEd a secret K times, the carve
/// returns the K historical values in order.
pub fn column_history(
    versions: &[CarvedVersion],
    table: &str,
    row_id: u64,
    col: usize,
) -> Vec<Value> {
    let mut chain: Vec<&CarvedVersion> = versions
        .iter()
        .filter(|v| v.table == table && v.row_id == row_id && v.values.len() > col)
        .filter(|v| v.state == STATE_COMMITTED || v.state == STATE_VACUUMED)
        .collect();
    chain.sort_by_key(|v| v.offset);
    chain.iter().map(|v| v.values[col].clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use minidb::engine::{Db, DbConfig};

    fn victim(scrub: bool) -> Db {
        let db = Db::open(DbConfig {
            scrub_before_images: scrub,
            ..DbConfig::default()
        });
        let conn = db.connect("victim");
        conn.execute("CREATE TABLE vault (id INT PRIMARY KEY, secret INT)")
            .unwrap();
        conn.execute("INSERT INTO vault VALUES (1, 100)").unwrap();
        for k in 1..=6i64 {
            conn.execute(&format!("UPDATE vault SET secret = {}", 100 + k))
                .unwrap();
        }
        db
    }

    #[test]
    fn carves_full_update_history_from_disk() {
        let db = victim(false);
        let disk = db.disk_image();
        let carved = carve_disk(&disk);
        assert_eq!(carved.len(), 6, "one before-image per UPDATE");
        let history = column_history(&carved, "vault", 1, 1);
        assert_eq!(
            history,
            (0..6).map(|k| Value::Int(100 + k)).collect::<Vec<_>>(),
            "the secret's edit timeline, in commit order"
        );
        // xmax stamps strictly increase along the chain.
        let ch = chains(&carved);
        let chain = &ch[&("vault".to_string(), 1)];
        assert!(chain.windows(2).all(|w| w[0].xmax < w[1].xmax));
    }

    #[test]
    fn tombstoning_vacuum_leaves_history_carvable() {
        let db = victim(false);
        let (reclaimed, _) = db.vacuum();
        assert_eq!(reclaimed, 6);
        assert_eq!(db.version_count(), 0, "engine forgot the versions");
        let carved = carve_disk(&db.disk_image());
        assert_eq!(carved.len(), 6, "carver did not");
        assert!(carved.iter().all(|v| v.state == STATE_VACUUMED));
        assert!(carved.iter().all(|v| !v.engine_live()));
        assert_eq!(column_history(&carved, "vault", 1, 1).len(), 6);
    }

    #[test]
    fn scrubbing_vacuum_destroys_history() {
        let db = victim(true);
        db.vacuum();
        let carved = carve_disk(&db.disk_image());
        assert!(carved.is_empty(), "scrub rewrote the file: {carved:?}");
    }

    #[test]
    fn memory_image_replays_the_same_chains() {
        let db = victim(false);
        let mem = db.memory_image();
        let from_mem = from_memory(&mem);
        let from_disk = carve_disk(&db.disk_image());
        assert_eq!(from_mem.len(), from_disk.len());
        assert_eq!(
            column_history(&from_mem, "vault", 1, 1),
            column_history(&from_disk, "vault", 1, 1)
        );
    }

    #[test]
    fn resyncs_past_garbage_and_rejects_corrupt_records() {
        let db = victim(false);
        let clean = db.disk_image().file(VERSIONS_FILE).unwrap().to_vec();
        // Prepend garbage, corrupt one record's op byte mid-file.
        let mut dirty = vec![0xA5; 17];
        dirty.extend_from_slice(&clean);
        let base = carve_bytes(&dirty);
        assert_eq!(base.len(), 6, "prefix garbage skipped");
        let mut corrupt = dirty.clone();
        corrupt[base[1].offset + 5] = 0xFF; // invalid op byte
        let carved = carve_bytes(&corrupt);
        assert_eq!(carved.len(), 5, "the corrupt record is dropped");
        assert!(carve_bytes(&[]).is_empty());
        assert!(carve_bytes(b"MVERxxxx").is_empty());
    }
}
