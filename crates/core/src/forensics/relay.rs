//! Relay-log forensics: the replication statement stream, carved from a
//! **replica** image.
//!
//! Statement-shipping replication re-frames every binlog event into a
//! relay log on each replica's disk, byte-identical to the binlog wire
//! format. The primary purging its binary logs therefore erases nothing:
//! a snapshot of any one replica still yields the full write history
//! with timestamps. These helpers locate the relay file(s) in a captured
//! [`DiskImage`] and measure how much of an executed workload they
//! betray.

use minidb::snapshot::DiskImage;
use minidb::wal::BinlogEvent;

use super::binlog::parse_binlog;

/// Relay-log file prefix on a replica's data volume (`relay-bin.000001`,
/// `relay-bin.000002`...). The numbered files hold events; the `.index`
/// sidecar holds positions, not statements.
pub const RELAY_PREFIX: &str = "relay-bin.0";

/// Names of relay-log files present in a disk image, in file order.
pub fn relay_files(disk: &DiskImage) -> Vec<&str> {
    disk.files
        .keys()
        .filter(|n| n.starts_with(RELAY_PREFIX))
        .map(|n| n.as_str())
        .collect()
}

/// Carves every intact statement event from every relay log in the
/// image. The relay format *is* the binlog format, so this is
/// `parse_binlog` pointed at different files.
pub fn carve_relay(disk: &DiskImage) -> Vec<BinlogEvent> {
    let mut out = Vec::new();
    for name in relay_files(disk) {
        if let Some(raw) = disk.file(name) {
            out.extend(parse_binlog(raw));
        }
    }
    out
}

/// Fraction of `executed` statements whose exact text was recovered.
/// This is E14's headline number: ≥0.95 from a replica snapshot even
/// after the primary's binlog purge.
pub fn coverage(recovered: &[BinlogEvent], executed: &[String]) -> f64 {
    if executed.is_empty() {
        return 1.0;
    }
    let texts: std::collections::HashSet<&str> =
        recovered.iter().map(|e| e.statement.as_str()).collect();
    let hit = executed
        .iter()
        .filter(|s| texts.contains(s.as_str()))
        .count();
    hit as f64 / executed.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn image_with(files: Vec<(&str, Vec<u8>)>) -> DiskImage {
        let mut m = BTreeMap::new();
        for (n, d) in files {
            m.insert(n.to_string(), d);
        }
        DiskImage { files: m }
    }

    fn framed(statement: &str, ts: i64) -> Vec<u8> {
        minidb::wal::frame(
            &BinlogEvent {
                lsn: 1,
                txn: 1,
                timestamp: ts,
                statement: statement.to_string(),
                ctx: None,
            }
            .encode(),
        )
    }

    #[test]
    fn carves_statements_from_relay_files_only() {
        let mut relay = framed("INSERT INTO t VALUES (1)", 10);
        relay.extend(framed("UPDATE t SET v = 2", 20));
        let disk = image_with(vec![
            ("relay-bin.000001", relay),
            ("relay-bin.index", vec![0u8; 16]),
            ("table_t.ibd", vec![0u8; 64]),
        ]);
        assert_eq!(relay_files(&disk), vec!["relay-bin.000001"]);
        let events = carve_relay(&disk);
        assert_eq!(events.len(), 2);
        assert_eq!(events[1].timestamp, 20);
    }

    #[test]
    fn coverage_counts_exact_text_hits() {
        let events = vec![
            BinlogEvent {
                lsn: 1,
                txn: 1,
                timestamp: 1,
                statement: "INSERT INTO t VALUES (1)".into(),
                ctx: None,
            },
            BinlogEvent {
                lsn: 2,
                txn: 2,
                timestamp: 2,
                statement: "INSERT INTO t VALUES (2)".into(),
                ctx: None,
            },
        ];
        let executed = vec![
            "INSERT INTO t VALUES (1)".to_string(),
            "INSERT INTO t VALUES (2)".to_string(),
            "INSERT INTO t VALUES (3)".to_string(),
        ];
        let c = coverage(&events, &executed);
        assert!((c - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(coverage(&events, &[]), 1.0);
    }
}
