//! Property-based tests for the storage substrate: model equivalence for
//! the B+ tree, encoding round-trips, WAL carving, and digest invariance.

use std::collections::BTreeMap;
use std::ops::Bound;

use minidb::engine::{Db, DbConfig};
use minidb::row::Row;
use minidb::sql::digest_text;
use minidb::storage::btree::BTree;
use minidb::storage::shardpool::ShardedBufferPool;
use minidb::value::Value;
use minidb::vdisk::VDisk;
use minidb::wal::{carve_frames, frame, BinlogEvent, RedoRecord, UndoRecord};
use proptest::prelude::*;

/// One randomly generated statement for the zone-map equivalence test:
/// `(kind, col_a, col_b, v1, v2, flags)` rendered against a schema with
/// `n_ints` INT columns (`c0` is the primary key) and optionally a
/// trailing TEXT column.
fn render_stmt(
    n_ints: usize,
    has_text: bool,
    (kind, col_a, col_b, v1, v2, flags): (u8, usize, usize, i64, i64, u8),
) -> String {
    let cmp = ["=", ">=", "<=", ">", "<"][(flags % 5) as usize];
    let ca = col_a % n_ints;
    let cb = col_b % n_ints;
    match kind % 4 {
        0 => {
            // Multi-column INSERT; duplicate-key errors are part of the
            // behavior under test (both engines must agree on them).
            let mut vals = vec![v1.to_string()];
            for i in 1..n_ints {
                // NULLs exercise the synopsis's untracked-value path.
                if v2 % 7 == 0 && i == 1 {
                    vals.push("NULL".into());
                } else {
                    vals.push((v2 + i as i64 * 13).to_string());
                }
            }
            if has_text {
                vals.push(format!("'r{v1}'"));
            }
            format!("INSERT INTO t VALUES ({})", vals.join(", "))
        }
        1 => format!("UPDATE t SET c{cb} = {v2} WHERE c{ca} {cmp} {v1}"),
        2 => format!("DELETE FROM t WHERE c{ca} {cmp} {v1}"),
        _ => {
            let width = (v2.rem_euclid(40)) + 1;
            let what = if flags & 0x20 != 0 { "COUNT(*)" } else { "*" };
            let tail = match (flags & 0x40 != 0, flags & 0x80 != 0) {
                // LIMIT without ORDER BY: the pushdown must still return
                // the same prefix (scan order is deterministic).
                (true, false) => format!(" LIMIT {}", (flags % 5) + 1),
                (true, true) => format!(" ORDER BY c{cb} LIMIT {}", (flags % 5) + 1),
                (false, true) => format!(" ORDER BY c{cb}"),
                (false, false) => String::new(),
            };
            format!(
                "SELECT {what} FROM t WHERE c{ca} >= {v1} AND c{ca} < {}{tail}",
                v1 + width
            )
        }
    }
}

/// A fresh engine for the equivalence test: query cache off so every
/// SELECT really runs the executor.
fn equivalence_db(zone_maps: bool) -> Db {
    Db::open(DbConfig {
        redo_capacity: 1 << 18,
        undo_capacity: 1 << 18,
        query_cache_enabled: false,
        zone_maps_enabled: zone_maps,
        ..DbConfig::default()
    })
}

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        "[a-zA-Z0-9 'ـ❤]{0,40}".prop_map(Value::Text),
        proptest::collection::vec(any::<u8>(), 0..40).prop_map(Value::Bytes),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn value_encoding_round_trips(v in arb_value()) {
        let mut buf = Vec::new();
        v.encode(&mut buf);
        let mut pos = 0;
        prop_assert_eq!(Value::decode(&buf, &mut pos).unwrap(), v);
        prop_assert_eq!(pos, buf.len());
    }

    #[test]
    fn row_encoding_round_trips(
        id in any::<u64>(),
        values in proptest::collection::vec(arb_value(), 0..8),
    ) {
        let row = Row { id, values };
        prop_assert_eq!(Row::decode(&row.encode()).unwrap(), row);
    }

    #[test]
    fn wal_records_round_trip(
        lsn in any::<u64>(),
        txn in any::<u64>(),
        table_id in any::<u32>(),
        page_no in any::<u32>(),
        slot in any::<u16>(),
        body in proptest::collection::vec(any::<u8>(), 0..100),
        ts in any::<i64>(),
        stmt in "[ -~]{0,80}",
    ) {
        let r = RedoRecord {
            lsn, txn, op: minidb::wal::OpKind::Insert, table_id, page_no, slot,
            after: body.clone(),
        };
        prop_assert_eq!(RedoRecord::decode(&r.encode()).unwrap(), r);
        let u = UndoRecord {
            lsn, txn, op: minidb::wal::OpKind::Delete, table_id, row_id: page_no as u64,
            before: body,
        };
        prop_assert_eq!(UndoRecord::decode(&u.encode()).unwrap(), u);
        let b = BinlogEvent { lsn, txn, timestamp: ts, statement: stmt, ctx: None };
        prop_assert_eq!(BinlogEvent::decode(&b.encode()).unwrap(), b);
    }

    #[test]
    fn carving_recovers_all_frames_through_garbage(
        payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..40), 0..12),
        garbage in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        // Interleave frames with garbage that contains no frame magic.
        let clean: Vec<u8> = garbage
            .iter()
            .map(|&b| if b == 0xDE { 0xDD } else { b })
            .collect();
        let mut raw = Vec::new();
        for p in &payloads {
            raw.extend_from_slice(&clean);
            raw.extend_from_slice(&frame(p));
        }
        raw.extend_from_slice(&clean);
        let found = carve_frames(&raw);
        prop_assert_eq!(found.len(), payloads.len());
        for ((_, got), want) in found.iter().zip(&payloads) {
            prop_assert_eq!(*got, want.as_slice());
        }
    }

    #[test]
    fn binlog_event_round_trips_unicode_statements(
        lsn in any::<u64>(),
        txn in any::<u64>(),
        ts in any::<i64>(),
        stmt in "\\PC{0,60}",
        trace_id in any::<u128>(),
        span_id in any::<u64>(),
        sampled in any::<bool>(),
        with_ctx in any::<bool>(),
    ) {
        // Statement text is arbitrary UTF-8 (multi-byte identifiers,
        // emoji in string literals) — the wire encoding must not assume
        // ASCII, because the replica replays this text verbatim. The
        // optional distributed trace context tail must ride along (or
        // stay absent) without disturbing the statement bytes.
        let ctx = with_ctx.then_some(mdb_trace::TraceContext { trace_id, span_id, sampled });
        let b = BinlogEvent { lsn, txn, timestamp: ts, statement: stmt, ctx };
        let encoded = b.encode();
        prop_assert_eq!(BinlogEvent::decode(&encoded).unwrap(), b);
    }

    #[test]
    fn carving_a_wrapped_suffix_recovers_exactly_the_surviving_frames(
        payloads in proptest::collection::vec(
            // No 0xDE byte in payloads, so a cut mid-payload cannot forge
            // a frame magic and derail the scan.
            proptest::collection::vec(any::<u8>().prop_map(|b| if b == 0xDE { 0xDD } else { b }), 0..32),
            1..12,
        ),
        cut_frac in 0.0f64..1.0,
    ) {
        // Circular-wrap model: the oldest bytes are overwritten, so the
        // readable region is an arbitrary suffix of the append stream.
        // A frame whose header was clipped must be skipped; every frame
        // that starts at or after the cut must survive verbatim.
        let mut raw = Vec::new();
        let mut starts = Vec::new();
        for p in &payloads {
            starts.push(raw.len());
            raw.extend_from_slice(&frame(p));
        }
        let cut = (cut_frac * raw.len() as f64) as usize;
        let surviving: Vec<&Vec<u8>> = payloads
            .iter()
            .zip(&starts)
            .filter(|(_, &s)| s >= cut)
            .map(|(p, _)| p)
            .collect();
        let found = carve_frames(&raw[cut..]);
        prop_assert_eq!(found.len(), surviving.len());
        for ((_, got), want) in found.iter().zip(&surviving) {
            prop_assert_eq!(*got, want.as_slice());
        }
    }

    #[test]
    fn carving_survives_random_corruption(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..32),
            1..10,
        ),
        corrupt_at_frac in 0.0f64..1.0,
        corruption in proptest::collection::vec(any::<u8>(), 1..24),
    ) {
        // Overwrite a random slice with random bytes (torn write / bad
        // sector). The carver must not panic, and every frame that lies
        // entirely before the corrupted range is still recovered verbatim
        // (the scan is deterministic up to the first damaged byte).
        let mut raw = Vec::new();
        let mut ends = Vec::new();
        for p in &payloads {
            raw.extend_from_slice(&frame(p));
            ends.push(raw.len());
        }
        let at = (corrupt_at_frac * raw.len() as f64) as usize;
        for (i, b) in corruption.iter().enumerate() {
            if at + i < raw.len() {
                raw[at + i] = *b;
            }
        }
        let found = carve_frames(&raw);
        let intact: Vec<&Vec<u8>> = payloads
            .iter()
            .zip(&ends)
            .filter(|(_, &e)| e <= at)
            .map(|(p, _)| p)
            .collect();
        prop_assert!(found.len() >= intact.len());
        for ((_, got), want) in found.iter().zip(&intact) {
            prop_assert_eq!(*got, want.as_slice());
        }
    }

    #[test]
    fn trace_records_round_trip_through_truncation_and_corruption(
        stmts in proptest::collection::vec(("\\PC{0,48}", 0u64..10_000, 0u64..500), 1..8),
        cut_frac in 0.0f64..1.0,
        flip_frac in 0.0f64..1.0,
        flip_bit in 0u8..8,
    ) {
        // The slow log is a stream of self-delimiting, checksummed trace
        // records. Build one from arbitrary statement texts (which may
        // themselves contain the record magic), then check the carver
        // against truncation and single-byte corruption.
        let mut raw = Vec::new();
        let mut spans = Vec::new(); // (start, end) of each record
        let mut traces = Vec::new();
        for (i, (stmt, dur, rows)) in stmts.iter().enumerate() {
            let mut b = mdb_trace::TraceBuilder::new(i as u64, 1_500_000_000 + i as i64, stmt, "d?");
            b.begin("parse");
            b.end(5);
            b.begin("scan");
            b.attr("rows_examined", *rows);
            b.table("customers");
            b.end_elastic();
            let t = b.finish(dur + 10);
            let start = raw.len();
            raw.extend_from_slice(&mdb_trace::record::encode_record(&t));
            spans.push((start, raw.len()));
            traces.push(t);
        }

        // 1. The intact stream carves back to exactly the input.
        let carved = mdb_trace::record::carve(&raw);
        prop_assert_eq!(carved.len(), traces.len());
        for (c, want) in carved.iter().zip(&traces) {
            prop_assert_eq!(&c.trace, want);
        }

        // 2. Truncation (log rotated / partially overwritten): every
        // record that ends at or before the cut survives verbatim.
        let cut = (cut_frac * raw.len() as f64) as usize;
        let carved = mdb_trace::record::carve(&raw[..cut]);
        let intact: Vec<&mdb_trace::StatementTrace> = traces
            .iter()
            .zip(&spans)
            .filter(|(_, &(_, e))| e <= cut)
            .map(|(t, _)| t)
            .collect();
        prop_assert_eq!(carved.len(), intact.len());
        for (c, want) in carved.iter().zip(&intact) {
            prop_assert_eq!(&&c.trace, want);
        }

        // 3. A single flipped bit mid-stream fails that record's CRC but
        // costs at most one record; all others still carve verbatim.
        let mut damaged = raw.clone();
        let at = ((flip_frac * raw.len() as f64) as usize).min(raw.len() - 1);
        damaged[at] ^= 1u8 << flip_bit;
        let carved = mdb_trace::record::carve(&damaged);
        prop_assert!(carved.len() >= traces.len() - 1, "at most one record lost");
        let hit = spans.iter().position(|&(s, e)| s <= at && at < e);
        for c in &carved {
            let matches_original = traces.iter().any(|t| t == &c.trace);
            // Any surviving record must be one of the originals, except
            // possibly the damaged one if the flip landed in a slack
            // position that still validates (it cannot: CRC covers the
            // whole payload and header; a magic-byte flip just hides it).
            if let Some(h) = hit {
                if c.trace != traces[h] {
                    prop_assert!(matches_original);
                }
            } else {
                prop_assert!(matches_original);
            }
        }
    }

    #[test]
    fn digest_invariant_under_literal_substitution(
        a in 0i64..100000,
        b in 0i64..100000,
        s1 in "[a-z]{1,12}",
        s2 in "[a-z]{1,12}",
    ) {
        let q1 = format!("SELECT * FROM t WHERE x = {a} AND y = '{s1}'");
        let q2 = format!("SELECT * FROM t WHERE x = {b} AND y = '{s2}'");
        prop_assert_eq!(digest_text(&q1), digest_text(&q2));
        // But structure changes the digest.
        let q3 = format!("SELECT * FROM t WHERE x = {a}");
        prop_assert_ne!(digest_text(&q1), digest_text(&q3));
    }

    #[test]
    fn btree_matches_btreemap_model(
        ops in proptest::collection::vec((0u8..3, 0i64..200, any::<u64>()), 1..120),
        probe in 0i64..200,
        range in (0i64..200, 0i64..60),
    ) {
        let bp = ShardedBufferPool::new(64, 4);
        let mut vd = VDisk::new();
        let tree = BTree::create(&bp, &mut vd, "idx.ibd").unwrap();
        // Model: key -> set of row ids (duplicates allowed, so multimap).
        let mut model: BTreeMap<i64, Vec<u64>> = BTreeMap::new();
        for (op, key, rid) in &ops {
            match op {
                0 | 1 => {
                    tree.insert(&bp, &mut vd, &Value::Int(*key), *rid).unwrap();
                    model.entry(*key).or_default().push(*rid);
                }
                _ => {
                    let removed = tree.delete(&bp, &mut vd, &Value::Int(*key), *rid).unwrap();
                    let model_removed = model.get_mut(key).map(|v| {
                        if let Some(pos) = v.iter().position(|r| r == rid) {
                            v.remove(pos);
                            true
                        } else {
                            false
                        }
                    }).unwrap_or(false);
                    prop_assert_eq!(removed, model_removed);
                }
            }
        }
        // Point lookup.
        let found = tree.search_eq(&bp, &mut vd, &Value::Int(probe)).unwrap();
        let mut got = found.row_ids.clone();
        got.sort_unstable();
        let mut want = model.get(&probe).cloned().unwrap_or_default();
        want.sort_unstable();
        prop_assert_eq!(got, want);
        // Range scan.
        let (lo, width) = range;
        let hi = lo + width;
        let found = tree
            .search_range(
                &bp,
                &mut vd,
                Bound::Included(Value::Int(lo)),
                Bound::Included(Value::Int(hi)),
            )
            .unwrap();
        let mut got = found.row_ids.clone();
        got.sort_unstable();
        let mut want: Vec<u64> = model
            .range(lo..=hi)
            .flat_map(|(_, v)| v.iter().copied())
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn zone_map_pruned_scans_match_full_scans(
        n_ints in 1usize..=3,
        has_text in any::<bool>(),
        ops in proptest::collection::vec(
            (0u8..8, 0usize..3, 0usize..3, -60i64..60, -60i64..60, any::<u8>()),
            1..48,
        ),
    ) {
        // The stale-synopsis safety net: run one random statement stream
        // (inserts, widening/narrowing updates, deletes, range SELECTs
        // with and without LIMIT/ORDER BY) against two engines that
        // differ only in `zone_maps_enabled`, and demand byte-identical
        // results — including errors — for every statement. A synopsis
        // left stale by any DML path would prune a live page and drop
        // rows here.
        let with = equivalence_db(true);
        let without = equivalence_db(false);
        let mut schema: Vec<String> = (0..n_ints)
            .map(|i| format!("c{i} INT{}", if i == 0 { " PRIMARY KEY" } else { "" }))
            .collect();
        if has_text {
            schema.push("note TEXT".into());
        }
        let create = format!("CREATE TABLE t ({})", schema.join(", "));
        let conn_w = with.connect("app");
        let conn_wo = without.connect("app");
        conn_w.execute(&create).unwrap();
        conn_wo.execute(&create).unwrap();
        for op in &ops {
            let stmt = render_stmt(n_ints, has_text, *op);
            let a = conn_w.execute(&stmt);
            let b = conn_wo.execute(&stmt);
            match (&a, &b) {
                (Ok(ra), Ok(rb)) => {
                    // `rows_examined` legitimately differs: examining
                    // fewer rows is what pruning is *for*. Everything
                    // the client sees must match exactly.
                    prop_assert_eq!(&ra.columns, &rb.columns, "divergence on {}", stmt);
                    prop_assert_eq!(&ra.rows, &rb.rows, "divergence on {}", stmt);
                    prop_assert_eq!(
                        ra.rows_affected, rb.rows_affected,
                        "divergence on {}", stmt
                    );
                }
                (Err(_), Err(_)) => {}
                _ => prop_assert!(false, "one engine errored on {}: {:?} vs {:?}", stmt, a, b),
            }
        }
        // Final full-table sweep: the end states agree row for row.
        let sweep = "SELECT * FROM t WHERE c0 >= -1000 AND c0 < 1000 ORDER BY c0";
        prop_assert_eq!(
            conn_w.execute(sweep).unwrap().rows,
            conn_wo.execute(sweep).unwrap().rows
        );
    }

    #[test]
    fn btree_survives_flush_reload(
        keys in proptest::collection::vec(0i64..500, 1..100),
    ) {
        let bp = ShardedBufferPool::new(32, 4);
        let mut vd = VDisk::new();
        let tree = BTree::create(&bp, &mut vd, "idx.ibd").unwrap();
        for (i, k) in keys.iter().enumerate() {
            tree.insert(&bp, &mut vd, &Value::Int(*k), i as u64).unwrap();
        }
        bp.flush_all(&mut vd);
        let cold = ShardedBufferPool::new(8, 4);
        let all = tree
            .search_range(&cold, &mut vd, Bound::Unbounded, Bound::Unbounded)
            .unwrap();
        prop_assert_eq!(all.row_ids.len(), keys.len());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Sealed-WAL round trip: seal arbitrary payloads into enc frames,
    /// carve-resync the concatenated image, open every frame with the
    /// key — the result is the original payload sequence, exactly like
    /// the plaintext framing pipeline.
    #[test]
    fn sealed_frames_round_trip_through_carving(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..96), 1..12),
        key in any::<[u8; 32]>(),
    ) {
        let crypto = minidb::wal::WalCrypto::new(key, 1);
        let mut image = Vec::new();
        for (i, p) in payloads.iter().enumerate() {
            let sealed = crypto.seal(edb_crypto::logenc::STREAM_REDO, i as u64, p);
            image.extend_from_slice(&minidb::wal::frame_enc(&sealed));
        }
        let carved = minidb::wal::carve_enc_frames(&image);
        prop_assert_eq!(carved.len(), payloads.len());
        for (i, (_, sealed)) in carved.iter().enumerate() {
            let (origin, stream, seq, plain) = crypto.open(sealed).expect("key holder opens");
            prop_assert_eq!(origin, 1);
            prop_assert_eq!(stream, edb_crypto::logenc::STREAM_REDO);
            prop_assert_eq!(seq, i as u64);
            prop_assert_eq!(&plain, &payloads[i]);
        }
        // The keyless plaintext carver sees nothing in the same bytes.
        prop_assert_eq!(carve_frames(&image).len(), 0);
    }

    /// Truncating a sealed image at an arbitrary byte loses only the
    /// tail: every frame wholly inside the prefix still opens, and no
    /// torn frame ever opens as a different payload.
    #[test]
    fn sealed_image_truncation_keeps_the_intact_prefix(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 1..64), 1..8),
        cut_seed in any::<u64>(),
    ) {
        let crypto = minidb::wal::WalCrypto::new([9u8; 32], 1);
        let mut image = Vec::new();
        let mut ends = Vec::new();
        for (i, p) in payloads.iter().enumerate() {
            let sealed = crypto.seal(edb_crypto::logenc::STREAM_UNDO, i as u64, p);
            image.extend_from_slice(&minidb::wal::frame_enc(&sealed));
            ends.push(image.len());
        }
        let cut = (cut_seed as usize) % (image.len() + 1);
        let whole = ends.iter().filter(|&&e| e <= cut).count();
        let carved = minidb::wal::carve_enc_frames(&image[..cut]);
        prop_assert_eq!(carved.len(), whole, "cut at {} of {}", cut, image.len());
        for (i, (_, sealed)) in carved.iter().enumerate() {
            let (_, _, seq, plain) = crypto.open(sealed).expect("intact prefix opens");
            prop_assert_eq!(seq, i as u64);
            prop_assert_eq!(&plain, &payloads[i]);
        }
    }

    /// Flipping one bit anywhere in a sealed image loses at most two
    /// records — the flipped one, plus the next frame if the flip hit a
    /// length header and swallowed it — and nothing that still opens is
    /// altered (the MAC rejects every corrupted record, so a bit-flip
    /// cannot silently rewrite replayed history).
    #[test]
    fn sealed_image_bit_flip_never_alters_what_opens(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 1..48), 2..8),
        flip_seed in any::<u64>(),
    ) {
        let crypto = minidb::wal::WalCrypto::new([7u8; 32], 1);
        let mut image = Vec::new();
        for (i, p) in payloads.iter().enumerate() {
            let sealed = crypto.seal(edb_crypto::logenc::STREAM_REDO, i as u64, p);
            image.extend_from_slice(&minidb::wal::frame_enc(&sealed));
        }
        let bit = (flip_seed as usize) % (image.len() * 8);
        image[bit / 8] ^= 1 << (bit % 8);
        let mut recovered = 0usize;
        for (_, sealed) in minidb::wal::carve_enc_frames(&image) {
            if let Some((_, _, seq, plain)) = crypto.open(sealed) {
                // Anything that opens is authentic: byte-identical to
                // what was sealed under that sequence number.
                prop_assert_eq!(&plain, &payloads[seq as usize]);
                recovered += 1;
            }
        }
        prop_assert!(
            recovered + 2 >= payloads.len(),
            "one flipped bit lost {} of {} records",
            payloads.len() - recovered,
            payloads.len()
        );
    }
}
