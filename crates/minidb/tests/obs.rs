//! End-to-end tests for the engine's observability port: a live `Db`
//! with `obs_listen` set, probed over real TCP with the crate's
//! curl-style client — `/metrics`, `/healthz`, `/varz` — plus the
//! diagnostics-wipe contract for the scrape retention ring.

use mdb_obs::{http, prom};
use minidb::{Db, DbConfig};

fn obs_config() -> DbConfig {
    DbConfig {
        obs_listen: Some("127.0.0.1:0".into()),
        ..DbConfig::default()
    }
}

fn seed(db: &Db) {
    let conn = db.connect("app");
    conn.execute("CREATE TABLE patients (id INT PRIMARY KEY, age INT)")
        .unwrap();
    for i in 0..10 {
        conn.execute(&format!("INSERT INTO patients VALUES ({i}, {})", 20 + i))
            .unwrap();
    }
    conn.execute("SELECT * FROM patients WHERE age >= 25")
        .unwrap();
}

#[test]
fn metrics_healthz_varz_against_live_db() {
    let db = Db::open(obs_config());
    let addr = db.obs_addr().expect("obs server must be running");
    seed(&db);

    // /metrics: exposition parses, and the engine's counters are there
    // with exact original names recoverable from the `name` label.
    let (status, body) = http::get(addr, "/metrics", None).unwrap();
    assert_eq!(status, 200);
    let samples = prom::parse(&body).expect("exposition must parse");
    let find = |name: &str| {
        samples
            .iter()
            .find(|s| s.metric_name() == Some(name) && !s.series.ends_with("_bucket"))
            .unwrap_or_else(|| panic!("missing {name} in:\n{body}"))
    };
    assert_eq!(find("sql.statements").value_u64(), Some(12));
    // Per-table access counters leak the (user-chosen) table name.
    assert!(find("sql.table_access.patients").value_u64().unwrap() >= 11);
    // Histogram series carry _sum/_count; rows_returned sums the SELECT.
    let sum = samples
        .iter()
        .find(|s| s.series.ends_with("_sum") && s.metric_name() == Some("sql.rows_returned"))
        .unwrap();
    assert!(sum.value_u64().unwrap() >= 5, "{body}");

    // /healthz: ready, with WAL and bufpool components.
    let (status, body) = http::get(addr, "/healthz", None).unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("\"ready\":true"), "{body}");
    assert!(body.contains("\"wal\""), "{body}");
    assert!(body.contains("\"bufpool\""), "{body}");

    // /varz: the registry's JSON dump plus server meta.
    let (status, body) = http::get(addr, "/varz", None).unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("\"retained_scrapes\":1"), "{body}");
    assert!(body.contains("sql.statements"), "{body}");

    db.shutdown();
    // After shutdown the server is gone: the address stops accepting.
    assert!(db.obs_addr().is_none());
}

#[test]
fn crashed_engine_reports_not_ready() {
    let db = Db::open(obs_config());
    let addr = db.obs_addr().unwrap();
    seed(&db);
    db.crash();
    let (status, body) = http::get(addr, "/healthz", None).unwrap();
    assert_eq!(status, 503);
    assert!(body.contains("\"ready\":false"), "{body}");
    assert!(body.contains("crashed"), "{body}");
    db.recover().unwrap();
    let (status, _) = http::get(addr, "/healthz", None).unwrap();
    assert_eq!(status, 200);
}

#[test]
fn auth_token_gates_the_data_endpoints() {
    let db = Db::open(DbConfig {
        obs_auth_token: Some("scrape-secret".into()),
        ..obs_config()
    });
    let addr = db.obs_addr().unwrap();
    assert_eq!(http::get(addr, "/metrics", None).unwrap().0, 401);
    assert_eq!(http::get(addr, "/varz", None).unwrap().0, 401);
    assert_eq!(http::get(addr, "/healthz", None).unwrap().0, 200);
    let (status, _) = http::get(addr, "/metrics", Some("scrape-secret")).unwrap();
    assert_eq!(status, 200);
}

#[test]
fn flush_diagnostics_clears_the_retention_ring() {
    // Regression: `flush_diagnostics` + `telemetry_scrub_on_flush` must
    // clear the obs retention ring along with the registry and trace
    // ring — retained scrape deltas ARE diagnostics state.
    let db = Db::open(DbConfig {
        telemetry_scrub_on_flush: true,
        ..obs_config()
    });
    let addr = db.obs_addr().unwrap();
    let ring = db.obs_ring().unwrap();
    seed(&db);
    for _ in 0..3 {
        http::get(addr, "/metrics", None).unwrap();
    }
    assert_eq!(ring.len(), 3);
    assert!(ring
        .entries()
        .last()
        .unwrap()
        .totals
        .counter("sql.statements")
        .is_some());

    db.flush_diagnostics();
    assert!(
        ring.is_empty(),
        "flush_diagnostics must clear the scrape ring"
    );

    // And the next scrape starts from scrubbed counters: no residual
    // totals, no deltas against pre-flush state.
    let (_, body) = http::get(addr, "/metrics", None).unwrap();
    let samples = prom::parse(&body).unwrap();
    let stm = samples
        .iter()
        .find(|s| s.metric_name() == Some("sql.statements"))
        .unwrap();
    assert_eq!(stm.value_u64(), Some(0));
    assert_eq!(ring.len(), 1);
    assert!(ring.entries()[0].counter_deltas.is_empty());
}

#[test]
fn flush_without_scrub_flag_keeps_the_ring() {
    // Default config: FLUSH wipes perf_schema but the status port keeps
    // its retention — the forgotten-surface default E17 exploits.
    let db = Db::open(obs_config());
    let addr = db.obs_addr().unwrap();
    let ring = db.obs_ring().unwrap();
    seed(&db);
    http::get(addr, "/metrics", None).unwrap();
    http::get(addr, "/metrics", None).unwrap();
    db.flush_diagnostics();
    assert_eq!(
        ring.len(),
        2,
        "default flush must NOT clear the scrape ring"
    );
}

#[test]
fn crash_clears_ring_and_scrub_config_quantizes() {
    let db = Db::open(DbConfig {
        obs_scrub: true,
        ..obs_config()
    });
    let addr = db.obs_addr().unwrap();
    seed(&db);
    let (_, body) = http::get(addr, "/metrics", None).unwrap();
    // Scrubbed exposition: no per-table series, quantized statements.
    assert!(!body.contains("table_access"), "{body}");
    let samples = prom::parse(&body).unwrap();
    let stm = samples
        .iter()
        .find(|s| s.metric_name() == Some("sql.statements"))
        .unwrap();
    assert_eq!(stm.value_u64(), Some(16)); // 12 → next power of two.

    let ring = db.obs_ring().unwrap();
    assert_eq!(ring.len(), 1);
    db.crash();
    assert!(ring.is_empty(), "crash must drop retained scrapes");
}

#[test]
fn group_commit_metrics_surface_on_both_planes() {
    // The group-commit pipeline's telemetry — `wal.fsyncs` (now one per
    // coalesced batch), the `wal.group_commit_batch_size` histogram, and
    // the `wal.group_commit_waits` counter — must show up on BOTH
    // operator planes: the remote `/metrics` scrape and the SQL-visible
    // `information_schema.metrics` table.
    let db = Db::open(DbConfig {
        group_commit: true,
        ..obs_config()
    });
    let addr = db.obs_addr().unwrap();
    let conn = db.connect("app");
    conn.execute("CREATE TABLE t (id INT PRIMARY KEY)").unwrap();
    // Concurrent committers so at least one commit rides a batch behind
    // an in-progress flush.
    std::thread::scope(|s| {
        for t in 0..4usize {
            let db = db.clone();
            s.spawn(move || {
                let c = db.connect("w");
                for i in 0..10usize {
                    c.execute(&format!("INSERT INTO t VALUES ({})", t * 10 + i))
                        .unwrap();
                }
            });
        }
    });

    // Plane 1: the Prometheus scrape.
    let (status, body) = http::get(addr, "/metrics", None).unwrap();
    assert_eq!(status, 200);
    let samples = prom::parse(&body).unwrap();
    let find = |name: &str| {
        samples
            .iter()
            .find(|s| s.metric_name() == Some(name) && !s.series.ends_with("_bucket"))
            .unwrap_or_else(|| panic!("missing {name} in:\n{body}"))
    };
    let fsyncs = find("wal.fsyncs").value_u64().unwrap();
    // The satellite accounting fix: 41 commits (40 inserts + 1 DDL) must
    // have coalesced into strictly fewer device syncs than statements.
    assert!((1..=41).contains(&fsyncs), "{fsyncs} fsyncs");
    assert!(
        body.contains("wal.group_commit_batch_size"),
        "batch-size histogram missing:\n{body}"
    );
    find("wal.group_commit_waits");

    // Plane 2: plain SQL.
    let rows = conn
        .execute("SELECT metric, value FROM information_schema.metrics")
        .unwrap();
    let sql_metric = |name: &str| {
        rows.rows
            .iter()
            .find(|r| r[0].to_string() == name)
            .unwrap_or_else(|| panic!("missing {name} in information_schema.metrics"))[1]
            .to_string()
            .parse::<i64>()
            .unwrap()
    };
    assert_eq!(sql_metric("wal.fsyncs") as u64, fsyncs);
    let batches = sql_metric("wal.group_commit_batch_size.count");
    assert_eq!(batches as u64, fsyncs, "one histogram sample per batch");
    assert!(sql_metric("wal.group_commit_waits") >= 0);
}
