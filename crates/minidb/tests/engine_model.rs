//! Model checking the engine: arbitrary sequences of DML, transactions,
//! crashes, and recoveries, cross-checked against a plain `BTreeMap`
//! model at every step.

use std::collections::BTreeMap;

use minidb::engine::{Db, DbConfig};
use minidb::value::Value;
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Op {
    Insert { key: i64, val: i64 },
    Update { key: i64, val: i64 },
    Delete { key: i64 },
    Begin,
    Commit,
    Rollback,
    CrashRecover,
    Checkpoint,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => (0i64..40, any::<i64>()).prop_map(|(key, val)| Op::Insert { key, val }),
        3 => (0i64..40, any::<i64>()).prop_map(|(key, val)| Op::Update { key, val }),
        2 => (0i64..40).prop_map(|key| Op::Delete { key }),
        1 => Just(Op::Begin),
        1 => Just(Op::Commit),
        1 => Just(Op::Rollback),
        1 => Just(Op::CrashRecover),
        1 => Just(Op::Checkpoint),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn engine_matches_btreemap_model(ops in proptest::collection::vec(arb_op(), 1..60)) {
        let config = DbConfig {
            redo_capacity: 256 * 1024,
            undo_capacity: 256 * 1024,
            ..DbConfig::default()
        };
        let db = Db::open(config);
        let mut conn = db.connect("model");
        conn.execute("CREATE TABLE m (k INT PRIMARY KEY, v INT)").unwrap();

        // Committed state and the in-transaction overlay.
        let mut committed: BTreeMap<i64, i64> = BTreeMap::new();
        let mut overlay: Option<BTreeMap<i64, i64>> = None;

        for op in &ops {
            let state = overlay.as_mut().unwrap_or(&mut committed);
            match op {
                Op::Insert { key, val } => {
                    let r = conn.execute(&format!("INSERT INTO m VALUES ({key}, {val})"));
                    if state.contains_key(key) {
                        prop_assert!(r.is_err(), "duplicate pk {key} must fail");
                    } else {
                        prop_assert!(r.is_ok(), "{r:?}");
                        state.insert(*key, *val);
                    }
                }
                Op::Update { key, val } => {
                    let r = conn
                        .execute(&format!("UPDATE m SET v = {val} WHERE k = {key}"))
                        .unwrap();
                    let expect = u64::from(state.contains_key(key));
                    prop_assert_eq!(r.rows_affected, expect);
                    if state.contains_key(key) {
                        state.insert(*key, *val);
                    }
                }
                Op::Delete { key } => {
                    let r = conn
                        .execute(&format!("DELETE FROM m WHERE k = {key}"))
                        .unwrap();
                    prop_assert_eq!(r.rows_affected, u64::from(state.remove(key).is_some()));
                }
                Op::Begin => {
                    if overlay.is_none() {
                        conn.execute("BEGIN").unwrap();
                        overlay = Some(committed.clone());
                    }
                }
                Op::Commit => {
                    if let Some(o) = overlay.take() {
                        conn.execute("COMMIT").unwrap();
                        committed = o;
                    }
                }
                Op::Rollback => {
                    if overlay.take().is_some() {
                        conn.execute("ROLLBACK").unwrap();
                    }
                }
                Op::CrashRecover => {
                    // Crash discards any open transaction.
                    overlay = None;
                    db.crash();
                    db.recover().unwrap();
                    conn = db.connect("model");
                }
                Op::Checkpoint => {
                    db.shutdown(); // Flush + checkpoint; engine stays usable.
                }
            }
        }
        // Final audit: engine contents equal the model (committed view if
        // a txn is still open is the overlay — the connection's view).
        let view = overlay.as_ref().unwrap_or(&committed);
        let r = conn.execute("SELECT k, v FROM m ORDER BY k").unwrap();
        let got: Vec<(i64, i64)> = r
            .rows
            .iter()
            .map(|row| match (&row[0], &row[1]) {
                (Value::Int(k), Value::Int(v)) => (*k, *v),
                other => panic!("{other:?}"),
            })
            .collect();
        let want: Vec<(i64, i64)> = view.iter().map(|(&k, &v)| (k, v)).collect();
        prop_assert_eq!(got, want);
        // And one more crash/recover must preserve the *committed* state.
        db.crash();
        db.recover().unwrap();
        let conn = db.connect("audit");
        let r = conn.execute("SELECT k, v FROM m ORDER BY k").unwrap();
        let got: Vec<(i64, i64)> = r
            .rows
            .iter()
            .map(|row| match (&row[0], &row[1]) {
                (Value::Int(k), Value::Int(v)) => (*k, *v),
                other => panic!("{other:?}"),
            })
            .collect();
        let want: Vec<(i64, i64)> = committed.iter().map(|(&k, &v)| (k, v)).collect();
        prop_assert_eq!(got, want);
    }
}
