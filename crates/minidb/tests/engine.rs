//! End-to-end engine tests: SQL execution, planning, transactions,
//! crash/recovery, and the leakage-relevant instrumentation.

use minidb::engine::{Db, DbConfig};
use minidb::value::Value;

fn db() -> Db {
    Db::open(DbConfig::default())
}

fn setup_customers(db: &Db) {
    let conn = db.connect("app");
    conn.execute("CREATE TABLE customers (id INT PRIMARY KEY, state TEXT, age INT)")
        .unwrap();
    conn.execute(
        "INSERT INTO customers VALUES \
         (1, 'IN', 30), (2, 'AZ', 25), (3, 'IN', 41), (4, 'CA', 25), (5, 'NY', 67)",
    )
    .unwrap();
}

#[test]
fn basic_crud() {
    let db = db();
    setup_customers(&db);
    let conn = db.connect("app");

    let r = conn
        .execute("SELECT * FROM customers WHERE state = 'IN'")
        .unwrap();
    assert_eq!(r.rows.len(), 2);
    assert_eq!(r.columns, vec!["id", "state", "age"]);

    let r = conn
        .execute("UPDATE customers SET age = 31 WHERE id = 1")
        .unwrap();
    assert_eq!(r.rows_affected, 1);
    let r = conn
        .execute("SELECT age FROM customers WHERE id = 1")
        .unwrap();
    assert_eq!(r.rows[0][0], Value::Int(31));

    let r = conn
        .execute("DELETE FROM customers WHERE age >= 60")
        .unwrap();
    assert_eq!(r.rows_affected, 1);
    let r = conn.execute("SELECT COUNT(*) FROM customers").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(4));
}

#[test]
fn order_by_and_limit() {
    let db = db();
    setup_customers(&db);
    let conn = db.connect("app");
    let r = conn
        .execute("SELECT id FROM customers ORDER BY age DESC LIMIT 2")
        .unwrap();
    assert_eq!(r.rows.len(), 2);
    assert_eq!(r.rows[0][0], Value::Int(5)); // age 67
    assert_eq!(r.rows[1][0], Value::Int(3)); // age 41
}

#[test]
fn primary_key_uniqueness() {
    let db = db();
    setup_customers(&db);
    let conn = db.connect("app");
    let err = conn
        .execute("INSERT INTO customers VALUES (1, 'TX', 50)")
        .unwrap_err();
    assert!(format!("{err}").contains("duplicate key"), "{err}");
    // The failed statement must not have partially applied.
    let r = conn.execute("SELECT COUNT(*) FROM customers").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(5));
}

#[test]
fn multi_row_insert_atomicity_on_error() {
    let db = db();
    setup_customers(&db);
    let conn = db.connect("app");
    // Third row collides with pk 2: the whole statement must roll back.
    let err =
        conn.execute("INSERT INTO customers VALUES (10, 'WA', 20), (11, 'OR', 21), (2, 'XX', 1)");
    assert!(err.is_err());
    let r = conn.execute("SELECT COUNT(*) FROM customers").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(5));
    let r = conn
        .execute("SELECT * FROM customers WHERE id = 10")
        .unwrap();
    assert!(r.rows.is_empty());
}

#[test]
fn secondary_index_used_and_correct() {
    let db = db();
    setup_customers(&db);
    let conn = db.connect("app");
    conn.execute("CREATE INDEX ix_state ON customers (state)")
        .unwrap();
    // Index scan: rows_examined equals matches, not the table size.
    let r = conn
        .execute("SELECT id FROM customers WHERE state = 'IN'")
        .unwrap();
    assert_eq!(r.rows.len(), 2);
    assert_eq!(r.rows_examined, 2, "index scan should examine 2 rows");
    // Full scan for an unindexed predicate examines everything.
    let r = conn
        .execute("SELECT id FROM customers WHERE age = 25")
        .unwrap();
    assert_eq!(r.rows.len(), 2);
    assert_eq!(r.rows_examined, 5);
}

#[test]
fn pk_range_scan() {
    let db = db();
    let conn = db.connect("app");
    conn.execute("CREATE TABLE n (k INT PRIMARY KEY, v INT)")
        .unwrap();
    for chunk in (0..300).collect::<Vec<i64>>().chunks(50) {
        let values: Vec<String> = chunk.iter().map(|i| format!("({i}, {})", i * 2)).collect();
        conn.execute(&format!("INSERT INTO n VALUES {}", values.join(", ")))
            .unwrap();
    }
    let r = conn.execute("SELECT k FROM n WHERE k >= 290").unwrap();
    assert_eq!(r.rows.len(), 10);
    assert_eq!(r.rows_examined, 10, "range should use the pk index");
    let r = conn
        .execute("SELECT k FROM n WHERE k < 5 ORDER BY k")
        .unwrap();
    assert_eq!(
        r.rows.iter().map(|x| x[0].clone()).collect::<Vec<_>>(),
        (0..5).map(Value::Int).collect::<Vec<_>>()
    );
}

#[test]
fn explicit_transaction_commit_and_rollback() {
    let db = db();
    setup_customers(&db);
    let conn = db.connect("app");
    conn.execute("BEGIN").unwrap();
    conn.execute("INSERT INTO customers VALUES (6, 'TX', 19)")
        .unwrap();
    conn.execute("UPDATE customers SET age = 99 WHERE id = 1")
        .unwrap();
    conn.execute("ROLLBACK").unwrap();
    let r = conn.execute("SELECT COUNT(*) FROM customers").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(5));
    let r = conn
        .execute("SELECT age FROM customers WHERE id = 1")
        .unwrap();
    assert_eq!(r.rows[0][0], Value::Int(30), "update rolled back");

    conn.execute("BEGIN").unwrap();
    conn.execute("INSERT INTO customers VALUES (6, 'TX', 19)")
        .unwrap();
    conn.execute("COMMIT").unwrap();
    let r = conn.execute("SELECT COUNT(*) FROM customers").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(6));
}

#[test]
fn txn_errors() {
    let db = db();
    let conn = db.connect("app");
    assert!(conn.execute("COMMIT").is_err());
    assert!(conn.execute("ROLLBACK").is_err());
    conn.execute("BEGIN").unwrap();
    assert!(conn.execute("BEGIN").is_err());
}

#[test]
fn crash_recovery_preserves_committed_data() {
    let db = db();
    setup_customers(&db);
    let conn = db.connect("app");
    conn.execute("UPDATE customers SET age = 77 WHERE id = 2")
        .unwrap();
    drop(conn);
    // No shutdown: dirty pages die with the crash.
    db.crash();
    assert!(db.is_crashed());
    let conn2 = db.connect("app");
    assert!(conn2.execute("SELECT * FROM customers").is_err());
    drop(conn2);
    db.recover().unwrap();
    let conn = db.connect("app");
    let r = conn
        .execute("SELECT age FROM customers WHERE id = 2")
        .unwrap();
    assert_eq!(
        r.rows[0][0],
        Value::Int(77),
        "committed update survives crash"
    );
    let r = conn.execute("SELECT COUNT(*) FROM customers").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(5));
}

#[test]
fn crash_rolls_back_open_transaction() {
    let db = db();
    setup_customers(&db);
    let conn = db.connect("app");
    conn.execute("BEGIN").unwrap();
    conn.execute("INSERT INTO customers VALUES (9, 'FL', 33)")
        .unwrap();
    conn.execute("DELETE FROM customers WHERE id = 1").unwrap();
    // Crash with the transaction still open.
    db.crash();
    db.recover().unwrap();
    let conn = db.connect("app");
    let r = conn.execute("SELECT COUNT(*) FROM customers").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(5), "uncommitted txn rolled back");
    let r = conn
        .execute("SELECT * FROM customers WHERE id = 9")
        .unwrap();
    assert!(r.rows.is_empty());
    let r = conn
        .execute("SELECT * FROM customers WHERE id = 1")
        .unwrap();
    assert_eq!(r.rows.len(), 1, "uncommitted delete undone");
}

#[test]
fn recovery_with_many_writes_and_index_rebuild() {
    let db = db();
    let conn = db.connect("app");
    conn.execute("CREATE TABLE big (k INT PRIMARY KEY, s TEXT)")
        .unwrap();
    for i in 0..500 {
        conn.execute(&format!("INSERT INTO big VALUES ({i}, 'row-{i}')"))
            .unwrap();
    }
    conn.execute("DELETE FROM big WHERE k < 100").unwrap();
    conn.execute("UPDATE big SET s = 'updated' WHERE k = 250")
        .unwrap();
    drop(conn);
    db.crash();
    db.recover().unwrap();
    let conn = db.connect("app");
    let r = conn.execute("SELECT COUNT(*) FROM big").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(400));
    let r = conn.execute("SELECT s FROM big WHERE k = 250").unwrap();
    assert_eq!(r.rows[0][0], Value::Text("updated".into()));
    assert_eq!(r.rows_examined, 1, "pk index rebuilt and used");
}

#[test]
fn query_cache_hit_and_invalidation() {
    let db = db();
    setup_customers(&db);
    let conn = db.connect("app");
    let q = "SELECT * FROM customers WHERE state = 'IN'";
    let first = conn.execute(q).unwrap();
    assert!(first.rows_examined > 0);
    let second = conn.execute(q).unwrap();
    assert_eq!(
        second.rows_examined, 0,
        "second run served from query cache"
    );
    assert_eq!(first.rows, second.rows);
    // A write to the table invalidates.
    conn.execute("INSERT INTO customers VALUES (7, 'IN', 52)")
        .unwrap();
    let third = conn.execute(q).unwrap();
    assert!(third.rows_examined > 0, "cache invalidated by write");
    assert_eq!(third.rows.len(), 3);
}

#[test]
fn processlist_visible_via_sql_injection() {
    let db = db();
    setup_customers(&db);
    let victim = db.connect("webapp");
    victim
        .execute("SELECT * FROM customers WHERE id = 1")
        .unwrap();
    // The attacker's own injected query is visible as *current*; the
    // victim's connection shows in the list.
    let attacker = db.connect("webapp"); // Same user: SQL injection runs as the app.
    let r = attacker
        .execute("SELECT * FROM information_schema.processlist")
        .unwrap();
    assert_eq!(r.rows.len(), 2);
    let infos: Vec<String> = r.rows.iter().map(|row| row[3].to_string()).collect();
    assert!(
        infos.iter().any(|i| i.contains("processlist")),
        "attacker sees own in-flight query: {infos:?}"
    );
}

#[test]
fn performance_schema_history_and_digests_via_sql() {
    let db = db();
    setup_customers(&db);
    let conn = db.connect("app");
    conn.execute("SELECT * FROM customers WHERE state = 'IN'")
        .unwrap();
    conn.execute("SELECT * FROM customers WHERE state = 'AZ'")
        .unwrap();
    conn.execute("SELECT * FROM customers WHERE age >= 25")
        .unwrap();

    let attacker = db.connect("app");
    let r = attacker
        .execute("SELECT sql_text FROM performance_schema.events_statements_history")
        .unwrap();
    let texts: Vec<String> = r.rows.iter().map(|row| row[0].to_string()).collect();
    assert!(
        texts.iter().any(|t| t.contains("state = 'IN'")),
        "{texts:?}"
    );

    let r = attacker
        .execute(
            "SELECT digest_text, count_star FROM \
             performance_schema.events_statements_summary_by_digest",
        )
        .unwrap();
    let mut count_by_digest = std::collections::HashMap::new();
    for row in &r.rows {
        count_by_digest.insert(row[0].to_string(), row[1].clone());
    }
    // The two state queries share a digest with count 2.
    assert_eq!(
        count_by_digest["SELECT * FROM customers WHERE state = ?"],
        Value::Int(2)
    );
    assert_eq!(
        count_by_digest["SELECT * FROM customers WHERE age >= ?"],
        Value::Int(1)
    );
}

#[test]
fn history_bounded_at_configured_size() {
    let db = db();
    setup_customers(&db);
    let conn = db.connect("app");
    for i in 0..30 {
        conn.execute(&format!("SELECT * FROM customers WHERE id = {i}"))
            .unwrap();
    }
    let r = conn
        .execute(&format!(
            "SELECT sql_text FROM performance_schema.events_statements_history \
             WHERE thread_id = {}",
            conn.id
        ))
        .unwrap();
    // 10 history entries for this thread; the SELECT on history itself is
    // current, not yet history.
    assert_eq!(r.rows.len(), 10);
}

#[test]
fn binlog_records_writes_with_timestamps() {
    let db = db();
    setup_customers(&db);
    let image = db.disk_image();
    let binlog = image.file(minidb::wal::BINLOG_FILE).unwrap();
    let events: Vec<minidb::wal::BinlogEvent> = minidb::wal::carve_frames(binlog)
        .into_iter()
        .filter_map(|(_, p)| minidb::wal::BinlogEvent::decode(p).ok())
        .collect();
    // The CREATE TABLE autocommit plus the committed INSERT: DDL is
    // binlogged (MySQL implicit commit) so replicas can reproduce schema.
    assert_eq!(events.len(), 2, "DDL + one committed write statement");
    assert!(events[0].statement.starts_with("CREATE TABLE customers"));
    assert!(events[1].statement.starts_with("INSERT INTO customers"));
    assert!(events[1].timestamp >= 1_483_228_800);
}

#[test]
fn general_log_off_by_default_slow_log_triggers() {
    let config = DbConfig {
        slow_query_threshold_us: 100, // Everything with rows is "slow".
        ..DbConfig::default()
    };
    let db = Db::open(config);
    setup_customers(&db);
    let conn = db.connect("app");
    conn.execute("SELECT * FROM customers").unwrap();
    let image = db.disk_image();
    assert!(
        image.file("general.log").is_none(),
        "general log off by default"
    );
    // The slow log is a stream of structured trace records, not text.
    let carved = mdb_trace::record::carve(image.file("slow.log").unwrap());
    assert!(
        carved
            .iter()
            .any(|c| c.trace.statement == "SELECT * FROM customers"),
        "slow statement text carvable from the structured log"
    );
    let rec = carved
        .iter()
        .find(|c| c.trace.statement == "SELECT * FROM customers")
        .unwrap();
    assert!(rec.trace.total_us > 100);
    assert_eq!(rec.trace.tables, vec!["customers".to_string()]);
}

#[test]
fn udf_registration_and_use() {
    let db = db();
    let conn = db.connect("app");
    conn.execute("CREATE TABLE t (id INT PRIMARY KEY, tag TEXT)")
        .unwrap();
    conn.execute("INSERT INTO t VALUES (1, 'aa'), (2, 'bb')")
        .unwrap();
    db.register_function(
        "IS_AA",
        std::sync::Arc::new(|args: &[Value]| {
            Ok(Value::Int((args[0] == Value::Text("aa".into())) as i64))
        }),
    );
    let r = conn.execute("SELECT id FROM t WHERE IS_AA(tag)").unwrap();
    assert_eq!(r.rows, vec![vec![Value::Int(1)]]);
    assert!(conn.execute("SELECT id FROM t WHERE NO_SUCH(tag)").is_err());
}

#[test]
fn heap_residue_of_executed_queries() {
    let db = db();
    setup_customers(&db);
    let conn = db.connect("app");
    let marker = "zzqqxx_unique_marker_zzqqxx";
    let _ = conn.execute(&format!("SELECT * FROM customers WHERE state = '{marker}'"));
    // Execute some more statements so the marker's exec allocation is
    // definitely freed.
    for i in 0..20 {
        conn.execute(&format!("SELECT * FROM customers WHERE id = {i}"))
            .unwrap();
    }
    let mem = db.memory_image();
    assert!(
        mem.heap_occurrences(marker.as_bytes()) >= 1,
        "freed query text must still be in the heap image"
    );
}

#[test]
fn many_connections_parallel_access() {
    let db = db();
    setup_customers(&db);
    let handles: Vec<_> = (0..8)
        .map(|t| {
            let db = db.clone();
            std::thread::spawn(move || {
                let conn = db.connect(&format!("user{t}"));
                for i in 0..50 {
                    let id = 100 + t * 100 + i;
                    conn.execute(&format!("INSERT INTO customers VALUES ({id}, 'TX', 20)"))
                        .unwrap();
                    conn.execute(&format!("SELECT * FROM customers WHERE id = {id}"))
                        .unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let conn = db.connect("check");
    let r = conn.execute("SELECT COUNT(*) FROM customers").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(5 + 8 * 50));
}

#[test]
fn bufpool_dump_written_on_shutdown() {
    let db = db();
    setup_customers(&db);
    db.shutdown();
    let image = db.disk_image();
    let dump = String::from_utf8(image.file("ib_buffer_pool").unwrap().to_vec()).unwrap();
    assert!(dump.contains("table_customers.ibd"), "{dump}");
}

#[test]
fn null_handling() {
    let db = db();
    let conn = db.connect("app");
    conn.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        .unwrap();
    conn.execute("INSERT INTO t VALUES (1, NULL), (2, 5)")
        .unwrap();
    // NULL never matches comparisons.
    let r = conn.execute("SELECT id FROM t WHERE v = 5").unwrap();
    assert_eq!(r.rows.len(), 1);
    let r = conn.execute("SELECT id FROM t WHERE v != 5").unwrap();
    assert_eq!(r.rows.len(), 0, "NULL != 5 is not true in SQL");
    let r = conn.execute("SELECT v FROM t WHERE id = 1").unwrap();
    assert_eq!(r.rows[0][0], Value::Null);
}

#[test]
fn bytes_values_round_trip() {
    let db = db();
    let conn = db.connect("app");
    conn.execute("CREATE TABLE c (id INT PRIMARY KEY, ct BYTES)")
        .unwrap();
    conn.execute("INSERT INTO c VALUES (1, X'deadbeef')")
        .unwrap();
    let r = conn.execute("SELECT ct FROM c WHERE id = 1").unwrap();
    assert_eq!(r.rows[0][0], Value::Bytes(vec![0xDE, 0xAD, 0xBE, 0xEF]));
    let r = conn
        .execute("SELECT id FROM c WHERE ct = X'deadbeef'")
        .unwrap();
    assert_eq!(r.rows.len(), 1);
}

#[test]
fn explain_reports_access_path() {
    let db = db();
    setup_customers(&db);
    let conn = db.connect("app");
    let r = conn
        .execute("EXPLAIN SELECT * FROM customers WHERE id = 3")
        .unwrap();
    let plan = r.rows[0][0].to_string();
    assert!(plan.contains("index scan on pk_customers"), "{plan}");
    let r = conn
        .execute("EXPLAIN SELECT * FROM customers WHERE age = 25")
        .unwrap();
    assert!(
        r.rows[0][0].to_string().contains("full table scan"),
        "{:?}",
        r.rows
    );
    // Bound intersection shows in the plan.
    let r = conn
        .execute("EXPLAIN SELECT * FROM customers WHERE id >= 2 AND id < 4")
        .unwrap();
    let plan = r.rows[0][0].to_string();
    assert!(
        plan.contains("Included(Int(2))") && plan.contains("Excluded(Int(4))"),
        "{plan}"
    );
    let r = conn
        .execute("EXPLAIN SELECT * FROM information_schema.processlist")
        .unwrap();
    assert!(
        r.rows[0][0].to_string().contains("virtual table"),
        "{:?}",
        r.rows
    );
}

#[test]
fn aggregates() {
    let db = db();
    setup_customers(&db);
    let conn = db.connect("app");
    let r = conn
        .execute("SELECT SUM(age), MIN(age), MAX(age) FROM customers")
        .unwrap();
    assert_eq!(
        r.rows[0],
        vec![Value::Int(188), Value::Int(25), Value::Int(67)]
    );
    let r = conn
        .execute("SELECT COUNT(*) FROM customers WHERE age = 25")
        .unwrap();
    assert_eq!(r.rows[0][0], Value::Int(2));
}

// ================= query flight recorder =================

#[test]
fn explain_analyze_span_tree_and_exact_child_sum() {
    let db = db();
    setup_customers(&db);
    let conn = db.connect("app");
    let r = conn
        .execute("EXPLAIN ANALYZE SELECT * FROM customers WHERE age >= 25")
        .unwrap();
    assert_eq!(r.columns, vec!["span", "start_us", "dur_us", "detail"]);
    let spans: Vec<(String, i64)> = r
        .rows
        .iter()
        .map(|row| {
            (
                row[0].to_string(),
                match row[2] {
                    Value::Int(d) => d,
                    _ => -1,
                },
            )
        })
        .collect();
    // Root, then the pipeline stages, depth-indented.
    assert_eq!(spans[0].0, "statement");
    let names: Vec<&str> = spans.iter().map(|(n, _)| n.trim_start()).collect();
    for stage in ["parse", "plan", "scan", "bufpool"] {
        assert!(names.contains(&stage), "missing {stage} in {names:?}");
    }
    // bufpool is nested under scan (deeper indent).
    let scan = spans
        .iter()
        .find(|(n, _)| n.trim_start() == "scan")
        .unwrap();
    let bufpool = spans
        .iter()
        .find(|(n, _)| n.trim_start() == "bufpool")
        .unwrap();
    let depth = |s: &str| (s.len() - s.trim_start().len()) / 2;
    assert_eq!(depth(&bufpool.0), depth(&scan.0) + 1);
    // The cost model partitions the statement duration across top-level
    // stages exactly: children of the root sum to the root's duration.
    let total = spans[0].1;
    let top_level_sum: i64 = spans
        .iter()
        .filter(|(n, _)| depth(n) == 1)
        .map(|(_, d)| *d)
        .sum();
    assert_eq!(
        top_level_sum, total,
        "top-level spans partition the statement time"
    );
    // EXPLAIN ANALYZE executes its target (MySQL 8 semantics).
    assert_eq!(r.rows_examined, 5);
    // The rows_examined attribute rides on the scan span.
    let scan_detail = r
        .rows
        .iter()
        .find(|row| row[0].to_string().trim_start() == "scan")
        .unwrap()[3]
        .to_string();
    assert!(scan_detail.contains("rows_examined=5"), "{scan_detail}");
}

#[test]
fn explain_analyze_executes_writes() {
    let db = db();
    setup_customers(&db);
    let conn = db.connect("app");
    let r = conn
        .execute("EXPLAIN ANALYZE UPDATE customers SET age = 99 WHERE id = 1")
        .unwrap();
    let names: Vec<String> = r.rows.iter().map(|row| row[0].to_string()).collect();
    assert!(names.iter().any(|n| n.trim_start() == "write"), "{names:?}");
    assert!(
        names.iter().any(|n| n.trim_start() == "wal_append"),
        "{names:?}"
    );
    assert!(
        names.iter().any(|n| n.trim_start() == "commit"),
        "{names:?}"
    );
    let check = conn
        .execute("SELECT age FROM customers WHERE id = 1")
        .unwrap();
    assert_eq!(check.rows[0][0], Value::Int(99), "the target actually ran");
}

#[test]
fn query_traces_virtual_table_and_ring_eviction() {
    let config = DbConfig {
        trace_ring_capacity: 4,
        ..DbConfig::default()
    };
    let db = Db::open(config);
    setup_customers(&db);
    let conn = db.connect("app");
    for i in 0..6 {
        conn.execute(&format!("SELECT * FROM customers WHERE id = {i}"))
            .unwrap();
    }
    let r = conn
        .execute("SELECT statement, tables FROM information_schema.query_traces")
        .unwrap();
    // Capacity 4: the ring holds the latest 4 statements only.
    assert_eq!(r.rows.len(), 4);
    let texts: Vec<String> = r.rows.iter().map(|row| row[0].to_string()).collect();
    assert!(
        texts.iter().all(|t| !t.contains("id = 0")),
        "oldest evicted: {texts:?}"
    );
    assert!(texts.iter().any(|t| t.contains("id = 5")), "{texts:?}");
    assert!(r.rows.iter().all(|row| row[1].to_string() == "customers"));
    let rec = db.trace_recorder();
    assert!(rec.evicted() > 0, "eviction counter advanced");

    // The programmatic view exposes the span trees with attributes.
    let traces = db.query_traces();
    assert_eq!(traces.len(), 4);
    let t = traces
        .iter()
        .find(|t| t.statement.contains("id = 5"))
        .expect("recent select still in ring");
    let scan = t.root.find("scan").expect("scan span");
    assert!(scan.attrs.iter().any(|(k, _)| k == "rows_examined"));
    let bufpool = t.root.find("bufpool").expect("bufpool span");
    assert!(bufpool.attrs.iter().any(|(k, _)| k == "pages_hit"));
}

#[test]
fn tracing_disabled_keeps_ring_empty_and_slow_log_minimal() {
    let config = DbConfig {
        trace_enabled: false,
        slow_query_threshold_us: 100,
        ..DbConfig::default()
    };
    let db = Db::open(config);
    setup_customers(&db);
    let conn = db.connect("app");
    conn.execute("SELECT * FROM customers").unwrap();
    assert!(
        db.query_traces().is_empty(),
        "disarmed recorder stays empty"
    );
    let err = conn
        .execute("SELECT * FROM information_schema.query_traces")
        .unwrap();
    assert!(err.rows.is_empty());
    // Slow statements still land on disk, as minimal text+timing records
    // (no span tree, no table list).
    let image = db.disk_image();
    let carved = mdb_trace::record::carve(image.file("slow.log").unwrap());
    let rec = carved
        .iter()
        .find(|c| c.trace.statement == "SELECT * FROM customers")
        .expect("minimal record still written");
    assert!(rec.trace.tables.is_empty());
    assert!(rec.trace.root.children.is_empty());
}

#[test]
fn flush_diagnostics_scrub_clears_latency_histograms_and_trace_ring() {
    let config = DbConfig {
        telemetry_scrub_on_flush: true,
        ..DbConfig::default()
    };
    let db = Db::open(config);
    setup_customers(&db);
    let conn = db.connect("app");
    conn.execute("SELECT * FROM customers").unwrap();
    let before = db.metrics_snapshot();
    let lat = |snap: &mdb_telemetry::MetricsSnapshot| {
        snap.histograms
            .iter()
            .filter(|h| h.name.starts_with("sql.latency_us."))
            .map(|h| h.count)
            .sum::<u64>()
    };
    assert!(lat(&before) > 0, "latency histograms populated");
    assert!(!db.query_traces().is_empty());

    db.flush_diagnostics();

    // Scrub means scrub: per-kind latency histograms AND the flight
    // recorder go with the counters, not just the perf-schema rows.
    let after = db.metrics_snapshot();
    assert_eq!(lat(&after), 0, "latency histograms scrubbed on flush");
    assert!(
        db.query_traces().is_empty(),
        "flight recorder cleared on flush"
    );
}

#[test]
fn flush_diagnostics_default_keeps_trace_ring() {
    let db = db();
    setup_customers(&db);
    let conn = db.connect("app");
    conn.execute("SELECT * FROM customers").unwrap();
    let n = db.query_traces().len();
    assert!(n > 0);
    db.flush_diagnostics();
    // Default flush wipes the perf schema but NOT the flight recorder —
    // the residual timeline e15 reconstructs.
    assert_eq!(db.query_traces().len(), n);
    let r = conn
        .execute("SELECT sql_text FROM performance_schema.events_statements_history")
        .unwrap();
    assert!(r.rows.is_empty(), "perf schema history wiped");
}

// ================= MVCC snapshot isolation =================

#[test]
fn mvcc_snapshot_reads_ignore_later_commits() {
    let db = db();
    setup_customers(&db);
    let reader = db.connect("reader");
    let writer = db.connect("writer");

    reader.execute("BEGIN").unwrap();
    let r = reader
        .execute("SELECT age FROM customers WHERE id = 1")
        .unwrap();
    assert_eq!(r.rows[0][0], Value::Int(30));

    // Another session commits an update and a delete mid-transaction.
    writer
        .execute("UPDATE customers SET age = 99 WHERE id = 1")
        .unwrap();
    writer
        .execute("DELETE FROM customers WHERE id = 5")
        .unwrap();

    // The pinned snapshot still sees the old world: the pre-update age
    // and the deleted row both resolve through the version chains.
    let r = reader
        .execute("SELECT age FROM customers WHERE id = 1")
        .unwrap();
    assert_eq!(r.rows[0][0], Value::Int(30), "update invisible to snapshot");
    let r = reader
        .execute("SELECT id FROM customers WHERE id = 5")
        .unwrap();
    assert_eq!(r.rows.len(), 1, "deleted row resurrected for snapshot");

    // After COMMIT the next read sees the new committed state.
    reader.execute("COMMIT").unwrap();
    let r = reader
        .execute("SELECT age FROM customers WHERE id = 1")
        .unwrap();
    assert_eq!(r.rows[0][0], Value::Int(99));
    let r = reader
        .execute("SELECT id FROM customers WHERE id = 5")
        .unwrap();
    assert!(r.rows.is_empty());
}

#[test]
fn mvcc_uncommitted_writes_invisible_to_others_but_own() {
    let db = db();
    setup_customers(&db);
    let writer = db.connect("writer");
    let other = db.connect("other");

    writer.execute("BEGIN").unwrap();
    writer
        .execute("UPDATE customers SET age = 77 WHERE id = 2")
        .unwrap();
    writer
        .execute("INSERT INTO customers VALUES (6, 'TX', 50)")
        .unwrap();

    // Read-your-own-writes inside the transaction.
    let r = writer
        .execute("SELECT age FROM customers WHERE id = 2")
        .unwrap();
    assert_eq!(r.rows[0][0], Value::Int(77));
    let r = writer
        .execute("SELECT id FROM customers WHERE id = 6")
        .unwrap();
    assert_eq!(r.rows.len(), 1);

    // An autocommit reader in another session must not see either.
    let r = other
        .execute("SELECT age FROM customers WHERE id = 2")
        .unwrap();
    assert_eq!(r.rows[0][0], Value::Int(25), "no dirty read");
    let r = other
        .execute("SELECT id FROM customers WHERE id = 6")
        .unwrap();
    assert!(r.rows.is_empty(), "uncommitted insert invisible");

    writer.execute("COMMIT").unwrap();
    let r = other
        .execute("SELECT age FROM customers WHERE id = 2")
        .unwrap();
    assert_eq!(r.rows[0][0], Value::Int(77));
}

#[test]
fn mvcc_rollback_aborts_version_records() {
    let db = db();
    setup_customers(&db);
    let conn = db.connect("app");
    conn.execute("BEGIN").unwrap();
    conn.execute("UPDATE customers SET age = 1 WHERE age >= 25")
        .unwrap();
    conn.execute("ROLLBACK").unwrap();
    let r = conn
        .execute("SELECT age FROM customers ORDER BY id")
        .unwrap();
    assert_eq!(
        r.rows.iter().map(|r| r[0].clone()).collect::<Vec<_>>(),
        vec![
            Value::Int(30),
            Value::Int(25),
            Value::Int(41),
            Value::Int(25),
            Value::Int(67)
        ],
        "rollback restored every row"
    );
    // The aborted before-images are still counted until vacuum reclaims
    // them — they are real bytes in the version store.
    assert!(db.version_count() > 0);
    let (reclaimed, remaining) = db.vacuum();
    assert_eq!(remaining, 0);
    assert!(reclaimed >= 5);
}

#[test]
fn mvcc_version_store_archives_update_history() {
    use minidb::mvcc::VERSIONS_FILE;
    let db = db();
    let conn = db.connect("app");
    conn.execute("CREATE TABLE secrets (id INT PRIMARY KEY, balance INT)")
        .unwrap();
    conn.execute("INSERT INTO secrets VALUES (1, 1000)")
        .unwrap();
    for k in 0..8 {
        conn.execute(&format!("UPDATE secrets SET balance = {}", 1001 + k))
            .unwrap();
    }
    assert_eq!(db.version_count(), 8, "one archived version per UPDATE");

    // Default vacuum tombstones: the engine forgets the versions, the
    // file keeps every payload byte.
    let before = db.disk_image().file(VERSIONS_FILE).unwrap().len();
    let (reclaimed, remaining) = db.vacuum();
    assert_eq!((reclaimed, remaining), (8, 0));
    assert_eq!(
        db.disk_image().file(VERSIONS_FILE).unwrap().len(),
        before,
        "tombstoning vacuum leaves the before-images on disk"
    );
}

#[test]
fn scrub_all_walks_every_leakage_surface() {
    use minidb::mvcc::VERSIONS_FILE;
    let db = db();
    setup_customers(&db);
    let conn = db.connect("app");
    // Populate every surface: versions, query cache, perf schema,
    // telemetry, traces.
    conn.execute("UPDATE customers SET age = 31 WHERE id = 1")
        .unwrap();
    conn.execute("SELECT * FROM customers").unwrap();
    conn.execute("SELECT * FROM customers").unwrap();
    assert!(db.version_count() > 0);
    assert!(!db.query_traces().is_empty());

    db.scrub_all();

    // The regression list: every surface, one scrub.
    assert_eq!(db.version_count(), 0, "version chains vacuumed");
    let img = db.disk_image();
    assert!(
        img.file(VERSIONS_FILE).is_none_or(|f| f.is_empty()),
        "version store physically scrubbed, not tombstoned"
    );
    assert!(db.query_traces().is_empty(), "flight recorder cleared");
    let snap = db.metrics_snapshot();
    assert!(
        snap.counters.iter().all(|(_, v)| *v == 0),
        "telemetry counters zeroed"
    );
    let r = conn
        .execute("SELECT sql_text FROM performance_schema.events_statements_history")
        .unwrap();
    assert!(r.rows.is_empty(), "perf schema history wiped");
    // Query cache was dropped: the identical SELECT below re-executes
    // (cache hits counter stays zero after the scrub).
    conn.execute("SELECT * FROM customers").unwrap();
    conn.execute("SELECT * FROM customers").unwrap();
    let snap = db.metrics_snapshot();
    assert_eq!(
        snap.counter("sql.query_cache_hits"),
        Some(1),
        "cache repopulated only after scrub"
    );
}
