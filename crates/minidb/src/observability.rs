//! Diagnostic schemas: `performance_schema` and `information_schema` (§4).
//!
//! Modern DBMS's keep rich, SQL-queryable statistics about *queries
//! themselves*: current statements per thread, a bounded per-thread
//! statement history, and per-digest aggregate counters since restart. A
//! SQL-injection attacker reads all of it with plain `SELECT`s; a memory
//! snapshot contains it wholesale. The engine exposes these tables under
//! the `performance_schema` and `information_schema` qualified names.

use std::collections::{BTreeMap, HashMap, VecDeque};

use crate::heap::HeapPtr;
use crate::value::Value;

/// Default bound of `events_statements_history` per thread (MySQL: 10).
pub const DEFAULT_HISTORY_SIZE: usize = 10;

/// One replica's row in `information_schema.replicas` — published by the
/// replication layer (the `mdb-repl` crate) through
/// [`crate::engine::Db::set_replica_status_source`]. The engine itself
/// has no replication logic; it only renders whatever the layer above
/// reports, the same way MySQL's `SHOW REPLICA STATUS` reflects the
/// coordinator threads.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReplicaStatus {
    /// Replica server id.
    pub replica_id: u64,
    /// Connection/apply state (`connecting`, `streaming`, `lagging`,
    /// `disconnected`, …).
    pub state: String,
    /// Next binlog sequence number the replica will apply.
    pub next_seq: u64,
    /// Primary end-of-binlog sequence at the last heartbeat.
    pub primary_seq: u64,
    /// Events behind the primary (`primary_seq - next_seq`).
    pub lag_events: u64,
    /// Stream errors survived via reconnect so far.
    pub retries: u64,
    /// Simulated UNIX time of the last heartbeat from the primary.
    pub last_heartbeat: i64,
}

/// One statement event, as recorded by the instrumentation.
#[derive(Clone, Debug)]
pub struct StatementEvent {
    /// Issuing thread (connection) id.
    pub thread_id: u64,
    /// Monotonic event id.
    pub event_id: u64,
    /// Verbatim statement text.
    pub sql_text: String,
    /// Canonical digest text.
    pub digest: String,
    /// UNIX timestamp (seconds) when the statement started.
    pub timestamp: i64,
    /// Rows the execution examined.
    pub rows_examined: u64,
    /// Rows returned to the client.
    pub rows_returned: u64,
    /// Arena copy of the statement text held by this event.
    pub text_ptr: Option<HeapPtr>,
}

/// Per-digest aggregate statistics
/// (`events_statements_summary_by_digest`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DigestStats {
    /// Canonical digest text.
    pub digest: String,
    /// Number of statements with this digest since restart.
    pub count_star: u64,
    /// Total rows examined.
    pub sum_rows_examined: u64,
    /// Total rows returned.
    pub sum_rows_returned: u64,
    /// First occurrence (UNIX seconds).
    pub first_seen: i64,
    /// Latest occurrence (UNIX seconds).
    pub last_seen: i64,
}

/// The `performance_schema` state.
pub struct PerfSchema {
    /// History ring size per thread.
    pub history_size: usize,
    current: HashMap<u64, StatementEvent>,
    history: HashMap<u64, VecDeque<StatementEvent>>,
    digests: BTreeMap<String, DigestStats>,
    next_event_id: u64,
}

impl PerfSchema {
    /// Creates empty instrumentation with the given history bound.
    pub fn new(history_size: usize) -> Self {
        PerfSchema {
            history_size: history_size.max(1),
            current: HashMap::new(),
            history: HashMap::new(),
            digests: BTreeMap::new(),
            next_event_id: 1,
        }
    }

    /// Records that `thread_id` began executing a statement.
    pub fn statement_start(
        &mut self,
        thread_id: u64,
        sql_text: &str,
        digest: &str,
        timestamp: i64,
        text_ptr: Option<HeapPtr>,
    ) {
        let ev = StatementEvent {
            thread_id,
            event_id: self.next_event_id,
            sql_text: sql_text.to_string(),
            digest: digest.to_string(),
            timestamp,
            rows_examined: 0,
            rows_returned: 0,
            text_ptr,
        };
        self.next_event_id += 1;
        self.current.insert(thread_id, ev);
    }

    /// Completes the thread's current statement, moving it into history.
    /// Returns the arena pointer of any history entry that fell off the
    /// ring (for the engine to free).
    pub fn statement_end(
        &mut self,
        thread_id: u64,
        rows_examined: u64,
        rows_returned: u64,
    ) -> Option<HeapPtr> {
        let mut ev = self.current.remove(&thread_id)?;
        ev.rows_examined = rows_examined;
        ev.rows_returned = rows_returned;
        let stats = self
            .digests
            .entry(ev.digest.clone())
            .or_insert_with(|| DigestStats {
                digest: ev.digest.clone(),
                count_star: 0,
                sum_rows_examined: 0,
                sum_rows_returned: 0,
                first_seen: ev.timestamp,
                last_seen: ev.timestamp,
            });
        stats.count_star += 1;
        stats.sum_rows_examined += rows_examined;
        stats.sum_rows_returned += rows_returned;
        stats.last_seen = ev.timestamp;
        let ring = self.history.entry(thread_id).or_default();
        ring.push_back(ev);
        if ring.len() > self.history_size {
            return ring.pop_front().and_then(|old| old.text_ptr);
        }
        None
    }

    /// Current statements, one per active thread.
    pub fn events_statements_current(&self) -> Vec<&StatementEvent> {
        let mut v: Vec<&StatementEvent> = self.current.values().collect();
        v.sort_by_key(|e| e.event_id);
        v
    }

    /// The bounded per-thread history (most recent `history_size` events
    /// per thread).
    pub fn events_statements_history(&self) -> Vec<&StatementEvent> {
        let mut v: Vec<&StatementEvent> = self.history.values().flatten().collect();
        v.sort_by_key(|e| e.event_id);
        v
    }

    /// Per-digest aggregates since restart.
    pub fn events_statements_summary_by_digest(&self) -> Vec<&DigestStats> {
        self.digests.values().collect()
    }

    /// Clears everything (the "since the database was last restarted"
    /// semantics); returns arena pointers to free.
    pub fn clear(&mut self) -> Vec<HeapPtr> {
        let mut freed = Vec::new();
        for (_, ev) in self.current.drain() {
            freed.extend(ev.text_ptr);
        }
        for (_, ring) in self.history.drain() {
            for ev in ring {
                freed.extend(ev.text_ptr);
            }
        }
        self.digests.clear();
        freed
    }

    // --- SQL-table renderings -----------------------------------------

    /// Renders `events_statements_current` as rows.
    pub fn render_current(&self) -> (Vec<String>, Vec<Vec<Value>>) {
        let cols = vec![
            "thread_id".to_string(),
            "event_id".to_string(),
            "sql_text".to_string(),
            "digest_text".to_string(),
            "timer_start".to_string(),
        ];
        let rows = self
            .events_statements_current()
            .into_iter()
            .map(|e| {
                vec![
                    Value::Int(e.thread_id as i64),
                    Value::Int(e.event_id as i64),
                    Value::Text(e.sql_text.clone()),
                    Value::Text(e.digest.clone()),
                    Value::Int(e.timestamp),
                ]
            })
            .collect();
        (cols, rows)
    }

    /// Renders `events_statements_history` as rows.
    pub fn render_history(&self) -> (Vec<String>, Vec<Vec<Value>>) {
        let cols = vec![
            "thread_id".to_string(),
            "event_id".to_string(),
            "sql_text".to_string(),
            "digest_text".to_string(),
            "timer_start".to_string(),
            "rows_examined".to_string(),
            "rows_sent".to_string(),
        ];
        let rows = self
            .events_statements_history()
            .into_iter()
            .map(|e| {
                vec![
                    Value::Int(e.thread_id as i64),
                    Value::Int(e.event_id as i64),
                    Value::Text(e.sql_text.clone()),
                    Value::Text(e.digest.clone()),
                    Value::Int(e.timestamp),
                    Value::Int(e.rows_examined as i64),
                    Value::Int(e.rows_returned as i64),
                ]
            })
            .collect();
        (cols, rows)
    }

    /// Renders `events_statements_summary_by_digest` as rows.
    pub fn render_digest_summary(&self) -> (Vec<String>, Vec<Vec<Value>>) {
        let cols = vec![
            "digest_text".to_string(),
            "count_star".to_string(),
            "sum_rows_examined".to_string(),
            "sum_rows_sent".to_string(),
            "first_seen".to_string(),
            "last_seen".to_string(),
        ];
        let rows = self
            .events_statements_summary_by_digest()
            .into_iter()
            .map(|d| {
                vec![
                    Value::Text(d.digest.clone()),
                    Value::Int(d.count_star as i64),
                    Value::Int(d.sum_rows_examined as i64),
                    Value::Int(d.sum_rows_returned as i64),
                    Value::Int(d.first_seen),
                    Value::Int(d.last_seen),
                ]
            })
            .collect();
        (cols, rows)
    }
}

/// The `information_schema.processlist` registry.
#[derive(Default)]
pub struct ProcessList {
    conns: BTreeMap<u64, ProcessEntry>,
}

/// One connection's row in `processlist`.
#[derive(Clone, Debug)]
pub struct ProcessEntry {
    /// Connection id.
    pub id: u64,
    /// User name.
    pub user: String,
    /// Connect time (UNIX seconds).
    pub connect_time: i64,
    /// Currently executing statement, if any.
    pub current_query: Option<String>,
}

impl ProcessList {
    /// Registers a connection.
    pub fn connect(&mut self, id: u64, user: &str, now: i64) {
        self.conns.insert(
            id,
            ProcessEntry {
                id,
                user: user.to_string(),
                connect_time: now,
                current_query: None,
            },
        );
    }

    /// Removes a connection.
    pub fn disconnect(&mut self, id: u64) {
        self.conns.remove(&id);
    }

    /// Sets or clears the connection's current query.
    pub fn set_query(&mut self, id: u64, query: Option<String>) {
        if let Some(e) = self.conns.get_mut(&id) {
            e.current_query = query;
        }
    }

    /// All live entries.
    pub fn entries(&self) -> Vec<&ProcessEntry> {
        self.conns.values().collect()
    }

    /// Renders `processlist` as rows.
    pub fn render(&self, now: i64) -> (Vec<String>, Vec<Vec<Value>>) {
        let cols = vec![
            "id".to_string(),
            "user".to_string(),
            "time".to_string(),
            "info".to_string(),
        ];
        let rows = self
            .conns
            .values()
            .map(|e| {
                vec![
                    Value::Int(e.id as i64),
                    Value::Text(e.user.clone()),
                    Value::Int(now - e.connect_time),
                    match &e.current_query {
                        Some(q) => Value::Text(q.clone()),
                        None => Value::Null,
                    },
                ]
            })
            .collect();
        (cols, rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn history_ring_is_bounded_at_ten() {
        let mut ps = PerfSchema::new(DEFAULT_HISTORY_SIZE);
        for i in 0..25 {
            let sql = format!("SELECT {i}");
            ps.statement_start(1, &sql, "SELECT ?", 100 + i, None);
            ps.statement_end(1, 1, 1);
        }
        let hist = ps.events_statements_history();
        assert_eq!(hist.len(), 10);
        // The surviving events are the 10 most recent.
        assert_eq!(hist[0].sql_text, "SELECT 15");
        assert_eq!(hist[9].sql_text, "SELECT 24");
    }

    #[test]
    fn history_is_per_thread() {
        let mut ps = PerfSchema::new(2);
        for t in 1..=3u64 {
            for i in 0..5 {
                ps.statement_start(t, &format!("q{t}-{i}"), "d", 0, None);
                ps.statement_end(t, 0, 0);
            }
        }
        assert_eq!(ps.events_statements_history().len(), 6);
    }

    #[test]
    fn digest_summary_counts_by_type() {
        let mut ps = PerfSchema::new(10);
        for (sql, digest) in [
            (
                "SELECT * FROM c WHERE s='IN'",
                "SELECT * FROM c WHERE s = ?",
            ),
            (
                "SELECT * FROM c WHERE s='AZ'",
                "SELECT * FROM c WHERE s = ?",
            ),
            (
                "SELECT * FROM c WHERE a>=25",
                "SELECT * FROM c WHERE a >= ?",
            ),
        ] {
            ps.statement_start(1, sql, digest, 7, None);
            ps.statement_end(1, 10, 2);
        }
        let summary = ps.events_statements_summary_by_digest();
        assert_eq!(summary.len(), 2);
        let by_digest: std::collections::HashMap<&str, u64> = summary
            .iter()
            .map(|d| (d.digest.as_str(), d.count_star))
            .collect();
        assert_eq!(by_digest["SELECT * FROM c WHERE s = ?"], 2);
        assert_eq!(by_digest["SELECT * FROM c WHERE a >= ?"], 1);
    }

    #[test]
    fn current_shows_in_flight_statements() {
        let mut ps = PerfSchema::new(10);
        ps.statement_start(1, "SELECT sleep_long", "d", 5, None);
        assert_eq!(ps.events_statements_current().len(), 1);
        ps.statement_end(1, 0, 0);
        assert!(ps.events_statements_current().is_empty());
        assert_eq!(ps.events_statements_history().len(), 1);
    }

    #[test]
    fn rows_examined_recorded() {
        let mut ps = PerfSchema::new(10);
        ps.statement_start(1, "SELECT * FROM t", "d", 5, None);
        ps.statement_end(1, 1234, 7);
        let h = ps.events_statements_history();
        assert_eq!(h[0].rows_examined, 1234);
        assert_eq!(h[0].rows_returned, 7);
    }

    #[test]
    fn clear_resets_since_restart_semantics() {
        let mut ps = PerfSchema::new(10);
        ps.statement_start(1, "q", "d", 0, None);
        ps.statement_end(1, 1, 1);
        ps.clear();
        assert!(ps.events_statements_history().is_empty());
        assert!(ps.events_statements_summary_by_digest().is_empty());
    }

    #[test]
    fn processlist_lifecycle() {
        let mut pl = ProcessList::default();
        pl.connect(1, "app", 100);
        pl.connect(2, "attacker", 150);
        pl.set_query(1, Some("SELECT * FROM secrets".into()));
        let (_, rows) = pl.render(160);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0][3], Value::Text("SELECT * FROM secrets".into()));
        assert_eq!(rows[0][2], Value::Int(60));
        assert_eq!(rows[1][3], Value::Null);
        pl.set_query(1, None);
        pl.disconnect(2);
        let (_, rows) = pl.render(200);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][3], Value::Null);
    }
}
