//! MVCC version chains: snapshot-isolation reads, and the before-image
//! leakage surface they create.
//!
//! Writers never overwrite history. Every UPDATE/DELETE appends the
//! *old* row image — stamped with `(xmin, xmax)` commit-sequence
//! numbers — to an append-only version store ([`VERSIONS_FILE`]), and
//! readers inside an explicit transaction pin a snapshot CSN at BEGIN
//! and resolve each row against the chain, exactly like InnoDB's undo
//! tablespaces or Postgres's dead tuples.
//!
//! That is the whole point of E18: the version store is an un-scrubbed
//! copy of every value a secret column has ever held. `UPDATE secrets
//! SET balance = x` run K times leaves K-1 plaintext before-images
//! (order-preserved, CSN-stamped) in a file the encryption layer above
//! never sees. [`VersionStore::vacuum`] models the two deployment
//! realities: the default pass merely *tombstones* reclaimed versions
//! (state byte flips to [`STATE_VACUUMED`], payload bytes stay — like
//! marking pages free), while `scrub=true`
//! ([`crate::engine::DbConfig::scrub_before_images`]) rewrites the file
//! so reclaimed images are physically gone.
//!
//! ## On-disk record format (`undo_versions.ibd`)
//!
//! ```text
//! magic    b"MVER"   0..4
//! state    u8        4          0 pending | 1 committed | 2 aborted | 3 vacuumed
//! op       u8        5          1 update-superseded | 2 deleted
//! xmin     u64 LE    6..14      CSN that created this image
//! xmax     u64 LE    14..22     CSN that superseded it (0 = pending)
//! row_id   u64 LE    22..30
//! name_len u16 LE    30..32
//! row_len  u32 LE    32..36
//! name     bytes     36..36+name_len      table name
//! row      bytes     ..                   encoded Row (the before-image)
//! ```
//!
//! Commit stamps CSNs *in place* (`write_at` on the state/xmin/xmax
//! fields), so a record's lifecycle is visible in the file itself — a
//! carver can distinguish pending, committed, aborted, and tombstoned
//! history without any engine cooperation.

use std::collections::{HashMap, HashSet};

use crate::row::Row;
use crate::vdisk::VDisk;

/// The version store's tablespace file.
pub const VERSIONS_FILE: &str = "undo_versions.ibd";

/// Record magic (`b"MVER"`).
pub const VERSION_MAGIC: &[u8; 4] = b"MVER";

/// Version created/superseded by a still-open transaction.
pub const STATE_PENDING: u8 = 0;
/// Supersession committed; `(xmin, xmax)` are final.
pub const STATE_COMMITTED: u8 = 1;
/// The superseding transaction rolled back; image is not history.
pub const STATE_ABORTED: u8 = 2;
/// Reclaimed by a non-scrubbing vacuum: dead to the engine, but the
/// payload bytes are still in the file.
pub const STATE_VACUUMED: u8 = 3;

/// The image was superseded by an UPDATE.
pub const OP_UPDATE: u8 = 1;
/// The image was removed by a DELETE.
pub const OP_DELETE: u8 = 2;

const STATE_OFF: usize = 4;
const XMIN_OFF: usize = 6;
const XMAX_OFF: usize = 14;
const HEADER_LEN: usize = 36;

/// One archived row version in a chain.
#[derive(Clone, Debug, PartialEq)]
pub struct Version {
    /// CSN that created this image (0 = predates tracking).
    pub xmin: u64,
    /// CSN that superseded it (0 = superseding txn still pending).
    pub xmax: u64,
    /// Lifecycle state (`STATE_*`).
    pub state: u8,
    /// How it was superseded (`OP_*`).
    pub op: u8,
    /// The before-image itself.
    pub row: Row,
    /// Byte offset of this record in [`VERSIONS_FILE`].
    pub offset: usize,
}

type Key = (String, u64);

enum Pending {
    /// A before-image awaiting its xmax stamp at commit.
    Supersede {
        key: Key,
        offset: usize,
        op: u8,
        /// The displaced image was itself written by this same
        /// transaction — at commit its window collapses to empty
        /// (intermediate images are never snapshot-visible).
        intra_txn: bool,
    },
    /// A freshly inserted heap row awaiting its xmin at commit.
    NewRow { key: Key },
}

/// Version chains plus the commit bookkeeping that stamps them.
#[derive(Default)]
pub struct VersionStore {
    /// Archived versions per row, oldest first.
    chains: HashMap<Key, Vec<Version>>,
    /// Committed xmin of each row's *current* heap image.
    row_xmin: HashMap<Key, u64>,
    /// Rows whose current heap image was written by a still-open
    /// transaction (its id) — invisible to other snapshots.
    pending_owner: HashMap<Key, u64>,
    /// Per-transaction stamps to apply at commit/abort.
    pending: HashMap<u64, Vec<Pending>>,
}

fn encode_record(state: u8, op: u8, xmin: u64, xmax: u64, key: &Key, row: &Row) -> Vec<u8> {
    let name = key.0.as_bytes();
    let row_bytes = row.encode();
    let mut out = Vec::with_capacity(HEADER_LEN + name.len() + row_bytes.len());
    out.extend_from_slice(VERSION_MAGIC);
    out.push(state);
    out.push(op);
    out.extend_from_slice(&xmin.to_le_bytes());
    out.extend_from_slice(&xmax.to_le_bytes());
    out.extend_from_slice(&key.1.to_le_bytes());
    out.extend_from_slice(&(name.len() as u16).to_le_bytes());
    out.extend_from_slice(&(row_bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(name);
    out.extend_from_slice(&row_bytes);
    out
}

impl VersionStore {
    /// Number of stamps queued for `txn` — the statement-rollback mark
    /// ([`Self::abort_from`]).
    pub fn pending_mark(&self, txn: u64) -> usize {
        self.pending.get(&txn).map_or(0, |v| v.len())
    }

    /// Archives `old_row` as a before-image: the current heap image of
    /// `(table, old_row.id)` is being superseded by `txn` via `op`.
    pub fn record_supersession(
        &mut self,
        vdisk: &mut VDisk,
        table: &str,
        old_row: &Row,
        op: u8,
        txn: u64,
    ) {
        let key = (table.to_string(), old_row.id);
        let intra_txn = self.pending_owner.get(&key) == Some(&txn);
        let xmin = self.row_xmin.get(&key).copied().unwrap_or(0);
        let offset = vdisk.len(VERSIONS_FILE);
        let rec = encode_record(STATE_PENDING, op, xmin, 0, &key, old_row);
        vdisk.append(VERSIONS_FILE, &rec);
        self.chains.entry(key.clone()).or_default().push(Version {
            xmin,
            xmax: 0,
            state: STATE_PENDING,
            op,
            row: old_row.clone(),
            offset,
        });
        self.pending
            .entry(txn)
            .or_default()
            .push(Pending::Supersede {
                key: key.clone(),
                offset,
                op,
                intra_txn,
            });
        self.pending_owner.insert(key, txn);
    }

    /// Notes a freshly inserted heap row: its xmin is stamped at commit,
    /// and until then the row belongs to `txn`'s snapshot only.
    pub fn record_insert(&mut self, table: &str, row_id: u64, txn: u64) {
        let key = (table.to_string(), row_id);
        self.pending
            .entry(txn)
            .or_default()
            .push(Pending::NewRow { key: key.clone() });
        self.pending_owner.insert(key, txn);
    }

    fn find_version(&mut self, key: &Key, offset: usize) -> Option<&mut Version> {
        self.chains
            .get_mut(key)?
            .iter_mut()
            .find(|v| v.offset == offset)
    }

    /// Stamps everything `txn` wrote with its commit CSN.
    pub fn commit(&mut self, vdisk: &mut VDisk, txn: u64, csn: u64) {
        let Some(stamps) = self.pending.remove(&txn) else {
            return;
        };
        for stamp in stamps {
            match stamp {
                Pending::Supersede {
                    key,
                    offset,
                    op,
                    intra_txn,
                } => {
                    if let Some(v) = self.find_version(&key, offset) {
                        if intra_txn {
                            v.xmin = csn;
                            vdisk.write_at(VERSIONS_FILE, offset + XMIN_OFF, &csn.to_le_bytes());
                        }
                        v.xmax = csn;
                        v.state = STATE_COMMITTED;
                    }
                    vdisk.write_at(VERSIONS_FILE, offset + XMAX_OFF, &csn.to_le_bytes());
                    vdisk.write_at(VERSIONS_FILE, offset + STATE_OFF, &[STATE_COMMITTED]);
                    match op {
                        OP_DELETE => {
                            self.row_xmin.remove(&key);
                        }
                        _ => {
                            self.row_xmin.insert(key.clone(), csn);
                        }
                    }
                    self.pending_owner.remove(&key);
                }
                Pending::NewRow { key } => {
                    self.row_xmin.insert(key.clone(), csn);
                    self.pending_owner.remove(&key);
                }
            }
        }
    }

    /// Aborts every stamp of `txn` (full rollback).
    pub fn abort(&mut self, vdisk: &mut VDisk, txn: u64) {
        self.abort_from(vdisk, txn, 0);
    }

    /// Aborts `txn`'s stamps from `mark` on (statement-level rollback:
    /// mark = [`Self::pending_mark`] taken before the statement ran).
    pub fn abort_from(&mut self, vdisk: &mut VDisk, txn: u64, mark: usize) {
        let Some(stamps) = self.pending.get_mut(&txn) else {
            return;
        };
        let undone: Vec<Pending> = stamps.drain(mark..).collect();
        if stamps.is_empty() {
            self.pending.remove(&txn);
        }
        for stamp in undone.into_iter().rev() {
            match stamp {
                Pending::Supersede { key, offset, .. } => {
                    let restored = self.find_version(&key, offset).map(|v| {
                        v.state = STATE_ABORTED;
                        v.xmin
                    });
                    vdisk.write_at(VERSIONS_FILE, offset + STATE_OFF, &[STATE_ABORTED]);
                    // The old image is back in the heap (undo restored
                    // it); its committed xmin is unchanged.
                    if let Some(xmin) = restored {
                        if xmin > 0 {
                            self.row_xmin.insert(key.clone(), xmin);
                        }
                    }
                    self.pending_owner.remove(&key);
                }
                Pending::NewRow { key } => {
                    self.row_xmin.remove(&key);
                    self.pending_owner.remove(&key);
                }
            }
        }
    }

    fn chain_visible(&self, key: &Key, snapshot: u64) -> Option<Row> {
        for v in self.chains.get(key)?.iter().rev() {
            if v.state == STATE_ABORTED || v.state == STATE_VACUUMED {
                continue;
            }
            if v.xmin <= snapshot && (v.xmax == 0 || v.xmax > snapshot) {
                return Some(v.row.clone());
            }
        }
        None
    }

    /// Resolves a *current heap row* against snapshot `snapshot` for
    /// reader `txn`: the row itself, an older chained image, or nothing.
    pub fn visible_row(&self, table: &str, row: Row, snapshot: u64, txn: u64) -> Option<Row> {
        let key = (table.to_string(), row.id);
        match self.pending_owner.get(&key) {
            // Read-your-own-writes.
            Some(&owner) if owner == txn => Some(row),
            // Another transaction's uncommitted image sits in the heap;
            // the version visible to us (if any) is in the chain.
            Some(_) => self.chain_visible(&key, snapshot),
            None => {
                let xmin = self.row_xmin.get(&key).copied().unwrap_or(0);
                if xmin <= snapshot {
                    Some(row)
                } else {
                    self.chain_visible(&key, snapshot)
                }
            }
        }
    }

    /// Rows deleted from the heap but still visible at `snapshot`
    /// (their last image lives only in the chain).
    pub fn resurrect_deleted(
        &self,
        table: &str,
        live_ids: &HashSet<u64>,
        snapshot: u64,
        txn: u64,
    ) -> Vec<Row> {
        let mut out = Vec::new();
        for (key, _) in self.chains.iter() {
            if key.0 != table || live_ids.contains(&key.1) {
                continue;
            }
            // Our own delete is immediately invisible to us.
            if self.pending_owner.get(key) == Some(&txn) {
                continue;
            }
            if let Some(row) = self.chain_visible(key, snapshot) {
                out.push(row);
            }
        }
        out
    }

    /// Reclaims versions no active snapshot can still need: committed
    /// supersessions with `xmax <= horizon`, plus aborted images.
    ///
    /// Without `scrub`, reclamation is a *tombstone*: the record's state
    /// byte flips to [`STATE_VACUUMED`] and every payload byte stays in
    /// the file — dead to the engine, alive to a carver. With `scrub`,
    /// the file is rewritten holding only surviving records.
    ///
    /// Returns `(reclaimed, remaining)` version counts.
    pub fn vacuum(&mut self, vdisk: &mut VDisk, horizon: u64, scrub: bool) -> (usize, usize) {
        let mut reclaimed = 0usize;
        for versions in self.chains.values_mut() {
            versions.retain(|v| {
                let dead = v.state == STATE_ABORTED
                    || (v.state == STATE_COMMITTED && v.xmax != 0 && v.xmax <= horizon);
                if dead {
                    reclaimed += 1;
                    if !scrub {
                        vdisk.write_at(VERSIONS_FILE, v.offset + STATE_OFF, &[STATE_VACUUMED]);
                    }
                }
                !dead
            });
        }
        self.chains.retain(|_, v| !v.is_empty());
        if scrub {
            self.rewrite_file(vdisk);
        }
        let remaining = self.chains.values().map(Vec::len).sum();
        (reclaimed, remaining)
    }

    /// Rewrites [`VERSIONS_FILE`] with only the surviving in-memory
    /// versions — reclaimed before-images are physically erased.
    fn rewrite_file(&mut self, vdisk: &mut VDisk) {
        let mut survivors: Vec<(Key, usize)> = self
            .chains
            .iter()
            .flat_map(|(k, vs)| vs.iter().map(|v| (k.clone(), v.offset)))
            .collect();
        survivors.sort_by_key(|(_, off)| *off);
        let mut file = Vec::new();
        let mut remap: HashMap<usize, usize> = HashMap::new();
        for (key, old_off) in survivors {
            let v = self
                .find_version(&key, old_off)
                .expect("survivor indexed from chains");
            let rec = encode_record(v.state, v.op, v.xmin, v.xmax, &key, &v.row);
            remap.insert(old_off, file.len());
            v.offset = file.len();
            file.extend_from_slice(&rec);
        }
        for stamps in self.pending.values_mut() {
            for s in stamps.iter_mut() {
                if let Pending::Supersede { offset, .. } = s {
                    if let Some(new) = remap.get(offset) {
                        *offset = *new;
                    }
                }
            }
        }
        vdisk.write(VERSIONS_FILE, file);
    }

    /// Forgets all chain state of `table` (DROP TABLE). The disk records
    /// are *not* reclaimed — like real engines, dropping a table does
    /// not chase its undo history; only vacuum-with-scrub does.
    pub fn purge_table(&mut self, table: &str) {
        self.chains.retain(|(t, _), _| t != table);
        self.row_xmin.retain(|(t, _), _| t != table);
        self.pending_owner.retain(|(t, _), _| t != table);
    }

    /// Volatile state dies with the process; [`VERSIONS_FILE`] survives.
    pub fn crash(&mut self) {
        self.chains.clear();
        self.row_xmin.clear();
        self.pending_owner.clear();
        self.pending.clear();
    }

    /// Whether any transaction currently has unstamped writes — the
    /// signal that plain reads need read-committed resolution instead of
    /// trusting the heap.
    pub fn has_pending(&self) -> bool {
        !self.pending.is_empty() || !self.pending_owner.is_empty()
    }

    /// Total archived versions across all chains.
    pub fn version_count(&self) -> usize {
        self.chains.values().map(Vec::len).sum()
    }

    /// The chains themselves, for snapshotting
    /// (`MemoryImage::version_chains`).
    pub fn chains(&self) -> &HashMap<Key, Vec<Version>> {
        &self.chains
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn row(id: u64, n: i64) -> Row {
        Row {
            id,
            values: vec![Value::Int(n)],
        }
    }

    #[test]
    fn supersession_commit_stamps_window() {
        let mut vs = VersionStore::default();
        let mut vd = VDisk::new();
        // Row created at CSN 1.
        vs.record_insert("t", 1, 10);
        vs.commit(&mut vd, 10, 1);
        // Superseded at CSN 2.
        vs.record_supersession(&mut vd, "t", &row(1, 100), OP_UPDATE, 11);
        vs.commit(&mut vd, 11, 2);
        let chain = &vs.chains()[&("t".to_string(), 1)];
        assert_eq!(chain.len(), 1);
        assert_eq!((chain[0].xmin, chain[0].xmax), (1, 2));
        assert_eq!(chain[0].state, STATE_COMMITTED);
        // Snapshot 1 sees the old image; snapshot 2 sees the heap row.
        let visible = vs.visible_row("t", row(1, 200), 1, 99).unwrap();
        assert_eq!(visible.values[0], Value::Int(100));
        let visible = vs.visible_row("t", row(1, 200), 2, 99).unwrap();
        assert_eq!(visible.values[0], Value::Int(200));
    }

    #[test]
    fn uncommitted_insert_invisible_to_others() {
        let mut vs = VersionStore::default();
        vs.record_insert("t", 5, 10);
        assert!(vs.visible_row("t", row(5, 1), 100, 99).is_none());
        // ... but visible to its own transaction.
        assert!(vs.visible_row("t", row(5, 1), 100, 10).is_some());
    }

    #[test]
    fn abort_restores_and_marks() {
        let mut vs = VersionStore::default();
        let mut vd = VDisk::new();
        vs.record_insert("t", 1, 10);
        vs.commit(&mut vd, 10, 1);
        vs.record_supersession(&mut vd, "t", &row(1, 100), OP_UPDATE, 11);
        vs.abort(&mut vd, 11);
        // The heap row (restored to the old image by undo) is visible
        // again at any snapshot >= 1.
        let visible = vs.visible_row("t", row(1, 100), 1, 99).unwrap();
        assert_eq!(visible.values[0], Value::Int(100));
        let raw = vd.read(VERSIONS_FILE).unwrap();
        assert_eq!(raw[STATE_OFF], STATE_ABORTED, "disk record marked");
    }

    #[test]
    fn deleted_row_resurrects_for_old_snapshot() {
        let mut vs = VersionStore::default();
        let mut vd = VDisk::new();
        vs.record_insert("t", 1, 10);
        vs.commit(&mut vd, 10, 1);
        vs.record_supersession(&mut vd, "t", &row(1, 7), OP_DELETE, 11);
        vs.commit(&mut vd, 11, 2);
        let live = HashSet::new();
        let back = vs.resurrect_deleted("t", &live, 1, 99);
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].values[0], Value::Int(7));
        assert!(vs.resurrect_deleted("t", &live, 2, 99).is_empty());
    }

    #[test]
    fn vacuum_tombstones_but_scrub_erases() {
        let mut vs = VersionStore::default();
        let mut vd = VDisk::new();
        vs.record_insert("t", 1, 10);
        vs.commit(&mut vd, 10, 1);
        for (i, n) in [(0u64, 100i64), (1, 200), (2, 300)] {
            vs.record_supersession(&mut vd, "t", &row(1, n), OP_UPDATE, 20 + i);
            vs.commit(&mut vd, 20 + i, 2 + i);
        }
        assert_eq!(vs.version_count(), 3);
        let before = vd.len(VERSIONS_FILE);
        let (reclaimed, remaining) = vs.vacuum(&mut vd, u64::MAX, false);
        assert_eq!((reclaimed, remaining), (3, 0));
        // Tombstoned: same length, payloads intact, states flipped.
        assert_eq!(vd.len(VERSIONS_FILE), before);
        assert_eq!(vd.read(VERSIONS_FILE).unwrap()[STATE_OFF], STATE_VACUUMED);
        // Scrub: the file physically shrinks to nothing.
        let (_, _) = vs.vacuum(&mut vd, u64::MAX, true);
        assert_eq!(vd.len(VERSIONS_FILE), 0);
    }

    #[test]
    fn vacuum_respects_horizon() {
        let mut vs = VersionStore::default();
        let mut vd = VDisk::new();
        vs.record_insert("t", 1, 10);
        vs.commit(&mut vd, 10, 1);
        vs.record_supersession(&mut vd, "t", &row(1, 100), OP_UPDATE, 11);
        vs.commit(&mut vd, 11, 2);
        vs.record_supersession(&mut vd, "t", &row(1, 200), OP_UPDATE, 12);
        vs.commit(&mut vd, 12, 3);
        // A snapshot at CSN 2 still needs the second image (xmax 3).
        let (reclaimed, remaining) = vs.vacuum(&mut vd, 2, false);
        assert_eq!((reclaimed, remaining), (1, 1));
        assert_eq!(
            vs.chains()[&("t".to_string(), 1)][0].xmax,
            3,
            "the still-needed image survives"
        );
    }

    #[test]
    fn intra_txn_images_never_visible() {
        let mut vs = VersionStore::default();
        let mut vd = VDisk::new();
        vs.record_insert("t", 1, 10);
        vs.commit(&mut vd, 10, 1);
        // One txn updates the row twice: the intermediate image's
        // window must collapse at commit.
        vs.record_supersession(&mut vd, "t", &row(1, 100), OP_UPDATE, 11);
        vs.record_supersession(&mut vd, "t", &row(1, 150), OP_UPDATE, 11);
        vs.commit(&mut vd, 11, 2);
        // Snapshot 1: the original image, not the intermediate.
        let visible = vs.visible_row("t", row(1, 200), 1, 99).unwrap();
        assert_eq!(visible.values[0], Value::Int(100));
    }
}
