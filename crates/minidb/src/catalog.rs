//! The catalog: table schemas and index definitions, persisted on the
//! virtual disk so DDL survives crashes.

use std::collections::BTreeMap;

use crate::error::{DbError, DbResult};
use crate::schema::{ColumnDef, TableSchema};
use crate::value::ColumnType;
use crate::vdisk::VDisk;

/// On-disk catalog file name.
pub const CATALOG_FILE: &str = "catalog";

/// One index definition. The B+ tree lives in `file` with its root at
/// page 0 (roots are stable in [`crate::storage::BTree`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IndexDef {
    /// Index name.
    pub name: String,
    /// Index file on disk.
    pub file: String,
    /// Index of the keyed column in the table schema.
    pub column_idx: usize,
}

/// One table's catalog entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TableDef {
    /// Catalog-assigned table id (stable, used in WAL records).
    pub id: u32,
    /// Schema.
    pub schema: TableSchema,
    /// Heap file on disk.
    pub file: String,
    /// Secondary + primary-key indexes.
    pub indexes: Vec<IndexDef>,
}

/// The full catalog.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Catalog {
    /// Tables by (lower-cased) name.
    pub tables: BTreeMap<String, TableDef>,
    /// Next table id.
    pub next_table_id: u32,
}

impl Catalog {
    /// Looks up a table.
    pub fn get(&self, name: &str) -> DbResult<&TableDef> {
        self.tables
            .get(&name.to_ascii_lowercase())
            .ok_or_else(|| DbError::UnknownTable(name.to_string()))
    }

    /// Looks up a table by its id.
    pub fn get_by_id(&self, id: u32) -> Option<&TableDef> {
        self.tables.values().find(|t| t.id == id)
    }

    /// Serializes and writes the catalog to disk.
    pub fn persist(&self, vdisk: &mut VDisk) {
        let mut out = Vec::new();
        out.extend_from_slice(&self.next_table_id.to_le_bytes());
        out.extend_from_slice(&(self.tables.len() as u32).to_le_bytes());
        for t in self.tables.values() {
            write_str(&mut out, &t.schema.name);
            out.extend_from_slice(&t.id.to_le_bytes());
            write_str(&mut out, &t.file);
            out.extend_from_slice(&(t.schema.columns.len() as u16).to_le_bytes());
            for c in &t.schema.columns {
                write_str(&mut out, &c.name);
                out.push(match c.ty {
                    ColumnType::Int => 1,
                    ColumnType::Text => 2,
                    ColumnType::Bytes => 3,
                });
                out.push(c.primary_key as u8);
            }
            out.extend_from_slice(&(t.indexes.len() as u16).to_le_bytes());
            for ix in &t.indexes {
                write_str(&mut out, &ix.name);
                write_str(&mut out, &ix.file);
                out.extend_from_slice(&(ix.column_idx as u16).to_le_bytes());
            }
        }
        vdisk.write(CATALOG_FILE, out);
    }

    /// Loads the catalog from disk (empty catalog if the file is absent).
    pub fn load(vdisk: &VDisk) -> DbResult<Catalog> {
        let Some(buf) = vdisk.read(CATALOG_FILE) else {
            return Ok(Catalog::default());
        };
        let mut pos = 0;
        let next_table_id = read_u32(buf, &mut pos)?;
        let n_tables = read_u32(buf, &mut pos)? as usize;
        let mut tables = BTreeMap::new();
        for _ in 0..n_tables {
            let name = read_str(buf, &mut pos)?;
            let id = read_u32(buf, &mut pos)?;
            let file = read_str(buf, &mut pos)?;
            let n_cols = read_u16(buf, &mut pos)? as usize;
            let mut columns = Vec::with_capacity(n_cols);
            for _ in 0..n_cols {
                let cname = read_str(buf, &mut pos)?;
                let ty = match read_u8(buf, &mut pos)? {
                    1 => ColumnType::Int,
                    2 => ColumnType::Text,
                    3 => ColumnType::Bytes,
                    t => return Err(DbError::Storage(format!("bad column type tag {t}"))),
                };
                let pk = read_u8(buf, &mut pos)? != 0;
                columns.push(ColumnDef {
                    name: cname,
                    ty,
                    primary_key: pk,
                });
            }
            let n_idx = read_u16(buf, &mut pos)? as usize;
            let mut indexes = Vec::with_capacity(n_idx);
            for _ in 0..n_idx {
                let iname = read_str(buf, &mut pos)?;
                let ifile = read_str(buf, &mut pos)?;
                let column_idx = read_u16(buf, &mut pos)? as usize;
                indexes.push(IndexDef {
                    name: iname,
                    file: ifile,
                    column_idx,
                });
            }
            let schema = TableSchema::new(&name, columns)?;
            tables.insert(
                name.clone(),
                TableDef {
                    id,
                    schema,
                    file,
                    indexes,
                },
            );
        }
        Ok(Catalog {
            tables,
            next_table_id,
        })
    }
}

fn write_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u16).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn read_u8(buf: &[u8], pos: &mut usize) -> DbResult<u8> {
    let b = *buf
        .get(*pos)
        .ok_or_else(|| DbError::Storage("truncated catalog".into()))?;
    *pos += 1;
    Ok(b)
}

fn read_u16(buf: &[u8], pos: &mut usize) -> DbResult<u16> {
    let bytes = buf
        .get(*pos..*pos + 2)
        .ok_or_else(|| DbError::Storage("truncated catalog".into()))?;
    *pos += 2;
    Ok(u16::from_le_bytes(bytes.try_into().unwrap()))
}

fn read_u32(buf: &[u8], pos: &mut usize) -> DbResult<u32> {
    let bytes = buf
        .get(*pos..*pos + 4)
        .ok_or_else(|| DbError::Storage("truncated catalog".into()))?;
    *pos += 4;
    Ok(u32::from_le_bytes(bytes.try_into().unwrap()))
}

fn read_str(buf: &[u8], pos: &mut usize) -> DbResult<String> {
    let len = read_u16(buf, pos)? as usize;
    let bytes = buf
        .get(*pos..*pos + len)
        .ok_or_else(|| DbError::Storage("truncated catalog".into()))?;
    *pos += len;
    String::from_utf8(bytes.to_vec()).map_err(|_| DbError::Storage("catalog not utf8".into()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Catalog {
        let schema = TableSchema::new(
            "customers",
            vec![
                ColumnDef {
                    name: "id".into(),
                    ty: ColumnType::Int,
                    primary_key: true,
                },
                ColumnDef {
                    name: "state".into(),
                    ty: ColumnType::Text,
                    primary_key: false,
                },
            ],
        )
        .unwrap();
        let mut tables = BTreeMap::new();
        tables.insert(
            "customers".to_string(),
            TableDef {
                id: 1,
                schema,
                file: "table_customers.ibd".into(),
                indexes: vec![IndexDef {
                    name: "pk_customers".into(),
                    file: "index_customers_id.ibd".into(),
                    column_idx: 0,
                }],
            },
        );
        Catalog {
            tables,
            next_table_id: 2,
        }
    }

    #[test]
    fn persist_load_round_trip() {
        let cat = sample();
        let mut vd = VDisk::new();
        cat.persist(&mut vd);
        let loaded = Catalog::load(&vd).unwrap();
        assert_eq!(loaded, cat);
    }

    #[test]
    fn missing_file_is_empty_catalog() {
        let vd = VDisk::new();
        let loaded = Catalog::load(&vd).unwrap();
        assert!(loaded.tables.is_empty());
    }

    #[test]
    fn truncated_catalog_rejected() {
        let cat = sample();
        let mut vd = VDisk::new();
        cat.persist(&mut vd);
        let bytes = vd.read(CATALOG_FILE).unwrap().to_vec();
        for cut in 1..bytes.len() {
            let mut vd2 = VDisk::new();
            vd2.write(CATALOG_FILE, bytes[..cut].to_vec());
            assert!(Catalog::load(&vd2).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn lookups() {
        let cat = sample();
        assert!(cat.get("customers").is_ok());
        assert!(cat.get("CUSTOMERS").is_ok());
        assert!(cat.get("nope").is_err());
        assert_eq!(cat.get_by_id(1).unwrap().schema.name, "customers");
        assert!(cat.get_by_id(99).is_none());
    }
}
