//! Recursive-descent parser for MiniDB SQL.

use crate::error::{DbError, DbResult};
use crate::sql::ast::{CmpOp, Expr, SelectItem, SelectStmt, Statement};
use crate::sql::lexer::{tokenize, Sym, Token};
use crate::value::{ColumnType, Value};

/// Parses a single SQL statement (a trailing `;` is permitted).
pub fn parse_statement(sql: &str) -> DbResult<Statement> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.statement()?;
    p.eat_symbol(Sym::Semi); // Optional terminator.
    if p.pos != p.tokens.len() {
        return Err(DbError::Parse(format!(
            "trailing tokens after statement: {:?}",
            &p.tokens[p.pos..]
        )));
    }
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> DbResult<Token> {
        let t = self
            .tokens
            .get(self.pos)
            .cloned()
            .ok_or_else(|| DbError::Parse("unexpected end of statement".into()))?;
        self.pos += 1;
        Ok(t)
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(t) if t.is_kw(kw)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> DbResult<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(DbError::Parse(format!(
                "expected keyword {kw}, found {:?}",
                self.peek()
            )))
        }
    }

    fn eat_symbol(&mut self, s: Sym) -> bool {
        if matches!(self.peek(), Some(Token::Symbol(x)) if *x == s) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, s: Sym) -> DbResult<()> {
        if self.eat_symbol(s) {
            Ok(())
        } else {
            Err(DbError::Parse(format!(
                "expected {s:?}, found {:?}",
                self.peek()
            )))
        }
    }

    fn identifier(&mut self) -> DbResult<String> {
        match self.next()? {
            Token::Word(w) => Ok(w.to_ascii_lowercase()),
            t => Err(DbError::Parse(format!("expected identifier, found {t:?}"))),
        }
    }

    fn statement(&mut self) -> DbResult<Statement> {
        if self.eat_kw("create") {
            if self.eat_kw("table") {
                return self.create_table();
            }
            if self.eat_kw("index") {
                return self.create_index();
            }
            return Err(DbError::Parse(
                "expected TABLE or INDEX after CREATE".into(),
            ));
        }
        if self.eat_kw("insert") {
            return self.insert();
        }
        if self.eat_kw("select") {
            return self.select().map(Statement::Select);
        }
        if self.eat_kw("explain") {
            if self.eat_kw("analyze") {
                // EXPLAIN ANALYZE accepts any statement and executes it.
                return self
                    .statement()
                    .map(|s| Statement::ExplainAnalyze(Box::new(s)));
            }
            self.expect_kw("select")?;
            return self.select().map(Statement::Explain);
        }
        if self.eat_kw("drop") {
            self.expect_kw("table")?;
            let name = self.identifier()?;
            return Ok(Statement::DropTable { name });
        }
        if self.eat_kw("update") {
            return self.update();
        }
        if self.eat_kw("delete") {
            return self.delete();
        }
        if self.eat_kw("begin") {
            return Ok(Statement::Begin);
        }
        if self.eat_kw("commit") {
            return Ok(Statement::Commit);
        }
        if self.eat_kw("rollback") {
            return Ok(Statement::Rollback);
        }
        Err(DbError::Parse(format!(
            "unrecognized statement start: {:?}",
            self.peek()
        )))
    }

    fn create_table(&mut self) -> DbResult<Statement> {
        let name = self.identifier()?;
        self.expect_symbol(Sym::LParen)?;
        let mut columns = Vec::new();
        loop {
            let col = self.identifier()?;
            let ty_word = self.identifier()?;
            let ty = match ty_word.as_str() {
                "int" | "integer" | "bigint" => ColumnType::Int,
                "text" | "varchar" | "char" => ColumnType::Text,
                "bytes" | "blob" | "varbinary" => ColumnType::Bytes,
                other => return Err(DbError::Parse(format!("unknown type {other}"))),
            };
            let mut pk = false;
            if self.eat_kw("primary") {
                self.expect_kw("key")?;
                pk = true;
            }
            columns.push((col, ty, pk));
            if !self.eat_symbol(Sym::Comma) {
                break;
            }
        }
        self.expect_symbol(Sym::RParen)?;
        Ok(Statement::CreateTable { name, columns })
    }

    fn create_index(&mut self) -> DbResult<Statement> {
        let name = self.identifier()?;
        self.expect_kw("on")?;
        let table = self.identifier()?;
        self.expect_symbol(Sym::LParen)?;
        let column = self.identifier()?;
        self.expect_symbol(Sym::RParen)?;
        Ok(Statement::CreateIndex {
            name,
            table,
            column,
        })
    }

    fn insert(&mut self) -> DbResult<Statement> {
        self.expect_kw("into")?;
        let table = self.identifier()?;
        let columns = if self.eat_symbol(Sym::LParen) {
            let mut cols = Vec::new();
            loop {
                cols.push(self.identifier()?);
                if !self.eat_symbol(Sym::Comma) {
                    break;
                }
            }
            self.expect_symbol(Sym::RParen)?;
            Some(cols)
        } else {
            None
        };
        self.expect_kw("values")?;
        let mut rows = Vec::new();
        loop {
            self.expect_symbol(Sym::LParen)?;
            let mut vals = Vec::new();
            loop {
                vals.push(self.literal()?);
                if !self.eat_symbol(Sym::Comma) {
                    break;
                }
            }
            self.expect_symbol(Sym::RParen)?;
            rows.push(vals);
            if !self.eat_symbol(Sym::Comma) {
                break;
            }
        }
        Ok(Statement::Insert {
            table,
            columns,
            rows,
        })
    }

    fn select(&mut self) -> DbResult<SelectStmt> {
        let mut items = Vec::new();
        loop {
            items.push(self.select_item()?);
            if !self.eat_symbol(Sym::Comma) {
                break;
            }
        }
        self.expect_kw("from")?;
        let first = self.identifier()?;
        let (schema, table) = if self.eat_symbol(Sym::Dot) {
            (Some(first), self.identifier()?)
        } else {
            (None, first)
        };
        let where_clause = if self.eat_kw("where") {
            Some(self.expr()?)
        } else {
            None
        };
        let order_by = if self.eat_kw("order") {
            self.expect_kw("by")?;
            let col = self.identifier()?;
            let desc = if self.eat_kw("desc") {
                true
            } else {
                self.eat_kw("asc");
                false
            };
            Some((col, desc))
        } else {
            None
        };
        let limit = if self.eat_kw("limit") {
            match self.next()? {
                Token::Int(n) if n >= 0 => Some(n as u64),
                t => return Err(DbError::Parse(format!("bad LIMIT operand {t:?}"))),
            }
        } else {
            None
        };
        Ok(SelectStmt {
            items,
            schema,
            table,
            where_clause,
            order_by,
            limit,
        })
    }

    fn select_item(&mut self) -> DbResult<SelectItem> {
        if self.eat_symbol(Sym::Star) {
            return Ok(SelectItem::Star);
        }
        let word = self.identifier()?;
        if word == "count" && self.eat_symbol(Sym::LParen) {
            self.expect_symbol(Sym::Star)?;
            self.expect_symbol(Sym::RParen)?;
            return Ok(SelectItem::CountStar);
        }
        if self.eat_symbol(Sym::LParen) {
            // Aggregate over a single column: SUM(col), ASHE_SUM(col), …
            let col = self.identifier()?;
            self.expect_symbol(Sym::RParen)?;
            return Ok(SelectItem::Aggregate(word, col));
        }
        Ok(SelectItem::Column(word))
    }

    fn update(&mut self) -> DbResult<Statement> {
        let table = self.identifier()?;
        self.expect_kw("set")?;
        let mut sets = Vec::new();
        loop {
            let col = self.identifier()?;
            self.expect_symbol(Sym::Eq)?;
            sets.push((col, self.literal()?));
            if !self.eat_symbol(Sym::Comma) {
                break;
            }
        }
        let where_clause = if self.eat_kw("where") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Update {
            table,
            sets,
            where_clause,
        })
    }

    fn delete(&mut self) -> DbResult<Statement> {
        self.expect_kw("from")?;
        let table = self.identifier()?;
        let where_clause = if self.eat_kw("where") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Delete {
            table,
            where_clause,
        })
    }

    fn literal(&mut self) -> DbResult<Value> {
        match self.next()? {
            Token::Int(n) => Ok(Value::Int(n)),
            Token::Str(s) => Ok(Value::Text(s)),
            Token::Hex(b) => Ok(Value::Bytes(b)),
            Token::Symbol(Sym::Minus) => match self.next()? {
                Token::Int(n) => Ok(Value::Int(-n)),
                t => Err(DbError::Parse(format!(
                    "expected number after '-', got {t:?}"
                ))),
            },
            Token::Symbol(Sym::Plus) => match self.next()? {
                Token::Int(n) => Ok(Value::Int(n)),
                t => Err(DbError::Parse(format!(
                    "expected number after '+', got {t:?}"
                ))),
            },
            Token::Word(w) if w.eq_ignore_ascii_case("null") => Ok(Value::Null),
            t => Err(DbError::Parse(format!("expected literal, found {t:?}"))),
        }
    }

    /// Expression grammar: `or_expr` with standard precedence
    /// (OR < AND < NOT < comparison < primary).
    fn expr(&mut self) -> DbResult<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> DbResult<Expr> {
        let mut left = self.and_expr()?;
        while self.eat_kw("or") {
            let right = self.and_expr()?;
            left = Expr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> DbResult<Expr> {
        let mut left = self.not_expr()?;
        while self.eat_kw("and") {
            let right = self.not_expr()?;
            left = Expr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> DbResult<Expr> {
        if self.eat_kw("not") {
            return Ok(Expr::Not(Box::new(self.not_expr()?)));
        }
        self.cmp_expr()
    }

    fn cmp_expr(&mut self) -> DbResult<Expr> {
        let left = self.primary()?;
        let op = match self.peek() {
            Some(Token::Symbol(Sym::Eq)) => Some(CmpOp::Eq),
            Some(Token::Symbol(Sym::Ne)) => Some(CmpOp::Ne),
            Some(Token::Symbol(Sym::Lt)) => Some(CmpOp::Lt),
            Some(Token::Symbol(Sym::Le)) => Some(CmpOp::Le),
            Some(Token::Symbol(Sym::Gt)) => Some(CmpOp::Gt),
            Some(Token::Symbol(Sym::Ge)) => Some(CmpOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.primary()?;
            Ok(Expr::Cmp(Box::new(left), op, Box::new(right)))
        } else {
            Ok(left)
        }
    }

    fn primary(&mut self) -> DbResult<Expr> {
        match self.peek().cloned() {
            Some(Token::Symbol(Sym::LParen)) => {
                self.pos += 1;
                let inner = self.expr()?;
                self.expect_symbol(Sym::RParen)?;
                Ok(inner)
            }
            Some(Token::Int(_))
            | Some(Token::Str(_))
            | Some(Token::Hex(_))
            | Some(Token::Symbol(Sym::Minus))
            | Some(Token::Symbol(Sym::Plus)) => Ok(Expr::Literal(self.literal()?)),
            Some(Token::Word(w)) => {
                if w.eq_ignore_ascii_case("null") {
                    self.pos += 1;
                    return Ok(Expr::Literal(Value::Null));
                }
                self.pos += 1;
                if self.eat_symbol(Sym::LParen) {
                    // Scalar function call with expression arguments.
                    let mut args = Vec::new();
                    if !self.eat_symbol(Sym::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat_symbol(Sym::Comma) {
                                break;
                            }
                        }
                        self.expect_symbol(Sym::RParen)?;
                    }
                    Ok(Expr::Func(w.to_ascii_uppercase(), args))
                } else {
                    Ok(Expr::Column(w.to_ascii_lowercase()))
                }
            }
            t => Err(DbError::Parse(format!(
                "unexpected token in expression: {t:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_table() {
        let s = parse_statement("CREATE TABLE Customers (id INT PRIMARY KEY, state TEXT, age INT)")
            .unwrap();
        match s {
            Statement::CreateTable { name, columns } => {
                assert_eq!(name, "customers");
                assert_eq!(columns.len(), 3);
                assert_eq!(columns[0], ("id".into(), ColumnType::Int, true));
                assert_eq!(columns[1], ("state".into(), ColumnType::Text, false));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn insert_multi_row() {
        let s = parse_statement("INSERT INTO t (a, b) VALUES (1, 'x'), (-2, NULL), (3, X'ff')")
            .unwrap();
        match s {
            Statement::Insert {
                table,
                columns,
                rows,
            } => {
                assert_eq!(table, "t");
                assert_eq!(columns.unwrap(), vec!["a", "b"]);
                assert_eq!(rows.len(), 3);
                assert_eq!(rows[1], vec![Value::Int(-2), Value::Null]);
                assert_eq!(rows[2][1], Value::Bytes(vec![0xFF]));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn select_with_everything() {
        let s = parse_statement(
            "SELECT id, state FROM customers WHERE state = 'IN' AND age >= 25 \
             ORDER BY age DESC LIMIT 10",
        )
        .unwrap();
        match s {
            Statement::Select(sel) => {
                assert_eq!(sel.items.len(), 2);
                assert_eq!(sel.table, "customers");
                assert_eq!(sel.order_by, Some(("age".into(), true)));
                assert_eq!(sel.limit, Some(10));
                assert!(matches!(sel.where_clause, Some(Expr::And(_, _))));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn select_qualified_schema_table() {
        let s = parse_statement("SELECT * FROM performance_schema.threads").unwrap();
        match s {
            Statement::Select(sel) => {
                assert_eq!(sel.schema.as_deref(), Some("performance_schema"));
                assert_eq!(sel.table, "threads");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn aggregates() {
        let s = parse_statement("SELECT COUNT(*) FROM t WHERE a = 10").unwrap();
        match s {
            Statement::Select(sel) => assert_eq!(sel.items, vec![SelectItem::CountStar]),
            other => panic!("{other:?}"),
        }
        let s = parse_statement("SELECT ASHE_SUM(c3) FROM t").unwrap();
        match s {
            Statement::Select(sel) => {
                assert_eq!(
                    sel.items,
                    vec![SelectItem::Aggregate("ashe_sum".into(), "c3".into())]
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn where_precedence() {
        // a = 1 OR b = 2 AND c = 3  ==  a = 1 OR (b = 2 AND c = 3)
        let s = parse_statement("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3").unwrap();
        let Statement::Select(sel) = s else { panic!() };
        match sel.where_clause.unwrap() {
            Expr::Or(_, rhs) => assert!(matches!(*rhs, Expr::And(_, _))),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn function_in_where() {
        let s = parse_statement("SELECT * FROM docs WHERE SWP_MATCH(body_idx, X'0a0b')").unwrap();
        let Statement::Select(sel) = s else { panic!() };
        match sel.where_clause.unwrap() {
            Expr::Func(name, args) => {
                assert_eq!(name, "SWP_MATCH");
                assert_eq!(args.len(), 2);
                assert_eq!(args[0], Expr::Column("body_idx".into()));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn update_and_delete() {
        let s = parse_statement("UPDATE t SET a = 5, b = 'y' WHERE id = 1").unwrap();
        match s {
            Statement::Update {
                table,
                sets,
                where_clause,
            } => {
                assert_eq!(table, "t");
                assert_eq!(sets.len(), 2);
                assert!(where_clause.is_some());
            }
            other => panic!("{other:?}"),
        }
        let s = parse_statement("DELETE FROM t").unwrap();
        assert!(matches!(
            s,
            Statement::Delete {
                where_clause: None,
                ..
            }
        ));
    }

    #[test]
    fn drop_table() {
        assert_eq!(
            parse_statement("DROP TABLE Customers").unwrap(),
            Statement::DropTable {
                name: "customers".into()
            }
        );
        assert!(parse_statement("DROP Customers").is_err());
    }

    #[test]
    fn explain_select() {
        let s = parse_statement("EXPLAIN SELECT * FROM t WHERE id = 5").unwrap();
        match s {
            Statement::Explain(sel) => assert_eq!(sel.table, "t"),
            other => panic!("{other:?}"),
        }
        assert!(parse_statement("EXPLAIN INSERT INTO t VALUES (1)").is_err());
    }

    #[test]
    fn txn_keywords() {
        assert_eq!(parse_statement("BEGIN").unwrap(), Statement::Begin);
        assert_eq!(parse_statement("COMMIT;").unwrap(), Statement::Commit);
        assert_eq!(parse_statement("rollback").unwrap(), Statement::Rollback);
    }

    #[test]
    fn parse_errors() {
        assert!(parse_statement("").is_err());
        assert!(parse_statement("SELEC * FROM t").is_err());
        assert!(parse_statement("SELECT * FROM t garbage").is_err());
        assert!(parse_statement("INSERT INTO t VALUES").is_err());
        assert!(
            parse_statement("UPDATE t SET a = b").is_err(),
            "non-literal SET"
        );
        assert!(parse_statement("SELECT * FROM t LIMIT 'x'").is_err());
    }
}
