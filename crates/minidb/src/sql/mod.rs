//! SQL front end: lexer, AST, recursive-descent parser, and the
//! `performance_schema` digest canonicalizer.

pub mod ast;
pub mod digest;
pub mod lexer;
pub mod parser;

pub use ast::{CmpOp, Expr, SelectItem, SelectStmt, Statement};
pub use digest::digest_text;
pub use parser::parse_statement;
