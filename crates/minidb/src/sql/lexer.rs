//! SQL tokenizer.

use crate::error::{DbError, DbResult};

/// A SQL token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Token {
    /// Identifier or keyword (original case preserved; compare via
    /// [`Token::is_kw`] / lower-cased identifiers).
    Word(String),
    /// Integer literal (sign handled by the parser).
    Int(i64),
    /// String literal with `''` escapes already resolved.
    Str(String),
    /// Hex bytes literal `X'0aff'`.
    Hex(Vec<u8>),
    /// Punctuation / operators.
    Symbol(Sym),
}

/// Punctuation tokens.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Sym {
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `;`
    Semi,
    /// `*`
    Star,
    /// `=`
    Eq,
    /// `!=` or `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `-` (unary minus before a number)
    Minus,
    /// `+`
    Plus,
}

impl Token {
    /// Case-insensitive keyword check for word tokens.
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Word(w) if w.eq_ignore_ascii_case(kw))
    }
}

/// Tokenizes `input` into a vector of tokens.
pub fn tokenize(input: &str) -> DbResult<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut i = 0;
    let mut out = Vec::new();
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '(' => {
                out.push(Token::Symbol(Sym::LParen));
                i += 1;
            }
            ')' => {
                out.push(Token::Symbol(Sym::RParen));
                i += 1;
            }
            ',' => {
                out.push(Token::Symbol(Sym::Comma));
                i += 1;
            }
            '.' => {
                out.push(Token::Symbol(Sym::Dot));
                i += 1;
            }
            ';' => {
                out.push(Token::Symbol(Sym::Semi));
                i += 1;
            }
            '*' => {
                out.push(Token::Symbol(Sym::Star));
                i += 1;
            }
            '=' => {
                out.push(Token::Symbol(Sym::Eq));
                i += 1;
            }
            '+' => {
                out.push(Token::Symbol(Sym::Plus));
                i += 1;
            }
            '-' => {
                // `--` starts a comment to end of line.
                if bytes.get(i + 1) == Some(&b'-') {
                    while i < bytes.len() && bytes[i] != b'\n' {
                        i += 1;
                    }
                } else {
                    out.push(Token::Symbol(Sym::Minus));
                    i += 1;
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Symbol(Sym::Ne));
                    i += 2;
                } else {
                    return Err(DbError::Parse("lone '!'".into()));
                }
            }
            '<' => match bytes.get(i + 1) {
                Some(b'=') => {
                    out.push(Token::Symbol(Sym::Le));
                    i += 2;
                }
                Some(b'>') => {
                    out.push(Token::Symbol(Sym::Ne));
                    i += 2;
                }
                _ => {
                    out.push(Token::Symbol(Sym::Lt));
                    i += 1;
                }
            },
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Symbol(Sym::Ge));
                    i += 2;
                } else {
                    out.push(Token::Symbol(Sym::Gt));
                    i += 1;
                }
            }
            '\'' => {
                let (s, next) = lex_string(input, i)?;
                out.push(Token::Str(s));
                i = next;
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text = &input[start..i];
                let n: i64 = text
                    .parse()
                    .map_err(|_| DbError::Parse(format!("integer out of range: {text}")))?;
                out.push(Token::Int(n));
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                // `X'..'` hex literal?
                if (c == 'x' || c == 'X') && bytes.get(i + 1) == Some(&b'\'') {
                    let (s, next) = lex_string(input, i + 1)?;
                    let hex = decode_hex(&s)?;
                    out.push(Token::Hex(hex));
                    i = next;
                } else {
                    let start = i;
                    while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_')
                    {
                        i += 1;
                    }
                    out.push(Token::Word(input[start..i].to_string()));
                }
            }
            other => return Err(DbError::Parse(format!("unexpected character {other:?}"))),
        }
    }
    Ok(out)
}

/// Lexes a single-quoted string starting at the quote; returns the decoded
/// string and the index just past the closing quote.
fn lex_string(input: &str, quote_idx: usize) -> DbResult<(String, usize)> {
    let bytes = input.as_bytes();
    debug_assert_eq!(bytes[quote_idx], b'\'');
    let mut s = String::new();
    let mut i = quote_idx + 1;
    while i < bytes.len() {
        if bytes[i] == b'\'' {
            if bytes.get(i + 1) == Some(&b'\'') {
                s.push('\'');
                i += 2;
            } else {
                return Ok((s, i + 1));
            }
        } else {
            // Multi-byte UTF-8 is copied through byte-wise; the input is a
            // &str so the result remains valid UTF-8.
            let ch_len = utf8_len(bytes[i]);
            s.push_str(&input[i..i + ch_len]);
            i += ch_len;
        }
    }
    Err(DbError::Parse("unterminated string literal".into()))
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

fn decode_hex(s: &str) -> DbResult<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return Err(DbError::Parse("odd-length hex literal".into()));
    }
    let mut out = Vec::with_capacity(s.len() / 2);
    let b = s.as_bytes();
    for pair in b.chunks_exact(2) {
        let hi = hex_val(pair[0])?;
        let lo = hex_val(pair[1])?;
        out.push(hi << 4 | lo);
    }
    Ok(out)
}

fn hex_val(c: u8) -> DbResult<u8> {
    match c {
        b'0'..=b'9' => Ok(c - b'0'),
        b'a'..=b'f' => Ok(c - b'a' + 10),
        b'A'..=b'F' => Ok(c - b'A' + 10),
        _ => Err(DbError::Parse(format!("bad hex digit {:?}", c as char))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_select() {
        let toks = tokenize("SELECT * FROM customers WHERE state = 'IN'").unwrap();
        assert_eq!(toks[0], Token::Word("SELECT".into()));
        assert_eq!(toks[1], Token::Symbol(Sym::Star));
        assert!(toks[2].is_kw("from"));
        assert_eq!(toks.last().unwrap(), &Token::Str("IN".into()));
    }

    #[test]
    fn operators() {
        let toks = tokenize("a >= 1 AND b <> 2 OR c != 3 AND d <= -4").unwrap();
        assert!(toks.contains(&Token::Symbol(Sym::Ge)));
        assert_eq!(
            toks.iter()
                .filter(|t| **t == Token::Symbol(Sym::Ne))
                .count(),
            2
        );
        assert!(toks.contains(&Token::Symbol(Sym::Minus)));
    }

    #[test]
    fn string_escapes_and_unicode() {
        let toks = tokenize("'O''Brien' 'héllo'").unwrap();
        assert_eq!(toks[0], Token::Str("O'Brien".into()));
        assert_eq!(toks[1], Token::Str("héllo".into()));
    }

    #[test]
    fn hex_literals() {
        let toks = tokenize("X'0aFF' x'00'").unwrap();
        assert_eq!(toks[0], Token::Hex(vec![0x0A, 0xFF]));
        assert_eq!(toks[1], Token::Hex(vec![0x00]));
        assert!(tokenize("X'abc'").is_err());
        assert!(tokenize("X'zz'").is_err());
    }

    #[test]
    fn comments_skipped() {
        let toks = tokenize("SELECT 1 -- trailing comment\n, 2").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Word("SELECT".into()),
                Token::Int(1),
                Token::Symbol(Sym::Comma),
                Token::Int(2),
            ]
        );
    }

    #[test]
    fn errors() {
        assert!(tokenize("'unterminated").is_err());
        assert!(tokenize("a ! b").is_err());
        assert!(tokenize("99999999999999999999").is_err());
        assert!(tokenize("€").is_err());
    }

    #[test]
    fn qualified_names() {
        let toks = tokenize("performance_schema.threads").unwrap();
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[1], Token::Symbol(Sym::Dot));
    }
}
