//! Abstract syntax tree for MiniDB's SQL dialect.

use crate::value::{ColumnType, Value};

/// Comparison operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=` / `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// A scalar expression (used in `WHERE` and `SET`).
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// A literal value.
    Literal(Value),
    /// A column reference (lower-cased).
    Column(String),
    /// Binary comparison.
    Cmp(Box<Expr>, CmpOp, Box<Expr>),
    /// Logical AND.
    And(Box<Expr>, Box<Expr>),
    /// Logical OR.
    Or(Box<Expr>, Box<Expr>),
    /// Logical NOT.
    Not(Box<Expr>),
    /// Scalar function call, e.g. the SWP matching UDF the encrypted
    /// database layers register: `SWP_MATCH(body_index, X'…')`.
    Func(String, Vec<Expr>),
}

impl Expr {
    /// Returns the literal if this expression is one.
    pub fn as_literal(&self) -> Option<&Value> {
        match self {
            Expr::Literal(v) => Some(v),
            _ => None,
        }
    }
}

/// One item in a `SELECT` list.
#[derive(Clone, Debug, PartialEq)]
pub enum SelectItem {
    /// `*`
    Star,
    /// A plain column.
    Column(String),
    /// `COUNT(*)`
    CountStar,
    /// Aggregate function over a column, e.g. `SUM(age)` or the Seabed
    /// rewrite target `ASHE_SUM(c3)`.
    Aggregate(String, String),
}

/// A `SELECT` statement.
#[derive(Clone, Debug, PartialEq)]
pub struct SelectStmt {
    /// Select list.
    pub items: Vec<SelectItem>,
    /// Source table; `schema` is `Some` for qualified names like
    /// `performance_schema.threads`.
    pub schema: Option<String>,
    /// Table name (lower-cased).
    pub table: String,
    /// Optional `WHERE` clause.
    pub where_clause: Option<Expr>,
    /// Optional `ORDER BY column [DESC]`.
    pub order_by: Option<(String, bool)>,
    /// Optional `LIMIT n`.
    pub limit: Option<u64>,
}

/// Any SQL statement MiniDB accepts.
#[derive(Clone, Debug, PartialEq)]
pub enum Statement {
    /// `CREATE TABLE name (col TYPE [PRIMARY KEY], …)`
    CreateTable {
        /// Table name.
        name: String,
        /// `(name, type, is_primary_key)` triples in declaration order.
        columns: Vec<(String, ColumnType, bool)>,
    },
    /// `CREATE INDEX name ON table (column)`
    CreateIndex {
        /// Index name.
        name: String,
        /// Indexed table.
        table: String,
        /// Indexed column.
        column: String,
    },
    /// `INSERT INTO table [(cols)] VALUES (…), (…)`
    Insert {
        /// Target table.
        table: String,
        /// Explicit column list, if given.
        columns: Option<Vec<String>>,
        /// Rows of literal values.
        rows: Vec<Vec<Value>>,
    },
    /// A `SELECT`.
    Select(SelectStmt),
    /// `EXPLAIN SELECT …`: returns the access plan without executing.
    Explain(SelectStmt),
    /// `EXPLAIN ANALYZE <stmt>`: *executes* the statement (MySQL 8 /
    /// Postgres semantics) and returns its span tree with simulated
    /// stage timings and per-span attributes.
    ExplainAnalyze(Box<Statement>),
    /// `UPDATE table SET col = lit [, …] [WHERE …]`
    Update {
        /// Target table.
        table: String,
        /// Assignments.
        sets: Vec<(String, Value)>,
        /// Optional filter.
        where_clause: Option<Expr>,
    },
    /// `DELETE FROM table [WHERE …]`
    Delete {
        /// Target table.
        table: String,
        /// Optional filter.
        where_clause: Option<Expr>,
    },
    /// `DROP TABLE name`
    DropTable {
        /// Table to drop.
        name: String,
    },
    /// `BEGIN`
    Begin,
    /// `COMMIT`
    Commit,
    /// `ROLLBACK`
    Rollback,
}

impl Statement {
    /// Whether this statement can modify table data (drives WAL/binlog).
    pub fn is_write(&self) -> bool {
        matches!(
            self,
            Statement::Insert { .. } | Statement::Update { .. } | Statement::Delete { .. }
        )
    }
}
