//! Statement-digest canonicalization, mirroring MySQL's
//! `performance_schema` statement digests (§4 of the paper).
//!
//! The canonical form removes the *arguments* but preserves the
//! select-from-where structure and the attributes a query uses. As in
//! MySQL:
//!
//! * every literal becomes `?`;
//! * keywords are upper-cased, identifiers lower-cased;
//! * whitespace collapses to single spaces.
//!
//! So `SELECT * FROM CUSTOMERS WHERE STATE='IN'` and `… WHERE STATE='AZ'`
//! share a digest, while adding `AND AGE >= 25` produces a different one —
//! the paper's worked example, verified in this module's tests. This is
//! exactly the property that betrays SPLASHE: rewritten queries touch
//! different *column names*, which are identifiers, not literals, so each
//! plaintext value gets its own digest bucket.

use crate::sql::lexer::{tokenize, Sym, Token};

/// Keywords recognized for upper-casing in digest text.
const KEYWORDS: &[&str] = &[
    "select", "from", "where", "and", "or", "not", "insert", "into", "values", "update", "set",
    "delete", "create", "table", "index", "on", "order", "by", "asc", "desc", "limit", "primary",
    "key", "begin", "commit", "rollback", "null", "count",
];

/// Computes the canonical digest text of a statement.
///
/// Unlexable statements canonicalize to the fixed bucket `"(invalid)"`,
/// matching MySQL's behaviour of still recording rejected statements.
pub fn digest_text(sql: &str) -> String {
    let Ok(tokens) = tokenize(sql) else {
        return "(invalid)".to_string();
    };
    let mut out = String::new();
    let mut prev_joinable = false;
    let mut i = 0;
    while i < tokens.len() {
        let piece: String = match &tokens[i] {
            Token::Int(_) | Token::Str(_) | Token::Hex(_) => "?".to_string(),
            // A sign directly before a numeric literal folds into the `?`.
            Token::Symbol(Sym::Minus) | Token::Symbol(Sym::Plus)
                if matches!(tokens.get(i + 1), Some(Token::Int(_))) =>
            {
                i += 1;
                "?".to_string()
            }
            Token::Word(w) => {
                let lower = w.to_ascii_lowercase();
                if KEYWORDS.contains(&lower.as_str()) {
                    lower.to_ascii_uppercase()
                } else {
                    lower
                }
            }
            Token::Symbol(s) => symbol_text(*s).to_string(),
        };
        let joinable = !matches!(
            &tokens[i],
            Token::Symbol(Sym::LParen)
                | Token::Symbol(Sym::RParen)
                | Token::Symbol(Sym::Comma)
                | Token::Symbol(Sym::Dot)
                | Token::Symbol(Sym::Semi)
        );
        let tight = matches!(
            &tokens[i],
            Token::Symbol(Sym::Dot)
                | Token::Symbol(Sym::Comma)
                | Token::Symbol(Sym::Semi)
                | Token::Symbol(Sym::RParen)
        );
        if !out.is_empty() && prev_joinable && !tight {
            out.push(' ');
        }
        out.push_str(&piece);
        prev_joinable = joinable || matches!(&tokens[i], Token::Symbol(Sym::RParen));
        i += 1;
    }
    out
}

fn symbol_text(s: Sym) -> &'static str {
    match s {
        Sym::LParen => "(",
        Sym::RParen => ")",
        Sym::Comma => ",",
        Sym::Dot => ".",
        Sym::Semi => ";",
        Sym::Star => "*",
        Sym::Eq => "=",
        Sym::Ne => "!=",
        Sym::Lt => "<",
        Sym::Le => "<=",
        Sym::Gt => ">",
        Sym::Ge => ">=",
        Sym::Minus => "-",
        Sym::Plus => "+",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_worked_example() {
        // §4: the first two queries share a canonical form; the other two
        // differ from it and from each other.
        let q1 = digest_text("SELECT * FROM CUSTOMERS WHERE STATE='IN'");
        let q2 = digest_text("SELECT * FROM CUSTOMERS WHERE STATE='AZ'");
        let q3 = digest_text("SELECT * FROM CUSTOMERS WHERE AGE >=25");
        let q4 = digest_text("SELECT * FROM CUSTOMERS WHERE STATE='IN' AND AGE >=25");
        assert_eq!(q1, q2);
        assert_ne!(q1, q3);
        assert_ne!(q1, q4);
        assert_ne!(q3, q4);
    }

    #[test]
    fn literals_normalized() {
        assert_eq!(
            digest_text("SELECT * FROM t WHERE a = 5"),
            digest_text("select * from T where A = -17")
        );
        assert_eq!(
            digest_text("SELECT * FROM t WHERE a = 'x'"),
            digest_text("SELECT * FROM t WHERE a = 'very different literal'")
        );
        assert_eq!(
            digest_text("SELECT * FROM t WHERE a = X'00'"),
            digest_text("SELECT * FROM t WHERE a = X'ffff'")
        );
    }

    #[test]
    fn column_names_distinguish() {
        // The SPLASHE failure mode: distinct columns ⇒ distinct digests.
        let a = digest_text("SELECT ASHE_SUM(c3) FROM t");
        let b = digest_text("SELECT ASHE_SUM(c4) FROM t");
        assert_ne!(a, b);
    }

    #[test]
    fn whitespace_and_case_insensitive() {
        assert_eq!(
            digest_text("SELECT  *   FROM customers\nWHERE state = 'IN'"),
            digest_text("select * from CUSTOMERS where STATE = 'ZZ'")
        );
    }

    #[test]
    fn digest_text_shape() {
        assert_eq!(
            digest_text("SELECT * FROM Customers WHERE State = 'IN' AND Age >= 25"),
            "SELECT * FROM customers WHERE state = ? AND age >= ?"
        );
        assert_eq!(
            digest_text("INSERT INTO t VALUES (1, 'x')"),
            "INSERT INTO t VALUES (?,?)"
        );
    }

    #[test]
    fn invalid_statements_bucket() {
        assert_eq!(digest_text("€€€"), "(invalid)");
    }
}
