//! Volatile caches: the query cache and the adaptive hash index (§5).

use std::collections::HashMap;

use crate::heap::HeapPtr;
use crate::storage::bufpool::PageKey;
use crate::value::Value;

/// A cached result set.
#[derive(Clone, Debug)]
pub struct CachedResult {
    /// Result column names.
    pub columns: Vec<String>,
    /// Result rows.
    pub rows: Vec<Vec<Value>>,
}

struct CacheEntry {
    result: CachedResult,
    /// Tables the query read (for invalidation).
    tables: Vec<String>,
    /// Arena copy of the query text (freed on eviction — leaving residue).
    text_ptr: HeapPtr,
    last_used: u64,
}

/// The MySQL-style query cache: an internal map from `SELECT` text to its
/// full result set. It is strictly internal — not reachable through any
/// SQL interface — but is plainly visible to a whole-memory snapshot
/// attacker, queries and results both (§5).
pub struct QueryCache {
    /// Whether caching is enabled.
    pub enabled: bool,
    capacity: usize,
    entries: HashMap<String, CacheEntry>,
    tick: u64,
    /// Statistics: cache hits.
    pub hits: u64,
    /// Statistics: cache misses.
    pub misses: u64,
}

impl QueryCache {
    /// Creates a cache holding at most `capacity` entries.
    pub fn new(enabled: bool, capacity: usize) -> Self {
        QueryCache {
            enabled,
            capacity: capacity.max(1),
            entries: HashMap::new(),
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Looks up a cached result for the exact query text.
    pub fn get(&mut self, sql: &str) -> Option<CachedResult> {
        if !self.enabled {
            return None;
        }
        self.tick += 1;
        let tick = self.tick;
        match self.entries.get_mut(sql) {
            Some(e) => {
                e.last_used = tick;
                self.hits += 1;
                Some(e.result.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts a result; returns the arena pointers of any evicted entries
    /// so the engine can free them (not zero them!).
    pub fn insert(
        &mut self,
        sql: &str,
        tables: Vec<String>,
        result: CachedResult,
        text_ptr: HeapPtr,
    ) -> Vec<HeapPtr> {
        if !self.enabled {
            return vec![text_ptr];
        }
        self.tick += 1;
        let mut freed = Vec::new();
        if let Some(old) = self.entries.remove(sql) {
            freed.push(old.text_ptr);
        }
        while self.entries.len() >= self.capacity {
            let victim = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
                .expect("non-empty");
            freed.push(self.entries.remove(&victim).unwrap().text_ptr);
        }
        self.entries.insert(
            sql.to_string(),
            CacheEntry {
                result,
                tables,
                text_ptr,
                last_used: self.tick,
            },
        );
        freed
    }

    /// Invalidates every entry that read `table`; returns freed pointers.
    pub fn invalidate_table(&mut self, table: &str) -> Vec<HeapPtr> {
        let keys: Vec<String> = self
            .entries
            .iter()
            .filter(|(_, e)| e.tables.iter().any(|t| t == table))
            .map(|(k, _)| k.clone())
            .collect();
        keys.into_iter()
            .map(|k| self.entries.remove(&k).unwrap().text_ptr)
            .collect()
    }

    /// Cached query texts (what a memory snapshot reveals).
    pub fn cached_queries(&self) -> Vec<String> {
        let mut v: Vec<String> = self.entries.keys().cloned().collect();
        v.sort();
        v
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops everything (restart); returns freed pointers.
    pub fn clear(&mut self) -> Vec<HeapPtr> {
        self.entries.drain().map(|(_, e)| e.text_ptr).collect()
    }
}

/// The adaptive hash index: InnoDB builds a hash index over the values of
/// pages that are accessed often, so a memory snapshot reveals *which key
/// values were searched frequently* (§5).
pub struct AdaptiveHash {
    /// Accesses of one page before its searched keys get indexed.
    pub threshold: u64,
    counts: HashMap<PageKey, u64>,
    /// Encoded search key → the page it resolved to.
    index: HashMap<Vec<u8>, PageKey>,
}

impl AdaptiveHash {
    /// Creates the structure with an access-count threshold.
    pub fn new(threshold: u64) -> Self {
        AdaptiveHash {
            threshold: threshold.max(1),
            counts: HashMap::new(),
            index: HashMap::new(),
        }
    }

    /// Records that a search for `key_bytes` landed on `page`. Once the
    /// page is hot (≥ threshold accesses), the searched key is indexed.
    pub fn record_search(&mut self, page: PageKey, key_bytes: &[u8]) {
        let c = self.counts.entry(page.clone()).or_insert(0);
        *c += 1;
        if *c >= self.threshold {
            self.index.insert(key_bytes.to_vec(), page);
        }
    }

    /// The indexed (hot) keys — pure leakage to a memory snapshot.
    pub fn indexed_keys(&self) -> Vec<(&[u8], &PageKey)> {
        let mut v: Vec<(&[u8], &PageKey)> =
            self.index.iter().map(|(k, p)| (k.as_slice(), p)).collect();
        v.sort_by(|a, b| a.0.cmp(b.0));
        v
    }

    /// Access count of a page.
    pub fn page_count(&self, page: &PageKey) -> u64 {
        self.counts.get(page).copied().unwrap_or(0)
    }

    /// Drops everything (restart).
    pub fn clear(&mut self) {
        self.counts.clear();
        self.index.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heap::HeapArena;

    fn result() -> CachedResult {
        CachedResult {
            columns: vec!["a".into()],
            rows: vec![vec![Value::Int(1)]],
        }
    }

    #[test]
    fn hit_and_miss() {
        let mut h = HeapArena::new();
        let mut qc = QueryCache::new(true, 4);
        assert!(qc.get("SELECT 1").is_none());
        let ptr = h.alloc_str("SELECT 1");
        qc.insert("SELECT 1", vec!["t".into()], result(), ptr);
        assert!(qc.get("SELECT 1").is_some());
        assert_eq!((qc.hits, qc.misses), (1, 1));
    }

    #[test]
    fn disabled_cache_frees_immediately() {
        let mut h = HeapArena::new();
        let mut qc = QueryCache::new(false, 4);
        let ptr = h.alloc_str("SELECT 1");
        let freed = qc.insert("SELECT 1", vec![], result(), ptr);
        assert_eq!(freed, vec![ptr]);
        assert!(qc.get("SELECT 1").is_none());
    }

    #[test]
    fn lru_eviction_returns_pointers() {
        let mut h = HeapArena::new();
        let mut qc = QueryCache::new(true, 2);
        let p1 = h.alloc_str("q1");
        let p2 = h.alloc_str("q2");
        let p3 = h.alloc_str("q3");
        qc.insert("q1", vec![], result(), p1);
        qc.insert("q2", vec![], result(), p2);
        qc.get("q1"); // q1 now more recent than q2.
        let freed = qc.insert("q3", vec![], result(), p3);
        assert_eq!(freed, vec![p2]);
        assert_eq!(qc.cached_queries(), vec!["q1", "q3"]);
    }

    #[test]
    fn table_invalidation() {
        let mut h = HeapArena::new();
        let mut qc = QueryCache::new(true, 8);
        let p1 = h.alloc_str("SELECT * FROM a");
        let p2 = h.alloc_str("SELECT * FROM b");
        qc.insert("SELECT * FROM a", vec!["a".into()], result(), p1);
        qc.insert("SELECT * FROM b", vec!["b".into()], result(), p2);
        let freed = qc.invalidate_table("a");
        assert_eq!(freed, vec![p1]);
        assert!(qc.get("SELECT * FROM a").is_none());
        assert!(qc.get("SELECT * FROM b").is_some());
    }

    #[test]
    fn adaptive_hash_indexes_hot_keys() {
        let mut ah = AdaptiveHash::new(3);
        let page = ("idx.ibd".to_string(), 5u32);
        ah.record_search(page.clone(), b"key-A");
        ah.record_search(page.clone(), b"key-A");
        assert!(ah.indexed_keys().is_empty(), "below threshold");
        ah.record_search(page.clone(), b"key-A");
        let keys = ah.indexed_keys();
        assert_eq!(keys.len(), 1);
        assert_eq!(keys[0].0, b"key-A");
        assert_eq!(ah.page_count(&page), 3);
        ah.clear();
        assert!(ah.indexed_keys().is_empty());
    }
}
