//! The MiniDB engine: connections, statement execution, transactions,
//! crash/recovery, and all the instrumentation the paper's attacks feed on.

use std::collections::HashMap;
use std::sync::Arc;

use mdb_telemetry::{Counter, Histogram, Registry};
use mdb_trace::{Recorder, StatementTrace, TraceBuilder, TraceContext};
use parking_lot::Mutex;

use crate::cache::{AdaptiveHash, CachedResult, QueryCache};
use crate::catalog::{Catalog, IndexDef, TableDef};
use crate::error::{DbError, DbResult};
use crate::group_commit::GroupCommitPipeline;
use crate::heap::HeapArena;
use crate::mvcc::{VersionStore, OP_DELETE, OP_UPDATE};
use crate::observability::{PerfSchema, ProcessList, ReplicaStatus};
use crate::row::{Row, RowId};
use crate::schema::{ColumnDef, TableSchema};
use crate::sql::ast::{CmpOp, Expr, SelectItem, SelectStmt, Statement};
use crate::sql::{digest_text, parse_statement};
use crate::storage::btree::BTree;
use crate::storage::shardpool::ShardedBufferPool;
use crate::storage::table::{TableHeap, UpdatePlacement};
use crate::value::Value;
use crate::vdisk::VDisk;
use crate::wal::{BinlogEvent, OpKind, RedoRecord, UndoRecord, Wal};

/// On-disk checkpoint marker file.
pub const CHECKPOINT_FILE: &str = "checkpoint";
/// General query log file (off by default, like MySQL).
pub const GENERAL_LOG_FILE: &str = "general.log";
/// Slow query log file.
pub const SLOW_LOG_FILE: &str = "slow.log";
/// Reserved connection id of the replication applier (MySQL's SQL
/// thread). Ordinary connections start at 1, so 0 never collides.
pub const REPL_APPLIER_CONN: u64 = 0;

/// A registered scalar UDF usable in `WHERE` clauses.
pub type ScalarFn = Arc<dyn Fn(&[Value]) -> DbResult<Value> + Send + Sync>;

/// Engine configuration. Defaults mirror a production-ish MySQL: binlog
/// on, general log off, 50 MB circular redo/undo logs, query cache on.
#[derive(Clone)]
pub struct DbConfig {
    /// Redo log capacity in bytes.
    pub redo_capacity: usize,
    /// Undo log capacity in bytes.
    pub undo_capacity: usize,
    /// Whether the binlog is enabled (required for replication — §3).
    pub binlog_enabled: bool,
    /// Whether the general query log records every statement.
    pub general_log_enabled: bool,
    /// Slow-query threshold in simulated microseconds.
    pub slow_query_threshold_us: u64,
    /// Buffer pool capacity in pages.
    pub buffer_pool_pages: usize,
    /// Number of latch partitions in the buffer pool
    /// ([`crate::storage::ShardedBufferPool`]). Concurrent page accesses
    /// contend only within a shard; `1` degenerates to the classic
    /// single-latch pool (the E18 bench baseline).
    pub bufpool_shards: usize,
    /// Hardening knob: when vacuuming superseded MVCC versions, rewrite
    /// the version store so reclaimed before-images are physically gone
    /// rather than merely tombstoned. Off by default — production
    /// engines mark versions dead and let the space be reused
    /// eventually, which is exactly the window E18 carves.
    pub scrub_before_images: bool,
    /// Whether heap pages maintain zone maps (per-page min/max
    /// synopses) and scans use them to prune pages whose value ranges
    /// cannot match the predicate. On by default — it is a pure read
    /// optimisation — and, like every such structure in this codebase,
    /// a leakage surface: synopses persist plaintext per-page value
    /// ranges in page headers and ride along in snapshots.
    pub zone_maps_enabled: bool,
    /// Whether the query cache is enabled.
    pub query_cache_enabled: bool,
    /// Query cache capacity in entries.
    pub query_cache_entries: usize,
    /// `events_statements_history` ring size per thread.
    pub history_size: usize,
    /// Adaptive-hash-index hotness threshold (page accesses).
    pub adaptive_hash_threshold: u64,
    /// Simulated wall-clock start (UNIX seconds).
    pub start_time_unix: i64,
    /// Simulated base execution time per statement (microseconds).
    pub statement_base_us: u64,
    /// Additional simulated microseconds per examined row.
    pub per_row_us: u64,
    /// Simulated seconds the wall clock advances per statement.
    pub seconds_per_statement: i64,
    /// Buffer-pool LRU dump cadence, in statements (0 = only on shutdown).
    pub bufpool_dump_interval: u64,
    /// Hardening knob: zero heap blocks on free (no real DBMS does this;
    /// the mitigation-ablation experiment flips it).
    pub heap_secure_delete: bool,
    /// Whether the telemetry registry records engine metrics. On by
    /// default — every production DBMS ships with status counters on.
    pub telemetry_enabled: bool,
    /// Hardening knob: scrub telemetry alongside
    /// [`Db::flush_diagnostics`]. Off by default — real deployments wipe
    /// `performance_schema` but forget the status counters, which is
    /// exactly the leak the telemetry experiments measure.
    pub telemetry_scrub_on_flush: bool,
    /// Whether the per-statement tracer is armed: stage spans, the
    /// flight-recorder ring, and table lists in slow-log records. On by
    /// default, like every production engine's always-on profiling.
    /// When off, slow-log records degrade to minimal single-span
    /// traces (text + timing only) and the ring stays empty.
    pub trace_enabled: bool,
    /// Flight-recorder ring capacity, in statement traces.
    pub trace_ring_capacity: usize,
    /// Node identity stamped onto recorded traces and v2 slow-log
    /// records (the cross-node merge key; `"primary"`, `"replica-0"`,
    /// …). `None` leaves traces untagged, as a single-node deployment
    /// would.
    pub node_name: Option<String>,
    /// Mitigation knob (E19): rehash distributed trace ids with a
    /// process-local secret key before they cross the replication
    /// boundary. Replica-side spans of one trace still correlate with
    /// each other, but join against nothing recorded on the client or
    /// primary — the carved ids become worthless off-box. Off by
    /// default: production tracing propagates ids verbatim, which is
    /// exactly the correlation surface E19 carves.
    pub trace_id_hashing: bool,
    /// Server id, stamped into replication positions (GTID-style).
    pub server_id: u64,
    /// Whether client connections may write. Replicas run read-only; the
    /// replication applier ([`Db::apply_replicated`]) bypasses the check,
    /// exactly like MySQL's `read_only` vs the SQL thread.
    pub read_only: bool,
    /// When set, [`Db::open`] starts an [`mdb_obs::ObsServer`] on this
    /// address serving `/metrics`, `/healthz`, and `/varz` for the
    /// engine's telemetry registry — the status port every production
    /// DBMS exposes. Use `"127.0.0.1:0"` for an ephemeral port
    /// ([`Db::obs_addr`] resolves it). Off by default; E17 measures
    /// what turning it on hands a remote observer.
    pub obs_listen: Option<String>,
    /// Bearer token required on `/metrics` and `/varz` (mitigation
    /// knob; `/healthz` stays open for load balancers).
    pub obs_auth_token: Option<String>,
    /// Scrub the exposition: drop per-table series, quantize values to
    /// powers of two (mitigation knob, [`mdb_obs::prom::scrub`]).
    pub obs_scrub: bool,
    /// Scrape retention-ring capacity, in snapshots.
    pub obs_retention: usize,
    /// Group commit: coalesce concurrent committers into one shared
    /// durability point with a single (simulated) fsync, via the
    /// leader/follower pipeline in [`crate::group_commit`]. Off by
    /// default — the seed's per-statement `record_fsync` behaviour —
    /// and the E20 buyback knob: it is what pays for `encrypted_wal`.
    pub group_commit: bool,
    /// Most commits one group-commit batch may coalesce.
    pub group_commit_max_batch: usize,
    /// How long a group-commit leader lingers for its batch to fill,
    /// in microseconds (0 = flush whatever is staged immediately; the
    /// pipeline still coalesces commits that arrive during a flush).
    pub group_commit_wait_us: u64,
    /// Simulated device latency per fsync, in microseconds. 0 keeps
    /// fsyncs free (the seed behaviour, and what unit tests want);
    /// the E20 benchmark sets a realistic ~100µs so the group-commit
    /// buyback is measured against a device, not against a no-op.
    pub fsync_latency_us: u64,
    /// BigFoot-style encrypted WAL ([`crate::wal`] + `edb-crypto`'s
    /// `logenc`): seal every redo/undo/binlog record with AEAD under a
    /// position-derived nonce. Closes the E2/E3/E14 carvers — a cold
    /// image or a relay log yields ciphertext only.
    pub encrypted_wal: bool,
    /// The log-encryption key. `None` with `encrypted_wal` on draws a
    /// fresh process-local key (never persisted — single-node use);
    /// a replicated fleet must set one shared key explicitly, or the
    /// replica's apply loop cannot open shipped events. Each node seals
    /// under a subkey derived from this key and its own
    /// [`server_id`](Self::server_id), so fleet nodes that log the same
    /// `(stream, seq)` positions never share a ChaCha20 keystream.
    pub wal_key: Option<[u8; 32]>,
    /// Mixed-era escape hatch for `encrypted_wal`: accept
    /// plaintext-framed binlog records during decode/apply (a plaintext
    /// primary feeding an encrypted replica, or a relay log written
    /// before encryption was enabled). Off by default: a strict
    /// encrypted node refuses plaintext frames, so an injected,
    /// unauthenticated event can never slip past the MAC.
    pub wal_plaintext_fallback: bool,
}

impl Default for DbConfig {
    fn default() -> Self {
        DbConfig {
            redo_capacity: crate::wal::DEFAULT_LOG_CAPACITY,
            undo_capacity: crate::wal::DEFAULT_LOG_CAPACITY,
            binlog_enabled: true,
            general_log_enabled: false,
            slow_query_threshold_us: 2_000_000,
            buffer_pool_pages: 256,
            bufpool_shards: crate::storage::DEFAULT_SHARDS,
            scrub_before_images: false,
            zone_maps_enabled: true,
            query_cache_enabled: true,
            query_cache_entries: 64,
            history_size: crate::observability::DEFAULT_HISTORY_SIZE,
            adaptive_hash_threshold: 8,
            start_time_unix: 1_483_228_800, // 2017-01-01, the paper's era.
            statement_base_us: 300,
            per_row_us: 2,
            seconds_per_statement: 1,
            bufpool_dump_interval: 1_000,
            heap_secure_delete: false,
            telemetry_enabled: true,
            telemetry_scrub_on_flush: false,
            trace_enabled: true,
            trace_ring_capacity: 64,
            node_name: None,
            trace_id_hashing: false,
            server_id: 1,
            read_only: false,
            obs_listen: None,
            obs_auth_token: None,
            obs_scrub: false,
            obs_retention: 64,
            group_commit: false,
            group_commit_max_batch: 64,
            group_commit_wait_us: 50,
            fsync_latency_us: 0,
            encrypted_wal: false,
            wal_key: None,
            wal_plaintext_fallback: false,
        }
    }
}

/// Result of executing a statement.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct QueryResult {
    /// Result column names (empty for DML/DDL).
    pub columns: Vec<String>,
    /// Result rows.
    pub rows: Vec<Vec<Value>>,
    /// Rows the execution examined (the `performance_schema` metric).
    pub rows_examined: u64,
    /// Rows affected by DML.
    pub rows_affected: u64,
}

struct RuntimeTable {
    heap: TableHeap,
    btrees: Vec<BTree>, // Parallel to `TableDef::indexes`.
}

struct TxnState {
    id: u64,
    /// Undo records of this transaction, in execution order.
    undo: Vec<UndoRecord>,
    /// Statement texts to binlog at commit, each with the distributed
    /// trace context it ran under (stamped onto its binlog event).
    statements: Vec<(String, Option<TraceContext>)>,
    /// Snapshot CSN pinned at BEGIN: this transaction's reads see
    /// exactly the versions committed at or before it.
    snapshot_csn: u64,
}

/// Statement-kind labels for per-kind latency histograms.
const STMT_KINDS: [&str; 7] = [
    "select", "insert", "update", "delete", "ddl", "txn", "other",
];

/// Index into [`STMT_KINDS`] for a statement text, decided from the
/// leading keyword — cheap enough for the hot path, and deliberately the
/// same signal a latency side channel gives an observer.
fn stmt_kind_index(sql: &str) -> usize {
    let head = sql.trim_start();
    let word: String = head
        .chars()
        .take_while(|c| c.is_ascii_alphabetic())
        .map(|c| c.to_ascii_lowercase())
        .collect();
    match word.as_str() {
        "select" | "explain" => 0,
        "insert" => 1,
        "update" => 2,
        "delete" => 3,
        "create" | "drop" | "alter" => 4,
        "begin" | "commit" | "rollback" => 5,
        _ => 6,
    }
}

/// A node's place in the replication topology, as reported by
/// [`Db::health_report`] / `/healthz` and consulted by the failover
/// coordinator. `Fenced` is the post-deposition state: the node's
/// divergent binlog tail has been quarantined and client writes stay
/// refused until the node rejoins the fleet as a replica.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplRole {
    /// Accepts client writes and streams its binlog to replicas.
    Primary,
    /// Applies the primary's stream; client writes are rejected.
    Replica,
    /// Deposed primary: divergence fenced, writes refused.
    Fenced,
}

impl ReplRole {
    /// Lower-case label (`"primary"` / `"replica"` / `"fenced"`), as it
    /// appears in health payloads.
    pub fn as_str(&self) -> &'static str {
        match self {
            ReplRole::Primary => "primary",
            ReplRole::Replica => "replica",
            ReplRole::Fenced => "fenced",
        }
    }
}

/// Pre-resolved engine-level telemetry handles. The per-table counters
/// are lazily registered as tables are touched — which is precisely how
/// the registry ends up encoding the query distribution.
struct EngineMetrics {
    statements: Counter,
    errors: Counter,
    query_cache_hits: Counter,
    rows_examined: Histogram,
    rows_returned: Histogram,
    /// Heap pages skipped by zone-map pruning / decoded by scans.
    scan_pages_pruned: Counter,
    scan_pages_decoded: Counter,
    latency_us: Vec<Histogram>, // Parallel to STMT_KINDS.
    table_access: HashMap<String, Counter>,
    repl_applied: Counter,
    repl_apply_errors: Counter,
    repl_promotions: Counter,
    repl_fenced_events: Counter,
    // Shared cells with the bufpool/WAL metrics structs: the tracer
    // reads before/after deltas off them for per-span attributes.
    bufpool_hits: Counter,
    bufpool_misses: Counter,
    wal_redo_bytes: Counter,
    wal_binlog_bytes: Counter,
}

impl EngineMetrics {
    fn new(registry: &Registry) -> Self {
        EngineMetrics {
            statements: registry.counter("sql.statements"),
            errors: registry.counter("sql.errors"),
            query_cache_hits: registry.counter("sql.query_cache_hits"),
            rows_examined: registry.histogram("sql.rows_examined"),
            rows_returned: registry.histogram("sql.rows_returned"),
            scan_pages_pruned: registry.counter("scan.pages_pruned"),
            scan_pages_decoded: registry.counter("scan.pages_decoded"),
            latency_us: STMT_KINDS
                .iter()
                .map(|k| registry.histogram(&format!("sql.latency_us.{k}")))
                .collect(),
            table_access: HashMap::new(),
            repl_applied: registry.counter("repl.applied_events"),
            repl_apply_errors: registry.counter("repl.apply_errors"),
            repl_promotions: registry.counter("repl.promotions"),
            repl_fenced_events: registry.counter("repl.fenced_events"),
            bufpool_hits: registry.counter("bufpool.hits"),
            bufpool_misses: registry.counter("bufpool.misses"),
            wal_redo_bytes: registry.counter("wal.redo.bytes"),
            wal_binlog_bytes: registry.counter("wal.binlog.bytes"),
        }
    }
}

pub(crate) struct DbInner {
    pub(crate) config: DbConfig,
    pub(crate) vdisk: VDisk,
    pub(crate) catalog: Catalog,
    runtime: HashMap<String, RuntimeTable>,
    pub(crate) bufpool: ShardedBufferPool,
    pub(crate) wal: Wal,
    pub(crate) heap: HeapArena,
    pub(crate) query_cache: QueryCache,
    pub(crate) adaptive_hash: AdaptiveHash,
    pub(crate) perf: PerfSchema,
    pub(crate) processlist: ProcessList,
    pub(crate) telemetry: Registry,
    metrics: EngineMetrics,
    /// The flight recorder: the last N statement traces.
    pub(crate) trace: Recorder,
    /// Span builder of the statement currently executing, if traced.
    current_trace: Option<TraceBuilder>,
    /// Distributed trace context of the statement currently executing:
    /// the child this node derived from the client's context, or an
    /// engine-generated root when tracing is on and none arrived.
    current_ctx: Option<TraceContext>,
    /// Secret key for the `trace_id_hashing` mitigation, drawn fresh
    /// per process — never persisted, so carved rehashed ids cannot be
    /// inverted offline.
    trace_hash_key: u64,
    functions: HashMap<String, ScalarFn>,
    pub(crate) now_unix: i64,
    /// MVCC version chains and their commit bookkeeping.
    pub(crate) mvcc: VersionStore,
    /// Next commit-sequence number (CSNs start at 1).
    next_csn: u64,
    next_txn: u64,
    next_conn: u64,
    txns: HashMap<u64, TxnState>, // Active explicit transactions by conn.
    statements_executed: u64,
    /// The group-commit pipeline, when [`DbConfig::group_commit`] is on.
    /// Committers stage under the engine lock and wait on the pipeline
    /// *after* releasing it (see [`Connection::execute`]).
    group_commit: Option<Arc<GroupCommitPipeline>>,
    /// LSN staged by the statement that just ran, waiting for its
    /// durability wait outside the lock. Taken (and cleared) by the
    /// caller before the engine guard drops.
    staged_commit: Option<u64>,
    crashed: bool,
    /// True while the replication applier runs a shipped statement; lets
    /// it through the read-only gate.
    applying: bool,
    /// This node's replication role. Derived from `read_only` at open
    /// (writable ⇒ primary, read-only ⇒ replica) and mutated only by
    /// failover transitions: [`Db::promote_to_primary`],
    /// [`Db::fence_divergent`], [`Db::rejoin_as_replica`].
    repl_role: ReplRole,
    /// Bumped once per promotion this node has won. Epoch 0 means the
    /// node has held its original role since open.
    promotion_epoch: u64,
    /// `information_schema.replicas` rows, published by the replication
    /// layer (the engine renders, the layer above reports).
    replica_status: Option<Arc<dyn Fn() -> Vec<ReplicaStatus> + Send + Sync>>,
    /// The observability server, when [`DbConfig::obs_listen`] is set.
    /// Held here so its lifetime matches the engine's; shutdown takes it
    /// out of the lock before joining the accept thread.
    obs: Option<mdb_obs::ObsServer>,
}

/// Handle to a MiniDB instance. Cloneable; all clones share the engine.
#[derive(Clone)]
pub struct Db {
    pub(crate) inner: Arc<Mutex<DbInner>>,
}

/// A client connection (a "thread" in MySQL terms).
pub struct Connection {
    db: Db,
    /// Connection / thread id.
    pub id: u64,
}

impl Db {
    /// Opens a fresh database with the given configuration.
    pub fn open(config: DbConfig) -> Db {
        let telemetry = if config.telemetry_enabled {
            Registry::new()
        } else {
            Registry::new_disabled()
        };
        let group_commit = config.group_commit.then(|| {
            Arc::new(GroupCommitPipeline::new(
                &telemetry,
                config.group_commit_max_batch,
                config.group_commit_wait_us,
                config.fsync_latency_us,
            ))
        });
        let inner = DbInner {
            vdisk: VDisk::new(),
            catalog: Catalog::default(),
            runtime: HashMap::new(),
            bufpool: {
                let mut bp =
                    ShardedBufferPool::new(config.buffer_pool_pages, config.bufpool_shards);
                bp.attach_telemetry(&telemetry);
                bp
            },
            wal: {
                let mut w = Wal::new(
                    config.redo_capacity,
                    config.undo_capacity,
                    config.binlog_enabled,
                );
                w.attach_telemetry(&telemetry);
                if config.encrypted_wal {
                    // No configured key: draw a process-local one. Fine
                    // single-node (recovery shares the process); a
                    // fleet must configure a shared key.
                    let key = config.wal_key.unwrap_or_else(|| {
                        let mut k = [0u8; 32];
                        for chunk in k.chunks_mut(8) {
                            chunk.copy_from_slice(&mdb_trace::entropy64().to_le_bytes());
                        }
                        k
                    });
                    w.set_crypto(key, config.server_id);
                    w.set_plaintext_fallback(config.wal_plaintext_fallback);
                }
                w
            },
            heap: {
                let mut h = HeapArena::new();
                h.secure_delete = config.heap_secure_delete;
                h.attach_telemetry(&telemetry);
                h
            },
            query_cache: QueryCache::new(config.query_cache_enabled, config.query_cache_entries),
            adaptive_hash: AdaptiveHash::new(config.adaptive_hash_threshold),
            perf: PerfSchema::new(config.history_size),
            processlist: ProcessList::default(),
            metrics: EngineMetrics::new(&telemetry),
            telemetry,
            trace: {
                let r = if config.trace_enabled {
                    Recorder::new(config.trace_ring_capacity)
                } else {
                    Recorder::new_disabled(config.trace_ring_capacity)
                };
                if let Some(node) = &config.node_name {
                    r.set_node(node);
                }
                r
            },
            current_trace: None,
            current_ctx: None,
            trace_hash_key: mdb_trace::entropy64(),
            functions: HashMap::new(),
            now_unix: config.start_time_unix,
            mvcc: VersionStore::default(),
            next_csn: 1,
            next_txn: 1,
            next_conn: 1,
            txns: HashMap::new(),
            statements_executed: 0,
            group_commit,
            staged_commit: None,
            crashed: false,
            applying: false,
            repl_role: if config.read_only {
                ReplRole::Replica
            } else {
                ReplRole::Primary
            },
            promotion_epoch: 0,
            replica_status: None,
            obs: None,
            config,
        };
        let db = Db {
            inner: Arc::new(Mutex::new(inner)),
        };
        db.start_obs();
        db
    }

    /// Starts the observability server when [`DbConfig::obs_listen`] is
    /// set. The health closure holds only a [`Weak`] engine reference:
    /// the server must not keep the engine alive, and a probe racing
    /// engine teardown reports `503` instead of deadlocking.
    fn start_obs(&self) {
        let mut g = self.inner.lock();
        let Some(listen) = g.config.obs_listen.clone() else {
            return;
        };
        let options = mdb_obs::ObsOptions {
            listen,
            auth_token: g.config.obs_auth_token.clone(),
            scrub: g.config.obs_scrub,
            retention: g.config.obs_retention,
        };
        let weak = Arc::downgrade(&self.inner);
        let health: mdb_obs::HealthSource = Arc::new(move || match weak.upgrade() {
            Some(inner) => inner.lock().health_report(),
            None => mdb_obs::HealthReport::unavailable("engine gone"),
        });
        let server = mdb_obs::ObsServer::start(g.telemetry.clone(), health, options)
            .unwrap_or_else(|e| panic!("obs_listen {:?}: {e}", g.config.obs_listen));
        g.obs = Some(server);
    }

    /// The observability server's bound address, when one is running.
    pub fn obs_addr(&self) -> Option<std::net::SocketAddr> {
        self.inner.lock().obs.as_ref().map(|s| s.local_addr())
    }

    /// The scrape retention ring, when the obs server is running.
    pub fn obs_ring(&self) -> Option<mdb_obs::RetentionRing> {
        self.inner.lock().obs.as_ref().map(|s| s.ring())
    }

    /// Opens with defaults.
    pub fn open_default() -> Db {
        Db::open(DbConfig::default())
    }

    /// Creates a new connection.
    pub fn connect(&self, user: &str) -> Connection {
        let mut g = self.inner.lock();
        let id = g.next_conn;
        g.next_conn += 1;
        let now = g.now_unix;
        g.processlist.connect(id, user, now);
        Connection {
            db: self.clone(),
            id,
        }
    }

    /// Registers a scalar function callable from `WHERE` clauses — the
    /// hook the encrypted-database layers use to install ciphertext
    /// matchers like `SWP_MATCH`.
    pub fn register_function(&self, name: &str, f: ScalarFn) {
        self.inner
            .lock()
            .functions
            .insert(name.to_ascii_uppercase(), f);
    }

    /// Advances the simulated wall clock (for workload-time experiments).
    pub fn advance_time(&self, seconds: i64) {
        self.inner.lock().now_unix += seconds;
    }

    /// Current simulated UNIX time.
    pub fn now(&self) -> i64 {
        self.inner.lock().now_unix
    }

    /// Administrative binlog purge (`PURGE BINARY LOGS`).
    pub fn purge_binlog(&self) {
        self.inner.lock().wal.purge_binlog();
    }

    // ================= replication hooks =================

    /// This server's id (stamped into replication positions).
    pub fn server_id(&self) -> u64 {
        self.inner.lock().config.server_id
    }

    /// End-of-binlog position: the sequence number the next committed
    /// write will get.
    pub fn binlog_next_seq(&self) -> u64 {
        self.inner.lock().wal.binlog_next_seq()
    }

    /// Oldest binlog sequence still on disk (purge horizon).
    pub fn binlog_purged_seq(&self) -> u64 {
        self.inner.lock().wal.binlog_purged_seq()
    }

    /// Cursor read over the binlog for a replication streamer: up to
    /// `max` events starting at sequence `from_seq`, plus the position
    /// to resume from. See [`crate::wal::Wal::binlog_events_from`].
    pub fn binlog_events_from(&self, from_seq: u64, max: usize) -> (Vec<(u64, BinlogEvent)>, u64) {
        self.inner.lock().wal.binlog_events_from(from_seq, max)
    }

    /// Cursor read over the binlog returning raw frame payloads —
    /// sealed bytes when `encrypted_wal` is on. The replication
    /// streamer ships these verbatim so ciphertext stays ciphertext
    /// across the wire and in the replica's relay log. See
    /// [`crate::wal::Wal::binlog_frames_from`].
    pub fn binlog_frames_from(
        &self,
        from_seq: u64,
        max: usize,
    ) -> (Vec<(u64, bool, Vec<u8>)>, u64) {
        self.inner.lock().wal.binlog_frames_from(from_seq, max)
    }

    /// Decodes one shipped binlog frame payload with this engine's WAL
    /// key (the replica-side apply loop's decrypt point), given whether
    /// the frame arrived under the sealed or plaintext magic. See
    /// [`crate::wal::Wal::decode_binlog_frame`].
    pub fn decode_binlog_frame(&self, sealed: bool, payload: &[u8]) -> DbResult<BinlogEvent> {
        self.inner.lock().wal.decode_binlog_frame(sealed, payload)
    }

    /// Whether this engine seals its log records
    /// ([`DbConfig::encrypted_wal`]).
    pub fn wal_encrypted(&self) -> bool {
        self.inner.lock().wal.encrypted()
    }

    /// Applies one replicated statement on the dedicated applier
    /// "thread" (MySQL's SQL thread). Bypasses the read-only gate,
    /// first dragging the replica's simulated clock up to the primary's
    /// commit time so locally logged timestamps track the origin. The
    /// statement runs through the *full* execution pipeline — heap
    /// copies, perf-schema history, its own redo/undo and binlog — which
    /// is precisely how replication multiplies the paper's snapshot
    /// surfaces onto every replica host.
    pub fn apply_replicated(&self, sql: &str, commit_ts: i64) -> DbResult<QueryResult> {
        self.apply_replicated_ctx(sql, commit_ts, None)
    }

    /// [`Db::apply_replicated`] with the distributed trace context the
    /// binlog event carried: the replica's apply span derives a child of
    /// it, so the apply lands in the same trace as the client's
    /// statement — which is what makes the merged timeline (and the E19
    /// correlation attack) work.
    pub fn apply_replicated_ctx(
        &self,
        sql: &str,
        commit_ts: i64,
        ctx: Option<TraceContext>,
    ) -> DbResult<QueryResult> {
        let (out, staged) = {
            let mut g = self.inner.lock();
            let g = &mut *g;
            if !g
                .processlist
                .entries()
                .iter()
                .any(|e| e.id == REPL_APPLIER_CONN)
            {
                let now = g.now_unix;
                g.processlist
                    .connect(REPL_APPLIER_CONN, "repl_applier", now);
            }
            g.now_unix = g.now_unix.max(commit_ts - g.config.seconds_per_statement);
            g.applying = true;
            let out = g.execute_ctx(REPL_APPLIER_CONN, sql, ctx);
            g.applying = false;
            match &out {
                Ok(_) => g.metrics.repl_applied.inc(),
                Err(_) => g.metrics.repl_apply_errors.inc(),
            }
            (out, g.take_staged_commit())
        };
        // Like any committer, the applier waits for durability outside
        // the engine lock.
        if let Some((pipeline, lsn)) = staged {
            pipeline.wait_durable(lsn);
        }
        out
    }

    /// Whether client writes are currently rejected.
    pub fn is_read_only(&self) -> bool {
        self.inner.lock().config.read_only
    }

    /// Flips the read-only gate (`SET GLOBAL read_only`).
    pub fn set_read_only(&self, on: bool) {
        self.inner.lock().config.read_only = on;
    }

    /// This node's replication role ([`ReplRole`]).
    pub fn repl_role(&self) -> ReplRole {
        self.inner.lock().repl_role
    }

    /// Promotions this node has won ([`Db::promote_to_primary`]).
    pub fn promotion_epoch(&self) -> u64 {
        self.inner.lock().promotion_epoch
    }

    /// Failover transition: this replica becomes the fleet's primary.
    /// Opens the read-only gate, bumps the promotion epoch, and counts
    /// a `repl.promotions` tick. Returns the new epoch. The caller (the
    /// failover coordinator) is responsible for fencing the deposed
    /// primary *before* re-pointing client writes here.
    pub fn promote_to_primary(&self) -> u64 {
        let mut g = self.inner.lock();
        g.repl_role = ReplRole::Primary;
        g.config.read_only = false;
        g.promotion_epoch += 1;
        g.metrics.repl_promotions.inc();
        g.promotion_epoch
    }

    /// Failover transition: a fenced (or demoted) node re-enters the
    /// fleet as a read-only replica under the new primary.
    pub fn rejoin_as_replica(&self) {
        let mut g = self.inner.lock();
        g.repl_role = ReplRole::Replica;
        g.config.read_only = true;
    }

    /// Divergence fencing on a deposed primary: every binlog event at
    /// sequence `>= promoted_cursor` — acked locally, never replicated —
    /// is truncated out of the live binlog into the
    /// [`crate::wal::DIVERGENT_FILE`] quarantine sidecar (re-framed
    /// byte-identically, sealed frames staying sealed), the node drops
    /// to [`ReplRole::Fenced`] with the read-only gate shut, and
    /// `repl.fenced_events` counts the quarantined tail. Returns the
    /// quarantined events decoded with this node's own WAL key (the
    /// coordinator logs them; a keyless attacker carving the sidecar
    /// from a cold image gets only what the frames themselves leak).
    ///
    /// Deliberately works on a *crashed* engine — fencing is a
    /// disk-side administrative act on a dead primary, not a query.
    pub fn fence_divergent(&self, promoted_cursor: u64) -> Vec<BinlogEvent> {
        let mut g = self.inner.lock();
        let fenced = g.wal.fence_binlog_tail(promoted_cursor);
        let mut sidecar = Vec::new();
        let mut decoded = Vec::new();
        for (_, sealed, payload) in &fenced {
            sidecar.extend_from_slice(&if *sealed {
                crate::wal::frame_enc(payload)
            } else {
                crate::wal::frame(payload)
            });
            if let Ok(ev) = g.wal.decode_binlog_frame(*sealed, payload) {
                decoded.push(ev);
            }
        }
        if !sidecar.is_empty() {
            g.vdisk.append(crate::wal::DIVERGENT_FILE, &sidecar);
        }
        g.repl_role = ReplRole::Fenced;
        g.config.read_only = true;
        g.metrics.repl_fenced_events.add(fenced.len() as u64);
        decoded
    }

    /// Appends bytes to a server-side file in the data directory (e.g. a
    /// replica's relay log, written by the replication I/O thread). The
    /// file rides along in every [`crate::snapshot::DiskImage`] like any
    /// other on-disk artifact.
    pub fn append_server_file(&self, name: &str, bytes: &[u8]) {
        self.inner.lock().vdisk.append(name, bytes);
    }

    /// Reads a server-side file back (replication recovery: scan the
    /// relay log to find where to resume).
    pub fn read_server_file(&self, name: &str) -> Option<Vec<u8>> {
        self.inner.lock().vdisk.read(name).map(|b| b.to_vec())
    }

    /// Replaces a server-side file wholesale (replication recovery:
    /// truncating a torn relay-log tail before re-attaching).
    pub fn write_server_file(&self, name: &str, bytes: &[u8]) {
        self.inner.lock().vdisk.write(name, bytes.to_vec());
    }

    /// Installs the provider behind `information_schema.replicas`. The
    /// replication coordinator calls this on the *primary*; each SELECT
    /// re-invokes the closure for live rows.
    pub fn set_replica_status_source(
        &self,
        source: Arc<dyn Fn() -> Vec<ReplicaStatus> + Send + Sync>,
    ) {
        self.inner.lock().replica_status = Some(source);
    }

    /// The `/healthz` payload, callable in-process: component health
    /// including this node's replication role and promotion epoch.
    pub fn health_report(&self) -> mdb_obs::HealthReport {
        self.inner.lock().health_report()
    }

    /// The engine's telemetry registry. Clones share state — the same
    /// counters are readable here, via `information_schema.metrics`, and
    /// in a [`crate::snapshot::MemoryImage`].
    pub fn telemetry(&self) -> Registry {
        self.inner.lock().telemetry.clone()
    }

    /// Point-in-time snapshot of every engine metric.
    pub fn metrics_snapshot(&self) -> mdb_telemetry::MetricsSnapshot {
        self.inner.lock().telemetry.snapshot()
    }

    /// The statement trace recorder (the flight-recorder ring). Clones
    /// share state — the same ring is readable here, via
    /// `information_schema.query_traces`, and in a
    /// [`crate::snapshot::MemoryImage`].
    pub fn trace_recorder(&self) -> Recorder {
        self.inner.lock().trace.clone()
    }

    /// Contents of the flight-recorder ring, oldest first.
    pub fn query_traces(&self) -> Vec<StatementTrace> {
        self.inner.lock().trace.traces()
    }

    /// Administrative diagnostics wipe, modeling `TRUNCATE
    /// performance_schema.events_statements_history` + `FLUSH STATUS`:
    /// clears the perf-schema statement history and digests. The
    /// telemetry registry is scrubbed only when
    /// [`DbConfig::telemetry_scrub_on_flush`] is set — by default the
    /// status counters keep the full query distribution, which is the
    /// residual-leakage surface E5/E12 measure.
    pub fn flush_diagnostics(&self) {
        let mut g = self.inner.lock();
        let inner = &mut *g;
        for p in inner.perf.clear() {
            inner.heap.free(p);
        }
        if inner.config.telemetry_scrub_on_flush {
            // Scrub means scrub: FLUSH STATUS zeroes counters, gauges,
            // AND the per-kind latency histograms (`sql.latency_us.*`)
            // — a partial scrub that kept histogram state would hand
            // the attacker the statement mix anyway. The flight
            // recorder goes too, or the "wiped" server still carries a
            // per-statement timeline (the e15 surface).
            inner.telemetry.scrub();
            inner.trace.clear();
            // The scrape retention ring is diagnostics state too: a
            // "wiped" server whose status port still serves the last N
            // scrape deltas has not wiped anything.
            if let Some(obs) = &inner.obs {
                obs.ring().clear();
            }
        }
    }

    /// Reclaims MVCC versions no active snapshot can still see. The
    /// horizon is the oldest active snapshot CSN (with no open
    /// transaction, every committed supersession is reclaimable).
    /// Whether reclaimed before-images are physically erased or merely
    /// tombstoned follows [`DbConfig::scrub_before_images`]. Returns
    /// `(reclaimed, remaining)` version counts.
    pub fn vacuum(&self) -> (usize, usize) {
        let mut g = self.inner.lock();
        let inner = &mut *g;
        let horizon = inner
            .txns
            .values()
            .map(|t| t.snapshot_csn)
            .min()
            .unwrap_or(u64::MAX);
        let scrub = inner.config.scrub_before_images;
        inner.mvcc.vacuum(&mut inner.vdisk, horizon, scrub)
    }

    /// The consistent scrub: walks **every** registered in-memory
    /// leakage surface in one pass, where [`Db::flush_diagnostics`]
    /// wipes only the perf-schema tables (and the counters only when
    /// configured). Surfaces covered: perf-schema history + digests,
    /// the telemetry registry, the flight-recorder ring, the obs scrape
    /// ring, the query cache, the adaptive hash index, and — the one
    /// every "wipe the diagnostics" runbook forgets — the MVCC version
    /// store, vacuumed with physical scrubbing regardless of
    /// [`DbConfig::scrub_before_images`]. Durable logs (redo, undo,
    /// binlog, slow log) are *not* touched: they are recovery state, not
    /// diagnostics, which is exactly why §3 carves them.
    pub fn scrub_all(&self) {
        let mut g = self.inner.lock();
        let inner = &mut *g;
        for p in inner.perf.clear() {
            inner.heap.free(p);
        }
        inner.telemetry.scrub();
        inner.trace.clear();
        if let Some(obs) = &inner.obs {
            obs.ring().clear();
        }
        inner.query_cache.clear();
        inner.adaptive_hash.clear();
        let horizon = inner
            .txns
            .values()
            .map(|t| t.snapshot_csn)
            .min()
            .unwrap_or(u64::MAX);
        inner.mvcc.vacuum(&mut inner.vdisk, horizon, true);
    }

    /// Number of archived (still-reclaimable or pending) MVCC versions.
    pub fn version_count(&self) -> usize {
        self.inner.lock().mvcc.version_count()
    }

    /// Allocates `bytes` in the DB process heap and keeps them live for the
    /// process lifetime. Models other components of the server process
    /// (keyring plugins, TLS buffers, …) whose state a memory snapshot
    /// captures alongside the engine's own allocations.
    pub fn process_alloc(&self, bytes: &[u8]) {
        let mut g = self.inner.lock();
        let _ = g.heap.alloc(bytes);
    }

    /// Clean shutdown: flush dirty pages, checkpoint, and write the
    /// buffer-pool LRU dump (like MySQL on `SHUTDOWN`).
    pub fn shutdown(&self) {
        let obs = {
            let mut g = self.inner.lock();
            let inner = &mut *g;
            inner.checkpoint();
            inner.bufpool.dump(&mut inner.vdisk);
            inner.obs.take()
        };
        // Join the obs accept thread *outside* the engine lock: a
        // health probe racing shutdown takes that lock, and joining
        // while holding it would deadlock.
        drop(obs);
    }

    /// Simulated crash: every volatile structure dies; disk state remains.
    pub fn crash(&self) {
        let mut g = self.inner.lock();
        g.crashed = true;
        g.bufpool.crash();
        g.mvcc.crash();
        g.heap.clear();
        g.query_cache.clear();
        g.adaptive_hash.clear();
        g.perf.clear();
        g.runtime.clear();
        g.txns.clear();
        g.processlist = ProcessList::default();
        // Process memory dies with the process: the registry's values go
        // too (registrations and handles stay valid for the restart),
        // and the in-memory flight recorder with them — unlike the
        // slow log's trace records, which are disk state and survive.
        g.telemetry.scrub();
        g.trace.clear();
        g.current_trace = None;
        g.current_ctx = None;
        if let Some(obs) = &g.obs {
            obs.ring().clear();
        }
    }

    /// Crash recovery: ARIES-lite redo of logged changes (pageLSN-gated),
    /// then rollback of transactions without a commit marker, then index
    /// rebuild. Leaves the engine open for business.
    pub fn recover(&self) -> DbResult<()> {
        let mut g = self.inner.lock();
        g.recover()
    }

    /// Whether the engine is in the crashed state.
    pub fn is_crashed(&self) -> bool {
        self.inner.lock().crashed
    }

    /// Runs one statement on an internal maintenance connection.
    pub fn execute_admin(&self, sql: &str) -> DbResult<QueryResult> {
        let conn = self.connect("admin");
        conn.execute(sql)
    }
}

impl Connection {
    /// Executes one SQL statement.
    ///
    /// The engine lock covers execution only; a group-commit durability
    /// wait (when [`DbConfig::group_commit`] is on) happens *after* the
    /// lock is released, so concurrent committers from other
    /// connections coalesce into the pipeline instead of serializing
    /// their fsyncs behind the lock.
    pub fn execute(&self, sql: &str) -> DbResult<QueryResult> {
        self.execute_traced(sql, None)
    }

    /// Executes one SQL statement under a client-supplied distributed
    /// trace context (the server side of wire trace propagation). The
    /// engine derives its own child span context, so the recorded trace
    /// shares the client's `trace_id` with a fresh `span_id`.
    pub fn execute_traced(&self, sql: &str, ctx: Option<TraceContext>) -> DbResult<QueryResult> {
        let (res, staged) = {
            let mut g = self.db.inner.lock();
            let res = g.execute_ctx(self.id, sql, ctx);
            (res, g.take_staged_commit())
        };
        if let Some((pipeline, lsn)) = staged {
            pipeline.wait_durable(lsn);
        }
        res
    }

    /// The most recent flight-recorder trace of this connection, if the
    /// ring still holds one (the `\trace` meta-command's data source).
    pub fn last_trace(&self) -> Option<StatementTrace> {
        let g = self.db.inner.lock();
        g.trace
            .traces()
            .into_iter()
            .rev()
            .find(|t| t.conn_id == self.id)
    }

    /// Renders this connection's most recent trace as the
    /// `EXPLAIN ANALYZE`-style span table (the `\trace` meta-command).
    pub fn last_trace_rendered(&self) -> Option<QueryResult> {
        self.last_trace()
            .map(|t| render_explain_analyze(&t, &QueryResult::default()))
    }

    /// The owning database handle.
    pub fn db(&self) -> &Db {
        &self.db
    }
}

impl Drop for Connection {
    fn drop(&mut self) {
        let mut g = self.db.inner.lock();
        g.processlist.disconnect(self.id);
        // A dropped connection with an open transaction rolls it back —
        // otherwise its heap mutations would persist unlogged and its
        // pending version records would pin the MVCC store forever.
        if let Some(txn) = g.txns.remove(&self.id) {
            let _ = g.rollback_txn(txn);
        }
    }
}

impl DbInner {
    /// The `/healthz` payload: WAL position, buffer-pool occupancy, and
    /// replication lag, gated on the crashed flag. Runs on the obs
    /// accept thread under the engine lock — keep it cheap.
    fn health_report(&self) -> mdb_obs::HealthReport {
        use mdb_obs::HealthComponent;
        let mut components = vec![
            HealthComponent {
                name: "engine".into(),
                ok: !self.crashed,
                detail: if self.crashed {
                    "crashed; awaiting recovery".into()
                } else {
                    format!("{} statements executed", self.statements_executed)
                },
            },
            HealthComponent {
                name: "wal".into(),
                ok: !self.crashed,
                detail: format!(
                    "lsn={} binlog_next_seq={}",
                    self.wal.current_lsn(),
                    self.wal.binlog_next_seq()
                ),
            },
            HealthComponent {
                name: "bufpool".into(),
                ok: !self.crashed,
                detail: format!(
                    "cached={}/{}",
                    self.bufpool.cached_pages(),
                    self.config.buffer_pool_pages
                ),
            },
            HealthComponent {
                name: "connections".into(),
                ok: !self.crashed,
                detail: format!(
                    "open={} active_txns={}",
                    self.processlist.entries().len(),
                    self.txns.len()
                ),
            },
            HealthComponent {
                name: "role".into(),
                // A fenced node is deliberately not ready: it must not
                // take writes, and its reads may predate the fleet's
                // new timeline. Load balancers drain it off `/healthz`.
                ok: self.repl_role != ReplRole::Fenced,
                detail: format!(
                    "role={} promotion_epoch={}",
                    self.repl_role.as_str(),
                    self.promotion_epoch
                ),
            },
            HealthComponent {
                name: "mvcc".into(),
                ok: !self.crashed,
                detail: format!(
                    "version_backlog={} next_csn={}",
                    self.mvcc.version_count(),
                    self.next_csn
                ),
            },
        ];
        if let Some(source) = &self.replica_status {
            let rows = source();
            let lagging = rows.iter().filter(|r| r.state != "streaming").count();
            let max_lag = rows.iter().map(|r| r.lag_events).max().unwrap_or(0);
            components.push(HealthComponent {
                name: "replication".into(),
                ok: lagging == 0,
                detail: format!(
                    "replicas={} non_streaming={} max_lag_events={max_lag}",
                    rows.len(),
                    lagging
                ),
            });
        }
        mdb_obs::HealthReport {
            ready: components.iter().all(|c| c.ok),
            components,
        }
    }

    // ================= statement pipeline =================

    fn execute_ctx(
        &mut self,
        conn_id: u64,
        sql: &str,
        ctx: Option<TraceContext>,
    ) -> DbResult<QueryResult> {
        // Drain contract: whoever called execute_ctx last must have
        // taken the staged group-commit LSN (and waited on it outside
        // the lock). A stale LSN here means some caller skipped
        // take_staged_commit — that commit's durability wait was lost.
        debug_assert!(
            self.staged_commit.is_none(),
            "staged group-commit LSN never drained; every execute_ctx \
             caller must call take_staged_commit after the statement"
        );
        if self.crashed {
            return Err(DbError::Crashed);
        }
        self.statements_executed += 1;
        self.now_unix += self.config.seconds_per_statement;
        let started = self.now_unix;

        // The execution copy of the statement text: allocated in the
        // process heap for the duration of the statement (§5).
        let exec_ptr = self.heap.alloc_str(sql);
        // The instrumentation keeps its own copy, owned by the history
        // ring until it rotates out.
        let hist_ptr = self.heap.alloc_str(sql);
        // The lexer materializes each string literal into its own buffer
        // (as real parsers do); these transient copies are freed at the
        // end of the statement — without being zeroed.
        let literal_ptrs: Vec<crate::heap::HeapPtr> = crate::sql::lexer::tokenize(sql)
            .ok()
            .into_iter()
            .flatten()
            .filter_map(|t| match t {
                crate::sql::lexer::Token::Str(s) => Some(self.heap.alloc_str(&s)),
                _ => None,
            })
            .collect();

        let digest = digest_text(sql);
        // Resolve the distributed context this statement runs under:
        // derive a child of an incoming sampled context (the received
        // span_id becomes the parent); an unsampled context propagates
        // nowhere (the sampling mitigation); with no incoming context
        // an armed tracer generates a fresh root, so local statements
        // join the same id space.
        self.current_ctx = match ctx {
            Some(c) if c.sampled => Some(c.child()),
            Some(_) => None,
            None if self.trace.is_enabled() => Some(TraceContext::generate()),
            None => None,
        };
        // Arm the tracer. When tracing is disabled this branch is the
        // *entire* per-statement cost: one relaxed atomic load, no
        // allocation (the invariant the `trace` bench pins down).
        if self.trace.is_enabled() {
            let mut b = TraceBuilder::new(conn_id, started, sql, &digest);
            if let Some(c) = self.current_ctx {
                b.set_ctx(c);
            }
            self.current_trace = Some(b);
        }
        self.perf
            .statement_start(conn_id, sql, &digest, started, Some(hist_ptr));
        self.processlist.set_query(conn_id, Some(sql.to_string()));
        if self.config.general_log_enabled {
            let line = format!("{started} {conn_id} Query\t{sql}\n");
            self.vdisk.append(GENERAL_LOG_FILE, line.as_bytes());
        }

        let outcome = self.dispatch(conn_id, sql);

        let (rows_examined, rows_returned) = match &outcome {
            Ok(r) => (r.rows_examined, r.rows.len() as u64),
            Err(_) => (0, 0),
        };
        let duration_us = self.config.statement_base_us + rows_examined * self.config.per_row_us;
        self.metrics.statements.inc();
        if outcome.is_err() {
            self.metrics.errors.inc();
        }
        self.metrics.rows_examined.record(rows_examined);
        self.metrics.rows_returned.record(rows_returned);
        // A traced statement stamps its trace_id as the latency bucket's
        // exemplar — the `/metrics` exposition then links the aggregate
        // back to one concrete distributed trace.
        match self.current_ctx {
            Some(c) => self.metrics.latency_us[stmt_kind_index(sql)]
                .record_with_exemplar(duration_us, c.trace_id),
            None => self.metrics.latency_us[stmt_kind_index(sql)].record(duration_us),
        }
        // Close the trace and deposit it in the flight recorder. An
        // `EXPLAIN ANALYZE` arm has already consumed the builder for its
        // own rendering; everything else finishes here.
        let finished = self.current_trace.take().map(|mut b| {
            b.attr("rows_examined", rows_examined);
            b.attr("rows_returned", rows_returned);
            b.finish(duration_us)
        });
        let recorded = match finished {
            Some(t) if self.trace.is_enabled() => Some(self.trace.record(t)),
            other => other,
        };
        if duration_us > self.config.slow_query_threshold_us {
            // The slow log is a stream of versioned, checksummed trace
            // records (see `mdb_trace::record`) — the full span tree
            // when the tracer is armed, a minimal text+timing record
            // otherwise. Either way the statement text lands on disk
            // verbatim, carvable long after the ring has rotated.
            let rec = recorded.unwrap_or_else(|| {
                StatementTrace::minimal(conn_id, started, sql, &digest, duration_us, rows_examined)
            });
            self.vdisk
                .append(SLOW_LOG_FILE, &mdb_trace::record::encode_record(&rec));
        }
        if let Some(evicted) = self
            .perf
            .statement_end(conn_id, rows_examined, rows_returned)
        {
            self.heap.free(evicted);
        }
        self.processlist.set_query(conn_id, None);
        self.heap.free(exec_ptr);
        for p in literal_ptrs {
            self.heap.free(p);
        }

        if self.config.bufpool_dump_interval > 0
            && self
                .statements_executed
                .is_multiple_of(self.config.bufpool_dump_interval)
        {
            self.bufpool.dump(&mut self.vdisk);
        }
        self.current_ctx = None;
        outcome
    }

    // ================= tracing plumbing =================
    //
    // Every helper is a no-op unless a `TraceBuilder` is live, so the
    // stage hooks below cost one `Option` check when tracing is off for
    // this statement (the global gate is the relaxed load in `execute`).

    fn trace_begin(&mut self, name: &str) {
        if let Some(t) = self.current_trace.as_mut() {
            t.begin(name);
        }
    }

    fn trace_end(&mut self, cost_us: u64) {
        if let Some(t) = self.current_trace.as_mut() {
            t.end(cost_us);
        }
    }

    fn trace_end_elastic(&mut self) {
        if let Some(t) = self.current_trace.as_mut() {
            t.end_elastic();
        }
    }

    fn trace_attr(&mut self, key: &str, value: u64) {
        if let Some(t) = self.current_trace.as_mut() {
            t.attr(key, value);
        }
    }

    /// Simulated cost of one fixed pipeline stage (parse, plan, WAL
    /// append, commit). The elastic stage — the scan or the write —
    /// absorbs the data-dependent remainder of the statement's
    /// modeled duration, so top-level span durations always sum
    /// exactly to `statement_base_us + rows_examined * per_row_us`.
    fn stage_cost(&self) -> u64 {
        (self.config.statement_base_us / 8).max(1)
    }

    fn dispatch(&mut self, conn_id: u64, sql: &str) -> DbResult<QueryResult> {
        self.trace_begin("parse");
        let parsed = parse_statement(sql);
        let cost = self.stage_cost();
        self.trace_end(cost);
        let stmt = parsed?;
        if self.config.read_only && !self.applying && writes_state(&stmt) {
            return Err(DbError::ReadOnly);
        }
        self.run_stmt(conn_id, sql, stmt)
    }

    fn run_stmt(&mut self, conn_id: u64, sql: &str, stmt: Statement) -> DbResult<QueryResult> {
        match stmt {
            Statement::CreateTable { name, columns } => {
                let r = self.create_table(&name, columns);
                if r.is_ok() {
                    self.binlog_ddl(sql);
                }
                r
            }
            Statement::CreateIndex {
                name,
                table,
                column,
            } => {
                let r = self.create_index(&name, &table, &column);
                if r.is_ok() {
                    self.binlog_ddl(sql);
                }
                r
            }
            Statement::Select(sel) => self.select(conn_id, sql, sel),
            Statement::Explain(sel) => self.explain(sel),
            Statement::ExplainAnalyze(inner) => {
                // EXPLAIN ANALYZE always traces its target, even when
                // the flight recorder is disarmed.
                if self.current_trace.is_none() {
                    let mut b = TraceBuilder::new(conn_id, self.now_unix, sql, &digest_text(sql));
                    if let Some(c) = self.current_ctx {
                        b.set_ctx(c);
                    }
                    self.current_trace = Some(b);
                }
                let res = self.run_stmt(conn_id, sql, *inner)?;
                // The target's simulated wall time is fully determined
                // by the engine cost model, so the trace can be closed
                // here — the rendered durations are exactly what the
                // outer pipeline will account for this statement.
                let duration_us =
                    self.config.statement_base_us + res.rows_examined * self.config.per_row_us;
                let mut b = self.current_trace.take().expect("installed above");
                b.attr("rows_examined", res.rows_examined);
                b.attr("rows_returned", res.rows.len() as u64);
                let trace = b.finish(duration_us);
                let trace = if self.trace.is_enabled() {
                    self.trace.record(trace)
                } else {
                    trace
                };
                Ok(render_explain_analyze(&trace, &res))
            }
            Statement::Insert {
                table,
                columns,
                rows,
            } => self.dml(
                conn_id,
                sql,
                DmlOp::Insert {
                    table,
                    columns,
                    rows,
                },
            ),
            Statement::Update {
                table,
                sets,
                where_clause,
            } => self.dml(
                conn_id,
                sql,
                DmlOp::Update {
                    table,
                    sets,
                    where_clause,
                },
            ),
            Statement::Delete {
                table,
                where_clause,
            } => self.dml(
                conn_id,
                sql,
                DmlOp::Delete {
                    table,
                    where_clause,
                },
            ),
            Statement::DropTable { name } => {
                let r = self.drop_table(&name);
                if r.is_ok() {
                    self.binlog_ddl(sql);
                }
                r
            }
            Statement::Begin => {
                if self.txns.contains_key(&conn_id) {
                    return Err(DbError::Txn("nested BEGIN".into()));
                }
                let id = self.next_txn;
                self.next_txn += 1;
                self.txns.insert(
                    conn_id,
                    TxnState {
                        id,
                        undo: Vec::new(),
                        statements: Vec::new(),
                        // Everything committed so far is visible; nothing
                        // that commits from now on is.
                        snapshot_csn: self.next_csn - 1,
                    },
                );
                Ok(QueryResult::default())
            }
            Statement::Commit => {
                let txn = self
                    .txns
                    .remove(&conn_id)
                    .ok_or_else(|| DbError::Txn("COMMIT without BEGIN".into()))?;
                self.commit_txn(txn)?;
                Ok(QueryResult::default())
            }
            Statement::Rollback => {
                let txn = self
                    .txns
                    .remove(&conn_id)
                    .ok_or_else(|| DbError::Txn("ROLLBACK without BEGIN".into()))?;
                self.rollback_txn(txn)?;
                Ok(QueryResult::default())
            }
        }
    }

    // ================= DDL =================

    /// DDL autocommits as its own binlog transaction (MySQL's
    /// implicit-commit rule); statement-shipping replication relies on
    /// this to reproduce schema changes on replicas.
    fn binlog_ddl(&mut self, sql: &str) {
        let lsn = self.wal.alloc_lsn();
        let txn = self.next_txn;
        self.next_txn += 1;
        let ctx = self.binlog_ctx(self.current_ctx);
        self.wal.append_binlog(&BinlogEvent {
            lsn,
            txn,
            timestamp: self.now_unix,
            statement: sql.to_string(),
            ctx,
        });
        self.durability_point();
    }

    /// The context stamped onto binlog events: the statement's own,
    /// put through the keyed rehash when
    /// [`DbConfig::trace_id_hashing`] is on — the mitigation boundary
    /// sits exactly where trace ids leave for other hosts.
    fn binlog_ctx(&self, ctx: Option<TraceContext>) -> Option<TraceContext> {
        match ctx {
            Some(c) if self.config.trace_id_hashing => Some(c.rehash(self.trace_hash_key)),
            other => other,
        }
    }

    fn create_table(
        &mut self,
        name: &str,
        columns: Vec<(String, crate::value::ColumnType, bool)>,
    ) -> DbResult<QueryResult> {
        let lname = name.to_ascii_lowercase();
        if self.catalog.tables.contains_key(&lname) {
            return Err(DbError::Schema(format!("table {lname} already exists")));
        }
        let defs: Vec<ColumnDef> = columns
            .into_iter()
            .map(|(n, ty, pk)| ColumnDef {
                name: n,
                ty,
                primary_key: pk,
            })
            .collect();
        let schema = TableSchema::new(&lname, defs)?;
        let file = format!("table_{lname}.ibd");
        let mut heap = TableHeap::create(&self.bufpool, &mut self.vdisk, &file)?;
        heap.set_zone_maps(self.config.zone_maps_enabled);
        let id = self.catalog.next_table_id.max(1);
        self.catalog.next_table_id = id + 1;

        let mut indexes = Vec::new();
        let mut btrees = Vec::new();
        if let Some(pk_idx) = schema.primary_key_index() {
            let col = &schema.columns[pk_idx].name;
            let ifile = format!("index_{lname}_{col}.ibd");
            let bt = BTree::create(&self.bufpool, &mut self.vdisk, &ifile)?;
            indexes.push(IndexDef {
                name: format!("pk_{lname}"),
                file: ifile,
                column_idx: pk_idx,
            });
            btrees.push(bt);
        }
        self.catalog.tables.insert(
            lname.clone(),
            TableDef {
                id,
                schema,
                file,
                indexes,
            },
        );
        self.catalog.persist(&mut self.vdisk);
        self.runtime.insert(lname, RuntimeTable { heap, btrees });
        Ok(QueryResult::default())
    }

    /// `DROP TABLE`: removes the table's files and catalog entry. Note
    /// what this does *not* do: the circular undo/redo logs and the binlog
    /// keep their records of the dropped table's rows — the forensic
    /// threat of Stahlberg et al. that the paper builds on.
    fn drop_table(&mut self, name: &str) -> DbResult<QueryResult> {
        let lname = name.to_ascii_lowercase();
        let def = self.catalog.get(&lname)?.clone();
        self.vdisk.remove(&def.file);
        self.bufpool.purge_file(&def.file);
        for ix in &def.indexes {
            self.vdisk.remove(&ix.file);
            self.bufpool.purge_file(&ix.file);
        }
        self.catalog.tables.remove(&lname);
        self.catalog.persist(&mut self.vdisk);
        self.runtime.remove(&lname);
        // Chain state dies with the table, but its disk records do not —
        // like real engines, DROP does not chase undo history.
        self.mvcc.purge_table(&def.schema.name);
        for p in self.query_cache.invalidate_table(&lname) {
            self.heap.free(p);
        }
        Ok(QueryResult::default())
    }

    fn create_index(&mut self, name: &str, table: &str, column: &str) -> DbResult<QueryResult> {
        let ltable = table.to_ascii_lowercase();
        let def = self.catalog.get(&ltable)?.clone();
        let column_idx = def.schema.column_index(column)?;
        if def.indexes.iter().any(|i| i.column_idx == column_idx) {
            return Err(DbError::Schema(format!(
                "column {column} of {ltable} is already indexed"
            )));
        }
        let ifile = format!("index_{ltable}_{}.ibd", def.schema.columns[column_idx].name);
        let bt = BTree::create(&self.bufpool, &mut self.vdisk, &ifile)?;
        // Backfill from existing rows.
        let rt = self
            .runtime
            .get(&ltable)
            .ok_or_else(|| DbError::UnknownTable(ltable.clone()))?;
        let (rows, _) = rt.heap.scan(&self.bufpool, &mut self.vdisk)?;
        for row in &rows {
            bt.insert(
                &self.bufpool,
                &mut self.vdisk,
                &row.values[column_idx],
                row.id,
            )?;
        }
        self.catalog
            .tables
            .get_mut(&ltable)
            .expect("checked")
            .indexes
            .push(IndexDef {
                name: name.to_string(),
                file: ifile,
                column_idx,
            });
        self.catalog.persist(&mut self.vdisk);
        self.runtime
            .get_mut(&ltable)
            .expect("checked")
            .btrees
            .push(bt);
        Ok(QueryResult::default())
    }

    // ================= SELECT =================

    /// `EXPLAIN SELECT`: reports the access path the planner would take.
    fn explain(&mut self, sel: SelectStmt) -> DbResult<QueryResult> {
        let plan = if sel.schema.is_some() {
            format!(
                "virtual table scan on {}.{}",
                sel.schema.as_deref().unwrap(),
                sel.table
            )
        } else {
            let def = self.catalog.get(&sel.table)?.clone();
            let plan = sel.where_clause.as_ref().map(|w| plan_scan(&def, w));
            match plan {
                Some(ScanPlan { index: Some(p), .. }) => {
                    let ix = &def.indexes[p.index_pos];
                    format!(
                        "index scan on {} ({}) bounds {:?}..{:?}",
                        ix.name, def.schema.columns[ix.column_idx].name, p.bounds.lo, p.bounds.hi
                    )
                }
                Some(ScanPlan {
                    prune: Some((col, lo, hi)),
                    ..
                }) if self.config.zone_maps_enabled => format!(
                    "full table scan on {} (zone-map pruned on {}, bounds {:?}..{:?})",
                    def.schema.name, def.schema.columns[col].name, lo, hi
                ),
                _ => format!("full table scan on {}", def.schema.name),
            }
        };
        Ok(QueryResult {
            columns: vec!["plan".to_string()],
            rows: vec![vec![Value::Text(plan)]],
            ..Default::default()
        })
    }

    fn select(&mut self, conn_id: u64, sql: &str, sel: SelectStmt) -> DbResult<QueryResult> {
        if let Some(schema) = &sel.schema {
            return self.select_virtual(schema.clone(), sel);
        }
        // Inside an explicit transaction, reads are snapshot-isolated:
        // resolve every row against the version chains at the CSN pinned
        // at BEGIN. Snapshot reads bypass the query cache entirely — a
        // cached result reflects the latest committed state, not this
        // transaction's snapshot.
        if let Some(t) = self.txns.get(&conn_id) {
            let (txn_id, snapshot) = (t.id, t.snapshot_csn);
            return self.select_snapshot(txn_id, snapshot, sel);
        }
        // Autocommit reads while some transaction has unstamped writes:
        // resolve read-committed (latest CSN, txn id 0 matches no owner)
        // so another session's uncommitted heap images stay invisible.
        if self.mvcc.has_pending() {
            let snapshot = self.next_csn - 1;
            return self.select_snapshot(0, snapshot, sel);
        }
        // Query cache: exact-text hits skip execution entirely.
        if let Some(hit) = self.query_cache.get(sql) {
            self.metrics.query_cache_hits.inc();
            self.trace_begin("query_cache");
            self.trace_attr("hit", 1);
            self.trace_end_elastic();
            return Ok(QueryResult {
                columns: hit.columns,
                rows: hit.rows,
                rows_examined: 0,
                rows_affected: 0,
            });
        }
        let table = sel.table.clone();
        let def = self.catalog.get(&table)?.clone();
        self.record_table_access(&def.schema.name);
        // Pushdowns: LIMIT may short-circuit the scan only when result
        // order is scan order (no ORDER BY — the truncate below already
        // runs before projection, so aggregates see the same rows either
        // way). The projection mask covers every column the query can
        // read: select list, WHERE, ORDER BY.
        let push_limit = if sel.order_by.is_none() {
            sel.limit
        } else {
            None
        };
        let needed = needed_columns(&def.schema, &sel);
        let (mut rows, examined) = self.fetch_rows(
            &def,
            sel.where_clause.as_ref(),
            push_limit,
            needed.as_deref(),
        )?;

        // ORDER BY before projection.
        if let Some((col, desc)) = &sel.order_by {
            let idx = def.schema.column_index(col)?;
            rows.sort_by(|a, b| {
                let o = a.values[idx].cmp(&b.values[idx]);
                if *desc {
                    o.reverse()
                } else {
                    o
                }
            });
        }
        if let Some(limit) = sel.limit {
            rows.truncate(limit as usize);
        }

        let result = self.project(&def.schema, &sel.items, rows)?;
        let result = QueryResult {
            rows_examined: examined,
            ..result
        };
        // Cache the result (user tables only).
        let text_ptr = self.heap.alloc_str(sql);
        let freed = self.query_cache.insert(
            sql,
            vec![def.schema.name.clone()],
            CachedResult {
                columns: result.columns.clone(),
                rows: result.rows.clone(),
            },
            text_ptr,
        );
        for p in freed {
            self.heap.free(p);
        }
        Ok(result)
    }

    /// Snapshot-isolated SELECT: full scan, then per-row visibility
    /// resolution against the version chains. Index and zone-map
    /// pushdowns are deliberately skipped — they describe the *latest*
    /// heap state, not the snapshot's — and so is the query cache.
    fn select_snapshot(
        &mut self,
        txn_id: u64,
        snapshot: u64,
        sel: SelectStmt,
    ) -> DbResult<QueryResult> {
        let table = sel.table.clone();
        let def = self.catalog.get(&table)?.clone();
        self.record_table_access(&def.schema.name);
        let (current, examined) = self.fetch_rows(&def, None, None, None)?;
        self.trace_begin("mvcc_visibility");
        let mut live_ids = std::collections::HashSet::with_capacity(current.len());
        let mut visible = Vec::with_capacity(current.len());
        for r in current {
            live_ids.insert(r.id);
            if let Some(v) = self.mvcc.visible_row(&def.schema.name, r, snapshot, txn_id) {
                visible.push(v);
            }
        }
        visible.extend(
            self.mvcc
                .resurrect_deleted(&def.schema.name, &live_ids, snapshot, txn_id),
        );
        visible.sort_by_key(|r| r.id);
        self.trace_attr("rows_visible", visible.len() as u64);
        self.trace_end_elastic();
        let mut rows = Vec::with_capacity(visible.len());
        for r in visible {
            let keep = match sel.where_clause.as_ref() {
                Some(pred) => self.eval_truthy(pred, &def.schema, &r)?,
                None => true,
            };
            if keep {
                rows.push(r);
            }
        }
        if let Some((col, desc)) = &sel.order_by {
            let idx = def.schema.column_index(col)?;
            rows.sort_by(|a, b| {
                let o = a.values[idx].cmp(&b.values[idx]);
                if *desc {
                    o.reverse()
                } else {
                    o
                }
            });
        }
        if let Some(limit) = sel.limit {
            rows.truncate(limit as usize);
        }
        let result = self.project(&def.schema, &sel.items, rows)?;
        Ok(QueryResult {
            rows_examined: examined,
            ..result
        })
    }

    fn select_virtual(&mut self, schema: String, sel: SelectStmt) -> DbResult<QueryResult> {
        let (cols, rows) = match (schema.as_str(), sel.table.as_str()) {
            ("performance_schema", "events_statements_current") => self.perf.render_current(),
            ("performance_schema", "events_statements_history") => self.perf.render_history(),
            ("performance_schema", "events_statements_summary_by_digest") => {
                self.perf.render_digest_summary()
            }
            ("performance_schema", "threads") => {
                // threads: thread id, user, and what it is running now.
                let (_, plist) = self.processlist.render(self.now_unix);
                let cols = vec![
                    "thread_id".to_string(),
                    "processlist_user".to_string(),
                    "processlist_info".to_string(),
                ];
                let rows = plist
                    .into_iter()
                    .map(|r| vec![r[0].clone(), r[1].clone(), r[3].clone()])
                    .collect();
                (cols, rows)
            }
            ("information_schema", "processlist") => self.processlist.render(self.now_unix),
            ("information_schema", "replicas") => {
                // Replication topology and lag, as reported by the
                // coordinator. Yet another diagnostic surface: one
                // injected SELECT on the primary maps every host that
                // holds a relay-log copy of the query history.
                let cols = vec![
                    "replica_id".to_string(),
                    "state".to_string(),
                    "next_seq".to_string(),
                    "primary_seq".to_string(),
                    "lag_events".to_string(),
                    "retries".to_string(),
                    "last_heartbeat".to_string(),
                ];
                let rows = match &self.replica_status {
                    Some(source) => source()
                        .into_iter()
                        .map(|s| {
                            vec![
                                Value::Int(s.replica_id as i64),
                                Value::Text(s.state),
                                Value::Int(s.next_seq as i64),
                                Value::Int(s.primary_seq as i64),
                                Value::Int(s.lag_events as i64),
                                Value::Int(s.retries as i64),
                                Value::Int(s.last_heartbeat),
                            ]
                        })
                        .collect(),
                    None => Vec::new(),
                };
                (cols, rows)
            }
            ("information_schema", "metrics") => {
                // The live registry, SQL-readable. An attacker with a
                // stolen connection (or an injection point) reads the
                // accumulated query distribution with one SELECT.
                let snap = self.telemetry.snapshot();
                let cols = vec![
                    "metric".to_string(),
                    "kind".to_string(),
                    "value".to_string(),
                ];
                let mut out = Vec::new();
                for (name, v) in &snap.counters {
                    out.push(vec![
                        Value::Text(name.clone()),
                        Value::Text("counter".to_string()),
                        Value::Int(*v as i64),
                    ]);
                }
                for (name, v) in &snap.gauges {
                    out.push(vec![
                        Value::Text(name.clone()),
                        Value::Text("gauge".to_string()),
                        Value::Int(*v),
                    ]);
                }
                for h in &snap.histograms {
                    for (suffix, v) in [
                        ("count", h.count),
                        ("sum", h.sum),
                        ("p50", h.quantile_upper_bound(0.5)),
                    ] {
                        out.push(vec![
                            Value::Text(format!("{}.{suffix}", h.name)),
                            Value::Text("histogram".to_string()),
                            Value::Int(v as i64),
                        ]);
                    }
                }
                (cols, out)
            }
            ("information_schema", "query_traces") => {
                // The flight recorder, SQL-readable: the last N statement
                // traces with full text, timing, and touched tables. Like
                // the performance_schema, it is an operator convenience
                // that doubles as a query-history disclosure channel.
                let cols = vec![
                    "trace_id".to_string(),
                    "conn_id".to_string(),
                    "started".to_string(),
                    "duration_us".to_string(),
                    "statement".to_string(),
                    "digest".to_string(),
                    "tables".to_string(),
                    "spans".to_string(),
                ];
                let rows = self
                    .trace
                    .traces()
                    .iter()
                    .map(|t| {
                        vec![
                            Value::Int(t.trace_id as i64),
                            Value::Int(t.conn_id as i64),
                            Value::Int(t.started_unix),
                            Value::Int(t.total_us as i64),
                            Value::Text(t.statement.clone()),
                            Value::Text(t.digest.clone()),
                            Value::Text(t.tables.join(",")),
                            Value::Int(t.root.span_count() as i64),
                        ]
                    })
                    .collect();
                (cols, rows)
            }
            _ => {
                return Err(DbError::UnknownTable(format!("{schema}.{}", sel.table)));
            }
        };
        // Virtual tables support filtering and projection like real ones.
        let schema_like = TableSchema::new(
            &sel.table,
            cols.iter()
                .map(|c| ColumnDef {
                    name: c.clone(),
                    // Virtual columns are dynamically typed; TEXT is a
                    // placeholder (check_row is never called on them).
                    ty: crate::value::ColumnType::Text,
                    primary_key: false,
                })
                .collect(),
        )?;
        let mut kept = Vec::new();
        let examined = rows.len() as u64;
        for values in rows {
            let row = Row { id: 0, values };
            if let Some(w) = &sel.where_clause {
                if !self.eval_truthy(w, &schema_like, &row)? {
                    continue;
                }
            }
            kept.push(row);
        }
        if let Some((col, desc)) = &sel.order_by {
            let idx = schema_like.column_index(col)?;
            kept.sort_by(|a, b| {
                let o = a.values[idx].cmp(&b.values[idx]);
                if *desc {
                    o.reverse()
                } else {
                    o
                }
            });
        }
        if let Some(limit) = sel.limit {
            kept.truncate(limit as usize);
        }
        let res = self.project(&schema_like, &sel.items, kept)?;
        Ok(QueryResult {
            rows_examined: examined,
            ..res
        })
    }

    /// Fetches the rows of a table that satisfy `where_clause`, using an
    /// index when a sargable predicate exists and a zone-map-pruned
    /// streaming page scan otherwise. Returns surviving rows and the
    /// rows-examined count.
    ///
    /// Pushdowns (callers opt in; DML always passes `None, None`):
    /// * `limit` — stop as soon as that many rows survive the filter.
    ///   Sound only when the caller needs the first matches in (page,
    ///   slot) / index order, i.e. no ORDER BY.
    /// * `needed` — per-column materialization mask; unneeded columns
    ///   decode as NULL placeholders. Sound only when the caller never
    ///   reads the masked columns (projection + WHERE + ORDER BY).
    fn fetch_rows(
        &mut self,
        def: &TableDef,
        where_clause: Option<&Expr>,
        limit: Option<u64>,
        needed: Option<&[bool]>,
    ) -> DbResult<(Vec<Row>, u64)> {
        self.trace_begin("plan");
        let plan = where_clause.map(|w| plan_scan(def, w)).unwrap_or_default();
        self.trace_attr("index_used", plan.index.is_some() as u64);
        let cost = self.stage_cost();
        self.trace_end(cost);

        // The scan is the elastic stage: it absorbs the per-row cost.
        self.trace_begin("scan");
        let hits0 = self.metrics.bufpool_hits.get();
        let misses0 = self.metrics.bufpool_misses.get();
        if !self.runtime.contains_key(&def.schema.name) {
            return Err(DbError::UnknownTable(def.schema.name.clone()));
        }
        let limit = limit.map(|l| l as usize);
        let mut kept: Vec<Row> = Vec::new();
        let mut examined: u64 = 0;
        let mut pages_pruned: u64 = 0;
        let mut pages_decoded: u64 = 0;
        let done = |kept: &Vec<Row>| matches!(limit, Some(l) if kept.len() >= l);

        match plan.index {
            Some(ip) => {
                let rt = self.runtime.get(&def.schema.name).expect("checked");
                let bt = rt.btrees[ip.index_pos].clone();
                let lit = ip.bounds.sample_key();
                let (lo, hi) = (ip.bounds.lo, ip.bounds.hi);
                let found = bt.search_range(&self.bufpool, &mut self.vdisk, lo, hi)?;
                // Adaptive hash: record the searched key against the leaf
                // page the lookup landed on.
                if let (Some(leaf), Some(key)) = (found.pages.last(), lit) {
                    let mut key_bytes = Vec::new();
                    key.encode(&mut key_bytes);
                    self.adaptive_hash
                        .record_search((bt.file.clone(), *leaf), &key_bytes);
                }
                for rid in &found.row_ids {
                    if done(&kept) {
                        break;
                    }
                    let row = {
                        let rt = self.runtime.get(&def.schema.name).expect("checked");
                        rt.heap.read(&self.bufpool, &mut self.vdisk, *rid)?
                    };
                    examined += 1;
                    // When the index bounds *are* the predicate, re-running
                    // the filter per row is pure overhead — skip it.
                    if plan.guaranteed {
                        kept.push(row);
                    } else {
                        match where_clause {
                            Some(w) => {
                                if self.eval_truthy(w, &def.schema, &row)? {
                                    kept.push(row);
                                }
                            }
                            None => kept.push(row),
                        }
                    }
                }
            }
            None => {
                // Streaming heap scan: one page at a time, consulting the
                // zone map first so non-matching pages are never decoded.
                let file = self.runtime[&def.schema.name].heap.file.clone();
                let n_pages = ShardedBufferPool::page_count(&self.vdisk, &file);
                let zone_maps = self.config.zone_maps_enabled;
                'pages: for page_no in 0..n_pages {
                    if done(&kept) {
                        break;
                    }
                    if zone_maps {
                        if let Some((col, lo, hi)) = &plan.prune {
                            let rt = self.runtime.get_mut(&def.schema.name).expect("checked");
                            if rt.heap.page_prunable(
                                &self.bufpool,
                                &mut self.vdisk,
                                page_no,
                                *col as u16,
                                lo,
                                hi,
                            )? {
                                pages_pruned += 1;
                                continue;
                            }
                        }
                    }
                    pages_decoded += 1;
                    let page_rows = {
                        let rt = self.runtime.get(&def.schema.name).expect("checked");
                        rt.heap
                            .read_page_rows(&self.bufpool, &mut self.vdisk, page_no, needed)?
                    };
                    for row in page_rows {
                        examined += 1;
                        match where_clause {
                            Some(w) => {
                                if self.eval_truthy(w, &def.schema, &row)? {
                                    kept.push(row);
                                }
                            }
                            None => kept.push(row),
                        }
                        if done(&kept) {
                            break 'pages;
                        }
                    }
                }
                self.metrics.scan_pages_pruned.add(pages_pruned);
                self.metrics.scan_pages_decoded.add(pages_decoded);
                self.trace_attr("pages_pruned", pages_pruned);
                self.trace_attr("pages_decoded", pages_decoded);
            }
        }

        // Buffer-pool I/O nested under the scan: the hit/miss deltas of
        // exactly this stage's page accesses.
        let pages_hit = self.metrics.bufpool_hits.get().saturating_sub(hits0);
        let pages_missed = self.metrics.bufpool_misses.get().saturating_sub(misses0);
        self.trace_begin("bufpool");
        self.trace_attr("pages_hit", pages_hit);
        self.trace_attr("pages_missed", pages_missed);
        // Advisory nested cost: one simulated µs per page fault.
        self.trace_end(pages_missed);

        self.trace_attr("rows_examined", examined);
        self.trace_end_elastic();
        Ok((kept, examined))
    }

    fn project(
        &self,
        schema: &TableSchema,
        items: &[SelectItem],
        rows: Vec<Row>,
    ) -> DbResult<QueryResult> {
        let has_aggregate = items
            .iter()
            .any(|i| matches!(i, SelectItem::CountStar | SelectItem::Aggregate(_, _)));
        if has_aggregate {
            let mut columns = Vec::new();
            let mut out = Vec::new();
            for item in items {
                match item {
                    SelectItem::CountStar => {
                        columns.push("count(*)".to_string());
                        out.push(Value::Int(rows.len() as i64));
                    }
                    SelectItem::Aggregate(func, col) => {
                        let idx = schema.column_index(col)?;
                        columns.push(format!("{func}({col})"));
                        out.push(aggregate(func, idx, &rows)?);
                    }
                    _ => {
                        return Err(DbError::Eval(
                            "cannot mix aggregates and plain columns".into(),
                        ))
                    }
                }
            }
            return Ok(QueryResult {
                columns,
                rows: vec![out],
                rows_examined: 0,
                rows_affected: 0,
            });
        }
        let mut columns = Vec::new();
        let mut proj: Vec<usize> = Vec::new();
        for item in items {
            match item {
                SelectItem::Star => {
                    for (i, c) in schema.columns.iter().enumerate() {
                        columns.push(c.name.clone());
                        proj.push(i);
                    }
                }
                SelectItem::Column(c) => {
                    let idx = schema.column_index(c)?;
                    columns.push(c.clone());
                    proj.push(idx);
                }
                _ => unreachable!("aggregates handled above"),
            }
        }
        let out = rows
            .into_iter()
            .map(|r| proj.iter().map(|&i| r.values[i].clone()).collect())
            .collect();
        Ok(QueryResult {
            columns,
            rows: out,
            rows_examined: 0,
            rows_affected: 0,
        })
    }

    // ================= DML =================

    fn dml(&mut self, conn_id: u64, sql: &str, op: DmlOp) -> DbResult<QueryResult> {
        let explicit = self.txns.contains_key(&conn_id);
        let txn_id = match self.txns.get(&conn_id) {
            Some(t) => t.id,
            None => {
                let id = self.next_txn;
                self.next_txn += 1;
                id
            }
        };
        let mut undo_written = Vec::new();
        let version_mark = self.mvcc.pending_mark(txn_id);
        let result = self.apply_dml(txn_id, op, &mut undo_written);
        match result {
            Ok(res) => {
                if explicit {
                    let ctx = self.current_ctx;
                    let t = self.txns.get_mut(&conn_id).expect("checked");
                    t.undo.extend(undo_written);
                    t.statements.push((sql.to_string(), ctx));
                } else {
                    self.commit_txn(TxnState {
                        id: txn_id,
                        undo: Vec::new(),
                        statements: vec![(sql.to_string(), self.current_ctx)],
                        snapshot_csn: 0,
                    })?;
                }
                Ok(res)
            }
            Err(e) => {
                // Statement-level rollback: undo whatever this statement
                // already did, in reverse — version records included.
                for rec in undo_written.iter().rev() {
                    self.apply_undo(rec)?;
                }
                self.mvcc.abort_from(&mut self.vdisk, txn_id, version_mark);
                Err(e)
            }
        }
    }

    fn apply_dml(
        &mut self,
        txn_id: u64,
        op: DmlOp,
        undo_written: &mut Vec<UndoRecord>,
    ) -> DbResult<QueryResult> {
        match op {
            DmlOp::Insert {
                table,
                columns,
                rows,
            } => {
                let def = self.catalog.get(&table)?.clone();
                self.record_table_access(&def.schema.name);
                // The write is the elastic stage for inserts (no scan).
                self.trace_begin("write");
                let mut affected = 0;
                for literals in rows {
                    let values = arrange_columns(&def.schema, &columns, literals)?;
                    def.schema.check_row(&values)?;
                    self.check_pk_unique(&def, &values, None)?;
                    let row_id = {
                        let rt = self.runtime.get_mut(&table).expect("catalog hit");
                        rt.heap.allocate_row_id()
                    };
                    let row = Row { id: row_id, values };
                    self.insert_row(txn_id, &def, &row, undo_written)?;
                    self.mvcc.record_insert(&def.schema.name, row_id, txn_id);
                    affected += 1;
                }
                self.trace_attr("rows_affected", affected);
                self.trace_end_elastic();
                self.finish_write(&table);
                Ok(QueryResult {
                    rows_affected: affected,
                    ..Default::default()
                })
            }
            DmlOp::Update {
                table,
                sets,
                where_clause,
            } => {
                let def = self.catalog.get(&table)?.clone();
                self.record_table_access(&def.schema.name);
                // No pushdowns: updates re-encode the old row, so every
                // column must be materialized, and all targets matter.
                let (targets, examined) =
                    self.fetch_rows(&def, where_clause.as_ref(), None, None)?;
                self.trace_begin("write");
                let mut set_idx = Vec::new();
                for (col, val) in &sets {
                    let idx = def.schema.column_index(col)?;
                    set_idx.push((idx, val.clone()));
                }
                let affected = targets.len() as u64;
                for old in targets {
                    let mut new_row = old.clone();
                    for (idx, val) in &set_idx {
                        new_row.values[*idx] = val.clone();
                    }
                    def.schema.check_row(&new_row.values)?;
                    self.check_pk_unique(&def, &new_row.values, Some(old.id))?;
                    // Archive the displaced image before it is overwritten:
                    // MVCC writers append versions, they never destroy.
                    self.mvcc.record_supersession(
                        &mut self.vdisk,
                        &def.schema.name,
                        &old,
                        OP_UPDATE,
                        txn_id,
                    );
                    self.update_row(txn_id, &def, &old, &new_row, undo_written)?;
                }
                self.trace_attr("rows_affected", affected);
                let cost = self.stage_cost();
                self.trace_end(cost);
                self.finish_write(&table);
                Ok(QueryResult {
                    rows_examined: examined,
                    rows_affected: affected,
                    ..Default::default()
                })
            }
            DmlOp::Delete {
                table,
                where_clause,
            } => {
                let def = self.catalog.get(&table)?.clone();
                self.record_table_access(&def.schema.name);
                // No pushdowns: the undo image needs the full old row.
                let (targets, examined) =
                    self.fetch_rows(&def, where_clause.as_ref(), None, None)?;
                self.trace_begin("write");
                let affected = targets.len() as u64;
                for old in targets {
                    self.mvcc.record_supersession(
                        &mut self.vdisk,
                        &def.schema.name,
                        &old,
                        OP_DELETE,
                        txn_id,
                    );
                    self.delete_row(txn_id, &def, &old, undo_written)?;
                }
                self.trace_attr("rows_affected", affected);
                let cost = self.stage_cost();
                self.trace_end(cost);
                self.finish_write(&table);
                Ok(QueryResult {
                    rows_examined: examined,
                    rows_affected: affected,
                    ..Default::default()
                })
            }
        }
    }

    fn check_pk_unique(
        &mut self,
        def: &TableDef,
        values: &[Value],
        updating: Option<RowId>,
    ) -> DbResult<()> {
        let Some(pk_idx) = def.schema.primary_key_index() else {
            return Ok(());
        };
        let Some(ix_pos) = def.indexes.iter().position(|i| i.column_idx == pk_idx) else {
            return Ok(());
        };
        let bt = self.runtime[&def.schema.name].btrees[ix_pos].clone();
        let found = bt.search_eq(&self.bufpool, &mut self.vdisk, &values[pk_idx])?;
        for rid in found.row_ids {
            if Some(rid) != updating {
                return Err(DbError::DuplicateKey(format!(
                    "{} = {}",
                    def.schema.columns[pk_idx].name, values[pk_idx]
                )));
            }
        }
        Ok(())
    }

    /// Appends a redo record, checkpointing first if the circular log is
    /// about to wrap (so no un-checkpointed history is overwritten).
    fn log_redo(&mut self, rec: RedoRecord) {
        if self.wal.redo_would_wrap(&rec) {
            self.checkpoint();
        }
        self.wal.append_redo(&rec);
    }

    /// Checkpoint: flush dirty pages and persist the checkpoint LSN plus
    /// the active-transaction table (ARIES-style), so recovery can tell
    /// "committed long ago, marker wrapped away" apart from "in flight at
    /// the crash".
    fn checkpoint(&mut self) {
        self.bufpool.flush_all(&mut self.vdisk);
        let lsn = self.wal.current_lsn();
        let mut buf = Vec::with_capacity(12 + self.txns.len() * 8);
        buf.extend_from_slice(&lsn.to_le_bytes());
        buf.extend_from_slice(&(self.txns.len() as u32).to_le_bytes());
        for t in self.txns.values() {
            buf.extend_from_slice(&t.id.to_le_bytes());
        }
        self.vdisk.write(CHECKPOINT_FILE, buf);
        // A checkpoint is a durability point: one simulated fsync.
        self.wal.record_fsync();
    }

    /// Reads the checkpoint: `(lsn, active transaction ids)`.
    fn read_checkpoint(&self) -> (u64, std::collections::HashSet<u64>) {
        let Some(buf) = self.vdisk.read(CHECKPOINT_FILE) else {
            return (0, Default::default());
        };
        if buf.len() < 12 {
            return (0, Default::default());
        }
        let lsn = u64::from_le_bytes(buf[0..8].try_into().unwrap());
        let n = u32::from_le_bytes(buf[8..12].try_into().unwrap()) as usize;
        let mut active = std::collections::HashSet::new();
        for i in 0..n {
            let off = 12 + i * 8;
            if let Some(bytes) = buf.get(off..off + 8) {
                active.insert(u64::from_le_bytes(bytes.try_into().unwrap()));
            }
        }
        (lsn, active)
    }

    fn insert_row(
        &mut self,
        txn_id: u64,
        def: &TableDef,
        row: &Row,
        undo_written: &mut Vec<UndoRecord>,
    ) -> DbResult<()> {
        let lsn = self.wal.alloc_lsn();
        let undo = UndoRecord {
            lsn,
            txn: txn_id,
            op: OpKind::Insert,
            table_id: def.id,
            row_id: row.id,
            before: Vec::new(),
        };
        self.wal.append_undo(&undo);
        undo_written.push(undo);

        let rt = self.runtime.get_mut(&def.schema.name).expect("catalog hit");
        let (page_no, slot) = rt.heap.insert(&self.bufpool, &mut self.vdisk, row)?;
        self.stamp_page_lsn(&def.file, page_no, lsn)?;
        self.log_redo(RedoRecord {
            lsn,
            txn: txn_id,
            op: OpKind::Insert,
            table_id: def.id,
            page_no,
            slot,
            after: row.encode(),
        });
        for (ix, bt) in def
            .indexes
            .iter()
            .zip(self.runtime[&def.schema.name].btrees.clone())
        {
            bt.insert(
                &self.bufpool,
                &mut self.vdisk,
                &row.values[ix.column_idx],
                row.id,
            )?;
        }
        Ok(())
    }

    fn update_row(
        &mut self,
        txn_id: u64,
        def: &TableDef,
        old: &Row,
        new_row: &Row,
        undo_written: &mut Vec<UndoRecord>,
    ) -> DbResult<()> {
        let lsn = self.wal.alloc_lsn();
        let undo = UndoRecord {
            lsn,
            txn: txn_id,
            op: OpKind::Update,
            table_id: def.id,
            row_id: old.id,
            before: old.encode(),
        };
        self.wal.append_undo(&undo);
        undo_written.push(undo);

        let rt = self.runtime.get_mut(&def.schema.name).expect("catalog hit");
        let placement = rt.heap.update(&self.bufpool, &mut self.vdisk, new_row)?;
        match placement {
            UpdatePlacement::InPlace { page_no, slot } => {
                self.stamp_page_lsn(&def.file, page_no, lsn)?;
                self.log_redo(RedoRecord {
                    lsn,
                    txn: txn_id,
                    op: OpKind::Update,
                    table_id: def.id,
                    page_no,
                    slot,
                    after: new_row.encode(),
                });
            }
            UpdatePlacement::Moved { from, to } => {
                self.stamp_page_lsn(&def.file, from.0, lsn)?;
                self.log_redo(RedoRecord {
                    lsn,
                    txn: txn_id,
                    op: OpKind::Delete,
                    table_id: def.id,
                    page_no: from.0,
                    slot: from.1,
                    after: Vec::new(),
                });
                let lsn2 = self.wal.alloc_lsn();
                self.stamp_page_lsn(&def.file, to.0, lsn2)?;
                self.log_redo(RedoRecord {
                    lsn: lsn2,
                    txn: txn_id,
                    op: OpKind::Insert,
                    table_id: def.id,
                    page_no: to.0,
                    slot: to.1,
                    after: new_row.encode(),
                });
            }
        }
        // Index maintenance for changed keys.
        for (ix, bt) in def
            .indexes
            .iter()
            .zip(self.runtime[&def.schema.name].btrees.clone())
        {
            let old_key = &old.values[ix.column_idx];
            let new_key = &new_row.values[ix.column_idx];
            if old_key != new_key {
                bt.delete(&self.bufpool, &mut self.vdisk, old_key, old.id)?;
                bt.insert(&self.bufpool, &mut self.vdisk, new_key, old.id)?;
            }
        }
        Ok(())
    }

    fn delete_row(
        &mut self,
        txn_id: u64,
        def: &TableDef,
        old: &Row,
        undo_written: &mut Vec<UndoRecord>,
    ) -> DbResult<()> {
        let lsn = self.wal.alloc_lsn();
        let undo = UndoRecord {
            lsn,
            txn: txn_id,
            op: OpKind::Delete,
            table_id: def.id,
            row_id: old.id,
            before: old.encode(),
        };
        self.wal.append_undo(&undo);
        undo_written.push(undo);

        let rt = self.runtime.get_mut(&def.schema.name).expect("catalog hit");
        let (page_no, slot) = rt.heap.delete(&self.bufpool, &mut self.vdisk, old.id)?;
        self.stamp_page_lsn(&def.file, page_no, lsn)?;
        self.log_redo(RedoRecord {
            lsn,
            txn: txn_id,
            op: OpKind::Delete,
            table_id: def.id,
            page_no,
            slot,
            after: Vec::new(),
        });
        for (ix, bt) in def
            .indexes
            .iter()
            .zip(self.runtime[&def.schema.name].btrees.clone())
        {
            bt.delete(
                &self.bufpool,
                &mut self.vdisk,
                &old.values[ix.column_idx],
                old.id,
            )?;
        }
        Ok(())
    }

    fn stamp_page_lsn(&mut self, file: &str, page_no: u32, lsn: u64) -> DbResult<()> {
        self.bufpool
            .with_page_mut(&mut self.vdisk, file, page_no, |buf| {
                crate::storage::page::Page::new(buf).set_lsn(lsn);
            })
    }

    fn finish_write(&mut self, table: &str) {
        for p in self.query_cache.invalidate_table(table) {
            self.heap.free(p);
        }
    }

    /// Bumps the lazily-registered per-table access counter. These
    /// counters are the telemetry experiments' star witness: they encode
    /// the query distribution per table name, survive
    /// [`Db::flush_diagnostics`], and ride along in every memory image.
    fn record_table_access(&mut self, table: &str) {
        if let Some(t) = self.current_trace.as_mut() {
            t.table(table);
        }
        let telemetry = &self.telemetry;
        self.metrics
            .table_access
            .entry(table.to_string())
            .or_insert_with(|| telemetry.counter(&format!("sql.table_access.{table}")))
            .inc();
    }

    fn commit_txn(&mut self, txn: TxnState) -> DbResult<()> {
        // Stamp the commit CSN into every version record this txn wrote:
        // before-images get their xmax, fresh rows their xmin.
        let csn = self.next_csn;
        self.next_csn += 1;
        self.mvcc.commit(&mut self.vdisk, txn.id, csn);
        let logged0 = self.metrics.wal_redo_bytes.get() + self.metrics.wal_binlog_bytes.get();
        self.trace_begin("wal_append");
        let lsn = self.wal.alloc_lsn();
        self.log_redo(RedoRecord {
            lsn,
            txn: txn.id,
            op: OpKind::Commit,
            table_id: 0,
            page_no: 0,
            slot: 0,
            after: Vec::new(),
        });
        let binlog_events = txn.statements.len() as u64;
        for (stmt, stmt_ctx) in &txn.statements {
            let ctx = self.binlog_ctx(*stmt_ctx);
            self.wal.append_binlog(&BinlogEvent {
                lsn,
                txn: txn.id,
                timestamp: self.now_unix,
                statement: stmt.clone(),
                ctx,
            });
        }
        let logged1 = self.metrics.wal_redo_bytes.get() + self.metrics.wal_binlog_bytes.get();
        self.trace_attr("bytes_logged", logged1.saturating_sub(logged0));
        self.trace_attr("binlog_events", binlog_events);
        let cost = self.stage_cost();
        self.trace_end(cost);
        // The durability point: the redo write and the binlog sync.
        self.trace_begin("commit");
        self.durability_point();
        if self.group_commit.is_some() {
            self.trace_attr("group_commit", 1);
        } else {
            self.trace_attr("fsyncs", 1);
        }
        let cost = self.stage_cost();
        self.trace_end(cost);
        Ok(())
    }

    /// The commit durability point. Without group commit this is the
    /// seed behaviour — one fsync per statement, paid *inside* the
    /// engine lock (which is exactly why concurrent committers
    /// serialize on it). With group commit the LSN is merely staged
    /// here; the caller performs the wait after releasing the lock, and
    /// one pipeline leader fsyncs for the whole batch.
    fn durability_point(&mut self) {
        match &self.group_commit {
            Some(p) => {
                let lsn = self.wal.current_lsn();
                p.stage(lsn);
                self.staged_commit = Some(lsn);
            }
            None => {
                if self.config.fsync_latency_us > 0 {
                    std::thread::sleep(std::time::Duration::from_micros(
                        self.config.fsync_latency_us,
                    ));
                }
                self.wal.record_fsync();
            }
        }
    }

    /// Takes the pending group-commit wait, if the statement that just
    /// ran staged one. The caller must invoke
    /// [`GroupCommitPipeline::wait_durable`] on it **after** dropping
    /// the engine guard.
    pub(crate) fn take_staged_commit(&mut self) -> Option<(Arc<GroupCommitPipeline>, u64)> {
        let lsn = self.staged_commit.take()?;
        self.group_commit.as_ref().map(|p| (Arc::clone(p), lsn))
    }

    fn rollback_txn(&mut self, txn: TxnState) -> DbResult<()> {
        for rec in txn.undo.iter().rev() {
            self.apply_undo(rec)?;
        }
        self.mvcc.abort(&mut self.vdisk, txn.id);
        // Mark the transaction finished so recovery does not re-undo it.
        let lsn = self.wal.alloc_lsn();
        self.log_redo(RedoRecord {
            lsn,
            txn: txn.id,
            op: OpKind::Commit,
            table_id: 0,
            page_no: 0,
            slot: 0,
            after: Vec::new(),
        });
        Ok(())
    }

    /// Applies one undo record (compensation), logging fresh redo so the
    /// compensation itself survives a crash.
    fn apply_undo(&mut self, rec: &UndoRecord) -> DbResult<()> {
        let def = match self.catalog.get_by_id(rec.table_id) {
            Some(d) => d.clone(),
            // The table vanished (e.g. crash before catalog persisted);
            // nothing to compensate.
            None => return Ok(()),
        };
        let mut scratch = Vec::new();
        match rec.op {
            OpKind::Insert => {
                // Undo an insert: delete the row if it exists.
                let exists = self.runtime[&def.schema.name]
                    .heap
                    .locate(rec.row_id)
                    .is_some();
                if exists {
                    let rt = self.runtime.get(&def.schema.name).expect("catalog hit");
                    let old = rt.heap.read(&self.bufpool, &mut self.vdisk, rec.row_id)?;
                    self.delete_row(rec.txn, &def, &old, &mut scratch)?;
                }
            }
            OpKind::Update => {
                let before = Row::decode(&rec.before)?;
                let exists = self.runtime[&def.schema.name]
                    .heap
                    .locate(rec.row_id)
                    .is_some();
                if exists {
                    let rt = self.runtime.get(&def.schema.name).expect("catalog hit");
                    let current = rt.heap.read(&self.bufpool, &mut self.vdisk, rec.row_id)?;
                    self.update_row(rec.txn, &def, &current, &before, &mut scratch)?;
                }
            }
            OpKind::Delete => {
                let before = Row::decode(&rec.before)?;
                let exists = self.runtime[&def.schema.name]
                    .heap
                    .locate(rec.row_id)
                    .is_some();
                if !exists {
                    self.insert_row(rec.txn, &def, &before, &mut scratch)?;
                }
            }
            OpKind::Commit => {}
        }
        Ok(())
    }

    // ================= recovery =================

    pub(crate) fn recover(&mut self) -> DbResult<()> {
        // 1. Reload durable metadata.
        self.catalog = Catalog::load(&self.vdisk)?;
        self.runtime.clear();
        // 2. Open heaps from the (possibly stale) disk pages.
        let defs: Vec<TableDef> = self.catalog.tables.values().cloned().collect();
        for def in &defs {
            let mut heap = TableHeap::open(&self.bufpool, &mut self.vdisk, &def.file)?;
            heap.set_zone_maps(self.config.zone_maps_enabled);
            self.runtime.insert(
                def.schema.name.clone(),
                RuntimeTable {
                    heap,
                    btrees: Vec::new(),
                },
            );
        }
        // 3. Redo phase: replay logged changes newer than each page's LSN.
        let redo = self.wal.carve_redo();
        let max_lsn = redo.iter().map(|r| r.lsn).max().unwrap_or(0);
        let committed: std::collections::HashSet<u64> = redo
            .iter()
            .filter(|r| r.op == OpKind::Commit)
            .map(|r| r.txn)
            .collect();
        for rec in &redo {
            if rec.op == OpKind::Commit {
                continue;
            }
            let Some(def) = self.catalog.get_by_id(rec.table_id).cloned() else {
                continue;
            };
            let rt = self
                .runtime
                .get_mut(&def.schema.name)
                .expect("opened above");
            match rec.op {
                OpKind::Insert => rt.heap.replay_insert(
                    &self.bufpool,
                    &mut self.vdisk,
                    rec.lsn,
                    rec.page_no,
                    rec.slot,
                    &rec.after,
                )?,
                OpKind::Update => rt.heap.replay_update(
                    &self.bufpool,
                    &mut self.vdisk,
                    rec.lsn,
                    rec.page_no,
                    rec.slot,
                    &rec.after,
                )?,
                OpKind::Delete => rt.heap.replay_delete(
                    &self.bufpool,
                    &mut self.vdisk,
                    rec.lsn,
                    rec.page_no,
                    rec.slot,
                )?,
                OpKind::Commit => unreachable!(),
            }
        }
        self.wal.set_next_lsn(max_lsn + 1);
        // 4. Rebuild indexes from the redone heaps (index changes are not
        //    WAL-logged in MiniDB; a full rebuild replaces them).
        for def in &defs {
            let mut btrees = Vec::new();
            let rows = {
                let rt = self.runtime.get(&def.schema.name).expect("opened above");
                rt.heap.scan(&self.bufpool, &mut self.vdisk)?.0
            };
            for ix in &def.indexes {
                self.vdisk.remove(&ix.file);
                let bt = BTree::create(&self.bufpool, &mut self.vdisk, &ix.file)?;
                for row in &rows {
                    bt.insert(
                        &self.bufpool,
                        &mut self.vdisk,
                        &row.values[ix.column_idx],
                        row.id,
                    )?;
                }
                btrees.push(bt);
            }
            self.runtime
                .get_mut(&def.schema.name)
                .expect("opened above")
                .btrees = btrees;
        }
        // 5. Undo phase. Candidates for rollback are only transactions
        //    that were live at or after the last checkpoint: the
        //    checkpoint's active-transaction table plus every txn whose
        //    redo records postdate the checkpoint LSN. Older transactions
        //    without a visible commit marker committed long ago — their
        //    markers merely wrapped out of the circular log.
        let (ckpt_lsn, ckpt_active) = self.read_checkpoint();
        let mut candidates: std::collections::HashSet<u64> = ckpt_active;
        for rec in &redo {
            if rec.lsn >= ckpt_lsn && rec.op != OpKind::Commit {
                candidates.insert(rec.txn);
            }
        }
        let undo = self.wal.carve_undo();
        for rec in undo.iter().rev() {
            if candidates.contains(&rec.txn) && !committed.contains(&rec.txn) {
                self.apply_undo(rec)?;
            }
        }
        self.crashed = false;
        Ok(())
    }

    // ================= expression evaluation =================

    /// Every zone-map synopsis the heaps currently hold in memory, as
    /// `(tablespace file, page number, synopsis)` sorted for stable
    /// snapshot serialization. This is the in-memory half of the
    /// zone-map leakage surface; the persisted half lives in the page
    /// headers of the `.ibd` files themselves.
    pub(crate) fn zone_map_pages(&self) -> Vec<(String, u32, crate::storage::PageSynopsis)> {
        let mut out: Vec<(String, u32, crate::storage::PageSynopsis)> = self
            .runtime
            .values()
            .flat_map(|rt| {
                rt.heap
                    .zone_map()
                    .iter()
                    .map(|(page_no, syn)| (rt.heap.file.clone(), *page_no, syn.clone()))
            })
            .collect();
        out.sort_by(|a, b| (&a.0, a.1).cmp(&(&b.0, b.1)));
        out
    }

    fn eval_truthy(&mut self, e: &Expr, schema: &TableSchema, row: &Row) -> DbResult<bool> {
        Ok(matches!(
            self.eval(e, schema, row)?,
            Value::Int(v) if v != 0
        ))
    }

    fn eval(&mut self, e: &Expr, schema: &TableSchema, row: &Row) -> DbResult<Value> {
        match e {
            Expr::Literal(v) => Ok(v.clone()),
            Expr::Column(c) => {
                let idx = schema.column_index(c)?;
                Ok(row.values[idx].clone())
            }
            Expr::Cmp(l, op, r) => {
                let lv = self.eval(l, schema, row)?;
                let rv = self.eval(r, schema, row)?;
                let b = match lv.sql_cmp(&rv) {
                    None => false, // NULL comparisons are not-true.
                    Some(o) => match op {
                        CmpOp::Eq => o.is_eq(),
                        CmpOp::Ne => o.is_ne(),
                        CmpOp::Lt => o.is_lt(),
                        CmpOp::Le => o.is_le(),
                        CmpOp::Gt => o.is_gt(),
                        CmpOp::Ge => o.is_ge(),
                    },
                };
                Ok(Value::Int(b as i64))
            }
            Expr::And(l, r) => {
                let b = self.eval_truthy(l, schema, row)? && self.eval_truthy(r, schema, row)?;
                Ok(Value::Int(b as i64))
            }
            Expr::Or(l, r) => {
                let b = self.eval_truthy(l, schema, row)? || self.eval_truthy(r, schema, row)?;
                Ok(Value::Int(b as i64))
            }
            Expr::Not(x) => {
                let b = !self.eval_truthy(x, schema, row)?;
                Ok(Value::Int(b as i64))
            }
            Expr::Func(name, args) => {
                let f = self
                    .functions
                    .get(name)
                    .cloned()
                    .ok_or_else(|| DbError::UnknownFunction(name.clone()))?;
                let mut argv = Vec::with_capacity(args.len());
                for a in args {
                    argv.push(self.eval(a, schema, row)?);
                }
                f(&argv)
            }
        }
    }
}

/// Finds sargable conjuncts (`Column op Literal`) over an indexed column
/// and intersects their bounds, so `k >= a AND k <= b` scans only `[a, b]`
/// rather than a half-open range. Returns `None` for unindexable filters.
/// How a `SELECT` will touch a table: an index range (when a sargable
/// predicate hits an indexed column), a zone-map prune spec for the
/// streaming heap scan, and whether the index bounds alone *guarantee*
/// the full predicate (letting the executor skip per-row re-evaluation).
#[derive(Default)]
struct ScanPlan {
    /// Index range, if any sargable conjunct hit an indexed column.
    index: Option<IndexPlan>,
    /// The index bounds are exactly the predicate: every conjunct folded
    /// into them, no residual filter remains, and the range provably
    /// excludes stored NULL keys (NULL sorts below every value, so this
    /// requires a bounded, non-NULL lower bound). Only then may the
    /// executor skip `eval_truthy` on fetched rows.
    guaranteed: bool,
    /// Zone-map prune spec for the heap path: `(column ordinal, lo, hi)`
    /// over INT bounds. Pages whose synopsis range is disjoint from it
    /// are skipped without decoding.
    prune: Option<(usize, std::ops::Bound<i64>, std::ops::Bound<i64>)>,
}

fn plan_scan(def: &TableDef, where_clause: &Expr) -> ScanPlan {
    let mut conjuncts = Vec::new();
    flatten_and(where_clause, &mut conjuncts);
    let mut plan: Option<IndexPlan> = None;
    // A conjunct the index bounds do not fully capture: the per-row
    // filter stays mandatory.
    let mut residual = false;
    // Accumulated bounds per column (first-mention order) for pruning.
    let mut col_bounds: Vec<(usize, RangeBounds)> = Vec::new();
    for c in conjuncts {
        let Expr::Cmp(l, op, r) = c else {
            residual = true;
            continue;
        };
        let (col, op, lit) = match (l.as_ref(), r.as_ref()) {
            (Expr::Column(c), _) if r.as_literal().is_some() => {
                (c.clone(), *op, r.as_literal().unwrap().clone())
            }
            (_, Expr::Column(c)) if l.as_literal().is_some() => {
                (c.clone(), flip(*op), l.as_literal().unwrap().clone())
            }
            _ => {
                residual = true;
                continue;
            }
        };
        if op == CmpOp::Ne {
            residual = true;
            continue;
        }
        let Ok(col_idx) = def.schema.column_index(&col) else {
            residual = true;
            continue;
        };
        // A NULL literal still narrows the index range (harmlessly — the
        // range finds stored NULLs, eval rejects them), but can never be
        // *guaranteed*: `col = NULL` is unknown, not a match.
        if lit == Value::Null {
            residual = true;
        }
        let bounds = match col_bounds.iter_mut().find(|(i, _)| *i == col_idx) {
            Some((_, b)) => b,
            None => {
                col_bounds.push((col_idx, RangeBounds::new()));
                &mut col_bounds.last_mut().expect("just pushed").1
            }
        };
        bounds.narrow(op, lit.clone());
        match def.indexes.iter().position(|i| i.column_idx == col_idx) {
            Some(pos) => {
                let p = plan.get_or_insert_with(|| IndexPlan::new(pos));
                if p.index_pos != pos {
                    residual = true; // Stick with the first indexed column.
                    continue;
                }
                p.bounds.narrow(op, lit);
            }
            None => residual = true,
        }
    }
    let guaranteed = match &plan {
        Some(p) => {
            !residual
                && matches!(
                    &p.bounds.lo,
                    std::ops::Bound::Included(v) | std::ops::Bound::Excluded(v)
                        if *v != Value::Null
                )
        }
        None => false,
    };
    // Pruning only matters on the heap path; pick the first column whose
    // accumulated bounds are INT and bounded on at least one side.
    let prune = if plan.is_none() {
        col_bounds.iter().find_map(|(idx, b)| {
            let lo = int_bound(&b.lo)?;
            let hi = int_bound(&b.hi)?;
            if matches!(
                (&lo, &hi),
                (std::ops::Bound::Unbounded, std::ops::Bound::Unbounded)
            ) {
                return None;
            }
            Some((*idx, lo, hi))
        })
    } else {
        None
    };
    ScanPlan {
        index: plan,
        guaranteed,
        prune,
    }
}

/// Converts a `Bound<Value>` to `Bound<i64>` — `None` when the literal
/// is not an INT (the zone map only tracks INT columns).
fn int_bound(b: &std::ops::Bound<Value>) -> Option<std::ops::Bound<i64>> {
    use std::ops::Bound::*;
    match b {
        Unbounded => Some(Unbounded),
        Included(Value::Int(v)) => Some(Included(*v)),
        Excluded(Value::Int(v)) => Some(Excluded(*v)),
        _ => None,
    }
}

/// Collects every column an expression reads into `mask`.
fn expr_columns(e: &Expr, schema: &TableSchema, mask: &mut [bool]) -> bool {
    match e {
        Expr::Literal(_) => true,
        Expr::Column(c) => match schema.column_index(c) {
            Ok(i) => {
                mask[i] = true;
                true
            }
            Err(_) => false,
        },
        Expr::Cmp(l, _, r) | Expr::And(l, r) | Expr::Or(l, r) => {
            expr_columns(l, schema, mask) && expr_columns(r, schema, mask)
        }
        Expr::Not(inner) => expr_columns(inner, schema, mask),
        Expr::Func(_, args) => args.iter().all(|a| expr_columns(a, schema, mask)),
    }
}

/// The projection-pushdown mask for a `SELECT`: which columns the query
/// can possibly read (select list + WHERE + ORDER BY). `None` means
/// materialize everything — a `SELECT *`, or any reference the mask
/// cannot account for (unknown column names fall through so the normal
/// error paths report them).
fn needed_columns(schema: &TableSchema, sel: &SelectStmt) -> Option<Vec<bool>> {
    let mut mask = vec![false; schema.columns.len()];
    for item in &sel.items {
        match item {
            SelectItem::Star => return None,
            SelectItem::CountStar => {}
            SelectItem::Column(c) | SelectItem::Aggregate(_, c) => match schema.column_index(c) {
                Ok(i) => mask[i] = true,
                Err(_) => return None,
            },
        }
    }
    if let Some(w) = &sel.where_clause {
        if !expr_columns(w, schema, &mut mask) {
            return None;
        }
    }
    if let Some((c, _)) = &sel.order_by {
        match schema.column_index(c) {
            Ok(i) => mask[i] = true,
            Err(_) => return None,
        }
    }
    Some(mask)
}

/// Accumulated index bounds for one indexed column.
struct IndexPlan {
    index_pos: usize,
    bounds: RangeBounds,
}

impl IndexPlan {
    fn new(index_pos: usize) -> IndexPlan {
        IndexPlan {
            index_pos,
            bounds: RangeBounds::new(),
        }
    }
}

/// An accumulated `[lo, hi]` range over one column.
struct RangeBounds {
    lo: std::ops::Bound<Value>,
    hi: std::ops::Bound<Value>,
}

impl RangeBounds {
    fn new() -> RangeBounds {
        RangeBounds {
            lo: std::ops::Bound::Unbounded,
            hi: std::ops::Bound::Unbounded,
        }
    }

    /// Intersects the current bounds with `col op lit`.
    fn narrow(&mut self, op: CmpOp, lit: Value) {
        use std::ops::Bound::*;
        match op {
            CmpOp::Eq => {
                self.tighten_lo(Included(lit.clone()));
                self.tighten_hi(Included(lit));
            }
            CmpOp::Lt => self.tighten_hi(Excluded(lit)),
            CmpOp::Le => self.tighten_hi(Included(lit)),
            CmpOp::Gt => self.tighten_lo(Excluded(lit)),
            CmpOp::Ge => self.tighten_lo(Included(lit)),
            CmpOp::Ne => {}
        }
    }

    fn tighten_lo(&mut self, new: std::ops::Bound<Value>) {
        use std::ops::Bound::*;
        let stronger = match (&self.lo, &new) {
            (Unbounded, _) => true,
            (_, Unbounded) => false,
            (Included(a) | Excluded(a), Included(b)) => b > a,
            (Included(a), Excluded(b)) => b >= a,
            (Excluded(a), Excluded(b)) => b > a,
        };
        if stronger {
            self.lo = new;
        }
    }

    fn tighten_hi(&mut self, new: std::ops::Bound<Value>) {
        use std::ops::Bound::*;
        let stronger = match (&self.hi, &new) {
            (Unbounded, _) => true,
            (_, Unbounded) => false,
            (Included(a) | Excluded(a), Included(b)) => b < a,
            (Included(a), Excluded(b)) => b <= a,
            (Excluded(a), Excluded(b)) => b < a,
        };
        if stronger {
            self.hi = new;
        }
    }

    /// A representative searched key for the adaptive hash index.
    fn sample_key(&self) -> Option<Value> {
        use std::ops::Bound::*;
        match (&self.lo, &self.hi) {
            (Included(v) | Excluded(v), _) => Some(v.clone()),
            (_, Included(v) | Excluded(v)) => Some(v.clone()),
            _ => None,
        }
    }
}

/// Whether a statement modifies persistent state (the read-only gate's
/// notion of a "write"; transaction control passes so a read-only
/// connection can still scope its reads).
fn writes_state(stmt: &Statement) -> bool {
    match stmt {
        Statement::CreateTable { .. }
        | Statement::CreateIndex { .. }
        | Statement::DropTable { .. }
        | Statement::Insert { .. }
        | Statement::Update { .. }
        | Statement::Delete { .. } => true,
        // EXPLAIN ANALYZE executes its target, so it writes iff the
        // target does.
        Statement::ExplainAnalyze(inner) => writes_state(inner),
        _ => false,
    }
}

/// Renders a finished [`StatementTrace`] as the `EXPLAIN ANALYZE` result
/// set: one row per span, depth-indented, with the simulated stage
/// timings and per-span attributes.
fn render_explain_analyze(trace: &mdb_trace::StatementTrace, res: &QueryResult) -> QueryResult {
    let cols = vec![
        "span".to_string(),
        "start_us".to_string(),
        "dur_us".to_string(),
        "detail".to_string(),
    ];
    let rows = trace
        .root
        .flatten()
        .into_iter()
        .map(|(span, depth)| {
            let detail = span
                .attrs
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect::<Vec<_>>()
                .join(" ");
            vec![
                Value::Text(format!("{}{}", "  ".repeat(depth), span.name)),
                Value::Int(span.start_us as i64),
                Value::Int(span.dur_us as i64),
                Value::Text(detail),
            ]
        })
        .collect();
    QueryResult {
        columns: cols,
        rows,
        rows_examined: res.rows_examined,
        rows_affected: res.rows_affected,
    }
}

enum DmlOp {
    Insert {
        table: String,
        columns: Option<Vec<String>>,
        rows: Vec<Vec<Value>>,
    },
    Update {
        table: String,
        sets: Vec<(String, Value)>,
        where_clause: Option<Expr>,
    },
    Delete {
        table: String,
        where_clause: Option<Expr>,
    },
}

fn flatten_and<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
    match e {
        Expr::And(l, r) => {
            flatten_and(l, out);
            flatten_and(r, out);
        }
        other => out.push(other),
    }
}

fn flip(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
        other => other,
    }
}

fn arrange_columns(
    schema: &TableSchema,
    columns: &Option<Vec<String>>,
    literals: Vec<Value>,
) -> DbResult<Vec<Value>> {
    match columns {
        None => Ok(literals),
        Some(cols) => {
            if cols.len() != literals.len() {
                return Err(DbError::Schema(format!(
                    "{} columns but {} values",
                    cols.len(),
                    literals.len()
                )));
            }
            let mut values = vec![Value::Null; schema.columns.len()];
            for (c, v) in cols.iter().zip(literals) {
                let idx = schema.column_index(c)?;
                values[idx] = v;
            }
            Ok(values)
        }
    }
}

fn aggregate(func: &str, col_idx: usize, rows: &[Row]) -> DbResult<Value> {
    match func {
        "sum" => {
            let mut acc: i64 = 0;
            for r in rows {
                if let Value::Int(v) = r.values[col_idx] {
                    acc = acc.wrapping_add(v);
                }
            }
            Ok(Value::Int(acc))
        }
        "ashe_sum" => {
            // Seabed's ciphertext aggregation: wrapping u64 addition over
            // the column's bit pattern.
            let mut acc: u64 = 0;
            for r in rows {
                if let Value::Int(v) = r.values[col_idx] {
                    acc = acc.wrapping_add(v as u64);
                }
            }
            Ok(Value::Int(acc as i64))
        }
        "min" => Ok(rows
            .iter()
            .map(|r| r.values[col_idx].clone())
            .filter(|v| *v != Value::Null)
            .min()
            .unwrap_or(Value::Null)),
        "max" => Ok(rows
            .iter()
            .map(|r| r.values[col_idx].clone())
            .filter(|v| *v != Value::Null)
            .max()
            .unwrap_or(Value::Null)),
        other => Err(DbError::UnknownFunction(other.to_string())),
    }
}
