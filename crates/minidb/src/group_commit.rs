//! Group commit: a pipelined WAL durability point shared by concurrent
//! committers.
//!
//! The seed engine called `record_fsync` once per committed statement,
//! *inside* the engine lock — N concurrent committers paid N serialized
//! device waits. This module replaces that with the classic
//! leader/follower protocol (InnoDB's `log_write_up_to`, Postgres's
//! `commit_delay` group): a committer **stages** its commit LSN while it
//! still holds the engine lock, then — after releasing it — **waits**
//! for the staged LSN to become durable. The first waiter to find no
//! flush in progress becomes the leader: it (optionally) lingers up to
//! [`DbConfig::group_commit_wait_us`](crate::engine::DbConfig::group_commit_wait_us)
//! for the batch to fill, performs *one* simulated fsync for everything
//! staged so far, and wakes the followers. Committers that arrive during
//! a flush stage behind it and are picked up by the next leader — the
//! pipeline: batch k+1 fills while batch k syncs.
//!
//! The device itself is simulated ([`DbConfig::fsync_latency_us`]
//! (crate::engine::DbConfig::fsync_latency_us)), exactly like the
//! engine's statement-cost clock: the logs are in-memory `Vec`s, so
//! without a modeled device wait every fsync would be free and group
//! commit would have nothing to buy back.

use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use mdb_telemetry::{Counter, Histogram, Registry};

struct State {
    /// Highest LSN staged for durability (monotone: staging happens
    /// under the engine lock, where LSNs are allocated).
    staged_tail: u64,
    /// Commits staged since the in-progress/next batch was snapshotted.
    staged_count: u64,
    /// Everything at or below this LSN is durable.
    durable_lsn: u64,
    /// A leader is gathering or flushing a batch.
    leader_active: bool,
}

/// The shared group-commit pipeline. One per engine; committers hold an
/// `Arc` so the durability wait runs entirely **outside** the engine
/// lock — that release is where the concurrency comes from.
pub struct GroupCommitPipeline {
    state: Mutex<State>,
    cv: Condvar,
    max_batch: usize,
    wait: Duration,
    fsync_latency: Duration,
    /// Shared cell with the WAL's `wal.fsyncs` counter: a coalesced
    /// batch counts exactly one fsync (the satellite accounting fix).
    fsyncs: Counter,
    /// `wal.group_commit_batch_size` log2-histogram.
    batch_size: Histogram,
    /// `wal.group_commit_waits`: commits that blocked behind an
    /// in-progress flush (the pipeline's hand-off, not the linger).
    waits: Counter,
}

impl GroupCommitPipeline {
    /// Builds the pipeline and registers its telemetry on `registry`.
    pub fn new(
        registry: &Registry,
        max_batch: usize,
        wait_us: u64,
        fsync_latency_us: u64,
    ) -> GroupCommitPipeline {
        GroupCommitPipeline {
            state: Mutex::new(State {
                staged_tail: 0,
                staged_count: 0,
                durable_lsn: 0,
                leader_active: false,
            }),
            cv: Condvar::new(),
            max_batch: max_batch.max(1),
            wait: Duration::from_micros(wait_us),
            fsync_latency: Duration::from_micros(fsync_latency_us),
            fsyncs: registry.counter("wal.fsyncs"),
            batch_size: registry.histogram("wal.group_commit_batch_size"),
            waits: registry.counter("wal.group_commit_waits"),
        }
    }

    /// Stages a commit LSN for the next batch. Called under the engine
    /// lock (cheap: one mutex op), so staged LSNs arrive in order.
    pub fn stage(&self, lsn: u64) {
        let mut st = self.state.lock().unwrap();
        st.staged_tail = st.staged_tail.max(lsn);
        st.staged_count += 1;
        drop(st);
        // A gathering leader may be lingering for exactly this record.
        self.cv.notify_all();
    }

    /// Blocks until `lsn` is durable, becoming the flush leader if no
    /// flush is in progress. Must be called *after* the engine lock is
    /// released, with an `lsn` previously passed to [`Self::stage`].
    pub fn wait_durable(&self, lsn: u64) {
        let mut st = self.state.lock().unwrap();
        let mut counted_wait = false;
        loop {
            if st.durable_lsn >= lsn {
                return;
            }
            if st.leader_active {
                // Follower: ride out the current flush.
                if !counted_wait {
                    self.waits.inc();
                    counted_wait = true;
                }
                st = self.cv.wait(st).unwrap();
                continue;
            }
            // Leader: linger for the batch to fill, bounded by the knob.
            st.leader_active = true;
            if !self.wait.is_zero() {
                let deadline = Instant::now() + self.wait;
                while (st.staged_count as usize) < self.max_batch {
                    let left = deadline.saturating_duration_since(Instant::now());
                    if left.is_zero() {
                        break;
                    }
                    let (guard, timeout) = self.cv.wait_timeout(st, left).unwrap();
                    st = guard;
                    if timeout.timed_out() {
                        break;
                    }
                }
            }
            let flush_to = st.staged_tail;
            let batch = st.staged_count;
            st.staged_count = 0;
            drop(st);

            // The simulated device write: one wait for the whole batch.
            if !self.fsync_latency.is_zero() {
                std::thread::sleep(self.fsync_latency);
            }
            self.fsyncs.inc();
            self.batch_size.record(batch);

            st = self.state.lock().unwrap();
            st.durable_lsn = st.durable_lsn.max(flush_to);
            st.leader_active = false;
            self.cv.notify_all();
            // Loop: `flush_to >= lsn` (we staged before waiting), so the
            // next check returns unless a spurious state says otherwise.
        }
    }

    /// Highest durable LSN (test/diagnostic hook).
    pub fn durable_lsn(&self) -> u64 {
        self.state.lock().unwrap().durable_lsn
    }
}

impl std::fmt::Debug for GroupCommitPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("GroupCommitPipeline { .. }")
    }
}

/// Convenience alias used by the engine.
pub type SharedPipeline = Arc<GroupCommitPipeline>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_committer_flushes_itself() {
        let registry = Registry::new();
        let p = GroupCommitPipeline::new(&registry, 8, 0, 0);
        p.stage(5);
        p.wait_durable(5);
        assert!(p.durable_lsn() >= 5);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("wal.fsyncs"), Some(1));
        assert_eq!(snap.counter("wal.group_commit_waits"), Some(0));
    }

    #[test]
    fn concurrent_committers_coalesce_into_few_fsyncs() {
        let registry = Registry::new();
        // A real device wait forces overlap: while the leader sleeps,
        // the other committers stage behind it.
        let p = Arc::new(GroupCommitPipeline::new(&registry, 64, 100, 300));
        let lsn_alloc = Arc::new(Mutex::new(0u64));
        const THREADS: usize = 8;
        const COMMITS: usize = 10;
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let p = Arc::clone(&p);
                let alloc = Arc::clone(&lsn_alloc);
                std::thread::spawn(move || {
                    for _ in 0..COMMITS {
                        let lsn = {
                            let mut a = alloc.lock().unwrap();
                            *a += 1;
                            *a
                        };
                        p.stage(lsn);
                        p.wait_durable(lsn);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(p.durable_lsn(), (THREADS * COMMITS) as u64);
        let snap = registry.snapshot();
        let fsyncs = snap.counter("wal.fsyncs").unwrap();
        let total = (THREADS * COMMITS) as u64;
        assert!(
            fsyncs < total / 2,
            "expected coalescing: {fsyncs} fsyncs for {total} commits"
        );
        // Batch sizes were recorded and account for every commit.
        let hist = snap.histogram("wal.group_commit_batch_size").unwrap();
        assert_eq!(hist.count, fsyncs);
    }

    #[test]
    fn waiters_always_drain() {
        // Regression guard for lost wakeups: many threads, zero linger,
        // zero latency — the protocol alone must never deadlock.
        let registry = Registry::new_disabled();
        let p = Arc::new(GroupCommitPipeline::new(&registry, 4, 0, 0));
        let alloc = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..16)
            .map(|_| {
                let p = Arc::clone(&p);
                let alloc = Arc::clone(&alloc);
                std::thread::spawn(move || {
                    for _ in 0..50 {
                        let lsn = {
                            let mut a = alloc.lock().unwrap();
                            *a += 1;
                            *a
                        };
                        p.stage(lsn);
                        p.wait_durable(lsn);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(p.durable_lsn(), 16 * 50);
    }
}
