//! Slotted pages: the unit of storage, caching, and redo.
//!
//! Layout (little-endian):
//!
//! ```text
//! 0..8    page_lsn      LSN of the last change applied to this page
//! 8..10   n_slots       number of slot-directory entries
//! 10..12  free_end      offset where the cell area begins (cells grow down)
//! 12..    slot dir      n_slots × u16 cell offsets (0 = tombstone)
//! ...     free space
//! ...     cells         each cell: u16 length + payload, packed at the end
//! ```

use crate::error::{DbError, DbResult};

/// Page size in bytes, matching InnoDB's default.
pub const PAGE_SIZE: usize = 16 * 1024;

const HDR_LSN: usize = 0;
const HDR_NSLOTS: usize = 8;
const HDR_FREE_END: usize = 10;
const HDR_SIZE: usize = 12;

/// Slot index within a page.
pub type SlotNo = u16;

/// A view over one page's bytes providing slotted-record operations.
///
/// The page does not own its buffer; the buffer pool does. All mutations
/// are in-place byte edits, which is what makes redo records replayable
/// and the forensic story byte-accurate.
pub struct Page<'a> {
    buf: &'a mut [u8],
}

impl<'a> Page<'a> {
    /// Wraps a page-sized buffer.
    ///
    /// # Panics
    ///
    /// Panics if `buf` is not exactly [`PAGE_SIZE`] bytes.
    pub fn new(buf: &'a mut [u8]) -> Page<'a> {
        assert_eq!(buf.len(), PAGE_SIZE, "page buffer size");
        Page { buf }
    }

    /// Formats the buffer as an empty page.
    pub fn format(buf: &mut [u8]) {
        assert_eq!(buf.len(), PAGE_SIZE);
        buf[..HDR_SIZE].fill(0);
        let free_end = PAGE_SIZE as u16;
        buf[HDR_FREE_END..HDR_FREE_END + 2].copy_from_slice(&free_end.to_le_bytes());
    }

    fn read_u16(&self, off: usize) -> u16 {
        u16::from_le_bytes([self.buf[off], self.buf[off + 1]])
    }

    fn write_u16(&mut self, off: usize, v: u16) {
        self.buf[off..off + 2].copy_from_slice(&v.to_le_bytes());
    }

    /// The page's LSN (last change).
    pub fn lsn(&self) -> u64 {
        u64::from_le_bytes(self.buf[HDR_LSN..HDR_LSN + 8].try_into().unwrap())
    }

    /// Sets the page LSN.
    pub fn set_lsn(&mut self, lsn: u64) {
        self.buf[HDR_LSN..HDR_LSN + 8].copy_from_slice(&lsn.to_le_bytes());
    }

    /// Number of slots (including tombstones).
    pub fn n_slots(&self) -> u16 {
        self.read_u16(HDR_NSLOTS)
    }

    fn free_end(&self) -> u16 {
        self.read_u16(HDR_FREE_END)
    }

    fn slot_offset(&self, slot: SlotNo) -> u16 {
        self.read_u16(HDR_SIZE + slot as usize * 2)
    }

    fn set_slot_offset(&mut self, slot: SlotNo, off: u16) {
        self.write_u16(HDR_SIZE + slot as usize * 2, off);
    }

    /// Free bytes between the slot directory and the cell area.
    pub fn free_space(&self) -> usize {
        let dir_end = HDR_SIZE + self.n_slots() as usize * 2;
        self.free_end() as usize - dir_end
    }

    /// Whether a cell of `len` payload bytes fits (including a new slot).
    pub fn fits(&self, len: usize) -> bool {
        // 2 bytes cell length prefix + 2 bytes for a new slot entry.
        self.free_space() >= len + 4
    }

    /// Inserts a record, returning its slot.
    pub fn insert(&mut self, payload: &[u8]) -> DbResult<SlotNo> {
        if payload.len() > u16::MAX as usize {
            return Err(DbError::Storage("record too large for a page".into()));
        }
        if !self.fits(payload.len()) {
            return Err(DbError::Storage("page full".into()));
        }
        let cell_len = payload.len() + 2;
        let new_end = self.free_end() as usize - cell_len;
        self.buf[new_end..new_end + 2].copy_from_slice(&(payload.len() as u16).to_le_bytes());
        self.buf[new_end + 2..new_end + 2 + payload.len()].copy_from_slice(payload);
        self.write_u16(HDR_FREE_END, new_end as u16);
        let slot = self.n_slots();
        self.write_u16(HDR_NSLOTS, slot + 1);
        self.set_slot_offset(slot, new_end as u16);
        Ok(slot)
    }

    /// Inserts at a *specific* slot (used by redo replay to reproduce the
    /// original placement). The slot must be the next fresh slot or a
    /// tombstone.
    pub fn insert_at(&mut self, slot: SlotNo, payload: &[u8]) -> DbResult<()> {
        if slot == self.n_slots() {
            let got = self.insert(payload)?;
            debug_assert_eq!(got, slot);
            return Ok(());
        }
        if slot > self.n_slots() {
            return Err(DbError::Storage("redo insert skipped a slot".into()));
        }
        if self.slot_offset(slot) != 0 {
            return Err(DbError::Storage("redo insert into occupied slot".into()));
        }
        // Re-use the tombstoned slot with a fresh cell.
        let cell_len = payload.len() + 2;
        if self.free_space() < cell_len {
            return Err(DbError::Storage("page full".into()));
        }
        let new_end = self.free_end() as usize - cell_len;
        self.buf[new_end..new_end + 2].copy_from_slice(&(payload.len() as u16).to_le_bytes());
        self.buf[new_end + 2..new_end + 2 + payload.len()].copy_from_slice(payload);
        self.write_u16(HDR_FREE_END, new_end as u16);
        self.set_slot_offset(slot, new_end as u16);
        Ok(())
    }

    /// Reads the record in `slot`, or `None` for tombstones.
    pub fn get(&self, slot: SlotNo) -> Option<&[u8]> {
        if slot >= self.n_slots() {
            return None;
        }
        let off = self.slot_offset(slot) as usize;
        if off == 0 {
            return None;
        }
        let len = u16::from_le_bytes([self.buf[off], self.buf[off + 1]]) as usize;
        Some(&self.buf[off + 2..off + 2 + len])
    }

    /// Tombstones `slot`. The cell bytes are *not* erased — MiniDB, like
    /// InnoDB, performs no secure deletion, so deleted row images remain on
    /// the page until the space is reused (a §3/§5 leakage channel).
    pub fn delete(&mut self, slot: SlotNo) -> DbResult<()> {
        if slot >= self.n_slots() || self.slot_offset(slot) == 0 {
            return Err(DbError::Storage("delete of missing slot".into()));
        }
        self.set_slot_offset(slot, 0);
        Ok(())
    }

    /// Overwrites the record in `slot` in place. The new payload must have
    /// exactly the old length (callers fall back to delete+insert
    /// otherwise).
    pub fn update_in_place(&mut self, slot: SlotNo, payload: &[u8]) -> DbResult<()> {
        let off = if slot < self.n_slots() {
            self.slot_offset(slot) as usize
        } else {
            0
        };
        if off == 0 {
            return Err(DbError::Storage("update of missing slot".into()));
        }
        let len = u16::from_le_bytes([self.buf[off], self.buf[off + 1]]) as usize;
        if len != payload.len() {
            return Err(DbError::Storage("in-place update length mismatch".into()));
        }
        self.buf[off + 2..off + 2 + len].copy_from_slice(payload);
        Ok(())
    }

    /// Iterates live `(slot, payload)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SlotNo, &[u8])> {
        (0..self.n_slots()).filter_map(move |s| self.get(s).map(|p| (s, p)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh() -> Vec<u8> {
        let mut buf = vec![0u8; PAGE_SIZE];
        Page::format(&mut buf);
        buf
    }

    #[test]
    fn insert_get_round_trip() {
        let mut buf = fresh();
        let mut p = Page::new(&mut buf);
        let a = p.insert(b"hello").unwrap();
        let b = p.insert(b"world!").unwrap();
        assert_eq!(p.get(a).unwrap(), b"hello");
        assert_eq!(p.get(b).unwrap(), b"world!");
        assert_eq!(p.iter().count(), 2);
    }

    #[test]
    fn delete_leaves_bytes_behind() {
        let mut buf = fresh();
        {
            let mut p = Page::new(&mut buf);
            let s = p.insert(b"SECRET-ROW-IMAGE").unwrap();
            p.delete(s).unwrap();
            assert!(p.get(s).is_none());
            assert_eq!(p.iter().count(), 0);
        }
        // The ghost of the record is still in the raw page bytes.
        let raw = buf.windows(16).any(|w| w == b"SECRET-ROW-IMAGE");
        assert!(raw, "deleted record image must remain on the page");
    }

    #[test]
    fn update_in_place_same_length_only() {
        let mut buf = fresh();
        let mut p = Page::new(&mut buf);
        let s = p.insert(b"aaaa").unwrap();
        p.update_in_place(s, b"bbbb").unwrap();
        assert_eq!(p.get(s).unwrap(), b"bbbb");
        assert!(p.update_in_place(s, b"ccc").is_err());
    }

    #[test]
    fn fills_up_and_reports_full() {
        let mut buf = fresh();
        let mut p = Page::new(&mut buf);
        let payload = vec![7u8; 1000];
        let mut count = 0;
        while p.fits(payload.len()) {
            p.insert(&payload).unwrap();
            count += 1;
        }
        assert!(count >= 15, "a 16K page should hold >= 15 1K records");
        assert!(p.insert(&payload).is_err());
        // Small records may still fit.
        assert!(p.fits(4));
    }

    #[test]
    fn insert_at_replays_tombstoned_slot() {
        let mut buf = fresh();
        let mut p = Page::new(&mut buf);
        let a = p.insert(b"one").unwrap();
        p.insert(b"two").unwrap();
        p.delete(a).unwrap();
        p.insert_at(a, b"one-again").unwrap();
        assert_eq!(p.get(a).unwrap(), b"one-again");
        assert!(p.insert_at(a, b"occupied").is_err());
        assert!(p.insert_at(99, b"gap").is_err());
    }

    #[test]
    fn lsn_round_trip() {
        let mut buf = fresh();
        let mut p = Page::new(&mut buf);
        assert_eq!(p.lsn(), 0);
        p.set_lsn(0xABCD_EF01);
        assert_eq!(p.lsn(), 0xABCD_EF01);
    }

    #[test]
    fn rejects_oversized_record() {
        let mut buf = fresh();
        let mut p = Page::new(&mut buf);
        assert!(p.insert(&vec![0u8; PAGE_SIZE]).is_err());
    }
}
