//! Slotted pages: the unit of storage, caching, and redo.
//!
//! Layout (little-endian):
//!
//! ```text
//! 0..8    page_lsn      LSN of the last change applied to this page
//! 8..10   n_slots       number of slot-directory entries
//! 10..12  free_end      offset where the cell area begins (cells grow down)
//! 12..13  syn_valid     1 = the synopsis below covers every live cell
//! 13..14  syn_ncols     number of synopsis entries in use
//! 14..16  syn_rows      live row count the synopsis reflects
//! 16..88  synopsis      4 × (col u16, min i64, max i64) zone-map entries
//! 88..    slot dir      n_slots × u16 cell offsets (0 = tombstone)
//! ...     free space
//! ...     cells         each cell: u16 length + payload, packed at the end
//! ```
//!
//! The synopsis is the page's **zone map**: per-column min/max over the
//! INT values of the live rows, plus a live-row count. The scan executor
//! uses it to skip pages that cannot match a range predicate without
//! decoding them. It is deliberately *conservative*: deletes and
//! narrowing updates leave the bounds wider than the live data, which is
//! always sound for pruning. Byte-level mutators ([`Page::insert`],
//! [`Page::insert_at`], [`Page::update_in_place`], [`Page::delete`])
//! know nothing about row encodings, so they clear `syn_valid`; the
//! value-aware table-heap layer restores it, and scans lazily rebuild
//! synopses that raw paths (redo replay) left invalid.
//!
//! Forensics note (§3/§5 of the paper): the synopsis is plaintext page
//! metadata. Every flushed heap page hands an attacker the min/max of
//! its rows' indexable columns — even when the row payload cells
//! themselves carry ciphertext.

use std::ops::Bound;

use crate::error::{DbError, DbResult};

/// Page size in bytes, matching InnoDB's default.
pub const PAGE_SIZE: usize = 16 * 1024;

const HDR_LSN: usize = 0;
const HDR_NSLOTS: usize = 8;
const HDR_FREE_END: usize = 10;
const HDR_SYN_VALID: usize = 12;
const HDR_SYN_NCOLS: usize = 13;
const HDR_SYN_ROWS: usize = 14;
const HDR_SYN_ENTRIES: usize = 16;
/// Bytes per synopsis entry: column ordinal + min + max.
const SYN_ENTRY_SIZE: usize = 2 + 8 + 8;
/// Maximum number of columns a page synopsis tracks (the first
/// [`SYN_MAX_COLS`] INT columns that appear in this page's rows).
pub const SYN_MAX_COLS: usize = 4;
const HDR_SIZE: usize = HDR_SYN_ENTRIES + SYN_MAX_COLS * SYN_ENTRY_SIZE;

/// Slot index within a page.
pub type SlotNo = u16;

/// Min/max statistics for one column within one page.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ColumnStats {
    /// Column ordinal in schema order.
    pub col: u16,
    /// Smallest live INT value seen (conservative lower bound).
    pub min: i64,
    /// Largest live INT value seen (conservative upper bound).
    pub max: i64,
}

/// A decoded page synopsis (zone map): live-row count plus per-column
/// min/max bounds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PageSynopsis {
    /// Live rows on the page.
    pub rows: u16,
    /// Per-column bounds, in first-seen order.
    pub cols: Vec<ColumnStats>,
}

impl PageSynopsis {
    /// Stats for one column, if tracked.
    pub fn stats(&self, col: u16) -> Option<&ColumnStats> {
        self.cols.iter().find(|c| c.col == col)
    }

    /// Whether the page provably holds no row with `col` inside
    /// `(lo, hi)`. Untracked columns never exclude (the column may be
    /// non-INT, all-NULL, or beyond the synopsis capacity).
    pub fn excludes(&self, col: u16, lo: &Bound<i64>, hi: &Bound<i64>) -> bool {
        if self.rows == 0 {
            return true;
        }
        let Some(s) = self.stats(col) else {
            return false;
        };
        let below = match lo {
            Bound::Included(v) => s.max < *v,
            Bound::Excluded(v) => s.max <= *v,
            Bound::Unbounded => false,
        };
        let above = match hi {
            Bound::Included(v) => s.min > *v,
            Bound::Excluded(v) => s.min >= *v,
            Bound::Unbounded => false,
        };
        below || above
    }
}

fn syn_decode(buf: &[u8]) -> Option<PageSynopsis> {
    if buf[HDR_SYN_VALID] != 1 {
        return None;
    }
    let ncols = (buf[HDR_SYN_NCOLS] as usize).min(SYN_MAX_COLS);
    let rows = u16::from_le_bytes([buf[HDR_SYN_ROWS], buf[HDR_SYN_ROWS + 1]]);
    let mut cols = Vec::with_capacity(ncols);
    for i in 0..ncols {
        let off = HDR_SYN_ENTRIES + i * SYN_ENTRY_SIZE;
        cols.push(ColumnStats {
            col: u16::from_le_bytes([buf[off], buf[off + 1]]),
            min: i64::from_le_bytes(buf[off + 2..off + 10].try_into().unwrap()),
            max: i64::from_le_bytes(buf[off + 10..off + 18].try_into().unwrap()),
        });
    }
    Some(PageSynopsis { rows, cols })
}

/// A view over one page's bytes providing slotted-record operations.
///
/// The page does not own its buffer; the buffer pool does. All mutations
/// are in-place byte edits, which is what makes redo records replayable
/// and the forensic story byte-accurate.
pub struct Page<'a> {
    buf: &'a mut [u8],
}

impl<'a> Page<'a> {
    /// Wraps a page-sized buffer.
    ///
    /// # Panics
    ///
    /// Panics if `buf` is not exactly [`PAGE_SIZE`] bytes.
    pub fn new(buf: &'a mut [u8]) -> Page<'a> {
        assert_eq!(buf.len(), PAGE_SIZE, "page buffer size");
        Page { buf }
    }

    /// Formats the buffer as an empty page (with an empty, valid
    /// synopsis: zero rows, zero tracked columns).
    pub fn format(buf: &mut [u8]) {
        assert_eq!(buf.len(), PAGE_SIZE);
        buf[..HDR_SIZE].fill(0);
        let free_end = PAGE_SIZE as u16;
        buf[HDR_FREE_END..HDR_FREE_END + 2].copy_from_slice(&free_end.to_le_bytes());
        buf[HDR_SYN_VALID] = 1;
    }

    fn read_u16(&self, off: usize) -> u16 {
        u16::from_le_bytes([self.buf[off], self.buf[off + 1]])
    }

    fn write_u16(&mut self, off: usize, v: u16) {
        self.buf[off..off + 2].copy_from_slice(&v.to_le_bytes());
    }

    /// The page's LSN (last change).
    pub fn lsn(&self) -> u64 {
        u64::from_le_bytes(self.buf[HDR_LSN..HDR_LSN + 8].try_into().unwrap())
    }

    /// Sets the page LSN.
    pub fn set_lsn(&mut self, lsn: u64) {
        self.buf[HDR_LSN..HDR_LSN + 8].copy_from_slice(&lsn.to_le_bytes());
    }

    /// Number of slots (including tombstones).
    pub fn n_slots(&self) -> u16 {
        self.read_u16(HDR_NSLOTS)
    }

    fn free_end(&self) -> u16 {
        self.read_u16(HDR_FREE_END)
    }

    fn slot_offset(&self, slot: SlotNo) -> u16 {
        self.read_u16(HDR_SIZE + slot as usize * 2)
    }

    fn set_slot_offset(&mut self, slot: SlotNo, off: u16) {
        self.write_u16(HDR_SIZE + slot as usize * 2, off);
    }

    /// Free bytes between the slot directory and the cell area.
    pub fn free_space(&self) -> usize {
        let dir_end = HDR_SIZE + self.n_slots() as usize * 2;
        self.free_end() as usize - dir_end
    }

    /// Whether a cell of `len` payload bytes fits (including a new slot).
    pub fn fits(&self, len: usize) -> bool {
        // 2 bytes cell length prefix + 2 bytes for a new slot entry.
        self.free_space() >= len + 4
    }

    /// Inserts a record, returning its slot.
    pub fn insert(&mut self, payload: &[u8]) -> DbResult<SlotNo> {
        if payload.len() > u16::MAX as usize {
            return Err(DbError::Storage("record too large for a page".into()));
        }
        if !self.fits(payload.len()) {
            return Err(DbError::Storage("page full".into()));
        }
        let cell_len = payload.len() + 2;
        let new_end = self.free_end() as usize - cell_len;
        self.buf[new_end..new_end + 2].copy_from_slice(&(payload.len() as u16).to_le_bytes());
        self.buf[new_end + 2..new_end + 2 + payload.len()].copy_from_slice(payload);
        self.write_u16(HDR_FREE_END, new_end as u16);
        let slot = self.n_slots();
        self.write_u16(HDR_NSLOTS, slot + 1);
        self.set_slot_offset(slot, new_end as u16);
        self.buf[HDR_SYN_VALID] = 0;
        Ok(slot)
    }

    /// Inserts at a *specific* slot (used by redo replay to reproduce the
    /// original placement). The slot must be the next fresh slot or a
    /// tombstone.
    pub fn insert_at(&mut self, slot: SlotNo, payload: &[u8]) -> DbResult<()> {
        if slot == self.n_slots() {
            let got = self.insert(payload)?;
            debug_assert_eq!(got, slot);
            return Ok(());
        }
        if slot > self.n_slots() {
            return Err(DbError::Storage("redo insert skipped a slot".into()));
        }
        if self.slot_offset(slot) != 0 {
            return Err(DbError::Storage("redo insert into occupied slot".into()));
        }
        // Re-use the tombstoned slot with a fresh cell.
        let cell_len = payload.len() + 2;
        if self.free_space() < cell_len {
            return Err(DbError::Storage("page full".into()));
        }
        let new_end = self.free_end() as usize - cell_len;
        self.buf[new_end..new_end + 2].copy_from_slice(&(payload.len() as u16).to_le_bytes());
        self.buf[new_end + 2..new_end + 2 + payload.len()].copy_from_slice(payload);
        self.write_u16(HDR_FREE_END, new_end as u16);
        self.set_slot_offset(slot, new_end as u16);
        self.buf[HDR_SYN_VALID] = 0;
        Ok(())
    }

    /// Reads the record in `slot`, or `None` for tombstones.
    pub fn get(&self, slot: SlotNo) -> Option<&[u8]> {
        if slot >= self.n_slots() {
            return None;
        }
        let off = self.slot_offset(slot) as usize;
        if off == 0 {
            return None;
        }
        let len = u16::from_le_bytes([self.buf[off], self.buf[off + 1]]) as usize;
        Some(&self.buf[off + 2..off + 2 + len])
    }

    /// Tombstones `slot`. The cell bytes are *not* erased — MiniDB, like
    /// InnoDB, performs no secure deletion, so deleted row images remain on
    /// the page until the space is reused (a §3/§5 leakage channel).
    pub fn delete(&mut self, slot: SlotNo) -> DbResult<()> {
        if slot >= self.n_slots() || self.slot_offset(slot) == 0 {
            return Err(DbError::Storage("delete of missing slot".into()));
        }
        self.set_slot_offset(slot, 0);
        self.buf[HDR_SYN_VALID] = 0;
        Ok(())
    }

    /// Overwrites the record in `slot` in place. The new payload must have
    /// exactly the old length (callers fall back to delete+insert
    /// otherwise).
    pub fn update_in_place(&mut self, slot: SlotNo, payload: &[u8]) -> DbResult<()> {
        let off = if slot < self.n_slots() {
            self.slot_offset(slot) as usize
        } else {
            0
        };
        if off == 0 {
            return Err(DbError::Storage("update of missing slot".into()));
        }
        let len = u16::from_le_bytes([self.buf[off], self.buf[off + 1]]) as usize;
        if len != payload.len() {
            return Err(DbError::Storage("in-place update length mismatch".into()));
        }
        self.buf[off + 2..off + 2 + len].copy_from_slice(payload);
        self.buf[HDR_SYN_VALID] = 0;
        Ok(())
    }

    /// Iterates live `(slot, payload)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SlotNo, &[u8])> {
        (0..self.n_slots()).filter_map(move |s| self.get(s).map(|p| (s, p)))
    }

    // ---------------- synopsis (zone map) maintenance ----------------

    /// Whether the persisted synopsis covers every live cell. Raw byte
    /// mutators clear this; the value-aware heap layer restores it.
    pub fn synopsis_valid(&self) -> bool {
        self.buf[HDR_SYN_VALID] == 1
    }

    /// Marks the synopsis valid (or not). Only the table-heap layer,
    /// which knows the row values, may set this to `true`.
    pub fn set_synopsis_valid(&mut self, valid: bool) {
        self.buf[HDR_SYN_VALID] = valid as u8;
    }

    /// Decodes the synopsis, or `None` when it is invalid.
    pub fn synopsis(&self) -> Option<PageSynopsis> {
        syn_decode(self.buf)
    }

    /// Resets the synopsis to empty-and-valid (start of a rebuild).
    pub fn synopsis_reset(&mut self) {
        self.buf[HDR_SYN_VALID] = 1;
        self.buf[HDR_SYN_NCOLS] = 0;
        self.write_u16(HDR_SYN_ROWS, 0);
    }

    fn synopsis_widen(&mut self, cols: &[(u16, i64)]) {
        for &(col, v) in cols {
            let ncols = self.buf[HDR_SYN_NCOLS] as usize;
            let mut found = false;
            for i in 0..ncols.min(SYN_MAX_COLS) {
                let off = HDR_SYN_ENTRIES + i * SYN_ENTRY_SIZE;
                if self.read_u16(off) == col {
                    let min = i64::from_le_bytes(self.buf[off + 2..off + 10].try_into().unwrap());
                    let max = i64::from_le_bytes(self.buf[off + 10..off + 18].try_into().unwrap());
                    if v < min {
                        self.buf[off + 2..off + 10].copy_from_slice(&v.to_le_bytes());
                    }
                    if v > max {
                        self.buf[off + 10..off + 18].copy_from_slice(&v.to_le_bytes());
                    }
                    found = true;
                    break;
                }
            }
            if !found && ncols < SYN_MAX_COLS {
                let off = HDR_SYN_ENTRIES + ncols * SYN_ENTRY_SIZE;
                self.write_u16(off, col);
                self.buf[off + 2..off + 10].copy_from_slice(&v.to_le_bytes());
                self.buf[off + 10..off + 18].copy_from_slice(&v.to_le_bytes());
                self.buf[HDR_SYN_NCOLS] = (ncols + 1) as u8;
            }
            // Columns past the capacity simply go untracked (and can
            // therefore never prune).
        }
    }

    /// Accounts for one inserted row: widens the tracked bounds by its
    /// INT values and bumps the live-row count.
    pub fn synopsis_note_insert(&mut self, cols: &[(u16, i64)]) {
        self.synopsis_widen(cols);
        let rows = self.read_u16(HDR_SYN_ROWS).saturating_add(1);
        self.write_u16(HDR_SYN_ROWS, rows);
    }

    /// Accounts for an in-place update: widens bounds by the new values.
    /// The old values stay inside the bounds — conservative but sound.
    pub fn synopsis_note_update(&mut self, cols: &[(u16, i64)]) {
        self.synopsis_widen(cols);
    }

    /// Accounts for one deleted row: the bounds stay (a superset is
    /// sound), only the live-row count drops.
    pub fn synopsis_note_delete(&mut self) {
        let rows = self.read_u16(HDR_SYN_ROWS).saturating_sub(1);
        self.write_u16(HDR_SYN_ROWS, rows);
    }
}

/// A read-only view over a page buffer. Unlike [`Page`], it borrows the
/// bytes immutably, so scan paths can decode straight out of the buffer
/// pool frame without copying the page first.
pub struct PageRef<'a> {
    buf: &'a [u8],
}

impl<'a> PageRef<'a> {
    /// Wraps a page-sized buffer.
    ///
    /// # Panics
    ///
    /// Panics if `buf` is not exactly [`PAGE_SIZE`] bytes.
    pub fn new(buf: &'a [u8]) -> PageRef<'a> {
        assert_eq!(buf.len(), PAGE_SIZE, "page buffer size");
        PageRef { buf }
    }

    fn read_u16(&self, off: usize) -> u16 {
        u16::from_le_bytes([self.buf[off], self.buf[off + 1]])
    }

    /// Number of slots (including tombstones).
    pub fn n_slots(&self) -> u16 {
        self.read_u16(HDR_NSLOTS)
    }

    /// Reads the record in `slot`, or `None` for tombstones.
    pub fn get(&self, slot: SlotNo) -> Option<&'a [u8]> {
        if slot >= self.n_slots() {
            return None;
        }
        let off = self.read_u16(HDR_SIZE + slot as usize * 2) as usize;
        if off == 0 {
            return None;
        }
        let len = u16::from_le_bytes([self.buf[off], self.buf[off + 1]]) as usize;
        Some(&self.buf[off + 2..off + 2 + len])
    }

    /// Iterates live `(slot, payload)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SlotNo, &'a [u8])> + '_ {
        (0..self.n_slots()).filter_map(move |s| self.get(s).map(|p| (s, p)))
    }

    /// Free bytes between the slot directory and the cell area.
    pub fn free_space(&self) -> usize {
        let dir_end = HDR_SIZE + self.n_slots() as usize * 2;
        self.read_u16(HDR_FREE_END) as usize - dir_end
    }

    /// Whether a cell of `len` payload bytes fits (including a new slot).
    pub fn fits(&self, len: usize) -> bool {
        self.free_space() >= len + 4
    }

    /// Whether the persisted synopsis covers every live cell.
    pub fn synopsis_valid(&self) -> bool {
        self.buf[HDR_SYN_VALID] == 1
    }

    /// Decodes the synopsis, or `None` when it is invalid.
    pub fn synopsis(&self) -> Option<PageSynopsis> {
        syn_decode(self.buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh() -> Vec<u8> {
        let mut buf = vec![0u8; PAGE_SIZE];
        Page::format(&mut buf);
        buf
    }

    #[test]
    fn insert_get_round_trip() {
        let mut buf = fresh();
        let mut p = Page::new(&mut buf);
        let a = p.insert(b"hello").unwrap();
        let b = p.insert(b"world!").unwrap();
        assert_eq!(p.get(a).unwrap(), b"hello");
        assert_eq!(p.get(b).unwrap(), b"world!");
        assert_eq!(p.iter().count(), 2);
    }

    #[test]
    fn delete_leaves_bytes_behind() {
        let mut buf = fresh();
        {
            let mut p = Page::new(&mut buf);
            let s = p.insert(b"SECRET-ROW-IMAGE").unwrap();
            p.delete(s).unwrap();
            assert!(p.get(s).is_none());
            assert_eq!(p.iter().count(), 0);
        }
        // The ghost of the record is still in the raw page bytes.
        let raw = buf.windows(16).any(|w| w == b"SECRET-ROW-IMAGE");
        assert!(raw, "deleted record image must remain on the page");
    }

    #[test]
    fn update_in_place_same_length_only() {
        let mut buf = fresh();
        let mut p = Page::new(&mut buf);
        let s = p.insert(b"aaaa").unwrap();
        p.update_in_place(s, b"bbbb").unwrap();
        assert_eq!(p.get(s).unwrap(), b"bbbb");
        assert!(p.update_in_place(s, b"ccc").is_err());
    }

    #[test]
    fn fills_up_and_reports_full() {
        let mut buf = fresh();
        let mut p = Page::new(&mut buf);
        let payload = vec![7u8; 1000];
        let mut count = 0;
        while p.fits(payload.len()) {
            p.insert(&payload).unwrap();
            count += 1;
        }
        assert!(count >= 15, "a 16K page should hold >= 15 1K records");
        assert!(p.insert(&payload).is_err());
        // Small records may still fit.
        assert!(p.fits(4));
    }

    #[test]
    fn insert_at_replays_tombstoned_slot() {
        let mut buf = fresh();
        let mut p = Page::new(&mut buf);
        let a = p.insert(b"one").unwrap();
        p.insert(b"two").unwrap();
        p.delete(a).unwrap();
        p.insert_at(a, b"one-again").unwrap();
        assert_eq!(p.get(a).unwrap(), b"one-again");
        assert!(p.insert_at(a, b"occupied").is_err());
        assert!(p.insert_at(99, b"gap").is_err());
    }

    #[test]
    fn lsn_round_trip() {
        let mut buf = fresh();
        let mut p = Page::new(&mut buf);
        assert_eq!(p.lsn(), 0);
        p.set_lsn(0xABCD_EF01);
        assert_eq!(p.lsn(), 0xABCD_EF01);
    }

    #[test]
    fn rejects_oversized_record() {
        let mut buf = fresh();
        let mut p = Page::new(&mut buf);
        assert!(p.insert(&vec![0u8; PAGE_SIZE]).is_err());
    }

    #[test]
    fn raw_mutations_invalidate_synopsis() {
        let mut buf = fresh();
        let mut p = Page::new(&mut buf);
        assert!(p.synopsis_valid(), "fresh page starts valid and empty");
        let s = p.insert(b"row").unwrap();
        assert!(!p.synopsis_valid(), "raw insert must invalidate");
        p.set_synopsis_valid(true);
        p.update_in_place(s, b"ROW").unwrap();
        assert!(!p.synopsis_valid(), "raw update must invalidate");
        p.set_synopsis_valid(true);
        p.delete(s).unwrap();
        assert!(!p.synopsis_valid(), "raw delete must invalidate");
    }

    #[test]
    fn synopsis_tracks_min_max_and_rows() {
        let mut buf = fresh();
        let mut p = Page::new(&mut buf);
        p.insert(b"a").unwrap();
        p.synopsis_note_insert(&[(0, 50), (1, -3)]);
        p.set_synopsis_valid(true);
        p.insert(b"b").unwrap();
        p.synopsis_note_insert(&[(0, 10), (1, 7)]);
        p.set_synopsis_valid(true);
        let syn = p.synopsis().expect("valid");
        assert_eq!(syn.rows, 2);
        assert_eq!(
            syn.stats(0).unwrap(),
            &ColumnStats {
                col: 0,
                min: 10,
                max: 50
            }
        );
        assert_eq!(
            syn.stats(1).unwrap(),
            &ColumnStats {
                col: 1,
                min: -3,
                max: 7
            }
        );
        // Update widens, delete only drops the count.
        p.synopsis_note_update(&[(0, 99)]);
        p.synopsis_note_delete();
        let syn = p.synopsis().unwrap();
        assert_eq!(syn.rows, 1);
        assert_eq!(syn.stats(0).unwrap().max, 99);
        assert_eq!(syn.stats(0).unwrap().min, 10);
    }

    #[test]
    fn synopsis_capacity_caps_tracked_columns() {
        let mut buf = fresh();
        let mut p = Page::new(&mut buf);
        let cols: Vec<(u16, i64)> = (0..8).map(|i| (i as u16, i)).collect();
        p.synopsis_note_insert(&cols);
        let syn = p.synopsis().unwrap();
        assert_eq!(syn.cols.len(), SYN_MAX_COLS);
        assert!(syn.stats(7).is_none(), "columns past capacity go untracked");
        // Untracked columns never exclude.
        use std::ops::Bound::*;
        assert!(!syn.excludes(7, &Included(100), &Unbounded));
    }

    #[test]
    fn excludes_respects_bound_kinds() {
        use std::ops::Bound::*;
        let syn = PageSynopsis {
            rows: 5,
            cols: vec![ColumnStats {
                col: 0,
                min: 10,
                max: 20,
            }],
        };
        // Disjoint above and below.
        assert!(syn.excludes(0, &Included(21), &Unbounded));
        assert!(syn.excludes(0, &Unbounded, &Included(9)));
        // Touching endpoints: inclusive overlaps, exclusive does not.
        assert!(!syn.excludes(0, &Included(20), &Unbounded));
        assert!(syn.excludes(0, &Excluded(20), &Unbounded));
        assert!(!syn.excludes(0, &Unbounded, &Included(10)));
        assert!(syn.excludes(0, &Unbounded, &Excluded(10)));
        // Overlapping range keeps the page.
        assert!(!syn.excludes(0, &Included(15), &Included(30)));
        // Empty pages always prune.
        let empty = PageSynopsis {
            rows: 0,
            cols: vec![],
        };
        assert!(empty.excludes(0, &Unbounded, &Unbounded));
    }

    #[test]
    fn page_ref_reads_match_page() {
        let mut buf = fresh();
        {
            let mut p = Page::new(&mut buf);
            p.insert(b"alpha").unwrap();
            let s = p.insert(b"beta").unwrap();
            p.insert(b"gamma").unwrap();
            p.delete(s).unwrap();
            p.synopsis_reset();
            p.synopsis_note_insert(&[(0, 4)]);
            p.synopsis_note_insert(&[(0, 9)]);
        }
        let r = PageRef::new(&buf);
        assert_eq!(r.n_slots(), 3);
        let live: Vec<&[u8]> = r.iter().map(|(_, b)| b).collect();
        assert_eq!(live, vec![b"alpha".as_ref(), b"gamma".as_ref()]);
        assert!(r.synopsis_valid());
        assert_eq!(r.synopsis().unwrap().stats(0).unwrap().max, 9);
    }
}
