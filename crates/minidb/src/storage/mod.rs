//! Storage engine: slotted pages, the buffer pool, table heaps, and
//! B+ tree indexes.

pub mod btree;
pub mod bufpool;
pub mod page;
pub mod table;

pub use btree::{BTree, SearchResult};
pub use bufpool::{BufferPool, PageKey, DUMP_FILE};
pub use page::{Page, SlotNo, PAGE_SIZE};
pub use table::{TableHeap, UpdatePlacement};
