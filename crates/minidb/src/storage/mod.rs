//! Storage engine: slotted pages, the buffer pool, table heaps, and
//! B+ tree indexes.

pub mod btree;
pub mod bufpool;
pub mod page;
pub mod shardpool;
pub mod table;

pub use btree::{BTree, SearchResult};
pub use bufpool::{BufferPool, PageKey, ACCESS_COUNTS_CAP, DUMP_FILE};
pub use page::{ColumnStats, Page, PageRef, PageSynopsis, SlotNo, PAGE_SIZE, SYN_MAX_COLS};
pub use shardpool::{PageBacking, ShardedBufferPool, DEFAULT_SHARDS};
pub use table::{TableHeap, UpdatePlacement};
