//! Table heaps: rows stored in slotted pages, addressed by row id.
//!
//! The heap is the layer that understands row *values*, so it owns
//! zone-map (page synopsis) maintenance: raw page mutators invalidate
//! the persisted synopsis, and the heap — which knows each row's INT
//! column values — immediately restores it on insert/update/delete.
//! Pages whose synopses went stale through value-blind paths (redo
//! replay) are rebuilt lazily the first time a pruning scan consults
//! them. The heap also keeps an in-memory mirror of every synopsis it
//! has touched ([`TableHeap::zone_map`]); pruning reads the mirror
//! first, so a skipped page costs a `HashMap` probe, not a buffer-pool
//! page load. That mirror is itself snapshot state — see
//! `snapshot::MemoryImage::zone_maps`.

use std::collections::HashMap;
use std::ops::Bound;

use crate::error::{DbError, DbResult};
use crate::row::{Row, RowId};
use crate::storage::page::{Page, PageRef, PageSynopsis, SlotNo};
use crate::storage::shardpool::ShardedBufferPool;
use crate::value::Value;
use crate::vdisk::VDisk;

/// Where an update landed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UpdatePlacement {
    /// The new image overwrote the old bytes (same length).
    InPlace {
        /// Page holding the row.
        page_no: u32,
        /// Slot within the page.
        slot: SlotNo,
    },
    /// The row moved: tombstoned at `from`, re-inserted at `to`.
    Moved {
        /// Old location.
        from: (u32, SlotNo),
        /// New location.
        to: (u32, SlotNo),
    },
}

/// The INT columns of a row as `(ordinal, value)` pairs — the facts a
/// page synopsis tracks. NULLs are skipped: a NULL never satisfies a
/// comparison, so bounds that ignore it are still sound for pruning.
fn int_cols(row: &Row) -> Vec<(u16, i64)> {
    row.values
        .iter()
        .enumerate()
        .filter_map(|(i, v)| match v {
            Value::Int(n) => Some((i as u16, *n)),
            _ => None,
        })
        .collect()
}

/// A table heap plus its in-memory row locator (rebuilt on open).
pub struct TableHeap {
    /// Tablespace file name.
    pub file: String,
    locations: HashMap<RowId, (u32, SlotNo)>,
    next_row_id: RowId,
    /// Whether this heap maintains page synopses (`DbConfig::zone_maps_enabled`).
    zone_maps: bool,
    /// In-memory mirror of page synopses, by page number. Populated by
    /// DML maintenance and by pruning scans (header adopt / lazy
    /// rebuild); entries drop whenever a page's persisted synopsis goes
    /// invalid through a value-blind path.
    zonemap: HashMap<u32, PageSynopsis>,
}

impl TableHeap {
    /// Creates a new empty heap with one allocated page.
    pub fn create(
        bufpool: &ShardedBufferPool,
        vdisk: &mut VDisk,
        file: &str,
    ) -> DbResult<TableHeap> {
        bufpool.allocate_page(vdisk, file);
        Ok(TableHeap {
            file: file.to_string(),
            locations: HashMap::new(),
            next_row_id: 1,
            zone_maps: true,
            zonemap: HashMap::new(),
        })
    }

    /// Opens an existing heap, rebuilding the locator by scanning pages
    /// (also the recovery path — locator state is volatile).
    pub fn open(bufpool: &ShardedBufferPool, vdisk: &mut VDisk, file: &str) -> DbResult<TableHeap> {
        let mut heap = TableHeap {
            file: file.to_string(),
            locations: HashMap::new(),
            next_row_id: 1,
            zone_maps: true,
            zonemap: HashMap::new(),
        };
        let n_pages = ShardedBufferPool::page_count(vdisk, file);
        for page_no in 0..n_pages {
            let entries = bufpool.with_page(vdisk, file, page_no, |buf| {
                PageRef::new(buf)
                    .iter()
                    .map(|(slot, bytes)| (slot, bytes.to_vec()))
                    .collect::<Vec<_>>()
            })?;
            for (slot, bytes) in entries {
                let row = Row::decode(&bytes)?;
                heap.locations.insert(row.id, (page_no, slot));
                heap.next_row_id = heap.next_row_id.max(row.id + 1);
            }
        }
        Ok(heap)
    }

    /// Enables or disables synopsis maintenance. Disabling clears the
    /// mirror; pages touched while disabled stay invalid on disk, and
    /// re-enabling relies on lazy rebuild to recover them.
    pub fn set_zone_maps(&mut self, enabled: bool) {
        self.zone_maps = enabled;
        if !enabled {
            self.zonemap.clear();
        }
    }

    /// The in-memory zone-map mirror (page number → synopsis).
    pub fn zone_map(&self) -> &HashMap<u32, PageSynopsis> {
        &self.zonemap
    }

    /// Records the outcome of a page mutation in the mirror: a valid
    /// synopsis replaces the entry, an invalid one drops it.
    fn note_page(&mut self, page_no: u32, syn: Option<PageSynopsis>) {
        match syn {
            Some(s) if self.zone_maps => {
                self.zonemap.insert(page_no, s);
            }
            _ => {
                self.zonemap.remove(&page_no);
            }
        }
    }

    /// Allocates the next row id.
    pub fn allocate_row_id(&mut self) -> RowId {
        let id = self.next_row_id;
        self.next_row_id += 1;
        id
    }

    /// Number of live rows.
    pub fn row_count(&self) -> usize {
        self.locations.len()
    }

    /// Location of a row, if it exists.
    pub fn locate(&self, row_id: RowId) -> Option<(u32, SlotNo)> {
        self.locations.get(&row_id).copied()
    }

    /// Inserts an encoded row, returning its placement. The row's id must
    /// be fresh (allocate via [`Self::allocate_row_id`]).
    pub fn insert(
        &mut self,
        bufpool: &ShardedBufferPool,
        vdisk: &mut VDisk,
        row: &Row,
    ) -> DbResult<(u32, SlotNo)> {
        if self.locations.contains_key(&row.id) {
            return Err(DbError::Storage(format!(
                "row id {} already exists",
                row.id
            )));
        }
        let bytes = row.encode();
        let last = ShardedBufferPool::page_count(vdisk, &self.file).saturating_sub(1);
        let fits = bufpool.with_page(vdisk, &self.file, last, |buf| {
            PageRef::new(buf).fits(bytes.len())
        })?;
        let page_no = if fits {
            last
        } else {
            bufpool.allocate_page(vdisk, &self.file)
        };
        let zm = self.zone_maps;
        let cols = if zm { int_cols(row) } else { Vec::new() };
        let (slot, syn) = bufpool.with_page_mut(vdisk, &self.file, page_no, |buf| {
            let mut p = Page::new(buf);
            let was_valid = p.synopsis_valid();
            let slot = p.insert(&bytes)?;
            if zm && was_valid {
                p.synopsis_note_insert(&cols);
                p.set_synopsis_valid(true);
            }
            Ok::<_, DbError>((slot, p.synopsis()))
        })??;
        self.note_page(page_no, syn);
        self.locations.insert(row.id, (page_no, slot));
        self.next_row_id = self.next_row_id.max(row.id + 1);
        Ok((page_no, slot))
    }

    /// Reads a row by id.
    pub fn read(
        &self,
        bufpool: &ShardedBufferPool,
        vdisk: &mut VDisk,
        row_id: RowId,
    ) -> DbResult<Row> {
        let (page_no, slot) = self
            .locate(row_id)
            .ok_or_else(|| DbError::Storage(format!("row {row_id} not found")))?;
        let row = bufpool.with_page(vdisk, &self.file, page_no, |buf| {
            PageRef::new(buf).get(slot).map(Row::decode)
        })?;
        row.ok_or_else(|| DbError::Storage("locator points at tombstone".into()))?
    }

    /// Tombstones `(page_no, slot)`, maintaining the synopsis, and
    /// returns the page's resulting synopsis state to the mirror.
    fn page_delete(
        &mut self,
        bufpool: &ShardedBufferPool,
        vdisk: &mut VDisk,
        page_no: u32,
        slot: SlotNo,
    ) -> DbResult<()> {
        let zm = self.zone_maps;
        let syn = bufpool.with_page_mut(vdisk, &self.file, page_no, |buf| {
            let mut p = Page::new(buf);
            let was_valid = p.synopsis_valid();
            p.delete(slot)?;
            if zm && was_valid {
                p.synopsis_note_delete();
                p.set_synopsis_valid(true);
            }
            Ok::<_, DbError>(p.synopsis())
        })??;
        self.note_page(page_no, syn);
        Ok(())
    }

    /// Replaces a row's image, in place when possible.
    pub fn update(
        &mut self,
        bufpool: &ShardedBufferPool,
        vdisk: &mut VDisk,
        row: &Row,
    ) -> DbResult<UpdatePlacement> {
        let (page_no, slot) = self
            .locate(row.id)
            .ok_or_else(|| DbError::Storage(format!("row {} not found", row.id)))?;
        let bytes = row.encode();
        let zm = self.zone_maps;
        let cols = if zm { int_cols(row) } else { Vec::new() };
        let (in_place, syn) = bufpool.with_page_mut(vdisk, &self.file, page_no, |buf| {
            let mut p = Page::new(buf);
            let was_valid = p.synopsis_valid();
            if p.update_in_place(slot, &bytes).is_err() {
                return (false, None);
            }
            if zm && was_valid {
                // The old values stay inside the bounds (superset — sound);
                // the new ones widen them.
                p.synopsis_note_update(&cols);
                p.set_synopsis_valid(true);
            }
            (true, p.synopsis())
        })?;
        if in_place {
            self.note_page(page_no, syn);
            return Ok(UpdatePlacement::InPlace { page_no, slot });
        }
        // Length changed: tombstone and re-insert.
        self.page_delete(bufpool, vdisk, page_no, slot)?;
        self.locations.remove(&row.id);
        let to = self.insert(bufpool, vdisk, row)?;
        Ok(UpdatePlacement::Moved {
            from: (page_no, slot),
            to,
        })
    }

    /// Deletes a row, returning where it lived.
    pub fn delete(
        &mut self,
        bufpool: &ShardedBufferPool,
        vdisk: &mut VDisk,
        row_id: RowId,
    ) -> DbResult<(u32, SlotNo)> {
        let (page_no, slot) = self
            .locate(row_id)
            .ok_or_else(|| DbError::Storage(format!("row {row_id} not found")))?;
        self.page_delete(bufpool, vdisk, page_no, slot)?;
        self.locations.remove(&row_id);
        Ok((page_no, slot))
    }

    /// Full scan in (page, slot) order; returns rows and the pages read.
    pub fn scan(
        &self,
        bufpool: &ShardedBufferPool,
        vdisk: &mut VDisk,
    ) -> DbResult<(Vec<Row>, Vec<u32>)> {
        let mut rows = Vec::new();
        let mut pages = Vec::new();
        let n_pages = ShardedBufferPool::page_count(vdisk, &self.file);
        for page_no in 0..n_pages {
            pages.push(page_no);
            let page_rows = self.read_page_rows(bufpool, vdisk, page_no, None)?;
            rows.extend(page_rows);
        }
        Ok((rows, pages))
    }

    /// Decodes the live rows of one page, in slot order, materializing
    /// only the columns in `needed` (`None` = all). This is the unit of
    /// work of the streaming scan executor: one page in, its rows out,
    /// no whole-table materialization.
    pub fn read_page_rows(
        &self,
        bufpool: &ShardedBufferPool,
        vdisk: &mut VDisk,
        page_no: u32,
        needed: Option<&[bool]>,
    ) -> DbResult<Vec<Row>> {
        bufpool.with_page(vdisk, &self.file, page_no, |buf| {
            let r = PageRef::new(buf);
            let mut rows = Vec::with_capacity(r.n_slots() as usize);
            for (_, bytes) in r.iter() {
                rows.push(Row::decode_partial(bytes, needed)?);
            }
            Ok(rows)
        })?
    }

    /// Whether the zone map proves `page_no` holds no row with INT
    /// column `col` inside `(lo, hi)`. Resolution order: in-memory
    /// mirror (no page load at all) → persisted page synopsis → lazy
    /// rebuild from the page's rows (persists the repaired synopsis).
    /// Always `false` when zone maps are disabled — never prune without
    /// a synopsis to justify it.
    pub fn page_prunable(
        &mut self,
        bufpool: &ShardedBufferPool,
        vdisk: &mut VDisk,
        page_no: u32,
        col: u16,
        lo: &Bound<i64>,
        hi: &Bound<i64>,
    ) -> DbResult<bool> {
        if !self.zone_maps {
            return Ok(false);
        }
        if let Some(s) = self.zonemap.get(&page_no) {
            return Ok(s.excludes(col, lo, hi));
        }
        let syn = bufpool.with_page(vdisk, &self.file, page_no, |buf| {
            PageRef::new(buf).synopsis()
        })?;
        let syn = match syn {
            Some(s) => s,
            None => self.rebuild_page_synopsis(bufpool, vdisk, page_no)?,
        };
        let excluded = syn.excludes(col, lo, hi);
        self.zonemap.insert(page_no, syn);
        Ok(excluded)
    }

    /// Rebuilds a page's synopsis from its live rows and persists it
    /// (the page is marked dirty). This repairs pages whose synopses
    /// were invalidated by value-blind writes — redo replay, or DML
    /// executed while zone maps were disabled.
    pub fn rebuild_page_synopsis(
        &mut self,
        bufpool: &ShardedBufferPool,
        vdisk: &mut VDisk,
        page_no: u32,
    ) -> DbResult<PageSynopsis> {
        let syn = bufpool.with_page_mut(vdisk, &self.file, page_no, |buf| {
            let mut p = Page::new(buf);
            let cells: Vec<Vec<u8>> = p.iter().map(|(_, b)| b.to_vec()).collect();
            p.synopsis_reset();
            for bytes in &cells {
                let row = Row::decode(bytes)?;
                p.synopsis_note_insert(&int_cols(&row));
            }
            Ok::<_, DbError>(p.synopsis().expect("just reset to valid"))
        })??;
        if self.zone_maps {
            self.zonemap.insert(page_no, syn.clone());
        }
        Ok(syn)
    }

    // ------------------------------------------------------------------
    // Redo-replay entry points: apply a logged physical change to a page
    // iff the page has not already seen it (pageLSN check), then stamp the
    // record's LSN. These are value-blind byte ops, so they leave the
    // page synopsis invalid (and drop the mirror entry); the first
    // pruning scan after recovery rebuilds it.
    // ------------------------------------------------------------------

    fn ensure_page(
        &self,
        bufpool: &ShardedBufferPool,
        vdisk: &mut VDisk,
        page_no: u32,
    ) -> DbResult<()> {
        while ShardedBufferPool::page_count(vdisk, &self.file) <= page_no {
            bufpool.allocate_page(vdisk, &self.file);
        }
        Ok(())
    }

    /// Replays an insert at a recorded placement.
    pub fn replay_insert(
        &mut self,
        bufpool: &ShardedBufferPool,
        vdisk: &mut VDisk,
        lsn: u64,
        page_no: u32,
        slot: SlotNo,
        row_bytes: &[u8],
    ) -> DbResult<()> {
        self.ensure_page(bufpool, vdisk, page_no)?;
        let applied = bufpool.with_page_mut(vdisk, &self.file, page_no, |buf| {
            let mut p = Page::new(buf);
            if p.lsn() >= lsn {
                return Ok(false);
            }
            p.insert_at(slot, row_bytes)?;
            p.set_lsn(lsn);
            Ok(true)
        })??;
        if applied {
            self.zonemap.remove(&page_no);
        }
        let row = Row::decode(row_bytes)?;
        if applied {
            self.locations.insert(row.id, (page_no, slot));
        } else {
            self.locations.entry(row.id).or_insert((page_no, slot));
        }
        self.next_row_id = self.next_row_id.max(row.id + 1);
        Ok(())
    }

    /// Replays an in-place update.
    pub fn replay_update(
        &mut self,
        bufpool: &ShardedBufferPool,
        vdisk: &mut VDisk,
        lsn: u64,
        page_no: u32,
        slot: SlotNo,
        row_bytes: &[u8],
    ) -> DbResult<()> {
        self.ensure_page(bufpool, vdisk, page_no)?;
        bufpool.with_page_mut(vdisk, &self.file, page_no, |buf| {
            let mut p = Page::new(buf);
            if p.lsn() >= lsn {
                return Ok(());
            }
            p.update_in_place(slot, row_bytes)?;
            p.set_lsn(lsn);
            Ok(())
        })??;
        self.zonemap.remove(&page_no);
        let row = Row::decode(row_bytes)?;
        self.locations.insert(row.id, (page_no, slot));
        Ok(())
    }

    /// Replays a delete (tombstone) of a recorded placement.
    pub fn replay_delete(
        &mut self,
        bufpool: &ShardedBufferPool,
        vdisk: &mut VDisk,
        lsn: u64,
        page_no: u32,
        slot: SlotNo,
    ) -> DbResult<()> {
        self.ensure_page(bufpool, vdisk, page_no)?;
        bufpool.with_page_mut(vdisk, &self.file, page_no, |buf| {
            let mut p = Page::new(buf);
            if p.lsn() >= lsn {
                return Ok(());
            }
            // The slot may already be missing if the delete raced a crash;
            // tolerate that (idempotent replay).
            let _ = p.delete(slot);
            p.set_lsn(lsn);
            Ok(())
        })??;
        self.zonemap.remove(&page_no);
        self.locations.retain(|_, loc| *loc != (page_no, slot));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn setup() -> (ShardedBufferPool, VDisk, TableHeap) {
        let bp = ShardedBufferPool::new(32, 4);
        let mut vd = VDisk::new();
        let h = TableHeap::create(&bp, &mut vd, "t.ibd").unwrap();
        (bp, vd, h)
    }

    fn row(id: RowId, n: i64) -> Row {
        Row {
            id,
            values: vec![Value::Int(n), Value::Text(format!("payload-{n}"))],
        }
    }

    #[test]
    fn insert_read_round_trip() {
        let (bp, mut vd, mut h) = setup();
        let id = h.allocate_row_id();
        h.insert(&bp, &mut vd, &row(id, 5)).unwrap();
        assert_eq!(h.read(&bp, &mut vd, id).unwrap(), row(id, 5));
        assert_eq!(h.row_count(), 1);
        assert!(h.read(&bp, &mut vd, 999).is_err());
    }

    #[test]
    fn spans_pages() {
        let (bp, mut vd, mut h) = setup();
        for i in 0..2000 {
            let id = h.allocate_row_id();
            h.insert(&bp, &mut vd, &row(id, i)).unwrap();
        }
        assert!(ShardedBufferPool::page_count(&vd, "t.ibd") > 1);
        let (rows, pages) = h.scan(&bp, &mut vd).unwrap();
        assert_eq!(rows.len(), 2000);
        assert_eq!(
            pages.len() as u32,
            ShardedBufferPool::page_count(&vd, "t.ibd")
        );
    }

    #[test]
    fn update_in_place_vs_moved() {
        let (bp, mut vd, mut h) = setup();
        let id = h.allocate_row_id();
        h.insert(&bp, &mut vd, &row(id, 7)).unwrap();
        // Same-length payload: in place.
        let p = h.update(&bp, &mut vd, &row(id, 8)).unwrap();
        assert!(matches!(p, UpdatePlacement::InPlace { .. }));
        // Longer payload: moved.
        let longer = Row {
            id,
            values: vec![
                Value::Int(8),
                Value::Text("much longer payload here".into()),
            ],
        };
        let p = h.update(&bp, &mut vd, &longer).unwrap();
        assert!(matches!(p, UpdatePlacement::Moved { .. }));
        assert_eq!(h.read(&bp, &mut vd, id).unwrap(), longer);
    }

    #[test]
    fn delete_then_reopen() {
        let (bp, mut vd, mut h) = setup();
        let keep = h.allocate_row_id();
        h.insert(&bp, &mut vd, &row(keep, 1)).unwrap();
        let gone = h.allocate_row_id();
        h.insert(&bp, &mut vd, &row(gone, 2)).unwrap();
        h.delete(&bp, &mut vd, gone).unwrap();
        bp.flush_all(&mut vd);
        let h2 = TableHeap::open(&bp, &mut vd, "t.ibd").unwrap();
        assert_eq!(h2.row_count(), 1);
        assert!(h2.locate(keep).is_some());
        assert!(h2.locate(gone).is_none());
        // Row id allocation continues past the highest seen.
        let mut h2 = h2;
        assert!(h2.allocate_row_id() > keep);
    }

    #[test]
    fn replay_is_idempotent() {
        let (bp, mut vd, mut h) = setup();
        let bytes = row(1, 42).encode();
        h.replay_insert(&bp, &mut vd, 10, 0, 0, &bytes).unwrap();
        // Replaying the same LSN again is a no-op.
        h.replay_insert(&bp, &mut vd, 10, 0, 0, &bytes).unwrap();
        assert_eq!(h.row_count(), 1);
        assert_eq!(h.read(&bp, &mut vd, 1).unwrap(), row(1, 42));
        // A later delete replays once.
        h.replay_delete(&bp, &mut vd, 11, 0, 0).unwrap();
        h.replay_delete(&bp, &mut vd, 11, 0, 0).unwrap();
        assert_eq!(h.row_count(), 0);
    }

    #[test]
    fn replay_update_respects_page_lsn() {
        let (bp, mut vd, mut h) = setup();
        h.replay_insert(&bp, &mut vd, 5, 0, 0, &row(1, 1).encode())
            .unwrap();
        h.replay_update(&bp, &mut vd, 6, 0, 0, &row(1, 2).encode())
            .unwrap();
        // Stale update (lower LSN) must not regress the page.
        h.replay_update(&bp, &mut vd, 4, 0, 0, &row(1, 9).encode())
            .unwrap();
        assert_eq!(h.read(&bp, &mut vd, 1).unwrap(), row(1, 2));
    }

    #[test]
    fn dml_maintains_page_synopsis() {
        let (bp, mut vd, mut h) = setup();
        for n in [30i64, 10, 20] {
            let id = h.allocate_row_id();
            h.insert(&bp, &mut vd, &row(id, n)).unwrap();
        }
        let syn = h.zone_map().get(&0).expect("mirror populated").clone();
        assert_eq!(syn.rows, 3);
        assert_eq!(syn.stats(0).unwrap().min, 10);
        assert_eq!(syn.stats(0).unwrap().max, 30);
        // The persisted synopsis agrees with the mirror.
        let on_page = bp
            .with_page(&mut vd, "t.ibd", 0, |buf| PageRef::new(buf).synopsis())
            .unwrap()
            .expect("valid on page");
        assert_eq!(on_page, syn);
        // In-place update widens; delete drops the count but not bounds.
        h.update(&bp, &mut vd, &row(1, 99)).unwrap();
        h.delete(&bp, &mut vd, 2).unwrap();
        let syn = h.zone_map().get(&0).unwrap();
        assert_eq!(syn.rows, 2);
        assert_eq!(syn.stats(0).unwrap().max, 99);
        assert_eq!(syn.stats(0).unwrap().min, 10);
    }

    #[test]
    fn prune_check_uses_bounds() {
        let (bp, mut vd, mut h) = setup();
        for n in 0..10 {
            let id = h.allocate_row_id();
            h.insert(&bp, &mut vd, &row(id, n)).unwrap();
        }
        // Values are 0..=9 in column 0; [50, ∞) must prune, [5, ∞) must not.
        assert!(h
            .page_prunable(&bp, &mut vd, 0, 0, &Bound::Included(50), &Bound::Unbounded)
            .unwrap());
        assert!(!h
            .page_prunable(&bp, &mut vd, 0, 0, &Bound::Included(5), &Bound::Unbounded)
            .unwrap());
        // Column 1 is TEXT — untracked, never prunable.
        assert!(!h
            .page_prunable(&bp, &mut vd, 0, 1, &Bound::Included(50), &Bound::Unbounded)
            .unwrap());
    }

    #[test]
    fn replay_invalidates_and_scan_rebuilds() {
        let (bp, mut vd, mut h) = setup();
        let id = h.allocate_row_id();
        h.insert(&bp, &mut vd, &row(id, 5)).unwrap();
        // A redo replay is value-blind: synopsis goes invalid everywhere.
        h.replay_insert(&bp, &mut vd, 100, 0, 1, &row(77, 500).encode())
            .unwrap();
        assert!(h.zone_map().get(&0).is_none(), "mirror dropped");
        let valid = bp
            .with_page(&mut vd, "t.ibd", 0, |buf| {
                PageRef::new(buf).synopsis_valid()
            })
            .unwrap();
        assert!(!valid, "persisted synopsis invalid after replay");
        // First prune consult rebuilds from live rows — and must see the
        // replayed value 500 (pruning on it would be unsound otherwise).
        assert!(!h
            .page_prunable(&bp, &mut vd, 0, 0, &Bound::Included(500), &Bound::Unbounded)
            .unwrap());
        let syn = h.zone_map().get(&0).expect("rebuilt into mirror");
        assert_eq!(syn.rows, 2);
        assert_eq!(syn.stats(0).unwrap().max, 500);
        // The rebuild persisted: a fresh heap sees a valid synopsis.
        let valid = bp
            .with_page(&mut vd, "t.ibd", 0, |buf| {
                PageRef::new(buf).synopsis_valid()
            })
            .unwrap();
        assert!(valid);
    }

    #[test]
    fn zone_maps_disabled_never_prunes() {
        let (bp, mut vd, mut h) = setup();
        h.set_zone_maps(false);
        for n in 0..5 {
            let id = h.allocate_row_id();
            h.insert(&bp, &mut vd, &row(id, n)).unwrap();
        }
        assert!(h.zone_map().is_empty());
        assert!(!h
            .page_prunable(&bp, &mut vd, 0, 0, &Bound::Included(900), &Bound::Unbounded)
            .unwrap());
        // Re-enable: lazy rebuild recovers the stale page.
        h.set_zone_maps(true);
        assert!(h
            .page_prunable(&bp, &mut vd, 0, 0, &Bound::Included(900), &Bound::Unbounded)
            .unwrap());
    }

    #[test]
    fn read_page_rows_projects() {
        let (bp, mut vd, mut h) = setup();
        for n in 0..3 {
            let id = h.allocate_row_id();
            h.insert(&bp, &mut vd, &row(id, n)).unwrap();
        }
        let rows = h
            .read_page_rows(&bp, &mut vd, 0, Some(&[true, false]))
            .unwrap();
        assert_eq!(rows.len(), 3);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.values[0], Value::Int(i as i64));
            assert_eq!(r.values[1], Value::Null, "unneeded column not materialized");
        }
    }
}
