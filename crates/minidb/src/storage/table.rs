//! Table heaps: rows stored in slotted pages, addressed by row id.

use std::collections::HashMap;

use crate::error::{DbError, DbResult};
use crate::row::{Row, RowId};
use crate::storage::bufpool::BufferPool;
use crate::storage::page::{Page, SlotNo};
use crate::vdisk::VDisk;

/// Where an update landed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UpdatePlacement {
    /// The new image overwrote the old bytes (same length).
    InPlace {
        /// Page holding the row.
        page_no: u32,
        /// Slot within the page.
        slot: SlotNo,
    },
    /// The row moved: tombstoned at `from`, re-inserted at `to`.
    Moved {
        /// Old location.
        from: (u32, SlotNo),
        /// New location.
        to: (u32, SlotNo),
    },
}

/// A table heap plus its in-memory row locator (rebuilt on open).
pub struct TableHeap {
    /// Tablespace file name.
    pub file: String,
    locations: HashMap<RowId, (u32, SlotNo)>,
    next_row_id: RowId,
}

impl TableHeap {
    /// Creates a new empty heap with one allocated page.
    pub fn create(bufpool: &mut BufferPool, vdisk: &mut VDisk, file: &str) -> DbResult<TableHeap> {
        bufpool.allocate_page(vdisk, file);
        Ok(TableHeap {
            file: file.to_string(),
            locations: HashMap::new(),
            next_row_id: 1,
        })
    }

    /// Opens an existing heap, rebuilding the locator by scanning pages
    /// (also the recovery path — locator state is volatile).
    pub fn open(bufpool: &mut BufferPool, vdisk: &mut VDisk, file: &str) -> DbResult<TableHeap> {
        let mut heap = TableHeap {
            file: file.to_string(),
            locations: HashMap::new(),
            next_row_id: 1,
        };
        let n_pages = BufferPool::page_count(vdisk, file);
        for page_no in 0..n_pages {
            let entries = bufpool.with_page(vdisk, file, page_no, |buf| {
                let mut tmp = buf.to_vec();
                let p = Page::new(&mut tmp);
                p.iter()
                    .map(|(slot, bytes)| (slot, bytes.to_vec()))
                    .collect::<Vec<_>>()
            })?;
            for (slot, bytes) in entries {
                let row = Row::decode(&bytes)?;
                heap.locations.insert(row.id, (page_no, slot));
                heap.next_row_id = heap.next_row_id.max(row.id + 1);
            }
        }
        Ok(heap)
    }

    /// Allocates the next row id.
    pub fn allocate_row_id(&mut self) -> RowId {
        let id = self.next_row_id;
        self.next_row_id += 1;
        id
    }

    /// Number of live rows.
    pub fn row_count(&self) -> usize {
        self.locations.len()
    }

    /// Location of a row, if it exists.
    pub fn locate(&self, row_id: RowId) -> Option<(u32, SlotNo)> {
        self.locations.get(&row_id).copied()
    }

    /// Inserts an encoded row, returning its placement. The row's id must
    /// be fresh (allocate via [`Self::allocate_row_id`]).
    pub fn insert(
        &mut self,
        bufpool: &mut BufferPool,
        vdisk: &mut VDisk,
        row: &Row,
    ) -> DbResult<(u32, SlotNo)> {
        if self.locations.contains_key(&row.id) {
            return Err(DbError::Storage(format!("row id {} already exists", row.id)));
        }
        let bytes = row.encode();
        let last = BufferPool::page_count(vdisk, &self.file).saturating_sub(1);
        let fits = bufpool.with_page(vdisk, &self.file, last, |buf| {
            let mut tmp = buf.to_vec();
            Page::new(&mut tmp).fits(bytes.len())
        })?;
        let page_no = if fits {
            last
        } else {
            bufpool.allocate_page(vdisk, &self.file)
        };
        let slot = bufpool.with_page_mut(vdisk, &self.file, page_no, |buf| {
            Page::new(buf).insert(&bytes)
        })??;
        self.locations.insert(row.id, (page_no, slot));
        self.next_row_id = self.next_row_id.max(row.id + 1);
        Ok((page_no, slot))
    }

    /// Reads a row by id.
    pub fn read(
        &self,
        bufpool: &mut BufferPool,
        vdisk: &mut VDisk,
        row_id: RowId,
    ) -> DbResult<Row> {
        let (page_no, slot) = self
            .locate(row_id)
            .ok_or_else(|| DbError::Storage(format!("row {row_id} not found")))?;
        let bytes = bufpool.with_page(vdisk, &self.file, page_no, |buf| {
            let mut tmp = buf.to_vec();
            Page::new(&mut tmp).get(slot).map(|b| b.to_vec())
        })?;
        let bytes = bytes.ok_or_else(|| DbError::Storage("locator points at tombstone".into()))?;
        Row::decode(&bytes)
    }

    /// Replaces a row's image, in place when possible.
    pub fn update(
        &mut self,
        bufpool: &mut BufferPool,
        vdisk: &mut VDisk,
        row: &Row,
    ) -> DbResult<UpdatePlacement> {
        let (page_no, slot) = self
            .locate(row.id)
            .ok_or_else(|| DbError::Storage(format!("row {} not found", row.id)))?;
        let bytes = row.encode();
        let in_place = bufpool.with_page_mut(vdisk, &self.file, page_no, |buf| {
            Page::new(buf).update_in_place(slot, &bytes).is_ok()
        })?;
        if in_place {
            return Ok(UpdatePlacement::InPlace { page_no, slot });
        }
        // Length changed: tombstone and re-insert.
        bufpool.with_page_mut(vdisk, &self.file, page_no, |buf| {
            Page::new(buf).delete(slot)
        })??;
        self.locations.remove(&row.id);
        let to = self.insert(bufpool, vdisk, row)?;
        Ok(UpdatePlacement::Moved {
            from: (page_no, slot),
            to,
        })
    }

    /// Deletes a row, returning where it lived.
    pub fn delete(
        &mut self,
        bufpool: &mut BufferPool,
        vdisk: &mut VDisk,
        row_id: RowId,
    ) -> DbResult<(u32, SlotNo)> {
        let (page_no, slot) = self
            .locate(row_id)
            .ok_or_else(|| DbError::Storage(format!("row {row_id} not found")))?;
        bufpool.with_page_mut(vdisk, &self.file, page_no, |buf| {
            Page::new(buf).delete(slot)
        })??;
        self.locations.remove(&row_id);
        Ok((page_no, slot))
    }

    /// Full scan in (page, slot) order; returns rows and the pages read.
    pub fn scan(
        &self,
        bufpool: &mut BufferPool,
        vdisk: &mut VDisk,
    ) -> DbResult<(Vec<Row>, Vec<u32>)> {
        let mut rows = Vec::new();
        let mut pages = Vec::new();
        let n_pages = BufferPool::page_count(vdisk, &self.file);
        for page_no in 0..n_pages {
            pages.push(page_no);
            let entries = bufpool.with_page(vdisk, &self.file, page_no, |buf| {
                let mut tmp = buf.to_vec();
                let p = Page::new(&mut tmp);
                p.iter().map(|(_, b)| b.to_vec()).collect::<Vec<_>>()
            })?;
            for bytes in entries {
                rows.push(Row::decode(&bytes)?);
            }
        }
        Ok((rows, pages))
    }

    // ------------------------------------------------------------------
    // Redo-replay entry points: apply a logged physical change to a page
    // iff the page has not already seen it (pageLSN check), then stamp the
    // record's LSN.
    // ------------------------------------------------------------------

    fn ensure_page(
        &self,
        bufpool: &mut BufferPool,
        vdisk: &mut VDisk,
        page_no: u32,
    ) -> DbResult<()> {
        while BufferPool::page_count(vdisk, &self.file) <= page_no {
            bufpool.allocate_page(vdisk, &self.file);
        }
        Ok(())
    }

    /// Replays an insert at a recorded placement.
    pub fn replay_insert(
        &mut self,
        bufpool: &mut BufferPool,
        vdisk: &mut VDisk,
        lsn: u64,
        page_no: u32,
        slot: SlotNo,
        row_bytes: &[u8],
    ) -> DbResult<()> {
        self.ensure_page(bufpool, vdisk, page_no)?;
        let applied = bufpool.with_page_mut(vdisk, &self.file, page_no, |buf| {
            let mut p = Page::new(buf);
            if p.lsn() >= lsn {
                return Ok(false);
            }
            p.insert_at(slot, row_bytes)?;
            p.set_lsn(lsn);
            Ok(true)
        })??;
        let row = Row::decode(row_bytes)?;
        if applied {
            self.locations.insert(row.id, (page_no, slot));
        } else {
            self.locations.entry(row.id).or_insert((page_no, slot));
        }
        self.next_row_id = self.next_row_id.max(row.id + 1);
        Ok(())
    }

    /// Replays an in-place update.
    pub fn replay_update(
        &mut self,
        bufpool: &mut BufferPool,
        vdisk: &mut VDisk,
        lsn: u64,
        page_no: u32,
        slot: SlotNo,
        row_bytes: &[u8],
    ) -> DbResult<()> {
        self.ensure_page(bufpool, vdisk, page_no)?;
        bufpool.with_page_mut(vdisk, &self.file, page_no, |buf| {
            let mut p = Page::new(buf);
            if p.lsn() >= lsn {
                return Ok(());
            }
            p.update_in_place(slot, row_bytes)?;
            p.set_lsn(lsn);
            Ok(())
        })??;
        let row = Row::decode(row_bytes)?;
        self.locations.insert(row.id, (page_no, slot));
        Ok(())
    }

    /// Replays a delete (tombstone) of a recorded placement.
    pub fn replay_delete(
        &mut self,
        bufpool: &mut BufferPool,
        vdisk: &mut VDisk,
        lsn: u64,
        page_no: u32,
        slot: SlotNo,
    ) -> DbResult<()> {
        self.ensure_page(bufpool, vdisk, page_no)?;
        bufpool.with_page_mut(vdisk, &self.file, page_no, |buf| {
            let mut p = Page::new(buf);
            if p.lsn() >= lsn {
                return Ok(());
            }
            // The slot may already be missing if the delete raced a crash;
            // tolerate that (idempotent replay).
            let _ = p.delete(slot);
            p.set_lsn(lsn);
            Ok(())
        })??;
        self.locations.retain(|_, loc| *loc != (page_no, slot));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn setup() -> (BufferPool, VDisk, TableHeap) {
        let mut bp = BufferPool::new(32);
        let mut vd = VDisk::new();
        let h = TableHeap::create(&mut bp, &mut vd, "t.ibd").unwrap();
        (bp, vd, h)
    }

    fn row(id: RowId, n: i64) -> Row {
        Row {
            id,
            values: vec![Value::Int(n), Value::Text(format!("payload-{n}"))],
        }
    }

    #[test]
    fn insert_read_round_trip() {
        let (mut bp, mut vd, mut h) = setup();
        let id = h.allocate_row_id();
        h.insert(&mut bp, &mut vd, &row(id, 5)).unwrap();
        assert_eq!(h.read(&mut bp, &mut vd, id).unwrap(), row(id, 5));
        assert_eq!(h.row_count(), 1);
        assert!(h.read(&mut bp, &mut vd, 999).is_err());
    }

    #[test]
    fn spans_pages() {
        let (mut bp, mut vd, mut h) = setup();
        for i in 0..2000 {
            let id = h.allocate_row_id();
            h.insert(&mut bp, &mut vd, &row(id, i)).unwrap();
        }
        assert!(BufferPool::page_count(&vd, "t.ibd") > 1);
        let (rows, pages) = h.scan(&mut bp, &mut vd).unwrap();
        assert_eq!(rows.len(), 2000);
        assert_eq!(pages.len() as u32, BufferPool::page_count(&vd, "t.ibd"));
    }

    #[test]
    fn update_in_place_vs_moved() {
        let (mut bp, mut vd, mut h) = setup();
        let id = h.allocate_row_id();
        h.insert(&mut bp, &mut vd, &row(id, 7)).unwrap();
        // Same-length payload: in place.
        let p = h.update(&mut bp, &mut vd, &row(id, 8)).unwrap();
        assert!(matches!(p, UpdatePlacement::InPlace { .. }));
        // Longer payload: moved.
        let longer = Row {
            id,
            values: vec![Value::Int(8), Value::Text("much longer payload here".into())],
        };
        let p = h.update(&mut bp, &mut vd, &longer).unwrap();
        assert!(matches!(p, UpdatePlacement::Moved { .. }));
        assert_eq!(h.read(&mut bp, &mut vd, id).unwrap(), longer);
    }

    #[test]
    fn delete_then_reopen() {
        let (mut bp, mut vd, mut h) = setup();
        let keep = h.allocate_row_id();
        h.insert(&mut bp, &mut vd, &row(keep, 1)).unwrap();
        let gone = h.allocate_row_id();
        h.insert(&mut bp, &mut vd, &row(gone, 2)).unwrap();
        h.delete(&mut bp, &mut vd, gone).unwrap();
        bp.flush_all(&mut vd);
        let h2 = TableHeap::open(&mut bp, &mut vd, "t.ibd").unwrap();
        assert_eq!(h2.row_count(), 1);
        assert!(h2.locate(keep).is_some());
        assert!(h2.locate(gone).is_none());
        // Row id allocation continues past the highest seen.
        let mut h2 = h2;
        assert!(h2.allocate_row_id() > keep);
    }

    #[test]
    fn replay_is_idempotent() {
        let (mut bp, mut vd, mut h) = setup();
        let bytes = row(1, 42).encode();
        h.replay_insert(&mut bp, &mut vd, 10, 0, 0, &bytes).unwrap();
        // Replaying the same LSN again is a no-op.
        h.replay_insert(&mut bp, &mut vd, 10, 0, 0, &bytes).unwrap();
        assert_eq!(h.row_count(), 1);
        assert_eq!(h.read(&mut bp, &mut vd, 1).unwrap(), row(1, 42));
        // A later delete replays once.
        h.replay_delete(&mut bp, &mut vd, 11, 0, 0).unwrap();
        h.replay_delete(&mut bp, &mut vd, 11, 0, 0).unwrap();
        assert_eq!(h.row_count(), 0);
    }

    #[test]
    fn replay_update_respects_page_lsn() {
        let (mut bp, mut vd, mut h) = setup();
        h.replay_insert(&mut bp, &mut vd, 5, 0, 0, &row(1, 1).encode()).unwrap();
        h.replay_update(&mut bp, &mut vd, 6, 0, 0, &row(1, 2).encode()).unwrap();
        // Stale update (lower LSN) must not regress the page.
        h.replay_update(&mut bp, &mut vd, 4, 0, 0, &row(1, 9).encode()).unwrap();
        assert_eq!(h.read(&mut bp, &mut vd, 1).unwrap(), row(1, 2));
    }
}
